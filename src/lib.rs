//! `semfpga` — a Rust reproduction of *"High-Performance Spectral Element
//! Methods on Field-Programmable Gate Arrays"* (Karp et al., IPDPS 2021).
//!
//! This facade crate re-exports the whole workspace so applications can pull
//! in a single dependency:
//!
//! * [`basis`] — Legendre polynomials, GLL quadrature, differentiation
//!   matrices (`sem-basis`);
//! * [`mesh`] — hexahedral box meshes, geometric factors, gather–scatter,
//!   Dirichlet masks (`sem-mesh`);
//! * [`kernel`] — the matrix-free local Poisson operator `Ax` / CEED BK5
//!   (`sem-kernel`);
//! * [`solver`] — preconditioned conjugate gradients and the Nekbone-style
//!   proxy driver (`sem-solver`);
//! * [`fpga`] — the cycle-approximate accelerator simulator, device
//!   catalogue, synthesis and power models (`fpga-sim`);
//! * [`model`] — the paper's Section IV analytical performance model and the
//!   Section V-D projections (`perf-model`);
//! * [`archdb`] — the Table II architecture catalogue and calibrated CPU/GPU
//!   machine models (`arch-db`);
//! * [`accel`] — the high-level backend-selection API (`sem-accel`);
//! * [`serve`] — the pipelined, overlap-aware serving layer: solve queue,
//!   multi-device scheduler and offload-pipeline timeline (`sem-serve`);
//! * [`obs`] — deterministic tracing, metrics and model-drift telemetry for
//!   the whole solve/serve stack (`sem-obs`).
//!
//! See the `examples/` directory for runnable entry points and the `bench`
//! crate for the binaries regenerating every table and figure of the paper.
//!
//! Backends are selected by configuration (or registry name) and the entire
//! CG solve runs through the selected backend:
//!
//! ```
//! use semfpga::accel::{Backend, PerfSource, SemSystem};
//! use semfpga::solver::CgOptions;
//!
//! let system = SemSystem::builder()
//!     .degree(7)
//!     .elements([2, 2, 2])
//!     .backend(Backend::fpga_simulated()) // or .backend_named("fpga:stratix10-gx2800")
//!     .build();
//! let report = system.solve(CgOptions::default());
//! assert!(report.converged());
//! // The solve was executed (and accounted) by the simulated accelerator:
//! assert_eq!(report.source, PerfSource::Simulated);
//! assert!(report.operator.seconds > 0.0);
//! assert!(report.operator.power_watts.is_some());
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub use arch_db as archdb;
pub use fpga_sim as fpga;
pub use perf_model as model;
pub use sem_accel as accel;
pub use sem_basis as basis;
pub use sem_kernel as kernel;
pub use sem_mesh as mesh;
pub use sem_obs as obs;
pub use sem_serve as serve;
pub use sem_solver as solver;

/// The degrees the paper synthesised accelerators for (Table I).
pub const PAPER_DEGREES: [usize; 8] = [1, 3, 5, 7, 9, 11, 13, 15];

/// The problem size (number of elements) used for the paper's peak
/// comparisons (Table I, Fig. 2, Fig. 3).
pub const PAPER_REFERENCE_ELEMENTS: usize = 4096;
