//! A fault-injecting wrapper around any execution backend.
//!
//! [`FaultyBackend`] decorates a `Box<dyn AxBackend>` with a shared
//! [`FaultState`]: every *fallible* application consults the state's
//! deterministic schedule and either applies normally, applies and corrupts
//! the result (a transient upset the caller can only catch by residual
//! verification), or fails with a typed [`DeviceError`] (death, hang).
//! Sticky slowdown multiplies the backend's modelled seconds, so degraded
//! devices show up in timeout budgets rather than as errors.
//!
//! The wrapper is transparent in every other respect — label, cost model,
//! offload plan, preconditioner claims — so a request retried onto the same
//! backend class past its faulted ops produces bitwise the answer of a
//! fault-free run.

use crate::exec::AxBackend;
use crate::offload::OffloadPlan;
use crate::report::PerfSource;
use fpga_sim::{corrupt_value, DeviceError, FaultAction, FaultState, FpgaAccelerator};
use sem_mesh::{ElementField, GatherScatter};
use sem_solver::PrecondSpec;
use std::borrow::Cow;
use std::sync::Arc;

/// A backend that consults a deterministic [`FaultState`] on every fallible
/// application.  See the module docs for semantics.
pub struct FaultyBackend {
    inner: Box<dyn AxBackend>,
    state: Arc<FaultState>,
}

impl FaultyBackend {
    /// Wrap `inner` with the shared fault state.
    #[must_use]
    pub fn new(inner: Box<dyn AxBackend>, state: Arc<FaultState>) -> Self {
        Self { inner, state }
    }

    /// The shared fault state (health, slowdown, injection counts).
    #[must_use]
    pub fn state(&self) -> &Arc<FaultState> {
        &self.state
    }

    /// Flip one high exponent bit of one output entry — the modelled
    /// single-event upset.  Drastic (guaranteed to fail residual
    /// verification at any practical tolerance) yet finite, so downstream
    /// arithmetic never sees a NaN it could silently propagate.
    ///
    /// The upset lands on an element-*interior* node of a middle element:
    /// interior nodes have gather–scatter multiplicity one and are never
    /// Dirichlet-masked, so the corruption survives to the caller instead
    /// of being averaged or zeroed away by the host's dssum/mask passes —
    /// a fault the detection layer must genuinely catch.
    fn corrupt(w: &mut ElementField) {
        let n = w.degree();
        let points = n + 1;
        let c = (n / 2).max(1);
        let node = c * points * points + c * points + c;
        let index = (w.num_elements() / 2) * points * points * points + node;
        if let Some(entry) = w.as_mut_slice().get_mut(index) {
            *entry = corrupt_value(*entry);
        }
    }
}

impl AxBackend for FaultyBackend {
    fn label(&self) -> Cow<'static, str> {
        // Transparent on purpose: answers retried onto an equivalent healthy
        // backend must be indistinguishable from a fault-free run.
        self.inner.label()
    }

    fn degree(&self) -> usize {
        self.inner.degree()
    }

    fn num_elements(&self) -> usize {
        self.inner.num_elements()
    }

    fn apply_into(&self, u: &ElementField, w: &mut ElementField) {
        // The infallible path has no way to report a failure, so it
        // bypasses injection entirely (and does not advance the op
        // counter): faults only surface where the caller can observe them.
        self.inner.apply_into(u, w);
    }

    fn try_apply_into(&self, u: &ElementField, w: &mut ElementField) -> Result<(), DeviceError> {
        match self.state.next_op() {
            FaultAction::Ok => self.inner.try_apply_into(u, w),
            FaultAction::Corrupt => {
                self.inner.try_apply_into(u, w)?;
                Self::corrupt(w);
                Ok(())
            }
            FaultAction::Fail(error) => Err(error),
        }
    }

    fn try_apply_dssum_into(
        &self,
        u: &ElementField,
        gather_scatter: &GatherScatter,
        w: &mut ElementField,
    ) -> Result<(), DeviceError> {
        match self.state.next_op() {
            FaultAction::Ok => self.inner.try_apply_dssum_into(u, gather_scatter, w),
            FaultAction::Corrupt => {
                self.inner.try_apply_dssum_into(u, gather_scatter, w)?;
                Self::corrupt(w);
                Ok(())
            }
            FaultAction::Fail(error) => Err(error),
        }
    }

    fn apply_many(&self, us: &[ElementField], ws: &mut [ElementField]) {
        self.inner.apply_many(us, ws);
    }

    fn fuses_dssum(&self) -> bool {
        self.inner.fuses_dssum()
    }

    fn apply_dssum_into(
        &self,
        u: &ElementField,
        gather_scatter: &GatherScatter,
        w: &mut ElementField,
    ) {
        self.inner.apply_dssum_into(u, gather_scatter, w);
    }

    fn flops_per_application(&self) -> u64 {
        self.inner.flops_per_application()
    }

    fn dofs_per_application(&self) -> u64 {
        self.inner.dofs_per_application()
    }

    fn perf_source(&self) -> PerfSource {
        self.inner.perf_source()
    }

    fn simulated_seconds_per_application(&self) -> Option<f64> {
        self.inner
            .simulated_seconds_per_application()
            .map(|s| s * self.state.slowdown_factor())
    }

    fn simulated_seconds_per_batch(&self, batch: usize) -> Option<f64> {
        self.inner
            .simulated_seconds_per_batch(batch)
            .map(|s| s * self.state.slowdown_factor())
    }

    fn power_watts(&self) -> Option<f64> {
        self.inner.power_watts()
    }

    fn offload_plan(&self) -> Option<OffloadPlan> {
        self.inner.offload_plan()
    }

    fn precond_on_device(&self, precond: PrecondSpec) -> bool {
        self.inner.precond_on_device(precond)
    }

    fn simulated_seconds_per_precond(&self, precond: PrecondSpec) -> Option<f64> {
        self.inner
            .simulated_seconds_per_precond(precond)
            .map(|s| s * self.state.slowdown_factor())
    }

    fn precond_table_bytes(&self, precond: PrecondSpec) -> u64 {
        self.inner.precond_table_bytes(precond)
    }

    fn fpga_accelerator(&self) -> Option<&FpgaAccelerator> {
        self.inner.fpga_accelerator()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::CpuBackend;
    use fpga_sim::{FaultKind, FaultPlan, ScheduledFault};
    use sem_kernel::AxImplementation;
    use sem_mesh::BoxMesh;

    fn wrapped(plan: FaultPlan) -> (FaultyBackend, BoxMesh) {
        let mesh = BoxMesh::unit_cube(3, 2);
        let inner = Box::new(CpuBackend::new(&mesh, AxImplementation::Optimized));
        (
            FaultyBackend::new(inner, Arc::new(FaultState::new(plan))),
            mesh,
        )
    }

    #[test]
    fn healthy_wrapper_is_bitwise_transparent() {
        let (faulty, mesh) = wrapped(FaultPlan::none());
        let clean = CpuBackend::new(&mesh, AxImplementation::Optimized);
        let u = mesh.evaluate(|x, y, z| x * y + z);
        let mut w_faulty = ElementField::zeros(3, 8);
        let mut w_clean = ElementField::zeros(3, 8);
        faulty.try_apply_into(&u, &mut w_faulty).unwrap();
        clean.apply_into(&u, &mut w_clean);
        assert_eq!(w_faulty.as_slice(), w_clean.as_slice());
        assert_eq!(faulty.label(), clean.label());
    }

    #[test]
    fn transient_corrupts_one_application_then_recovers() {
        let (faulty, mesh) = wrapped(FaultPlan::new(vec![ScheduledFault {
            at_op: 1,
            kind: FaultKind::Transient,
        }]));
        let u = mesh.evaluate(|x, y, z| x + y + z);
        let mut reference = ElementField::zeros(3, 8);
        faulty.try_apply_into(&u, &mut reference).unwrap(); // op 0: clean
        let mut corrupted = ElementField::zeros(3, 8);
        faulty.try_apply_into(&u, &mut corrupted).unwrap(); // op 1: upset
        assert_ne!(reference.as_slice(), corrupted.as_slice());
        // Exactly one entry differs — a single-event upset, not noise.
        let diffs = reference
            .as_slice()
            .iter()
            .zip(corrupted.as_slice())
            .filter(|(a, b)| a != b)
            .count();
        assert_eq!(diffs, 1);
        let mut recovered = ElementField::zeros(3, 8);
        faulty.try_apply_into(&u, &mut recovered).unwrap(); // op 2: clean
        assert_eq!(reference.as_slice(), recovered.as_slice());
    }

    #[test]
    fn death_surfaces_as_a_typed_error() {
        let (faulty, mesh) = wrapped(FaultPlan::new(vec![ScheduledFault {
            at_op: 0,
            kind: FaultKind::Death,
        }]));
        let u = mesh.evaluate(|x, y, z| x * y * z);
        let mut w = ElementField::zeros(3, 8);
        assert_eq!(
            faulty.try_apply_into(&u, &mut w),
            Err(DeviceError::Dead { at_op: 0 })
        );
        assert!(faulty.state().is_dead());
    }

    #[test]
    fn slowdown_scales_the_modelled_seconds() {
        let mesh = BoxMesh::unit_cube(4, 2);
        let device = fpga_sim::FpgaDevice::stratix10_gx2800();
        let inner = Box::new(crate::exec::FpgaSimBackend::new(&mesh, device));
        let clean_seconds = inner.simulated_seconds_per_application().unwrap();
        let faulty = FaultyBackend::new(
            inner,
            Arc::new(FaultState::new(FaultPlan::new(vec![ScheduledFault {
                at_op: 0,
                kind: FaultKind::Slowdown { factor: 3.0 },
            }]))),
        );
        assert_eq!(
            faulty.simulated_seconds_per_application().unwrap(),
            clean_seconds
        );
        let u = mesh.evaluate(|x, y, z| x - y + z);
        let mut w = ElementField::zeros(4, 8);
        faulty.try_apply_into(&u, &mut w).unwrap();
        assert_eq!(
            faulty.simulated_seconds_per_application().unwrap(),
            3.0 * clean_seconds
        );
    }
}
