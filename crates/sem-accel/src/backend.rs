//! Backend *configuration*: a serde-friendly description of where the `Ax`
//! kernel runs and which preconditioner the solve uses, plus the registry of
//! backend names.
//!
//! [`Backend`] is plain data — it can be stored in a config file, sent over
//! the wire, or written as a registry name like `"cpu:parallel"`,
//! `"fpga:stratix10-gx2800+fdm"` or `"multi:4x520n"`.  The part before the
//! optional `+suffix` selects the execution engine ([`ExecSpec`]); the
//! suffix selects the preconditioner ([`PrecondSpec`]; no suffix means the
//! default, Jacobi).  Execution happens through the open
//! [`crate::exec::AxBackend`] trait: [`Backend::instantiate`] resolves the
//! configuration against a mesh into a live `Box<dyn AxBackend>`.  FPGA
//! device slugs resolve through the `arch-db` catalogue
//! ([`arch_db::fpga_device`]), so new catalogue devices plug in by name
//! without touching this crate.
//!
//! Round-trip contract: for every configuration with a name,
//! `Backend::from_name(&backend.name().unwrap()) == Some(backend)` —
//! including the preconditioner suffix.  (Before preconditioning became
//! configuration this was silently asymmetric-by-construction: a parsed
//! name could not carry what the solve later decided per call.)

use crate::exec::{AxBackend, CpuBackend, FpgaSimBackend, MultiFpgaBackend};
use fpga_sim::FpgaDevice;
use sem_kernel::AxImplementation;
use sem_mesh::BoxMesh;
use sem_solver::PrecondSpec;
use serde::{Deserialize, Serialize};
use std::borrow::Cow;
use std::fmt;

/// Host-interconnect bandwidth (GB/s) assumed for multi-board interface
/// exchanges when a configuration does not specify one (PCIe 3.0 x16-class).
pub const DEFAULT_INTERCONNECT_GBS: f64 = 12.0;

/// Where the `Ax` kernel runs (the execution half of a [`Backend`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ExecSpec {
    /// Native CPU execution with the selected kernel implementation.
    Cpu(AxImplementation),
    /// The simulated FPGA accelerator on the given device.
    FpgaSimulated(FpgaDevice),
    /// The element set block-partitioned over several simulated boards.
    MultiFpga {
        /// The device every board carries.
        device: FpgaDevice,
        /// Number of boards.
        boards: usize,
        /// Host-interconnect bandwidth for the interface exchange (GB/s).
        interconnect_gbs: f64,
    },
}

/// Where the `Ax` kernel runs and which preconditioner the solve uses.
///
/// This is configuration, not execution: it is cheap to clone, serializes
/// through serde, round-trips through [`Backend::name`] /
/// [`Backend::from_name`] (preconditioner suffix included), and becomes a
/// live engine via [`Backend::instantiate`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Backend {
    /// The execution engine.
    pub exec: ExecSpec,
    /// The preconditioner solves on this backend use.
    pub precond: PrecondSpec,
}

impl Default for Backend {
    fn default() -> Self {
        Self::cpu_parallel()
    }
}

impl Backend {
    /// A backend over `exec` with the default (Jacobi) preconditioner.
    #[must_use]
    pub fn new(exec: ExecSpec) -> Self {
        Self {
            exec,
            precond: PrecondSpec::default(),
        }
    }

    /// The same backend with a different preconditioner.
    #[must_use]
    pub fn with_precond(mut self, precond: PrecondSpec) -> Self {
        self.precond = precond;
        self
    }

    /// Native CPU, reference (Listing 1) kernel.
    #[must_use]
    pub fn cpu_reference() -> Self {
        Self::new(ExecSpec::Cpu(AxImplementation::Reference))
    }

    /// Native CPU, optimised sequential kernel.
    #[must_use]
    pub fn cpu_optimized() -> Self {
        Self::new(ExecSpec::Cpu(AxImplementation::Optimized))
    }

    /// Native CPU, Rayon-parallel kernel.
    #[must_use]
    pub fn cpu_parallel() -> Self {
        Self::new(ExecSpec::Cpu(AxImplementation::Parallel))
    }

    /// Native CPU, degree-specialized const-generic kernel (falls back to
    /// the generic optimised kernel outside degrees 3..=15).
    #[must_use]
    pub fn cpu_specialized() -> Self {
        Self::new(ExecSpec::Cpu(AxImplementation::Specialized))
    }

    /// Simulated FPGA on the evaluated Stratix 10 GX2800 board.
    #[must_use]
    pub fn fpga_simulated() -> Self {
        Self::new(ExecSpec::FpgaSimulated(FpgaDevice::stratix10_gx2800()))
    }

    /// Simulated FPGA on an arbitrary device from the catalogue.
    #[must_use]
    pub fn fpga_on(device: FpgaDevice) -> Self {
        Self::new(ExecSpec::FpgaSimulated(device))
    }

    /// `boards` simulated 520N boards over the default interconnect.
    #[must_use]
    pub fn multi_fpga(boards: usize) -> Self {
        Self::new(ExecSpec::MultiFpga {
            device: FpgaDevice::stratix10_gx2800(),
            boards,
            interconnect_gbs: DEFAULT_INTERCONNECT_GBS,
        })
    }

    /// `boards` simulated boards of `device` over `interconnect_gbs` GB/s.
    #[must_use]
    pub fn multi_fpga_on(device: FpgaDevice, boards: usize, interconnect_gbs: f64) -> Self {
        Self::new(ExecSpec::MultiFpga {
            device,
            boards,
            interconnect_gbs,
        })
    }

    /// Short human-readable label of the execution engine (used in reports
    /// and benches; the preconditioner is reported separately).  Borrowed
    /// for CPU backends; allocating only when a device name is embedded.
    #[must_use]
    pub fn label(&self) -> Cow<'static, str> {
        // Shared with the engines in `exec`, so a configuration's label
        // always matches the label of the engine it instantiates.
        match &self.exec {
            ExecSpec::Cpu(implementation) => Cow::Borrowed(CpuBackend::label_of(*implementation)),
            ExecSpec::FpgaSimulated(device) => Cow::Owned(crate::exec::fpga_sim_label(device)),
            ExecSpec::MultiFpga { device, boards, .. } => {
                Cow::Owned(crate::exec::multi_fpga_label(*boards, device))
            }
        }
    }

    /// Whether timing figures from this backend are wall-clock measurements
    /// (CPU) or simulator estimates (FPGA).
    #[must_use]
    pub fn is_simulated(&self) -> bool {
        matches!(
            self.exec,
            ExecSpec::FpgaSimulated(_) | ExecSpec::MultiFpga { .. }
        )
    }

    /// The canonical registry name of this configuration, when it has one
    /// (`cpu:parallel`, `fpga:agilex-027+fdm`, `multi:4x520n`, ...).
    ///
    /// A name exists only when `Backend::from_name(name)` reconstructs this
    /// exact configuration — the preconditioner suffix included: custom
    /// devices outside the `arch-db` catalogue have no name, and neither do
    /// multi-board configurations with a non-default interconnect (the name
    /// syntax cannot carry it — use serde for those).
    #[must_use]
    pub fn name(&self) -> Option<String> {
        let base = self.exec_name()?;
        Some(match self.precond.name_suffix() {
            Some(suffix) => format!("{base}+{suffix}"),
            None => base,
        })
    }

    /// The registry name of the execution half alone.
    fn exec_name(&self) -> Option<String> {
        match &self.exec {
            ExecSpec::Cpu(AxImplementation::Reference) => Some("cpu:reference".to_string()),
            ExecSpec::Cpu(AxImplementation::Optimized) => Some("cpu:optimized".to_string()),
            ExecSpec::Cpu(AxImplementation::Parallel) => Some("cpu:parallel".to_string()),
            ExecSpec::Cpu(AxImplementation::Specialized) => Some("cpu:specialized".to_string()),
            ExecSpec::FpgaSimulated(device) => {
                device_slug(device).map(|slug| format!("fpga:{slug}"))
            }
            ExecSpec::MultiFpga {
                device,
                boards,
                interconnect_gbs,
            } => {
                if *interconnect_gbs != DEFAULT_INTERCONNECT_GBS {
                    return None;
                }
                let slug = device_slug(device)?;
                // The evaluated board keeps its short name in multi specs.
                let slug = if slug == "stratix10-gx2800" {
                    "520n"
                } else {
                    slug
                };
                Some(format!("multi:{boards}x{slug}"))
            }
        }
    }

    /// Resolve a registry name (`cpu:<impl>`, `fpga:<device>`,
    /// `multi:<n>x<device>`, each optionally followed by a `+<precond>`
    /// suffix) to a configuration.  Device slugs come from the `arch-db`
    /// catalogue ([`arch_db::fpga_device_slugs`]).
    #[must_use]
    pub fn from_name(name: &str) -> Option<Self> {
        let (base, precond) = match name.rsplit_once('+') {
            Some((base, suffix)) => (base, PrecondSpec::from_name_suffix(suffix)?),
            None => (name, PrecondSpec::default()),
        };
        let (kind, spec) = base.split_once(':')?;
        let exec = match kind {
            "cpu" => match spec {
                "reference" => ExecSpec::Cpu(AxImplementation::Reference),
                "optimized" => ExecSpec::Cpu(AxImplementation::Optimized),
                "parallel" => ExecSpec::Cpu(AxImplementation::Parallel),
                "specialized" => ExecSpec::Cpu(AxImplementation::Specialized),
                _ => return None,
            },
            "fpga" => ExecSpec::FpgaSimulated(arch_db::fpga_device(spec)?),
            "multi" => {
                let (boards, slug) = spec.split_once('x')?;
                let boards: usize = boards.parse().ok()?;
                if boards == 0 {
                    return None;
                }
                let device = arch_db::fpga_device(slug)?;
                ExecSpec::MultiFpga {
                    device,
                    boards,
                    interconnect_gbs: DEFAULT_INTERCONNECT_GBS,
                }
            }
            _ => return None,
        };
        Some(Self { exec, precond })
    }

    /// Every registered backend name with the default preconditioner: the
    /// three CPU kernels, one `fpga:` entry per catalogue device, one
    /// `fpga:projected:<slug>` entry per Section V-D model-designed device,
    /// and the canonical multi-board configurations.
    #[must_use]
    pub fn registry_names() -> Vec<String> {
        let mut names = vec![
            "cpu:reference".to_string(),
            "cpu:optimized".to_string(),
            "cpu:parallel".to_string(),
            "cpu:specialized".to_string(),
        ];
        names.extend(
            arch_db::fpga_device_slugs()
                .into_iter()
                .map(|slug| format!("fpga:{slug}")),
        );
        names.extend(
            arch_db::projected_fpga_slugs()
                .into_iter()
                .map(|slug| format!("fpga:{slug}")),
        );
        names.extend([
            "multi:2x520n".to_string(),
            "multi:4x520n".to_string(),
            "multi:8x520n".to_string(),
        ]);
        names
    }

    /// The full extended registry: every base name crossed with every
    /// preconditioner suffix (the default spelled without a suffix).  This
    /// is what the round-trip and registry-wide parity tests sweep; the
    /// plain [`Backend::registry_names`] stays the default-precond set so
    /// existing sweeps keep their size.
    #[must_use]
    pub fn extended_registry_names() -> Vec<String> {
        let mut names = Vec::new();
        for base in Self::registry_names() {
            for precond in PrecondSpec::all() {
                names.push(match precond.name_suffix() {
                    Some(suffix) => format!("{base}+{suffix}"),
                    None => base.clone(),
                });
            }
        }
        names
    }

    /// The registry names that describe hardware one could actually deploy
    /// on: everything in [`Backend::registry_names`] except the
    /// `fpga:projected:*` model-designed devices.  Autotuning ranks only
    /// these — a hypothetical board that beats every real one by
    /// construction must not be crowned "the fastest backend".
    #[must_use]
    pub fn deployable_registry_names() -> Vec<String> {
        Self::registry_names()
            .into_iter()
            .filter(|name| !name.starts_with("fpga:projected:"))
            .collect()
    }

    /// Build the live execution engine for this configuration on `mesh`.
    ///
    /// # Panics
    /// Panics if an FPGA design does not fit on the configured device, or if
    /// a multi-board configuration has zero boards.
    #[must_use]
    pub fn instantiate(&self, mesh: &BoxMesh) -> Box<dyn AxBackend> {
        match &self.exec {
            ExecSpec::Cpu(implementation) => Box::new(CpuBackend::new(mesh, *implementation)),
            ExecSpec::FpgaSimulated(device) => Box::new(FpgaSimBackend::new(mesh, device.clone())),
            ExecSpec::MultiFpga {
                device,
                boards,
                interconnect_gbs,
            } => Box::new(MultiFpgaBackend::new(
                mesh,
                device.clone(),
                *boards,
                *interconnect_gbs,
            )),
        }
    }
}

impl fmt::Display for Backend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label())
    }
}

/// Reverse lookup: the catalogue (or projected) slug of a device, by exact
/// name match.
fn device_slug(device: &FpgaDevice) -> Option<&'static str> {
    arch_db::fpga_device_slugs()
        .into_iter()
        .chain(arch_db::projected_fpga_slugs())
        .find(|slug| arch_db::fpga_device(slug).is_some_and(|d| d.name == device.name))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_and_flags() {
        assert_eq!(Backend::cpu_reference().label(), "cpu-reference");
        assert!(!Backend::cpu_parallel().is_simulated());
        let fpga = Backend::fpga_simulated();
        assert!(fpga.is_simulated());
        assert!(fpga.label().contains("GX2800"));
        assert_eq!(Backend::default(), Backend::cpu_parallel());
        assert_eq!(Backend::default().precond, PrecondSpec::Jacobi);
        let multi = Backend::multi_fpga(4);
        assert!(multi.is_simulated());
        assert!(multi.label().contains("4 x"));
        // Display mirrors the label.
        assert_eq!(format!("{}", Backend::cpu_optimized()), "cpu-optimized");
    }

    #[test]
    fn cpu_labels_do_not_allocate() {
        for backend in [
            Backend::cpu_reference(),
            Backend::cpu_optimized(),
            Backend::cpu_parallel(),
        ] {
            assert!(matches!(backend.label(), Cow::Borrowed(_)));
        }
    }

    #[test]
    fn every_registry_name_resolves_and_round_trips() {
        for name in Backend::registry_names() {
            let backend = Backend::from_name(&name)
                .unwrap_or_else(|| panic!("registry name `{name}` must resolve"));
            assert_eq!(backend.precond, PrecondSpec::Jacobi, "{name}");
            let canonical = backend
                .name()
                .unwrap_or_else(|| panic!("resolved backend for `{name}` must have a name"));
            assert_eq!(canonical, name, "canonical name must round-trip");
            assert_eq!(
                Backend::from_name(&canonical),
                Some(backend),
                "name `{name}` must round-trip to the same configuration"
            );
        }
    }

    #[test]
    fn the_extended_registry_round_trips_through_parse_and_name() {
        // The satellite fix: config strings must survive
        // parse → instantiate-config → name *including* the preconditioner
        // suffix, for every (backend, precond) pair.
        let names = Backend::extended_registry_names();
        assert_eq!(names.len(), 3 * Backend::registry_names().len());
        for name in names {
            let backend = Backend::from_name(&name)
                .unwrap_or_else(|| panic!("extended name `{name}` must resolve"));
            let canonical = backend
                .name()
                .unwrap_or_else(|| panic!("`{name}` must have a canonical name"));
            assert_eq!(
                canonical, name,
                "precond suffix must survive the round trip"
            );
            assert_eq!(Backend::from_name(&canonical), Some(backend));
        }
    }

    #[test]
    fn precond_suffixes_parse_and_print() {
        let fdm = Backend::from_name("cpu:optimized+fdm").unwrap();
        assert_eq!(fdm.precond, PrecondSpec::Fdm);
        assert_eq!(fdm.exec, Backend::cpu_optimized().exec);
        assert_eq!(fdm.name().as_deref(), Some("cpu:optimized+fdm"));

        let none = Backend::from_name("fpga:stratix10-gx2800+none").unwrap();
        assert_eq!(none.precond, PrecondSpec::Identity);
        assert_eq!(none.name().as_deref(), Some("fpga:stratix10-gx2800+none"));

        // An explicit +jacobi parses but canonicalises to the bare name.
        let jacobi = Backend::from_name("multi:4x520n+jacobi").unwrap();
        assert_eq!(jacobi.precond, PrecondSpec::Jacobi);
        assert_eq!(jacobi.name().as_deref(), Some("multi:4x520n"));
    }

    #[test]
    fn unnameable_configurations_return_none_instead_of_a_lossy_name() {
        // A custom interconnect cannot be carried by the name syntax; a lossy
        // name would silently reconstruct a different configuration.
        let custom = Backend::multi_fpga_on(FpgaDevice::stratix10_gx2800(), 4, 25.0);
        assert_eq!(custom.name(), None);
        // ...even with a non-default preconditioner attached.
        assert_eq!(custom.with_precond(PrecondSpec::Fdm).name(), None);
        // The default interconnect round-trips.
        let named = Backend::multi_fpga(4);
        assert_eq!(
            Backend::from_name(&named.name().unwrap()),
            Some(named),
            "default-interconnect multi config must survive name round-trip"
        );
        // Off-catalogue devices have no name either.
        let mut bespoke = FpgaDevice::stratix10_gx2800();
        bespoke.name = "bespoke prototype".to_string();
        assert_eq!(Backend::fpga_on(bespoke).name(), None);
    }

    #[test]
    fn projected_devices_are_one_registry_name_away() {
        // The ROADMAP's "what would an A100-class FPGA do to this solve":
        // resolve, instantiate, and beat the real board, all by name.
        let mesh = BoxMesh::unit_cube(7, 2);
        let backend = Backend::from_name("fpga:projected:a100-class").unwrap();
        assert!(backend.is_simulated());
        assert_eq!(
            backend.name().as_deref(),
            Some("fpga:projected:a100-class"),
            "projected entries round-trip through the reverse lookup"
        );
        let engine = backend.instantiate(&mesh);
        assert!(engine.label().contains("A100-class"), "{}", engine.label());
        let projected = engine.simulated_seconds_per_application().unwrap();
        let real = Backend::from_name("fpga:stratix10-gx2800")
            .unwrap()
            .instantiate(&mesh)
            .simulated_seconds_per_application()
            .unwrap();
        assert!(
            projected < real,
            "model-designed A100-class device must outrun the 520N: {projected} vs {real}"
        );
        // Both projected entries are registered...
        let names = Backend::registry_names();
        let deployable = Backend::deployable_registry_names();
        for slug in arch_db::projected_fpga_slugs() {
            let name = format!("fpga:{slug}");
            assert!(names.contains(&name), "{slug}");
            // ...but stay out of the deployable set autotune ranks.
            assert!(!deployable.contains(&name), "{slug}");
        }
        assert_eq!(
            names.len(),
            deployable.len() + arch_db::projected_fpga_slugs().len()
        );
    }

    #[test]
    fn config_labels_match_instantiated_engine_labels() {
        let mesh = BoxMesh::unit_cube(3, 2);
        for config in [
            Backend::cpu_parallel(),
            Backend::fpga_simulated(),
            Backend::multi_fpga(2),
        ] {
            assert_eq!(config.label(), config.instantiate(&mesh).label());
        }
    }

    #[test]
    fn malformed_names_are_rejected() {
        for name in [
            "cpu",
            "cpu:avx512",
            "fpga:unknown-device",
            "multi:4",
            "multi:0x520n",
            "multi:twox520n",
            "gpu:a100",
            "",
            "cpu:optimized+ilu",
            "cpu:optimized+",
            "+fdm",
            "cpu:optimized+fdm+fdm",
        ] {
            assert!(
                Backend::from_name(name).is_none(),
                "`{name}` must not resolve"
            );
        }
    }

    #[test]
    fn serde_round_trip_preserves_every_variant() {
        let backends = [
            Backend::cpu_reference(),
            Backend::cpu_parallel().with_precond(PrecondSpec::Fdm),
            Backend::fpga_simulated(),
            Backend::fpga_on(FpgaDevice::agilex_027()).with_precond(PrecondSpec::Identity),
            Backend::multi_fpga(4).with_precond(PrecondSpec::Fdm),
            Backend::multi_fpga_on(FpgaDevice::stratix10m(), 8, 25.0),
        ];
        for backend in backends {
            let json = serde::json::to_string(&backend);
            let back: Backend =
                serde::json::from_str(&json).unwrap_or_else(|e| panic!("{json} must parse: {e}"));
            assert_eq!(back, backend, "serde round trip must be lossless");
        }
    }

    #[test]
    fn serde_round_trips_the_whole_extended_registry() {
        for name in Backend::extended_registry_names() {
            let backend = Backend::from_name(&name).unwrap();
            let json = serde::json::to_string(&backend);
            let back: Backend =
                serde::json::from_str(&json).unwrap_or_else(|e| panic!("{json} must parse: {e}"));
            assert_eq!(back, backend, "{name}");
            assert_eq!(back.name().as_deref(), Some(name.as_str()), "{name}");
        }
    }

    #[test]
    fn json_config_text_resolves_to_the_same_backend() {
        // JSON in → same backend out, including through instantiate().
        let json = serde::json::to_string(&Backend::multi_fpga(2));
        let config: Backend = serde::json::from_str(&json).unwrap();
        let mesh = BoxMesh::unit_cube(3, 2);
        let engine = config.instantiate(&mesh);
        assert_eq!(engine.num_elements(), 8);
        assert!(engine.label().contains("2 x"));
    }
}
