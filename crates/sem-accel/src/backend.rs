//! Execution backends.

use fpga_sim::FpgaDevice;
use sem_kernel::AxImplementation;
use serde::{Deserialize, Serialize};

/// Where the `Ax` kernel runs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Backend {
    /// Native CPU execution with the selected kernel implementation.
    Cpu(AxImplementation),
    /// The simulated FPGA accelerator on the given device.
    FpgaSimulated(FpgaDevice),
}

impl Default for Backend {
    fn default() -> Self {
        Self::Cpu(AxImplementation::Parallel)
    }
}

impl Backend {
    /// Native CPU, reference (Listing 1) kernel.
    #[must_use]
    pub fn cpu_reference() -> Self {
        Self::Cpu(AxImplementation::Reference)
    }

    /// Native CPU, optimised sequential kernel.
    #[must_use]
    pub fn cpu_optimized() -> Self {
        Self::Cpu(AxImplementation::Optimized)
    }

    /// Native CPU, Rayon-parallel kernel.
    #[must_use]
    pub fn cpu_parallel() -> Self {
        Self::Cpu(AxImplementation::Parallel)
    }

    /// Simulated FPGA on the evaluated Stratix 10 GX2800 board.
    #[must_use]
    pub fn fpga_simulated() -> Self {
        Self::FpgaSimulated(FpgaDevice::stratix10_gx2800())
    }

    /// Simulated FPGA on an arbitrary device from the catalogue.
    #[must_use]
    pub fn fpga_on(device: FpgaDevice) -> Self {
        Self::FpgaSimulated(device)
    }

    /// Short human-readable label (used in reports and benches).
    #[must_use]
    pub fn label(&self) -> String {
        match self {
            Self::Cpu(AxImplementation::Reference) => "cpu-reference".to_string(),
            Self::Cpu(AxImplementation::Optimized) => "cpu-optimized".to_string(),
            Self::Cpu(AxImplementation::Parallel) => "cpu-parallel".to_string(),
            Self::FpgaSimulated(device) => format!("fpga-sim ({})", device.name),
        }
    }

    /// Whether timing figures from this backend are wall-clock measurements
    /// (CPU) or simulator estimates (FPGA).
    #[must_use]
    pub fn is_simulated(&self) -> bool {
        matches!(self, Self::FpgaSimulated(_))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_and_flags() {
        assert_eq!(Backend::cpu_reference().label(), "cpu-reference");
        assert!(!Backend::cpu_parallel().is_simulated());
        let fpga = Backend::fpga_simulated();
        assert!(fpga.is_simulated());
        assert!(fpga.label().contains("GX2800"));
        assert_eq!(Backend::default(), Backend::cpu_parallel());
    }
}
