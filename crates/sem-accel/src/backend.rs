//! Backend *configuration*: a serde-friendly description of where the `Ax`
//! kernel should run, and the registry of backend names.
//!
//! [`Backend`] is plain data — it can be stored in a config file, sent over
//! the wire, or written as a registry name like `"cpu:parallel"`,
//! `"fpga:stratix10-gx2800"` or `"multi:4x520n"`.  Execution happens through
//! the open [`crate::exec::AxBackend`] trait: [`Backend::instantiate`]
//! resolves the configuration against a mesh into a live
//! `Box<dyn AxBackend>`.  FPGA device slugs resolve through the `arch-db`
//! catalogue ([`arch_db::fpga_device`]), so new catalogue devices plug in by
//! name without touching this crate.

use crate::exec::{AxBackend, CpuBackend, FpgaSimBackend, MultiFpgaBackend};
use fpga_sim::FpgaDevice;
use sem_kernel::AxImplementation;
use sem_mesh::BoxMesh;
use serde::{Deserialize, Serialize};
use std::borrow::Cow;
use std::fmt;

/// Host-interconnect bandwidth (GB/s) assumed for multi-board interface
/// exchanges when a configuration does not specify one (PCIe 3.0 x16-class).
pub const DEFAULT_INTERCONNECT_GBS: f64 = 12.0;

/// Where the `Ax` kernel runs.
///
/// This is configuration, not execution: it is cheap to clone, serializes
/// through serde, round-trips through [`Backend::name`] /
/// [`Backend::from_name`], and becomes a live engine via
/// [`Backend::instantiate`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Backend {
    /// Native CPU execution with the selected kernel implementation.
    Cpu(AxImplementation),
    /// The simulated FPGA accelerator on the given device.
    FpgaSimulated(FpgaDevice),
    /// The element set block-partitioned over several simulated boards.
    MultiFpga {
        /// The device every board carries.
        device: FpgaDevice,
        /// Number of boards.
        boards: usize,
        /// Host-interconnect bandwidth for the interface exchange (GB/s).
        interconnect_gbs: f64,
    },
}

impl Default for Backend {
    fn default() -> Self {
        Self::Cpu(AxImplementation::Parallel)
    }
}

impl Backend {
    /// Native CPU, reference (Listing 1) kernel.
    #[must_use]
    pub fn cpu_reference() -> Self {
        Self::Cpu(AxImplementation::Reference)
    }

    /// Native CPU, optimised sequential kernel.
    #[must_use]
    pub fn cpu_optimized() -> Self {
        Self::Cpu(AxImplementation::Optimized)
    }

    /// Native CPU, Rayon-parallel kernel.
    #[must_use]
    pub fn cpu_parallel() -> Self {
        Self::Cpu(AxImplementation::Parallel)
    }

    /// Simulated FPGA on the evaluated Stratix 10 GX2800 board.
    #[must_use]
    pub fn fpga_simulated() -> Self {
        Self::FpgaSimulated(FpgaDevice::stratix10_gx2800())
    }

    /// Simulated FPGA on an arbitrary device from the catalogue.
    #[must_use]
    pub fn fpga_on(device: FpgaDevice) -> Self {
        Self::FpgaSimulated(device)
    }

    /// `boards` simulated 520N boards over the default interconnect.
    #[must_use]
    pub fn multi_fpga(boards: usize) -> Self {
        Self::MultiFpga {
            device: FpgaDevice::stratix10_gx2800(),
            boards,
            interconnect_gbs: DEFAULT_INTERCONNECT_GBS,
        }
    }

    /// `boards` simulated boards of `device` over `interconnect_gbs` GB/s.
    #[must_use]
    pub fn multi_fpga_on(device: FpgaDevice, boards: usize, interconnect_gbs: f64) -> Self {
        Self::MultiFpga {
            device,
            boards,
            interconnect_gbs,
        }
    }

    /// Short human-readable label (used in reports and benches).  Borrowed
    /// for CPU backends; allocating only when a device name is embedded.
    #[must_use]
    pub fn label(&self) -> Cow<'static, str> {
        // Shared with the engines in `exec`, so a configuration's label
        // always matches the label of the engine it instantiates.
        match self {
            Self::Cpu(implementation) => Cow::Borrowed(CpuBackend::label_of(*implementation)),
            Self::FpgaSimulated(device) => Cow::Owned(crate::exec::fpga_sim_label(device)),
            Self::MultiFpga { device, boards, .. } => {
                Cow::Owned(crate::exec::multi_fpga_label(*boards, device))
            }
        }
    }

    /// Whether timing figures from this backend are wall-clock measurements
    /// (CPU) or simulator estimates (FPGA).
    #[must_use]
    pub fn is_simulated(&self) -> bool {
        matches!(self, Self::FpgaSimulated(_) | Self::MultiFpga { .. })
    }

    /// The canonical registry name of this configuration, when it has one
    /// (`cpu:parallel`, `fpga:agilex-027`, `multi:4x520n`, ...).
    ///
    /// A name exists only when `Backend::from_name(name)` reconstructs this
    /// exact configuration: custom devices outside the `arch-db` catalogue
    /// have no name, and neither do multi-board configurations with a
    /// non-default interconnect (the name syntax cannot carry it — use
    /// serde for those).
    #[must_use]
    pub fn name(&self) -> Option<String> {
        match self {
            Self::Cpu(AxImplementation::Reference) => Some("cpu:reference".to_string()),
            Self::Cpu(AxImplementation::Optimized) => Some("cpu:optimized".to_string()),
            Self::Cpu(AxImplementation::Parallel) => Some("cpu:parallel".to_string()),
            Self::FpgaSimulated(device) => device_slug(device).map(|slug| format!("fpga:{slug}")),
            Self::MultiFpga {
                device,
                boards,
                interconnect_gbs,
            } => {
                if *interconnect_gbs != DEFAULT_INTERCONNECT_GBS {
                    return None;
                }
                let slug = device_slug(device)?;
                // The evaluated board keeps its short name in multi specs.
                let slug = if slug == "stratix10-gx2800" {
                    "520n"
                } else {
                    slug
                };
                Some(format!("multi:{boards}x{slug}"))
            }
        }
    }

    /// Resolve a registry name (`cpu:<impl>`, `fpga:<device>`,
    /// `multi:<n>x<device>`) to a configuration.  Device slugs come from the
    /// `arch-db` catalogue ([`arch_db::fpga_device_slugs`]).
    #[must_use]
    pub fn from_name(name: &str) -> Option<Self> {
        let (kind, spec) = name.split_once(':')?;
        match kind {
            "cpu" => match spec {
                "reference" => Some(Self::cpu_reference()),
                "optimized" => Some(Self::cpu_optimized()),
                "parallel" => Some(Self::cpu_parallel()),
                _ => None,
            },
            "fpga" => arch_db::fpga_device(spec).map(Self::FpgaSimulated),
            "multi" => {
                let (boards, slug) = spec.split_once('x')?;
                let boards: usize = boards.parse().ok()?;
                if boards == 0 {
                    return None;
                }
                let device = arch_db::fpga_device(slug)?;
                Some(Self::MultiFpga {
                    device,
                    boards,
                    interconnect_gbs: DEFAULT_INTERCONNECT_GBS,
                })
            }
            _ => None,
        }
    }

    /// Every registered backend name: the three CPU kernels, one `fpga:` entry
    /// per catalogue device, one `fpga:projected:<slug>` entry per Section
    /// V-D model-designed device, and the canonical multi-board
    /// configurations.
    #[must_use]
    pub fn registry_names() -> Vec<String> {
        let mut names = vec![
            "cpu:reference".to_string(),
            "cpu:optimized".to_string(),
            "cpu:parallel".to_string(),
        ];
        names.extend(
            arch_db::fpga_device_slugs()
                .into_iter()
                .map(|slug| format!("fpga:{slug}")),
        );
        names.extend(
            arch_db::projected_fpga_slugs()
                .into_iter()
                .map(|slug| format!("fpga:{slug}")),
        );
        names.extend([
            "multi:2x520n".to_string(),
            "multi:4x520n".to_string(),
            "multi:8x520n".to_string(),
        ]);
        names
    }

    /// The registry names that describe hardware one could actually deploy
    /// on: everything in [`Backend::registry_names`] except the
    /// `fpga:projected:*` model-designed devices.  Autotuning ranks only
    /// these — a hypothetical board that beats every real one by
    /// construction must not be crowned "the fastest backend".
    #[must_use]
    pub fn deployable_registry_names() -> Vec<String> {
        Self::registry_names()
            .into_iter()
            .filter(|name| !name.starts_with("fpga:projected:"))
            .collect()
    }

    /// Build the live execution engine for this configuration on `mesh`.
    ///
    /// # Panics
    /// Panics if an FPGA design does not fit on the configured device, or if
    /// a multi-board configuration has zero boards.
    #[must_use]
    pub fn instantiate(&self, mesh: &BoxMesh) -> Box<dyn AxBackend> {
        match self {
            Self::Cpu(implementation) => Box::new(CpuBackend::new(mesh, *implementation)),
            Self::FpgaSimulated(device) => Box::new(FpgaSimBackend::new(mesh, device.clone())),
            Self::MultiFpga {
                device,
                boards,
                interconnect_gbs,
            } => Box::new(MultiFpgaBackend::new(
                mesh,
                device.clone(),
                *boards,
                *interconnect_gbs,
            )),
        }
    }
}

impl fmt::Display for Backend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label())
    }
}

/// Reverse lookup: the catalogue (or projected) slug of a device, by exact
/// name match.
fn device_slug(device: &FpgaDevice) -> Option<&'static str> {
    arch_db::fpga_device_slugs()
        .into_iter()
        .chain(arch_db::projected_fpga_slugs())
        .find(|slug| arch_db::fpga_device(slug).is_some_and(|d| d.name == device.name))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_and_flags() {
        assert_eq!(Backend::cpu_reference().label(), "cpu-reference");
        assert!(!Backend::cpu_parallel().is_simulated());
        let fpga = Backend::fpga_simulated();
        assert!(fpga.is_simulated());
        assert!(fpga.label().contains("GX2800"));
        assert_eq!(Backend::default(), Backend::cpu_parallel());
        let multi = Backend::multi_fpga(4);
        assert!(multi.is_simulated());
        assert!(multi.label().contains("4 x"));
        // Display mirrors the label.
        assert_eq!(format!("{}", Backend::cpu_optimized()), "cpu-optimized");
    }

    #[test]
    fn cpu_labels_do_not_allocate() {
        for backend in [
            Backend::cpu_reference(),
            Backend::cpu_optimized(),
            Backend::cpu_parallel(),
        ] {
            assert!(matches!(backend.label(), Cow::Borrowed(_)));
        }
    }

    #[test]
    fn every_registry_name_resolves_and_round_trips() {
        for name in Backend::registry_names() {
            let backend = Backend::from_name(&name)
                .unwrap_or_else(|| panic!("registry name `{name}` must resolve"));
            let canonical = backend
                .name()
                .unwrap_or_else(|| panic!("resolved backend for `{name}` must have a name"));
            assert_eq!(canonical, name, "canonical name must round-trip");
            assert_eq!(
                Backend::from_name(&canonical),
                Some(backend),
                "name `{name}` must round-trip to the same configuration"
            );
        }
    }

    #[test]
    fn unnameable_configurations_return_none_instead_of_a_lossy_name() {
        // A custom interconnect cannot be carried by the name syntax; a lossy
        // name would silently reconstruct a different configuration.
        let custom = Backend::multi_fpga_on(FpgaDevice::stratix10_gx2800(), 4, 25.0);
        assert_eq!(custom.name(), None);
        // The default interconnect round-trips.
        let named = Backend::multi_fpga(4);
        assert_eq!(
            Backend::from_name(&named.name().unwrap()),
            Some(named),
            "default-interconnect multi config must survive name round-trip"
        );
        // Off-catalogue devices have no name either.
        let mut bespoke = FpgaDevice::stratix10_gx2800();
        bespoke.name = "bespoke prototype".to_string();
        assert_eq!(Backend::fpga_on(bespoke).name(), None);
    }

    #[test]
    fn projected_devices_are_one_registry_name_away() {
        // The ROADMAP's "what would an A100-class FPGA do to this solve":
        // resolve, instantiate, and beat the real board, all by name.
        let mesh = BoxMesh::unit_cube(7, 2);
        let backend = Backend::from_name("fpga:projected:a100-class").unwrap();
        assert!(backend.is_simulated());
        assert_eq!(
            backend.name().as_deref(),
            Some("fpga:projected:a100-class"),
            "projected entries round-trip through the reverse lookup"
        );
        let engine = backend.instantiate(&mesh);
        assert!(engine.label().contains("A100-class"), "{}", engine.label());
        let projected = engine.simulated_seconds_per_application().unwrap();
        let real = Backend::from_name("fpga:stratix10-gx2800")
            .unwrap()
            .instantiate(&mesh)
            .simulated_seconds_per_application()
            .unwrap();
        assert!(
            projected < real,
            "model-designed A100-class device must outrun the 520N: {projected} vs {real}"
        );
        // Both projected entries are registered...
        let names = Backend::registry_names();
        let deployable = Backend::deployable_registry_names();
        for slug in arch_db::projected_fpga_slugs() {
            let name = format!("fpga:{slug}");
            assert!(names.contains(&name), "{slug}");
            // ...but stay out of the deployable set autotune ranks.
            assert!(!deployable.contains(&name), "{slug}");
        }
        assert_eq!(
            names.len(),
            deployable.len() + arch_db::projected_fpga_slugs().len()
        );
    }

    #[test]
    fn config_labels_match_instantiated_engine_labels() {
        let mesh = BoxMesh::unit_cube(3, 2);
        for config in [
            Backend::cpu_parallel(),
            Backend::fpga_simulated(),
            Backend::multi_fpga(2),
        ] {
            assert_eq!(config.label(), config.instantiate(&mesh).label());
        }
    }

    #[test]
    fn malformed_names_are_rejected() {
        for name in [
            "cpu",
            "cpu:avx512",
            "fpga:unknown-device",
            "multi:4",
            "multi:0x520n",
            "multi:twox520n",
            "gpu:a100",
            "",
        ] {
            assert!(
                Backend::from_name(name).is_none(),
                "`{name}` must not resolve"
            );
        }
    }

    #[test]
    fn serde_round_trip_preserves_every_variant() {
        let backends = [
            Backend::cpu_reference(),
            Backend::cpu_parallel(),
            Backend::fpga_simulated(),
            Backend::fpga_on(FpgaDevice::agilex_027()),
            Backend::multi_fpga(4),
            Backend::multi_fpga_on(FpgaDevice::stratix10m(), 8, 25.0),
        ];
        for backend in backends {
            let json = serde::json::to_string(&backend);
            let back: Backend =
                serde::json::from_str(&json).unwrap_or_else(|e| panic!("{json} must parse: {e}"));
            assert_eq!(back, backend, "serde round trip must be lossless");
        }
    }

    #[test]
    fn json_config_text_resolves_to_the_same_backend() {
        // JSON in → same backend out, including through instantiate().
        let json = serde::json::to_string(&Backend::multi_fpga(2));
        let config: Backend = serde::json::from_str(&json).unwrap();
        let mesh = BoxMesh::unit_cube(3, 2);
        let engine = config.instantiate(&mesh);
        assert_eq!(engine.num_elements(), 8);
        assert!(engine.label().contains("2 x"));
    }
}
