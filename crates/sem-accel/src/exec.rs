//! Execution backends: the open, trait-based seam every operator
//! application in the workspace runs through.
//!
//! [`AxBackend`] is the object-safe contract an execution engine has to
//! satisfy: apply the element-local `Ax` kernel into a preallocated output,
//! and account for what one application costs (FLOPs, seconds, watts).
//! Three engines ship with the workspace:
//!
//! * [`CpuBackend`] — the native host kernels (reference / optimised /
//!   Rayon-parallel), timed with wall clocks;
//! * [`FpgaSimBackend`] — one simulated accelerator board
//!   ([`fpga_sim::FpgaAccelerator`]), reporting simulated kernel seconds and
//!   board power;
//! * [`MultiFpgaBackend`] — the element set block-partitioned over several
//!   simulated boards ([`fpga_sim::MultiBoardAccelerator`]), including the
//!   interface-exchange overhead.
//!
//! `dyn AxBackend` also implements [`sem_solver::LocalOperator`], so a
//! [`sem_solver::CgSolver`] iterates through any backend unchanged — that is
//! how [`crate::SemSystem::solve`] runs the full CG solve on the accelerator
//! instead of beside it.  Configuration (which backend to build, from serde
//! data or a registry name) lives in [`crate::backend::Backend`].

use crate::offload::OffloadPlan;
use crate::report::PerfSource;
use fpga_sim::{
    estimate_jacobi_seconds, DeviceError, FdmPrecondModel, FpgaAccelerator, FpgaDevice,
    MultiBoardAccelerator,
};
use sem_kernel::{ops, AxImplementation, PoissonOperator};
use sem_mesh::{BoxMesh, ElementField, GatherScatter, GeometricFactors};
use sem_solver::{coarse_space_dofs, CgApplyResult, LocalOperator, PrecondSpec, SolveFault};
use std::borrow::Cow;

/// Translate a device-level failure into the solver-side fault the CG loop
/// reports (`sem-solver` cannot name accelerator types, so the adapter
/// lives on this side of the seam).
#[must_use]
pub fn solve_fault_of(error: DeviceError) -> SolveFault {
    match error {
        DeviceError::Dead { at_op } => SolveFault::DeviceDead { at_op },
        DeviceError::Hung { at_op } => SolveFault::KernelHung { at_op },
    }
}

/// An execution engine for the matrix-free `Ax` kernel.
///
/// The trait is object-safe and implementations are `Send + Sync`, so a
/// `Box<dyn AxBackend>` can be selected at runtime (see
/// [`crate::backend::Backend::instantiate`]) and shared across threads.
pub trait AxBackend: Send + Sync {
    /// Short human-readable label (used in reports and benches).
    fn label(&self) -> Cow<'static, str>;

    /// Polynomial degree `N` the backend was built for.
    fn degree(&self) -> usize;

    /// Number of elements the backend was built for.
    fn num_elements(&self) -> usize;

    /// Apply the element-local operator: `w = A u` (no direct stiffness
    /// summation, no masking).
    ///
    /// # Panics
    /// Panics if the fields do not match the backend's degree and element
    /// count.
    fn apply_into(&self, u: &ElementField, w: &mut ElementField);

    /// Apply the operator to a whole batch of operands: `ws[i] = A us[i]`.
    ///
    /// The default loops over [`AxBackend::apply_into`]; accelerator
    /// backends keep the batch resident and amortise their per-launch
    /// overhead (see [`AxBackend::simulated_seconds_per_batch`]).
    ///
    /// # Panics
    /// Panics if the slices differ in length or any field does not match the
    /// backend's degree and element count.
    // lint: alloc-free (batched apply reuses the caller's output fields;
    // per-operand allocation would defeat the batch amortisation being priced)
    fn apply_many(&self, us: &[ElementField], ws: &mut [ElementField]) {
        assert_eq!(us.len(), ws.len(), "batch size mismatch");
        for (u, w) in us.iter().zip(ws.iter_mut()) {
            self.apply_into(u, w);
        }
    }

    /// Whether this backend claims the fused `w = QQᵀ(A u)` pass (operator
    /// application plus direct stiffness summation without a separate host
    /// sweep).  Accelerator backends claim it so the field never bounces
    /// back to the host between `Ax` and dssum — the paper's next offload
    /// candidate after the kernel itself.
    fn fuses_dssum(&self) -> bool {
        false
    }

    /// Fused `w = QQᵀ(A u)` (no masking).  The default composes
    /// [`AxBackend::apply_into`] with the gather–scatter's CSR sweep; only
    /// meaningful as a single pass on backends that claim it via
    /// [`AxBackend::fuses_dssum`].
    ///
    /// # Panics
    /// Panics if the fields or gather–scatter do not match the backend's
    /// degree and element count.
    fn apply_dssum_into(
        &self,
        u: &ElementField,
        gather_scatter: &GatherScatter,
        w: &mut ElementField,
    ) {
        self.apply_into(u, w);
        gather_scatter.direct_stiffness_sum(w);
    }

    /// Floating-point operations of one application.
    fn flops_per_application(&self) -> u64;

    /// Degrees of freedom processed by one application.
    fn dofs_per_application(&self) -> u64;

    /// Whether this backend's timings are wall-clock measurements or model
    /// estimates.
    fn perf_source(&self) -> PerfSource;

    /// Seconds one application costs according to the backend's own model
    /// (simulated kernel time plus any exchange overhead).  `None` for
    /// natively-executed backends, whose cost is measured instead.
    fn simulated_seconds_per_application(&self) -> Option<f64>;

    /// Seconds a batch of `batch` back-to-back applications costs according
    /// to the backend's own model.  The default charges `batch` independent
    /// applications; accelerator backends override it to pay their kernel
    /// launch overhead once per batch.  `None` for natively-executed
    /// backends.
    fn simulated_seconds_per_batch(&self, batch: usize) -> Option<f64> {
        self.simulated_seconds_per_application()
            .map(|seconds| seconds * batch as f64)
    }

    /// Estimated power draw while running the kernel, when the backend has a
    /// power model.
    fn power_watts(&self) -> Option<f64> {
        None
    }

    /// The host↔device transfer plan, for backends with external memory.
    /// Preconditioner table traffic is folded in by
    /// [`crate::SemSystem::offload_plan`], which knows the configured
    /// preconditioner; see [`AxBackend::precond_table_bytes`].
    fn offload_plan(&self) -> Option<OffloadPlan> {
        None
    }

    /// Whether this backend claims the preconditioner application on-device
    /// (like [`AxBackend::fuses_dssum`], the numerics still run through the
    /// host stand-in; the claim changes where the pass is *priced* and
    /// keeps the residual from round-tripping over PCIe every iteration).
    fn precond_on_device(&self, precond: PrecondSpec) -> bool {
        let _ = precond;
        false
    }

    /// Seconds one on-device preconditioner application costs according to
    /// the backend's own cycle model.  `None` for natively-executed
    /// backends (whose cost is measured) and for preconditioners the
    /// backend does not claim.
    fn simulated_seconds_per_precond(&self, precond: PrecondSpec) -> Option<f64> {
        let _ = precond;
        None
    }

    /// Bytes of the one-off preconditioner data upload a solve session pays
    /// when the pass runs on-device (FDM eigenvector/eigenvalue tables and
    /// the coarse factor, or the Jacobi inverse diagonal).  Zero for host
    /// backends and unclaimed preconditioners.
    fn precond_table_bytes(&self, precond: PrecondSpec) -> u64 {
        let _ = precond;
        0
    }

    /// The underlying simulated accelerator, for single-board FPGA backends.
    fn fpga_accelerator(&self) -> Option<&FpgaAccelerator> {
        None
    }

    /// Fallible operator application: like [`AxBackend::apply_into`], but a
    /// backend that can fail (a dead board, a hung kernel caught by the
    /// modelled watchdog) reports a typed [`DeviceError`] instead of
    /// succeeding.  The default wraps the infallible path, so every
    /// existing backend is a perfect device without any change; only fault
    /// wrappers (see [`crate::FaultyBackend`]) override it.
    ///
    /// # Errors
    /// Returns the device failure when the application cannot complete.
    ///
    /// # Panics
    /// Panics if the fields do not match the backend's degree and element
    /// count.
    fn try_apply_into(&self, u: &ElementField, w: &mut ElementField) -> Result<(), DeviceError> {
        self.apply_into(u, w);
        Ok(())
    }

    /// Fallible fused `w = QQᵀ(A u)` pass (see
    /// [`AxBackend::apply_dssum_into`]).
    ///
    /// # Errors
    /// Returns the device failure when the application cannot complete.
    ///
    /// # Panics
    /// Panics if the fields or gather–scatter do not match the backend's
    /// degree and element count.
    fn try_apply_dssum_into(
        &self,
        u: &ElementField,
        gather_scatter: &GatherScatter,
        w: &mut ElementField,
    ) -> Result<(), DeviceError> {
        self.apply_dssum_into(u, gather_scatter, w);
        Ok(())
    }
}

/// Every execution backend is a [`LocalOperator`], so the CG solver iterates
/// through `dyn AxBackend` directly.
impl LocalOperator for dyn AxBackend {
    fn degree(&self) -> usize {
        AxBackend::degree(self)
    }

    fn num_elements(&self) -> usize {
        AxBackend::num_elements(self)
    }

    fn apply_local_into(&self, u: &ElementField, w: &mut ElementField) {
        AxBackend::apply_into(self, u, w);
    }

    fn flops_per_application(&self) -> u64 {
        AxBackend::flops_per_application(self)
    }

    fn seconds_per_application(&self) -> Option<f64> {
        AxBackend::simulated_seconds_per_application(self)
    }

    fn fuses_dssum(&self) -> bool {
        AxBackend::fuses_dssum(self)
    }

    fn apply_dssum_into(
        &self,
        u: &ElementField,
        gather_scatter: &GatherScatter,
        w: &mut ElementField,
    ) {
        AxBackend::apply_dssum_into(self, u, gather_scatter, w);
    }

    fn try_apply_local_into(&self, u: &ElementField, w: &mut ElementField) -> CgApplyResult {
        AxBackend::try_apply_into(self, u, w).map_err(solve_fault_of)
    }

    fn try_apply_dssum_into(
        &self,
        u: &ElementField,
        gather_scatter: &GatherScatter,
        w: &mut ElementField,
    ) -> CgApplyResult {
        AxBackend::try_apply_dssum_into(self, u, gather_scatter, w).map_err(solve_fault_of)
    }
}

/// Native CPU execution with one of the host kernels.
pub struct CpuBackend {
    operator: PoissonOperator,
}

impl CpuBackend {
    /// Build the backend for `mesh` with the selected kernel implementation.
    #[must_use]
    pub fn new(mesh: &BoxMesh, implementation: AxImplementation) -> Self {
        Self {
            operator: PoissonOperator::new(mesh, implementation),
        }
    }

    /// The host operator the backend dispatches to.
    #[must_use]
    pub fn operator(&self) -> &PoissonOperator {
        &self.operator
    }

    /// The static label of a CPU implementation.
    #[must_use]
    pub fn label_of(implementation: AxImplementation) -> &'static str {
        match implementation {
            AxImplementation::Reference => "cpu-reference",
            AxImplementation::Optimized => "cpu-optimized",
            AxImplementation::Parallel => "cpu-parallel",
            AxImplementation::Specialized => "cpu-specialized",
        }
    }
}

impl AxBackend for CpuBackend {
    fn label(&self) -> Cow<'static, str> {
        Cow::Borrowed(Self::label_of(self.operator.implementation()))
    }

    fn degree(&self) -> usize {
        self.operator.degree()
    }

    fn num_elements(&self) -> usize {
        self.operator.num_elements()
    }

    fn apply_into(&self, u: &ElementField, w: &mut ElementField) {
        self.operator.apply_into(u, w);
    }

    fn flops_per_application(&self) -> u64 {
        self.operator.flops_per_application()
    }

    fn dofs_per_application(&self) -> u64 {
        self.operator.dofs_per_application()
    }

    fn perf_source(&self) -> PerfSource {
        PerfSource::Measured
    }

    fn simulated_seconds_per_application(&self) -> Option<f64> {
        None
    }
}

/// The display label of a single-board simulated-FPGA backend on `device`
/// (shared by [`FpgaSimBackend`] and `Backend::label`).
#[must_use]
pub fn fpga_sim_label(device: &FpgaDevice) -> String {
    format!("fpga-sim ({})", device.name)
}

/// The display label of a `boards`-board simulated-FPGA backend on `device`
/// (shared by [`MultiFpgaBackend`] and `Backend::label`).
#[must_use]
pub fn multi_fpga_label(boards: usize, device: &FpgaDevice) -> String {
    format!("multi-fpga ({boards} x {})", device.name)
}

/// One simulated FPGA accelerator board.
pub struct FpgaSimBackend {
    accelerator: FpgaAccelerator,
    /// Geometric factors pre-split into the accelerator's plane layout, so
    /// repeated applications (every CG iteration) do not re-split them.
    planes: [Vec<f64>; 6],
    num_elements: usize,
    seconds_per_application: f64,
    /// The on-device FDM preconditioner model (pass timing, BRAM fit,
    /// table bytes) for this problem shape.
    fdm_model: FdmPrecondModel,
    fdm_seconds: f64,
    fdm_fits: bool,
    jacobi_seconds: f64,
    label: String,
}

impl FpgaSimBackend {
    /// Synthesise the production design for `mesh.degree()` onto `device`
    /// and bind it to the mesh's geometry.
    ///
    /// # Panics
    /// Panics if the design does not fit on the device.
    #[must_use]
    pub fn new(mesh: &BoxMesh, device: FpgaDevice) -> Self {
        let accelerator = FpgaAccelerator::for_degree(mesh.degree(), &device);
        let planes = GeometricFactors::from_mesh(mesh).split();
        let num_elements = mesh.num_elements();
        let seconds_per_application = accelerator.estimate(num_elements).seconds;
        let fdm_model = FdmPrecondModel::new(
            mesh.degree(),
            coarse_space_dofs(mesh.degree(), mesh.element_counts()),
        );
        let fdm_estimate = fdm_model.estimate(&accelerator, num_elements);
        let jacobi_seconds = estimate_jacobi_seconds(&accelerator, num_elements);
        let label = fpga_sim_label(accelerator.device());
        Self {
            accelerator,
            planes,
            num_elements,
            seconds_per_application,
            fdm_model,
            fdm_seconds: fdm_estimate.seconds,
            fdm_fits: fdm_estimate.fits,
            jacobi_seconds,
            label,
        }
    }

    /// The underlying accelerator.
    #[must_use]
    pub fn accelerator(&self) -> &FpgaAccelerator {
        &self.accelerator
    }
}

impl AxBackend for FpgaSimBackend {
    fn label(&self) -> Cow<'static, str> {
        Cow::Owned(self.label.clone())
    }

    fn degree(&self) -> usize {
        self.accelerator.design().degree
    }

    fn num_elements(&self) -> usize {
        self.num_elements
    }

    fn apply_into(&self, u: &ElementField, w: &mut ElementField) {
        let _ = self.accelerator.execute_planes_into(u, &self.planes, w);
    }

    fn fuses_dssum(&self) -> bool {
        // The board keeps the field resident, so the gather–scatter runs as
        // part of the kernel pass instead of a host round trip; the trait's
        // default `apply_dssum_into` (kernel + CSR sweep) already models
        // that pass bitwise.
        true
    }

    fn flops_per_application(&self) -> u64 {
        ops::total_flops(self.degree(), self.num_elements)
    }

    fn dofs_per_application(&self) -> u64 {
        ops::total_dofs(self.degree(), self.num_elements)
    }

    fn perf_source(&self) -> PerfSource {
        PerfSource::Simulated
    }

    fn simulated_seconds_per_application(&self) -> Option<f64> {
        Some(self.seconds_per_application)
    }

    fn simulated_seconds_per_batch(&self, batch: usize) -> Option<f64> {
        Some(
            self.accelerator
                .estimate_batch(self.num_elements, batch)
                .seconds,
        )
    }

    fn power_watts(&self) -> Option<f64> {
        Some(self.accelerator.power_watts())
    }

    fn offload_plan(&self) -> Option<OffloadPlan> {
        Some(OffloadPlan::new(
            self.accelerator.design(),
            self.accelerator.device(),
            self.num_elements,
        ))
    }

    fn fpga_accelerator(&self) -> Option<&FpgaAccelerator> {
        Some(&self.accelerator)
    }

    fn precond_on_device(&self, precond: PrecondSpec) -> bool {
        match precond {
            PrecondSpec::Identity => false,
            PrecondSpec::Jacobi => true,
            // Claimed only while the FDM tables fit next to the Ax design.
            PrecondSpec::Fdm => self.fdm_fits,
        }
    }

    fn simulated_seconds_per_precond(&self, precond: PrecondSpec) -> Option<f64> {
        match precond {
            PrecondSpec::Identity => None,
            PrecondSpec::Jacobi => Some(self.jacobi_seconds),
            PrecondSpec::Fdm => self.fdm_fits.then_some(self.fdm_seconds),
        }
    }

    fn precond_table_bytes(&self, precond: PrecondSpec) -> u64 {
        match precond {
            PrecondSpec::Identity => 0,
            // The inverse diagonal is a full field, uploaded once per
            // session.
            PrecondSpec::Jacobi => ops::total_dofs(self.degree(), self.num_elements) * 8,
            PrecondSpec::Fdm => {
                if self.fdm_fits {
                    self.fdm_model.table_bytes()
                } else {
                    0
                }
            }
        }
    }
}

/// Several simulated FPGA boards with the elements block-partitioned across
/// them (one board per rank, Nek5000-style).
pub struct MultiFpgaBackend {
    multi: MultiBoardAccelerator,
    /// Geometric factors pre-split into the accelerator's plane layout, so
    /// repeated applications (every CG iteration) do not re-split them.
    planes: [Vec<f64>; 6],
    num_elements: usize,
    seconds_per_application: f64,
    /// On-device FDM model, priced over one board's element share (the pass
    /// is element-local, so boards run it exchange-free in parallel; the
    /// small coarse solve is conservatively charged in full per board).
    fdm_model: FdmPrecondModel,
    fdm_seconds: f64,
    fdm_fits: bool,
    jacobi_seconds: f64,
    label: String,
}

impl MultiFpgaBackend {
    /// Synthesise the per-degree design onto `boards` copies of `device`,
    /// exchanging interface data over `interconnect_gbs` GB/s.
    ///
    /// # Panics
    /// Panics if `boards` is zero or the design does not fit on the device.
    #[must_use]
    pub fn new(mesh: &BoxMesh, device: FpgaDevice, boards: usize, interconnect_gbs: f64) -> Self {
        let multi = MultiBoardAccelerator::new(mesh.degree(), &device, boards, interconnect_gbs);
        let planes = GeometricFactors::from_mesh(mesh).split();
        let num_elements = mesh.num_elements();
        let estimate = multi.estimate(num_elements);
        let seconds_per_application = estimate.kernel_seconds + estimate.exchange_seconds;
        let per_board = multi.elements_per_board(num_elements);
        let fdm_model = FdmPrecondModel::new(
            mesh.degree(),
            coarse_space_dofs(mesh.degree(), mesh.element_counts()),
        );
        let fdm_estimate = fdm_model.estimate(multi.accelerator(), per_board);
        let jacobi_seconds = estimate_jacobi_seconds(multi.accelerator(), per_board);
        let label = multi_fpga_label(boards, multi.device());
        Self {
            multi,
            planes,
            num_elements,
            seconds_per_application,
            fdm_model,
            fdm_seconds: fdm_estimate.seconds,
            fdm_fits: fdm_estimate.fits,
            jacobi_seconds,
            label,
        }
    }

    /// The underlying multi-board accelerator.
    #[must_use]
    pub fn multi_board(&self) -> &MultiBoardAccelerator {
        &self.multi
    }
}

impl AxBackend for MultiFpgaBackend {
    fn label(&self) -> Cow<'static, str> {
        Cow::Owned(self.label.clone())
    }

    fn degree(&self) -> usize {
        self.multi.accelerator().design().degree
    }

    fn num_elements(&self) -> usize {
        self.num_elements
    }

    fn apply_into(&self, u: &ElementField, w: &mut ElementField) {
        let _ = self.multi.execute_planes_into(u, &self.planes, w);
    }

    fn fuses_dssum(&self) -> bool {
        // Interior summation happens on each board; the interface exchange
        // the estimate already charges carries the cross-board sums.  The
        // trait's default `apply_dssum_into` models the pass bitwise.
        true
    }

    fn flops_per_application(&self) -> u64 {
        ops::total_flops(self.degree(), self.num_elements)
    }

    fn dofs_per_application(&self) -> u64 {
        ops::total_dofs(self.degree(), self.num_elements)
    }

    fn perf_source(&self) -> PerfSource {
        PerfSource::Simulated
    }

    fn simulated_seconds_per_application(&self) -> Option<f64> {
        Some(self.seconds_per_application)
    }

    fn simulated_seconds_per_batch(&self, batch: usize) -> Option<f64> {
        // The kernel launch amortises across the batch; the interface
        // exchange happens once per application regardless.
        let estimate = self.multi.estimate(self.num_elements);
        let per_board = self.multi.elements_per_board(self.num_elements);
        let kernel = self
            .multi
            .accelerator()
            .estimate_batch(per_board, batch)
            .seconds;
        Some(kernel + estimate.exchange_seconds * batch as f64)
    }

    fn power_watts(&self) -> Option<f64> {
        // All boards draw power while the partitioned kernel runs.
        Some(self.multi.accelerator().power_watts() * self.multi.boards() as f64)
    }

    fn offload_plan(&self) -> Option<OffloadPlan> {
        // Each board uploads its own block; the aggregate traffic equals one
        // plan over the full element set.
        Some(OffloadPlan::new(
            self.multi.accelerator().design(),
            self.multi.device(),
            self.num_elements,
        ))
    }

    fn precond_on_device(&self, precond: PrecondSpec) -> bool {
        match precond {
            PrecondSpec::Identity => false,
            PrecondSpec::Jacobi => true,
            PrecondSpec::Fdm => self.fdm_fits,
        }
    }

    fn simulated_seconds_per_precond(&self, precond: PrecondSpec) -> Option<f64> {
        // The pass is element-local: boards run their shares concurrently
        // with no interface exchange, so one board's share is the wall time.
        match precond {
            PrecondSpec::Identity => None,
            PrecondSpec::Jacobi => Some(self.jacobi_seconds),
            PrecondSpec::Fdm => self.fdm_fits.then_some(self.fdm_seconds),
        }
    }

    fn precond_table_bytes(&self, precond: PrecondSpec) -> u64 {
        match precond {
            PrecondSpec::Identity => 0,
            PrecondSpec::Jacobi => ops::total_dofs(self.degree(), self.num_elements) * 8,
            PrecondSpec::Fdm => {
                if self.fdm_fits {
                    // Every board holds the (tiny) table set.
                    self.fdm_model.table_bytes() * self.multi.boards() as u64
                } else {
                    0
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sem_solver::LocalOperator;

    fn test_mesh(degree: usize) -> BoxMesh {
        BoxMesh::unit_cube(degree, 2)
    }

    #[test]
    fn cpu_backend_matches_the_operator_it_wraps() {
        let mesh = test_mesh(4);
        let backend = CpuBackend::new(&mesh, AxImplementation::Optimized);
        let u = mesh.evaluate(|x, y, z| x * y + z);
        let mut w = ElementField::zeros(4, 8);
        backend.apply_into(&u, &mut w);
        let expect = backend.operator().apply(&u);
        assert_eq!(w.as_slice(), expect.as_slice());
        assert_eq!(backend.label(), "cpu-optimized");
        assert_eq!(backend.perf_source(), PerfSource::Measured);
        assert!(backend.simulated_seconds_per_application().is_none());
        assert!(backend.power_watts().is_none());
        assert!(backend.offload_plan().is_none());
    }

    #[test]
    fn fpga_backend_reports_simulated_cost_and_power() {
        let mesh = test_mesh(7);
        let backend = FpgaSimBackend::new(&mesh, FpgaDevice::stratix10_gx2800());
        assert_eq!(backend.perf_source(), PerfSource::Simulated);
        let seconds = backend.simulated_seconds_per_application().unwrap();
        assert!(seconds > 0.0);
        assert!(backend.power_watts().unwrap() > 50.0);
        assert!(backend.offload_plan().unwrap().num_elements == 8);
        assert!(backend.fpga_accelerator().is_some());
        assert!(backend.label().contains("GX2800"));
    }

    #[test]
    fn all_backends_agree_numerically_through_the_trait_object() {
        let mesh = test_mesh(5);
        let device = FpgaDevice::stratix10_gx2800();
        let backends: Vec<Box<dyn AxBackend>> = vec![
            Box::new(CpuBackend::new(&mesh, AxImplementation::Reference)),
            Box::new(CpuBackend::new(&mesh, AxImplementation::Parallel)),
            Box::new(FpgaSimBackend::new(&mesh, device.clone())),
            Box::new(MultiFpgaBackend::new(&mesh, device, 3, 12.0)),
        ];
        let u = mesh.evaluate(|x, y, z| (2.0 * x).sin() * y + z * z);
        let mut reference: Option<ElementField> = None;
        for backend in &backends {
            let mut w = ElementField::zeros(5, 8);
            backend.apply_into(&u, &mut w);
            match &reference {
                None => reference = Some(w),
                Some(r) => {
                    let scale = r.max_abs();
                    for (a, b) in r.as_slice().iter().zip(w.as_slice()) {
                        assert!(
                            (a - b).abs() < 1e-10 * (1.0 + scale),
                            "{}: {a} vs {b}",
                            backend.label()
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn apply_many_matches_independent_applications_bitwise() {
        let mesh = test_mesh(4);
        let device = FpgaDevice::stratix10_gx2800();
        let backends: Vec<Box<dyn AxBackend>> = vec![
            Box::new(CpuBackend::new(&mesh, AxImplementation::Optimized)),
            Box::new(FpgaSimBackend::new(&mesh, device.clone())),
            Box::new(MultiFpgaBackend::new(&mesh, device, 2, 12.0)),
        ];
        let us: Vec<ElementField> = (0..3)
            .map(|i| mesh.evaluate(move |x, y, z| ((i + 1) as f64 * x).sin() * y + z))
            .collect();
        for backend in &backends {
            let mut ws: Vec<ElementField> = us.iter().map(|_| ElementField::zeros(4, 8)).collect();
            backend.apply_many(&us, &mut ws);
            for (u, w) in us.iter().zip(&ws) {
                let mut expect = ElementField::zeros(4, 8);
                backend.apply_into(u, &mut expect);
                assert_eq!(w.as_slice(), expect.as_slice(), "{}", backend.label());
            }
        }
    }

    #[test]
    fn accelerator_backends_claim_the_fused_dssum_pass() {
        let mesh = test_mesh(3);
        let device = FpgaDevice::stratix10_gx2800();
        let cpu = CpuBackend::new(&mesh, AxImplementation::Optimized);
        let fpga = FpgaSimBackend::new(&mesh, device.clone());
        let multi = MultiFpgaBackend::new(&mesh, device, 2, 12.0);
        assert!(!cpu.fuses_dssum());
        assert!(fpga.fuses_dssum());
        assert!(multi.fuses_dssum());

        // The fused pass equals apply followed by a host dssum, bitwise.
        let gs = GatherScatter::from_mesh(&mesh);
        let u = mesh.evaluate(|x, y, z| x * x - y * z);
        let mut fused = ElementField::zeros(3, 8);
        fpga.apply_dssum_into(&u, &gs, &mut fused);
        let mut split = ElementField::zeros(3, 8);
        fpga.apply_into(&u, &mut split);
        gs.direct_stiffness_sum(&mut split);
        assert_eq!(fused.as_slice(), split.as_slice());
    }

    #[test]
    fn simulated_batch_seconds_amortise_the_launch_overhead() {
        let mesh = test_mesh(7);
        let device = FpgaDevice::stratix10_gx2800();
        let fpga = FpgaSimBackend::new(&mesh, device.clone());
        let multi = MultiFpgaBackend::new(&mesh, device, 2, 12.0);
        for backend in [&fpga as &dyn AxBackend, &multi as &dyn AxBackend] {
            let single = backend.simulated_seconds_per_application().unwrap();
            let batched = backend.simulated_seconds_per_batch(16).unwrap();
            assert!(
                batched < 16.0 * single,
                "{}: {batched} vs {}",
                backend.label(),
                16.0 * single
            );
            assert!(batched > single, "{}", backend.label());
        }
        // CPU backends have no simulated accounting, batched or not.
        let cpu = CpuBackend::new(&mesh, AxImplementation::Parallel);
        assert!(cpu.simulated_seconds_per_batch(16).is_none());
    }

    #[test]
    fn dyn_backend_is_a_local_operator() {
        let mesh = test_mesh(3);
        let backend: Box<dyn AxBackend> =
            Box::new(FpgaSimBackend::new(&mesh, FpgaDevice::stratix10_gx2800()));
        let op: &dyn AxBackend = backend.as_ref();
        assert_eq!(LocalOperator::degree(op), 3);
        assert_eq!(LocalOperator::num_elements(op), 8);
        assert!(LocalOperator::seconds_per_application(op).unwrap() > 0.0);
        assert_eq!(
            LocalOperator::flops_per_application(op),
            AxBackend::flops_per_application(op)
        );
    }

    #[test]
    fn multi_fpga_power_scales_with_boards() {
        let mesh = test_mesh(7);
        let device = FpgaDevice::stratix10_gx2800();
        let two = MultiFpgaBackend::new(&mesh, device.clone(), 2, 12.0);
        let four = MultiFpgaBackend::new(&mesh, device, 4, 12.0);
        assert!((four.power_watts().unwrap() / two.power_watts().unwrap() - 2.0).abs() < 1e-9);
        assert!(four.label().contains("4 x"));
    }
}
