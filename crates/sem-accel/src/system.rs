//! The [`SemSystem`]: a spectral element problem bound to an execution
//! backend.

use crate::backend::Backend;
use crate::offload::OffloadPlan;
use crate::report::{PerfSource, PerfSummary};
use fpga_sim::{ExecutionReport, FpgaAccelerator};
use sem_kernel::{AxImplementation, PoissonOperator};
use sem_mesh::{BoxMesh, DirichletMask, ElementField, GatherScatter, MeshDeformation};
use sem_solver::{CgOptions, PoissonProblem, PoissonSolution};
use std::time::Instant;

/// Builder for [`SemSystem`].
#[derive(Debug, Clone)]
pub struct SemSystemBuilder {
    degree: usize,
    elements: [usize; 3],
    lengths: [f64; 3],
    deformation: MeshDeformation,
    backend: Backend,
}

impl Default for SemSystemBuilder {
    fn default() -> Self {
        Self {
            degree: 7,
            elements: [4, 4, 4],
            lengths: [1.0; 3],
            deformation: MeshDeformation::None,
            backend: Backend::default(),
        }
    }
}

impl SemSystemBuilder {
    /// Polynomial degree `N`.
    #[must_use]
    pub fn degree(mut self, degree: usize) -> Self {
        self.degree = degree;
        self
    }

    /// Elements per direction.
    #[must_use]
    pub fn elements(mut self, elements: [usize; 3]) -> Self {
        self.elements = elements;
        self
    }

    /// Domain edge lengths.
    #[must_use]
    pub fn lengths(mut self, lengths: [f64; 3]) -> Self {
        self.lengths = lengths;
        self
    }

    /// Mesh deformation.
    #[must_use]
    pub fn deformation(mut self, deformation: MeshDeformation) -> Self {
        self.deformation = deformation;
        self
    }

    /// Execution backend.
    #[must_use]
    pub fn backend(mut self, backend: Backend) -> Self {
        self.backend = backend;
        self
    }

    /// Build the system (meshes the domain, precomputes geometric factors,
    /// and — for FPGA backends — synthesises the simulated accelerator).
    #[must_use]
    pub fn build(self) -> SemSystem {
        let mesh = BoxMesh::new(self.degree, self.elements, self.lengths, self.deformation);
        let implementation = match &self.backend {
            Backend::Cpu(imp) => *imp,
            // The FPGA path still needs a host operator for setup, RHS
            // assembly and verification; use the optimised CPU kernel.
            Backend::FpgaSimulated(_) => AxImplementation::Optimized,
        };
        let operator = PoissonOperator::new(&mesh, implementation);
        let gather_scatter = GatherScatter::from_mesh(&mesh);
        let mask = DirichletMask::from_mesh(&mesh);
        let accelerator = match &self.backend {
            Backend::FpgaSimulated(device) => Some(FpgaAccelerator::for_degree(self.degree, device)),
            Backend::Cpu(_) => None,
        };
        SemSystem {
            backend: self.backend,
            mesh,
            operator,
            gather_scatter,
            mask,
            accelerator,
        }
    }
}

/// A spectral element Poisson problem bound to an execution backend.
pub struct SemSystem {
    backend: Backend,
    mesh: BoxMesh,
    operator: PoissonOperator,
    gather_scatter: GatherScatter,
    mask: DirichletMask,
    accelerator: Option<FpgaAccelerator>,
}

impl SemSystem {
    /// Start building a system.
    #[must_use]
    pub fn builder() -> SemSystemBuilder {
        SemSystemBuilder::default()
    }

    /// The backend in use.
    #[must_use]
    pub fn backend(&self) -> &Backend {
        &self.backend
    }

    /// The mesh.
    #[must_use]
    pub fn mesh(&self) -> &BoxMesh {
        &self.mesh
    }

    /// The matrix-free operator (host side).
    #[must_use]
    pub fn operator(&self) -> &PoissonOperator {
        &self.operator
    }

    /// The gather–scatter operator.
    #[must_use]
    pub fn gather_scatter(&self) -> &GatherScatter {
        &self.gather_scatter
    }

    /// The Dirichlet mask.
    #[must_use]
    pub fn mask(&self) -> &DirichletMask {
        &self.mask
    }

    /// The simulated accelerator, if the backend is an FPGA.
    #[must_use]
    pub fn accelerator(&self) -> Option<&FpgaAccelerator> {
        self.accelerator.as_ref()
    }

    /// The offload plan for this problem, if the backend is an FPGA.
    #[must_use]
    pub fn offload_plan(&self) -> Option<OffloadPlan> {
        self.accelerator.as_ref().map(|acc| {
            OffloadPlan::new(acc.design(), acc.device(), self.mesh.num_elements())
        })
    }

    /// Apply the local Poisson operator once, returning the result and a
    /// performance summary (wall-clock for CPU backends, simulated for FPGA).
    #[must_use]
    pub fn apply_operator(&self, u: &ElementField) -> (ElementField, PerfSummary) {
        match &self.accelerator {
            Some(acc) => {
                let (w, report) = acc.execute(u, self.operator.geometry());
                (w, self.summary_from_simulation(&report, 1))
            }
            None => {
                let start = Instant::now();
                let w = self.operator.apply(u);
                let seconds = start.elapsed().as_secs_f64().max(1e-12);
                (w, self.summary_from_measurement(seconds, 1))
            }
        }
    }

    /// Apply the operator `applications` times (for steadier timing) and
    /// report the aggregate performance.
    #[must_use]
    pub fn benchmark_operator(&self, applications: usize) -> PerfSummary {
        assert!(applications > 0, "need at least one application");
        let u = self.mesh.evaluate(|x, y, z| (x + 0.3) * (y - 0.7) * (z + 0.11));
        match &self.accelerator {
            Some(acc) => {
                let report = acc.estimate(self.mesh.num_elements());
                self.summary_from_simulation(&report, applications)
            }
            None => {
                let mut w = ElementField::zeros(self.mesh.degree(), self.mesh.num_elements());
                let start = Instant::now();
                for _ in 0..applications {
                    self.operator.apply_into(&u, &mut w);
                }
                let seconds = start.elapsed().as_secs_f64().max(1e-12);
                self.summary_from_measurement(seconds, applications)
            }
        }
    }

    /// Solve the manufactured-solution Poisson problem on this system's mesh
    /// with the host CG solver (the FPGA backend accelerates the operator in
    /// spirit; the solve itself always runs on the host in this API).
    #[must_use]
    pub fn solve_manufactured(&self, options: CgOptions, use_jacobi: bool) -> PoissonSolution {
        let implementation = self.operator.implementation();
        let problem = PoissonProblem::new(self.mesh.clone(), implementation);
        problem.solve_manufactured(options, use_jacobi)
    }

    fn summary_from_measurement(&self, seconds: f64, applications: usize) -> PerfSummary {
        let flops = self.operator.flops_per_application() as f64 * applications as f64;
        let dofs = self.operator.dofs_per_application() as f64 * applications as f64;
        PerfSummary {
            degree: self.mesh.degree(),
            num_elements: self.mesh.num_elements(),
            applications,
            seconds,
            gflops: flops / seconds / 1e9,
            dofs_per_second: dofs / seconds,
            power_watts: None,
            gflops_per_watt: None,
            source: PerfSource::Measured,
        }
    }

    fn summary_from_simulation(&self, report: &ExecutionReport, applications: usize) -> PerfSummary {
        let seconds = report.seconds * applications as f64;
        let dofs = self.operator.dofs_per_application() as f64 * applications as f64;
        PerfSummary {
            degree: self.mesh.degree(),
            num_elements: self.mesh.num_elements(),
            applications,
            seconds,
            gflops: report.gflops,
            dofs_per_second: dofs / seconds,
            power_watts: Some(report.power_watts),
            gflops_per_watt: Some(report.gflops_per_watt),
            source: PerfSource::Simulated,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fpga_sim::AcceleratorDesign;

    #[test]
    fn cpu_and_fpga_backends_agree_numerically() {
        let cpu = SemSystem::builder()
            .degree(4)
            .elements([2, 2, 2])
            .backend(Backend::cpu_reference())
            .build();
        let fpga = SemSystem::builder()
            .degree(4)
            .elements([2, 2, 2])
            .backend(Backend::fpga_simulated())
            .build();
        let u = cpu.mesh().evaluate(|x, y, z| (3.0 * x).sin() * y + z * z);
        let (w_cpu, s_cpu) = cpu.apply_operator(&u);
        let (w_fpga, s_fpga) = fpga.apply_operator(&u);
        for (a, b) in w_cpu.as_slice().iter().zip(w_fpga.as_slice()) {
            assert!((a - b).abs() < 1e-10 * (1.0 + a.abs()));
        }
        assert_eq!(s_cpu.source, PerfSource::Measured);
        assert_eq!(s_fpga.source, PerfSource::Simulated);
        assert!(s_fpga.power_watts.is_some());
    }

    #[test]
    fn benchmark_reports_scaled_totals() {
        let system = SemSystem::builder()
            .degree(3)
            .elements([2, 2, 2])
            .backend(Backend::cpu_optimized())
            .build();
        let s = system.benchmark_operator(5);
        assert_eq!(s.applications, 5);
        assert!(s.gflops > 0.0);
        assert!(s.mdofs_per_second() > 0.0);
    }

    #[test]
    fn offload_plan_only_exists_for_fpga_backends() {
        let cpu = SemSystem::builder().backend(Backend::cpu_parallel()).build();
        assert!(cpu.offload_plan().is_none());
        let fpga = SemSystem::builder()
            .degree(7)
            .elements([2, 2, 2])
            .backend(Backend::fpga_simulated())
            .build();
        let plan = fpga.offload_plan().unwrap();
        assert_eq!(plan.num_elements, 8);
        assert!(!plan.padded);
    }

    #[test]
    fn manufactured_solve_converges_through_the_facade() {
        let system = SemSystem::builder()
            .degree(6)
            .elements([2, 2, 2])
            .backend(Backend::cpu_optimized())
            .build();
        let sol = system.solve_manufactured(
            CgOptions {
                max_iterations: 2000,
                tolerance: 1e-11,
                record_history: false,
            },
            true,
        );
        assert!(sol.cg.converged);
        assert!(sol.max_error < 1e-5, "error {}", sol.max_error);
    }

    #[test]
    fn accelerator_design_matches_degree() {
        let system = SemSystem::builder()
            .degree(11)
            .elements([2, 2, 2])
            .backend(Backend::fpga_simulated())
            .build();
        let design: &AcceleratorDesign = system.accelerator().unwrap().design();
        assert_eq!(design.degree, 11);
        assert_eq!(design.unroll, 4);
    }
}
