//! The [`SemSystem`]: a spectral element problem bound to an execution
//! backend.
//!
//! Unlike the original API, in which the backend only affected standalone
//! operator calls while solves silently ran on the host, *every* operator
//! application here — including each CG iteration of [`SemSystem::solve`] —
//! goes through the system's [`AxBackend`].

use crate::backend::{Backend, ExecSpec};
use crate::exec::AxBackend;
use crate::faulty::FaultyBackend;
use crate::offload::OffloadPlan;
use crate::report::{PerfSource, PerfSummary};
use fpga_sim::{FaultState, FpgaAccelerator};
use rayon::prelude::*;
use sem_kernel::{AxImplementation, PoissonOperator};
use sem_mesh::{BoxMesh, DirichletMask, ElementField, GatherScatter, MeshDeformation};
use sem_obs::{recorder, Scope, SpanEvent, SpanKind, WallTimer};
use sem_solver::{
    AnyPreconditioner, CgOptions, CgScratch, CgSolver, PoissonProblem, PoissonSolution, PrecondSpec,
};
use std::sync::Arc;

/// PCIe-class link speed (GB/s) assumed when charging host↔device transfer
/// time to a solve.
pub const HOST_LINK_GBS: f64 = 12.0;

/// Builder for [`SemSystem`].
#[derive(Debug, Clone)]
pub struct SemSystemBuilder {
    degree: usize,
    elements: [usize; 3],
    lengths: [f64; 3],
    deformation: MeshDeformation,
    backend: Backend,
    fault_state: Option<Arc<FaultState>>,
}

impl Default for SemSystemBuilder {
    fn default() -> Self {
        Self {
            degree: 7,
            elements: [4, 4, 4],
            lengths: [1.0; 3],
            deformation: MeshDeformation::None,
            backend: Backend::default(),
            fault_state: None,
        }
    }
}

impl SemSystemBuilder {
    /// Polynomial degree `N`.
    #[must_use]
    pub fn degree(mut self, degree: usize) -> Self {
        self.degree = degree;
        self
    }

    /// Elements per direction.
    #[must_use]
    pub fn elements(mut self, elements: [usize; 3]) -> Self {
        self.elements = elements;
        self
    }

    /// Domain edge lengths.
    #[must_use]
    pub fn lengths(mut self, lengths: [f64; 3]) -> Self {
        self.lengths = lengths;
        self
    }

    /// Mesh deformation.
    #[must_use]
    pub fn deformation(mut self, deformation: MeshDeformation) -> Self {
        self.deformation = deformation;
        self
    }

    /// Execution backend configuration.
    #[must_use]
    pub fn backend(mut self, backend: Backend) -> Self {
        self.backend = backend;
        self
    }

    /// The preconditioner solves on this system use (equivalently set via
    /// a `+fdm`/`+none` registry-name suffix).
    #[must_use]
    pub fn precond(mut self, precond: PrecondSpec) -> Self {
        self.backend.precond = precond;
        self
    }

    /// Execution backend by registry name (`cpu:parallel`,
    /// `fpga:stratix10-gx2800+fdm`, `multi:4x520n`, ...).
    ///
    /// # Panics
    /// Panics if the name is not in the registry (see
    /// [`Backend::registry_names`]).
    #[must_use]
    pub fn backend_named(self, name: &str) -> Self {
        let backend =
            Backend::from_name(name).unwrap_or_else(|| panic!("unknown backend name `{name}`"));
        self.backend(backend)
    }

    /// Inject deterministic faults: wrap the instantiated backend in a
    /// [`FaultyBackend`] consulting this shared state on every fallible
    /// application.  `None` (the default) builds a perfect device.
    #[must_use]
    pub fn fault_state(mut self, fault_state: Option<Arc<FaultState>>) -> Self {
        self.fault_state = fault_state;
        self
    }

    /// Build the system (meshes the domain, precomputes geometric factors,
    /// and — for FPGA backends — synthesises the simulated accelerator).
    #[must_use]
    pub fn build(self) -> SemSystem {
        let mesh = BoxMesh::new(self.degree, self.elements, self.lengths, self.deformation);
        let mut execution = self.backend.instantiate(&mesh);
        if let Some(state) = self.fault_state {
            execution = Box::new(FaultyBackend::new(execution, state));
        }
        let implementation = match &self.backend.exec {
            ExecSpec::Cpu(implementation) => *implementation,
            // Accelerator backends still need a host operator for RHS
            // assembly, preconditioning and verification; use the optimised
            // CPU kernel there.
            ExecSpec::FpgaSimulated(_) | ExecSpec::MultiFpga { .. } => AxImplementation::Optimized,
        };
        let problem = PoissonProblem::new(mesh, implementation);
        // Preconditioner setup (for FDM: eigendecompositions plus the
        // Galerkin coarse factorisation) happens once per session, here.
        // Backends that claim the pass on-device attach their cycle model's
        // per-application seconds so the CG accounting prices it like the
        // operator itself.
        let spec = self.backend.precond;
        let mut precond = problem.preconditioner(spec);
        let precond_on_device = execution.precond_on_device(spec);
        if let Some(seconds) = execution.simulated_seconds_per_precond(spec) {
            precond = precond.with_modeled_seconds(seconds);
        }
        SemSystem {
            config: self.backend,
            execution,
            problem,
            precond,
            precond_on_device,
        }
    }
}

/// A spectral element Poisson problem bound to an execution backend.
///
/// Systems are `Send + Sync` (the backend trait requires it and the host
/// problem owns plain data), which is what lets `sem-serve`'s async host
/// hand each session to its worker thread and take it back afterwards — a
/// move, never a rebuild.
pub struct SemSystem {
    config: Backend,
    execution: Box<dyn AxBackend>,
    problem: PoissonProblem,
    /// The session's preconditioner, built once at `build` time (with the
    /// backend's modelled per-application seconds attached when the pass is
    /// claimed on-device).
    precond: AnyPreconditioner,
    precond_on_device: bool,
}

/// Outcome of a backend-routed solve: the solution with its error metrics,
/// plus the time/energy accounting of the backend that produced it.
#[derive(Debug, Clone)]
pub struct SolveReport {
    /// The solution and its error metrics (including raw CG statistics —
    /// iteration counts, residuals, per-application operator seconds).
    pub solution: PoissonSolution,
    /// Label of the backend that executed the operator applications.
    pub backend: String,
    /// The preconditioner the solve ran.
    pub precond: PrecondSpec,
    /// Seconds attributed to preconditioner applications across the solve:
    /// the backend's cycle model when the pass is claimed on-device,
    /// measured wall-clock otherwise.
    pub precond_seconds: f64,
    /// Whether the preconditioner pass was claimed (and priced) on-device.
    pub precond_on_device: bool,
    /// Provenance of the operator timing below.
    pub source: PerfSource,
    /// Aggregate performance of the operator applications inside CG:
    /// measured wall-clock for CPU backends, simulated kernel (plus
    /// exchange) seconds for FPGA backends.
    pub operator: PerfSummary,
    /// Host↔device transfer time charged to the solve over a
    /// [`HOST_LINK_GBS`] link; zero for host backends.  For a standalone
    /// solve this is one full upload (operand + geometric factors +
    /// derivative matrices) plus the result download; inside a
    /// [`SemSystem::solve_many`] batch the shared data is charged once for
    /// the whole batch and this field carries the per-RHS share.  This is
    /// the **serial** accounting: every byte blocks the kernel.
    pub transfer_seconds: f64,
    /// The per-RHS transfer time still *exposed* (not hidden behind the
    /// kernel) when the batch runs through the double-buffered three-stage
    /// offload pipeline — upload `i+1` / solve `i` / download `i-1` — that
    /// `sem-serve` schedules.  At most [`SolveReport::transfer_seconds`];
    /// equal to it for standalone solves (a batch of one has nothing to
    /// overlap with) and zero for host backends.
    pub pipelined_transfer_seconds: f64,
    /// Wall-clock seconds the whole solve took on this host (for simulated
    /// backends this is simulator time, not accelerator time).
    pub host_wall_seconds: f64,
    /// Number of right-hand sides in the batch this solve was part of (1
    /// for standalone solves).  Transfer amortisation above is relative to
    /// this batch.
    pub batch_size: usize,
}

impl SolveReport {
    /// CG iterations performed.
    #[must_use]
    pub fn iterations(&self) -> usize {
        self.solution.cg.iterations
    }

    /// Preconditioner applications performed.
    #[must_use]
    pub fn precond_applications(&self) -> usize {
        self.solution.cg.precond_applications
    }

    /// Whether CG reached its tolerance.
    #[must_use]
    pub fn converged(&self) -> bool {
        self.solution.cg.converged
    }

    /// The compute seconds of the whole solve on its backend: operator
    /// applications plus preconditioner applications.
    #[must_use]
    pub fn compute_seconds(&self) -> f64 {
        self.operator.seconds + self.precond_seconds
    }

    /// The backend-attributed time of the whole solve: operator plus
    /// preconditioner seconds plus transfer time.  For CPU backends this is
    /// measured; for FPGA backends it is the modelled end-to-end
    /// accelerator time.
    #[must_use]
    pub fn modeled_seconds(&self) -> f64 {
        self.compute_seconds() + self.transfer_seconds
    }

    /// The backend-attributed per-RHS time when the batch is served through
    /// the overlapped offload pipeline: compute seconds plus only the
    /// transfer time the pipeline fails to hide.  Equals
    /// [`SolveReport::modeled_seconds`] for host backends and standalone
    /// solves.
    #[must_use]
    pub fn pipelined_modeled_seconds(&self) -> f64 {
        self.compute_seconds() + self.pipelined_transfer_seconds
    }

    /// Per-RHS seconds the pipelined schedule saves over the serial
    /// accounting — the overlap win existing consumers compare.
    #[must_use]
    pub fn overlap_win_seconds(&self) -> f64 {
        (self.modeled_seconds() - self.pipelined_modeled_seconds()).max(0.0)
    }
}

impl SemSystem {
    /// Start building a system.
    #[must_use]
    pub fn builder() -> SemSystemBuilder {
        SemSystemBuilder::default()
    }

    /// The backend configuration in use.
    #[must_use]
    pub fn backend(&self) -> &Backend {
        &self.config
    }

    /// The live execution engine the configuration resolved to.
    #[must_use]
    pub fn execution(&self) -> &dyn AxBackend {
        self.execution.as_ref()
    }

    /// The preconditioner spec this system solves with.
    #[must_use]
    pub fn precond_spec(&self) -> PrecondSpec {
        self.config.precond
    }

    /// Whether the backend claims (and prices) the preconditioner pass
    /// on-device.
    #[must_use]
    pub fn precond_on_device(&self) -> bool {
        self.precond_on_device
    }

    /// The mesh.
    #[must_use]
    pub fn mesh(&self) -> &BoxMesh {
        self.problem.mesh()
    }

    /// The underlying discretised Poisson problem (right-hand-side assembly,
    /// preconditioning, error measurement) — the host side of the system.
    #[must_use]
    pub fn problem(&self) -> &PoissonProblem {
        &self.problem
    }

    /// The matrix-free operator (host side; RHS assembly, preconditioning
    /// and verification run against it).
    #[must_use]
    pub fn operator(&self) -> &PoissonOperator {
        self.problem.operator()
    }

    /// The gather–scatter operator.
    #[must_use]
    pub fn gather_scatter(&self) -> &GatherScatter {
        self.problem.gather_scatter()
    }

    /// The Dirichlet mask.
    #[must_use]
    pub fn mask(&self) -> &DirichletMask {
        self.problem.mask()
    }

    /// The simulated accelerator, if the backend is a single FPGA board.
    #[must_use]
    pub fn accelerator(&self) -> Option<&FpgaAccelerator> {
        self.execution.fpga_accelerator()
    }

    /// The offload plan for this problem, if the backend has external
    /// device memory — with the configured preconditioner's one-off table
    /// upload folded into the shared traffic when the pass runs on-device.
    #[must_use]
    pub fn offload_plan(&self) -> Option<OffloadPlan> {
        self.execution.offload_plan().map(|plan| {
            plan.with_precond_tables(self.execution.precond_table_bytes(self.config.precond))
        })
    }

    /// Apply the local operator once through the backend, returning the
    /// result and a performance summary (wall-clock for CPU backends,
    /// simulated for FPGA).
    #[must_use]
    pub fn apply_operator(&self, u: &ElementField) -> (ElementField, PerfSummary) {
        let mut w = ElementField::zeros(self.mesh().degree(), self.mesh().num_elements());
        let summary = match self.execution.simulated_seconds_per_application() {
            Some(seconds) => {
                self.execution.apply_into(u, &mut w);
                self.summary(seconds, 1)
            }
            None => {
                let timer = WallTimer::start();
                self.execution.apply_into(u, &mut w);
                self.summary(timer.elapsed_wall_seconds().max(1e-12), 1)
            }
        };
        (w, summary)
    }

    /// Apply the local operator to a whole batch of operands through the
    /// backend in one submission: `ws[i] = A us[i]`.
    ///
    /// Simulated backends charge the batch through their batched cost model
    /// ([`crate::exec::AxBackend::simulated_seconds_per_batch`]), which pays
    /// the kernel-launch overhead once for the whole batch; CPU backends are
    /// timed around the batch as a whole.
    ///
    /// # Panics
    /// Panics if `us` is empty or any operand does not match the mesh.
    #[must_use]
    pub fn apply_operator_many(&self, us: &[ElementField]) -> (Vec<ElementField>, PerfSummary) {
        assert!(!us.is_empty(), "need at least one operand");
        let mut ws: Vec<ElementField> = us
            .iter()
            .map(|_| ElementField::zeros(self.mesh().degree(), self.mesh().num_elements()))
            .collect();
        let summary = match self.execution.simulated_seconds_per_batch(us.len()) {
            Some(seconds) => {
                self.execution.apply_many(us, &mut ws);
                self.summary(seconds, us.len())
            }
            None => {
                let timer = WallTimer::start();
                self.execution.apply_many(us, &mut ws);
                self.summary(timer.elapsed_wall_seconds().max(1e-12), us.len())
            }
        };
        (ws, summary)
    }

    /// Apply the operator `applications` times (for steadier timing) and
    /// report the aggregate performance.
    ///
    /// # Panics
    /// Panics if `applications` is zero.
    #[must_use]
    pub fn benchmark_operator(&self, applications: usize) -> PerfSummary {
        assert!(applications > 0, "need at least one application");
        match self.execution.simulated_seconds_per_application() {
            Some(seconds) => self.summary(seconds * applications as f64, applications),
            None => {
                let u = self
                    .mesh()
                    .evaluate(|x, y, z| (x + 0.3) * (y - 0.7) * (z + 0.11));
                let mut w = ElementField::zeros(self.mesh().degree(), self.mesh().num_elements());
                let timer = WallTimer::start();
                for _ in 0..applications {
                    self.execution.apply_into(&u, &mut w);
                }
                let seconds = timer.elapsed_wall_seconds().max(1e-12);
                self.summary(seconds, applications)
            }
        }
    }

    /// Solve the manufactured-solution Poisson problem, running **every CG
    /// operator application through the backend** with the session's
    /// configured preconditioner, and report both the solution quality and
    /// the backend's time/energy accounting.
    #[must_use]
    pub fn solve(&self, options: CgOptions) -> SolveReport {
        self.solve_many_manufactured(1, options)
            .pop()
            .expect("a batch of one yields one report")
    }

    /// Solve the manufactured-solution Poisson problem and return only the
    /// solution (every operator application still runs through the
    /// backend; use [`SemSystem::solve`] for the full report).
    #[must_use]
    pub fn solve_manufactured(&self, options: CgOptions) -> PoissonSolution {
        self.solve(options).solution
    }

    /// Solve one already-assembled (continuous, masked) right-hand side
    /// through the backend.
    ///
    /// No exact solution is associated, so the report's error metrics are
    /// `NaN`; everything else — CG statistics, backend accounting, one full
    /// offload round trip — matches [`SemSystem::solve`].  Equivalent to
    /// `solve_many(&[rhs], ..)` with a batch of one.
    ///
    /// # Panics
    /// Panics if `rhs` does not match the system's degree and element count.
    #[must_use]
    pub fn solve_rhs(&self, rhs: &ElementField, options: CgOptions) -> SolveReport {
        self.solve_many(std::slice::from_ref(rhs), options)
            .pop()
            .expect("one report per right-hand side")
    }

    /// Solve a whole batch of right-hand sides through the backend — the
    /// many-users-one-instance serving shape.
    ///
    /// One [`OffloadPlan`] is shared across the batch: the geometric factors
    /// and derivative matrices cross the PCIe link once, each RHS pays only
    /// its operand/result traffic, and every report's `transfer_seconds`
    /// carries the per-RHS share (kernel seconds stay per RHS).  Sequential
    /// CPU backends run the batch **batch-parallel** with one private
    /// [`CgScratch`] per worker thread; `cpu:parallel` (whose kernel already
    /// owns the cores) and simulated accelerator backends run in submission
    /// order reusing a single scratch, so a whole batch performs five field
    /// allocations total.  Either way each solve is bitwise identical to a
    /// standalone [`SemSystem::solve_rhs`].
    ///
    /// # Panics
    /// Panics if any RHS does not match the system's degree and element
    /// count.
    #[must_use]
    pub fn solve_many(&self, rhss: &[ElementField], options: CgOptions) -> Vec<SolveReport> {
        if rhss.is_empty() {
            return Vec::new();
        }
        let batch = rhss.len();
        let per_rhs_transfer = self.offload_plan().map_or(0.0, |plan| {
            plan.batched_transfer_seconds(HOST_LINK_GBS, batch) / batch as f64
        });
        let solver = CgSolver::new(
            self.execution.as_ref(),
            self.problem.gather_scatter(),
            self.problem.mask(),
            options,
        );

        // Fan out only when each solve is single-threaded: nesting the batch
        // over the element-parallel kernel would oversubscribe cores² threads
        // and pollute the measured per-application seconds.
        let batch_parallel = self.execution.perf_source() == PerfSource::Measured
            && !matches!(self.config.exec, ExecSpec::Cpu(AxImplementation::Parallel));

        if batch_parallel {
            // Host backend: independent solves, so fan the batch out across
            // cores with one scratch per worker thread.
            let mut slots: Vec<Option<SolveReport>> = rhss.iter().map(|_| None).collect();
            slots.par_chunks_mut(1).enumerate().for_each_init(
                || CgScratch::new(self.mesh().degree(), self.mesh().num_elements()),
                |scratch, (i, slot)| {
                    slot[0] =
                        Some(self.solve_one(&solver, &rhss[i], scratch, per_rhs_transfer, batch));
                },
            );
            slots
                .into_iter()
                .map(|report| report.expect("every batch slot solved"))
                .collect()
        } else {
            // Simulated accelerator (one board) or element-parallel CPU
            // kernel: submission order, one scratch reused across the batch.
            let mut scratch = CgScratch::new(self.mesh().degree(), self.mesh().num_elements());
            rhss.iter()
                .map(|rhs| self.solve_one(&solver, rhs, &mut scratch, per_rhs_transfer, batch))
                .collect()
        }
    }

    /// Solve the manufactured problem `batch` times as one batched session —
    /// the convenience entry the benches and amortisation studies use.  The
    /// right-hand side is assembled once and replicated, every report gets
    /// real error metrics against the manufactured solution, and the
    /// transfer/scratch amortisation of [`SemSystem::solve_many`] applies.
    #[must_use]
    pub fn solve_many_manufactured(&self, batch: usize, options: CgOptions) -> Vec<SolveReport> {
        let rhs = self.problem.manufactured_rhs();
        let rhss = vec![rhs; batch];
        let mut reports = self.solve_many(&rhss, options);
        let exact = self.problem.manufactured_exact();
        for report in &mut reports {
            let (max_error, l2_error) = self
                .problem
                .error_against(&report.solution.solution, &exact);
            report.solution.max_error = max_error;
            report.solution.l2_error = l2_error;
        }
        reports
    }

    /// One solve of a batch: runs CG through the backend with the shared
    /// solver/preconditioner and a caller-owned scratch, charging the
    /// amortised per-RHS transfer share.
    fn solve_one(
        &self,
        solver: &CgSolver<'_, dyn AxBackend>,
        rhs: &ElementField,
        scratch: &mut CgScratch,
        transfer_seconds: f64,
        batch: usize,
    ) -> SolveReport {
        let timer = WallTimer::start();
        let cg = solver.solve_with_scratch(rhs, &self.precond, scratch);
        let host_wall_seconds = timer.elapsed_wall_seconds();
        let operator = self.summary(
            cg.operator_seconds.max(1e-12),
            cg.operator_applications.max(1),
        );
        // Exposed per-RHS transfer under the double-buffered pipeline: the
        // session's un-hidden seconds (closed form) spread over the batch,
        // with the on-device preconditioner part of the compute stage.
        // Never worse than the serial share.
        let compute_seconds = operator.seconds + cg.precond_seconds;
        let pipelined_transfer_seconds = if batch == 1 {
            // A standalone solve has no neighbouring requests to overlap
            // with: the pipelined accounting equals the serial one, bitwise.
            transfer_seconds
        } else {
            self.offload_plan()
                .map_or(0.0, |plan| {
                    plan.pipeline_cost(HOST_LINK_GBS, compute_seconds)
                        .exposed_transfer_seconds(batch)
                        / batch as f64
                })
                .min(transfer_seconds)
        };
        let report = SolveReport {
            backend: self.execution.label().into_owned(),
            precond: self.config.precond,
            precond_seconds: cg.precond_seconds,
            precond_on_device: self.precond_on_device,
            source: self.execution.perf_source(),
            operator,
            transfer_seconds,
            pipelined_transfer_seconds,
            host_wall_seconds,
            batch_size: batch,
            solution: PoissonSolution {
                solution: cg.solution.clone(),
                max_error: f64::NAN,
                l2_error: f64::NAN,
                cg,
            },
        };
        let obs = recorder();
        if obs.is_enabled() {
            // Simulated backends are fully priced by their cycle model, so
            // the span is deterministic; measured CPU solves vary with the
            // host and stay out of modelled-clock exports.
            let (scope, seconds) = match report.source {
                PerfSource::Simulated => (Scope::Deterministic, report.modeled_seconds()),
                PerfSource::Measured => (Scope::ScheduleDependent, report.host_wall_seconds),
            };
            let start = obs.stamp(0.0);
            let end = obs.stamp(seconds);
            obs.record(
                SpanEvent::new(SpanKind::Solve, scope, start, end)
                    .with_label(obs.intern(&report.backend)),
            );
            let labels = [("backend", report.backend.as_str())];
            obs.counter_add("sem_accel_solves_total", &labels, 1);
            obs.observe("sem_accel_solve_seconds", &labels, seconds);
            obs.observe(
                "sem_accel_transfer_seconds",
                &labels,
                report.transfer_seconds,
            );
        }
        report
    }

    /// Aggregate a per-application cost into a [`PerfSummary`] using the
    /// backend's accounting.
    fn summary(&self, seconds: f64, applications: usize) -> PerfSummary {
        let flops = self.execution.flops_per_application() as f64 * applications as f64;
        let dofs = self.execution.dofs_per_application() as f64 * applications as f64;
        let gflops = flops / seconds / 1e9;
        let power_watts = self.execution.power_watts();
        PerfSummary {
            degree: self.mesh().degree(),
            num_elements: self.mesh().num_elements(),
            applications,
            seconds,
            gflops,
            dofs_per_second: dofs / seconds,
            power_watts,
            gflops_per_watt: power_watts.map(|watts| gflops / watts),
            source: self.execution.perf_source(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fpga_sim::AcceleratorDesign;

    #[test]
    fn sem_system_sessions_are_send_and_sync_for_worker_handoff() {
        // The async serving host moves whole sessions onto worker threads
        // and back; this must stay a compile-time property of the facade,
        // not an accident of the current backend set.
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SemSystem>();
        assert_send_sync::<SolveReport>();
        assert_send_sync::<Box<dyn AxBackend>>();
    }

    #[test]
    fn cpu_and_fpga_backends_agree_numerically() {
        let cpu = SemSystem::builder()
            .degree(4)
            .elements([2, 2, 2])
            .backend(Backend::cpu_reference())
            .build();
        let fpga = SemSystem::builder()
            .degree(4)
            .elements([2, 2, 2])
            .backend(Backend::fpga_simulated())
            .build();
        let u = cpu.mesh().evaluate(|x, y, z| (3.0 * x).sin() * y + z * z);
        let (w_cpu, s_cpu) = cpu.apply_operator(&u);
        let (w_fpga, s_fpga) = fpga.apply_operator(&u);
        for (a, b) in w_cpu.as_slice().iter().zip(w_fpga.as_slice()) {
            assert!((a - b).abs() < 1e-10 * (1.0 + a.abs()));
        }
        assert_eq!(s_cpu.source, PerfSource::Measured);
        assert_eq!(s_fpga.source, PerfSource::Simulated);
        assert!(s_fpga.power_watts.is_some());
    }

    #[test]
    fn benchmark_reports_scaled_totals() {
        let system = SemSystem::builder()
            .degree(3)
            .elements([2, 2, 2])
            .backend(Backend::cpu_optimized())
            .build();
        let s = system.benchmark_operator(5);
        assert_eq!(s.applications, 5);
        assert!(s.gflops > 0.0);
        assert!(s.mdofs_per_second() > 0.0);
    }

    #[test]
    fn offload_plan_only_exists_for_fpga_backends() {
        let cpu = SemSystem::builder()
            .backend(Backend::cpu_parallel())
            .build();
        assert!(cpu.offload_plan().is_none());
        let fpga = SemSystem::builder()
            .degree(7)
            .elements([2, 2, 2])
            .backend(Backend::fpga_simulated())
            .build();
        let plan = fpga.offload_plan().unwrap();
        assert_eq!(plan.num_elements, 8);
        assert!(!plan.padded);
    }

    #[test]
    fn manufactured_solve_converges_through_the_facade() {
        let system = SemSystem::builder()
            .degree(6)
            .elements([2, 2, 2])
            .backend(Backend::cpu_optimized())
            .build();
        let sol = system.solve_manufactured(CgOptions {
            max_iterations: 2000,
            tolerance: 1e-11,
            record_history: false,
        });
        assert!(sol.cg.converged);
        assert!(sol.max_error < 1e-5, "error {}", sol.max_error);
    }

    #[test]
    fn accelerator_design_matches_degree() {
        let system = SemSystem::builder()
            .degree(11)
            .elements([2, 2, 2])
            .backend(Backend::fpga_simulated())
            .build();
        let design: &AcceleratorDesign = system.accelerator().unwrap().design();
        assert_eq!(design.degree, 11);
        assert_eq!(design.unroll, 4);
    }

    #[test]
    fn solve_runs_through_the_simulated_backend() {
        let options = CgOptions {
            max_iterations: 2000,
            tolerance: 1e-11,
            record_history: false,
        };
        let cpu = SemSystem::builder()
            .degree(5)
            .elements([2, 2, 2])
            .backend(Backend::cpu_optimized())
            .build();
        let fpga = SemSystem::builder()
            .degree(5)
            .elements([2, 2, 2])
            .backend(Backend::fpga_simulated())
            .build();

        let cpu_report = cpu.solve(options);
        let fpga_report = fpga.solve(options);

        // The FPGA solve is accounted in simulated seconds with power...
        assert_eq!(fpga_report.source, PerfSource::Simulated);
        assert!(fpga_report.operator.seconds > 0.0);
        assert!(fpga_report.operator.power_watts.unwrap() > 50.0);
        assert!(fpga_report.transfer_seconds > 0.0);
        assert!(fpga_report.modeled_seconds() > fpga_report.operator.seconds);
        // ...the CPU solve in measured wall-clock without power...
        assert_eq!(cpu_report.source, PerfSource::Measured);
        assert!(cpu_report.operator.power_watts.is_none());
        assert_eq!(cpu_report.transfer_seconds, 0.0);
        // ...and both converge to the same solution (the FPGA datapath is the
        // optimised kernel, so the iterates are bitwise identical).
        assert!(cpu_report.converged() && fpga_report.converged());
        assert_eq!(cpu_report.iterations(), fpga_report.iterations());
        let scale = cpu_report.solution.solution.max_abs();
        for (a, b) in cpu_report
            .solution
            .solution
            .as_slice()
            .iter()
            .zip(fpga_report.solution.solution.as_slice())
        {
            assert!((a - b).abs() < 1e-10 * (1.0 + scale));
        }
        // The operator summary reflects the CG application count.
        assert_eq!(
            fpga_report.operator.applications,
            fpga_report.solution.cg.operator_applications
        );
        assert!(fpga_report.operator.applications >= fpga_report.iterations());
    }

    #[test]
    fn multi_fpga_backend_solves_and_scales_the_simulated_time() {
        let options = CgOptions {
            max_iterations: 1500,
            tolerance: 1e-10,
            record_history: false,
        };
        let one = SemSystem::builder()
            .degree(4)
            .elements([2, 2, 2])
            .backend(Backend::fpga_simulated())
            .build();
        let four = SemSystem::builder()
            .degree(4)
            .elements([2, 2, 2])
            .backend(Backend::multi_fpga(4))
            .build();
        let r1 = one.solve(options);
        let r4 = four.solve(options);
        assert!(r1.converged() && r4.converged());
        assert_eq!(r1.iterations(), r4.iterations());
        // Partitioning shrinks the per-application kernel time even after
        // the exchange overhead (8 elements over 4 boards is 2 per board).
        assert!(r4.operator.seconds < r1.operator.seconds);
        // Four boards burn more power.
        assert!(r4.operator.power_watts.unwrap() > 3.0 * r1.operator.power_watts.unwrap());
    }

    #[test]
    fn solve_many_amortises_transfer_and_matches_sequential_solves() {
        let options = CgOptions {
            max_iterations: 1000,
            tolerance: 1e-10,
            record_history: false,
        };
        let system = SemSystem::builder()
            .degree(5)
            .elements([2, 2, 2])
            .backend(Backend::fpga_simulated())
            .build();

        let batch = 16;
        let reports = system.solve_many_manufactured(batch, options);
        assert_eq!(reports.len(), batch);
        let sequential = system.solve(options);

        for report in &reports {
            // Bitwise the same solve...
            assert_eq!(report.iterations(), sequential.iterations());
            assert_eq!(
                report.solution.solution.as_slice(),
                sequential.solution.solution.as_slice()
            );
            assert!((report.solution.max_error - sequential.solution.max_error).abs() < 1e-15);
            assert_eq!(report.batch_size, batch);
            // ...with the same per-RHS kernel seconds...
            assert!((report.operator.seconds - sequential.operator.seconds).abs() < 1e-15);
            // ...but a much smaller per-RHS transfer share: the geometric
            // factors cross the link once per batch.
            assert!(report.transfer_seconds < sequential.transfer_seconds);
        }
        let batched_transfer: f64 = reports.iter().map(|r| r.transfer_seconds).sum();
        let sequential_transfer = batch as f64 * sequential.transfer_seconds;
        let drop = 1.0 - batched_transfer / sequential_transfer;
        assert!(
            drop >= 0.3,
            "per-RHS offload seconds must drop >= 30%, got {:.0}%",
            drop * 100.0
        );
    }

    #[test]
    fn pipelined_accounting_hides_transfer_behind_the_kernel() {
        let options = CgOptions {
            max_iterations: 1000,
            tolerance: 1e-10,
            record_history: false,
        };
        let system = SemSystem::builder()
            .degree(5)
            .elements([2, 2, 2])
            .backend(Backend::fpga_simulated())
            .build();

        // A standalone solve has nothing to overlap with.
        let solo = system.solve(options);
        assert_eq!(solo.pipelined_transfer_seconds, solo.transfer_seconds);
        assert_eq!(solo.pipelined_modeled_seconds(), solo.modeled_seconds());
        assert_eq!(solo.overlap_win_seconds(), 0.0);

        // At batch 16 the double-buffered pipeline hides most of the per-RHS
        // traffic: only the ramp (shared upload + first operand + last
        // result) stays exposed, spread over the batch.
        let reports = system.solve_many_manufactured(16, options);
        for report in &reports {
            assert!(report.pipelined_transfer_seconds < report.transfer_seconds);
            assert!(report.pipelined_transfer_seconds > 0.0);
            assert!(report.pipelined_modeled_seconds() < report.modeled_seconds());
            assert!(report.overlap_win_seconds() > 0.0);
        }

        // CPU backends move nothing, pipelined or not.
        let cpu = SemSystem::builder()
            .degree(5)
            .elements([2, 2, 2])
            .backend(Backend::cpu_optimized())
            .build();
        let cpu_reports = cpu.solve_many_manufactured(4, options);
        for report in &cpu_reports {
            assert_eq!(report.pipelined_transfer_seconds, 0.0);
            assert_eq!(report.overlap_win_seconds(), 0.0);
        }
    }

    #[test]
    fn cpu_solve_many_runs_batch_parallel_and_matches_solo_solves() {
        let options = CgOptions {
            max_iterations: 500,
            tolerance: 1e-10,
            record_history: false,
        };
        let system = SemSystem::builder()
            .degree(4)
            .elements([2, 2, 2])
            .backend(Backend::cpu_optimized())
            .build();
        let rhss: Vec<_> = (0..5)
            .map(|i| {
                system
                    .problem()
                    .right_hand_side(move |x, y, z| (1.0 + i as f64) * x * y * z + x)
            })
            .collect();
        let reports = system.solve_many(&rhss, options);
        assert_eq!(reports.len(), rhss.len());
        for (rhs, report) in rhss.iter().zip(&reports) {
            let solo = system.solve_rhs(rhs, options);
            assert_eq!(
                report.solution.solution.as_slice(),
                solo.solution.solution.as_slice(),
                "batched solve must be bitwise identical to a standalone solve"
            );
            assert_eq!(report.iterations(), solo.iterations());
            assert_eq!(report.transfer_seconds, 0.0);
            assert!(report.solution.max_error.is_nan(), "no exact => NaN errors");
        }
    }

    #[test]
    fn empty_batch_returns_no_reports() {
        let system = SemSystem::builder()
            .degree(3)
            .elements([2, 2, 2])
            .backend(Backend::cpu_optimized())
            .build();
        assert!(system.solve_many(&[], CgOptions::default()).is_empty());
    }

    #[test]
    fn batched_operator_application_amortises_the_launch() {
        let system = SemSystem::builder()
            .degree(7)
            .elements([2, 2, 2])
            .backend(Backend::fpga_simulated())
            .build();
        let us: Vec<_> = (0..4)
            .map(|i| {
                system
                    .mesh()
                    .evaluate(move |x, y, z| x + y * z + i as f64 * x * x)
            })
            .collect();
        let (ws, batched) = system.apply_operator_many(&us);
        assert_eq!(ws.len(), 4);
        let (w0, single) = system.apply_operator(&us[0]);
        assert_eq!(ws[0].as_slice(), w0.as_slice());
        assert_eq!(batched.applications, 4);
        assert!(batched.seconds < 4.0 * single.seconds);
        assert!(batched.seconds_per_application() < single.seconds);
    }

    #[test]
    fn builder_accepts_registry_names() {
        let system = SemSystem::builder()
            .degree(3)
            .elements([2, 2, 2])
            .backend_named("multi:2x520n")
            .build();
        assert!(system.execution().label().contains("2 x"));
        assert_eq!(system.backend(), &Backend::multi_fpga(2));
    }

    #[test]
    #[should_panic(expected = "unknown backend name")]
    fn builder_rejects_unknown_registry_names() {
        let _ = SemSystem::builder().backend_named("tpu:v4");
    }
}
