//! High-level SEM acceleration API.
//!
//! This crate is the public face of the workspace: it binds a spectral
//! element problem (mesh + operator + solver) to an execution *backend* the
//! way the paper's Fortran host binds Nekbone to either its CPU kernel or
//! the OpenCL bitstream — except that the backend is an open, trait-based
//! seam ([`AxBackend`]) and the **entire CG solve runs through it**, not
//! beside it.
//!
//! * [`backend::Backend`] — serde-friendly configuration with a string
//!   registry (`cpu:parallel`, `fpga:stratix10-gx2800`, `multi:4x520n`);
//! * [`exec`] — the [`AxBackend`] trait plus the shipped engines
//!   ([`CpuBackend`], [`FpgaSimBackend`], [`MultiFpgaBackend`]); the trait
//!   carries batched ([`AxBackend::apply_many`]) and fused
//!   ([`AxBackend::apply_dssum_into`]) entry points accelerator engines
//!   claim, and fallible variants ([`AxBackend::try_apply_into`]) through
//!   which device faults surface;
//! * [`faulty::FaultyBackend`] — a deterministic fault-injecting decorator
//!   over any backend (transient result corruption, scheduled death, sticky
//!   slowdown, hangs), driven by an `fpga_sim::FaultPlan`;
//! * [`system::SemSystem`] — a problem bound to a backend, with
//!   [`SemSystem::solve`] reporting measured wall-clock on CPUs and
//!   simulated kernel + transfer time on accelerators, and
//!   [`SemSystem::solve_many`] serving whole batches of right-hand sides
//!   with the offload transfer amortised across the batch and
//!   [`SolveReport`] carrying both the serial and the pipelined
//!   (overlap-aware, see `sem-serve`) transfer accounting;
//! * [`autotune`](autotune()) — sweep the registry (plus padded FPGA
//!   variants) and name the fastest backend for an operating point.
//!
//! ```
//! use sem_accel::{Backend, SemSystem};
//!
//! // A degree-7 box of 2x2x2 elements evaluated on the simulated FPGA.
//! let system = SemSystem::builder()
//!     .degree(7)
//!     .elements([2, 2, 2])
//!     .backend(Backend::fpga_simulated())
//!     .build();
//! let u = system.mesh().evaluate(|x, y, z| x * y * z);
//! let (w, report) = system.apply_operator(&u);
//! assert_eq!(w.len(), u.len());
//! assert!(report.gflops > 0.0);
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod autotune;
pub mod backend;
pub mod exec;
pub mod faulty;
pub mod offload;
pub mod report;
pub mod system;

pub use autotune::{autotune, TuningCandidate, TuningReport};
pub use backend::{Backend, ExecSpec};
pub use exec::{solve_fault_of, AxBackend, CpuBackend, FpgaSimBackend, MultiFpgaBackend};
pub use faulty::FaultyBackend;
pub use offload::OffloadPlan;
pub use report::{PerfSource, PerfSummary};
pub use sem_solver::PrecondSpec;
pub use system::{SemSystem, SemSystemBuilder, SolveReport};
