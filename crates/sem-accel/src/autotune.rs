//! Backend auto-tuning.
//!
//! Given a problem (degree, element count) and a set of candidate backends,
//! pick the one the models/measurements expect to be fastest — the decision a
//! production host code faces when it has both CPUs and accelerator boards
//! available.  For FPGA backends the candidate set also considers host-side
//! padding up to the next synthesised width when the degree's GLL count is
//! not unroll-friendly (Section III-E).

use crate::backend::Backend;
use crate::report::{PerfSource, PerfSummary};
use crate::system::SemSystem;
use fpga_sim::{AcceleratorDesign, FpgaAccelerator, FpgaDevice};
use serde::{Deserialize, Serialize};

/// One evaluated candidate configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TuningCandidate {
    /// Human-readable description of the configuration.
    pub label: String,
    /// Expected (measured or simulated) performance.
    pub gflops: f64,
    /// Whether the figure is a simulation or a host measurement.
    pub simulated: bool,
    /// Whether host-side padding is involved.
    pub padded: bool,
}

/// Result of an auto-tuning pass.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TuningReport {
    /// Polynomial degree of the problem.
    pub degree: usize,
    /// Number of elements of the problem.
    pub num_elements: usize,
    /// Every candidate that was evaluated, best first.
    pub candidates: Vec<TuningCandidate>,
}

impl TuningReport {
    /// The winning candidate.
    ///
    /// # Panics
    /// Panics if no candidates were evaluated (cannot happen through
    /// [`autotune`]).
    #[must_use]
    pub fn best(&self) -> &TuningCandidate {
        self.candidates.first().expect("at least one candidate")
    }
}

/// Evaluate the CPU backend (measured) and the simulated FPGA backend
/// (with and, where it applies, without host padding) for a problem, and
/// rank them by expected throughput.
#[must_use]
pub fn autotune(degree: usize, elements: [usize; 3], device: &FpgaDevice) -> TuningReport {
    let num_elements = elements[0] * elements[1] * elements[2];
    let mut candidates = Vec::new();

    // Host CPU (parallel kernel), measured on a few repetitions.
    let cpu = SemSystem::builder()
        .degree(degree)
        .elements(elements)
        .backend(Backend::cpu_parallel())
        .build();
    let cpu_perf: PerfSummary = cpu.benchmark_operator(3);
    candidates.push(TuningCandidate {
        label: "CPU (Rayon-parallel kernel)".to_string(),
        gflops: cpu_perf.gflops,
        simulated: cpu_perf.source == PerfSource::Simulated,
        padded: false,
    });

    // Simulated FPGA, native degree.
    let native = FpgaAccelerator::for_degree(degree, device).estimate(num_elements);
    candidates.push(TuningCandidate {
        label: format!(
            "FPGA bitstream N={degree} (unroll {})",
            AcceleratorDesign::for_degree(degree, device).unroll
        ),
        gflops: native.gflops,
        simulated: true,
        padded: false,
    });

    // Simulated FPGA with host padding to an unroll of four, when the native
    // design could not unroll that far.
    let native_design = AcceleratorDesign::for_degree(degree, device);
    if native_design.unroll < 4 {
        let mut padded_design = native_design;
        padded_design.unroll = 4;
        padded_design.host_padding = true;
        let padded_nx = padded_design.points_per_direction();
        let accelerator = FpgaAccelerator::new(device.clone(), padded_design);
        let report = accelerator.estimate(num_elements);
        // The padded kernel does more work per element; only the fraction
        // corresponding to the original element size is useful.
        let inflation = (padded_nx as f64 / (degree + 1) as f64).powi(3);
        let effective_gflops = report.gflops / inflation;
        candidates.push(TuningCandidate {
            label: format!("FPGA padded to {padded_nx} points (unroll 4)"),
            gflops: effective_gflops,
            simulated: true,
            padded: true,
        });
    }

    candidates.sort_by(|a, b| b.gflops.total_cmp(&a.gflops));
    TuningReport {
        degree,
        num_elements,
        candidates,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unroll_friendly_degrees_have_two_candidates() {
        let device = FpgaDevice::stratix10_gx2800();
        let report = autotune(7, [2, 2, 2], &device);
        assert_eq!(report.candidates.len(), 2);
        assert!(report.candidates.iter().all(|c| c.gflops > 0.0));
        assert!(!report.best().label.is_empty());
    }

    #[test]
    fn arbitration_limited_degrees_also_consider_padding() {
        let device = FpgaDevice::stratix10_gx2800();
        let report = autotune(9, [2, 2, 2], &device);
        assert_eq!(report.candidates.len(), 3);
        assert!(report.candidates.iter().any(|c| c.padded));
    }

    #[test]
    fn candidates_are_sorted_best_first() {
        let device = FpgaDevice::stratix10_gx2800();
        let report = autotune(5, [2, 2, 2], &device);
        for pair in report.candidates.windows(2) {
            assert!(pair[0].gflops >= pair[1].gflops);
        }
    }

    #[test]
    fn large_problems_favour_the_accelerator() {
        // At 512 elements and N = 7 the simulated FPGA should beat the CPU
        // of this container comfortably.
        let device = FpgaDevice::stratix10_gx2800();
        let report = autotune(7, [8, 8, 8], &device);
        assert!(report.best().simulated, "best: {}", report.best().label);
    }
}
