//! Backend auto-tuning over the execution-backend registry.
//!
//! Given a problem (degree, element count), evaluate **every** registered
//! backend — the host CPU kernels measured, the simulated FPGA and
//! multi-board configurations modelled — and rank them by expected
//! throughput: the decision a production host faces when it picks where to
//! run each (degree, element-count) operating point.  FPGA entries whose
//! native design cannot unroll to four also get a host-padded variant
//! (Section III-E), so the report covers padding choices too.

use crate::backend::Backend;
use fpga_sim::{synthesize, AcceleratorDesign, FpgaAccelerator};
use sem_mesh::{BoxMesh, ElementField, MeshDeformation};
use sem_obs::WallTimer;
use serde::{Deserialize, Serialize};

/// One evaluated candidate configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TuningCandidate {
    /// The registry name that instantiates this candidate
    /// (`Backend::from_name`), when it has one; padded variants are derived
    /// configurations without a registry entry.
    pub name: Option<String>,
    /// Human-readable description of the configuration.
    pub label: String,
    /// Expected (measured or simulated) performance.
    pub gflops: f64,
    /// Whether the figure is a simulation or a host measurement.
    pub simulated: bool,
    /// Whether host-side padding is involved.
    pub padded: bool,
}

/// Result of an auto-tuning pass.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TuningReport {
    /// Polynomial degree of the problem.
    pub degree: usize,
    /// Number of elements of the problem.
    pub num_elements: usize,
    /// Every candidate that was evaluated, best first.
    pub candidates: Vec<TuningCandidate>,
}

impl TuningReport {
    /// The winning candidate.
    ///
    /// # Panics
    /// Panics if no candidates were evaluated (cannot happen through
    /// [`autotune`]).
    #[must_use]
    pub fn best(&self) -> &TuningCandidate {
        self.candidates.first().expect("at least one candidate")
    }

    /// The registry name of the fastest candidate a host can instantiate by
    /// name — the answer to "which backend should serve this operating
    /// point?".  `None` only if no evaluated candidate has a registry name
    /// (cannot happen through [`autotune`], which sweeps the registry).
    #[must_use]
    pub fn winning_backend(&self) -> Option<&str> {
        self.candidates.iter().find_map(|c| c.name.as_deref())
    }
}

/// Evaluate every backend in [`Backend::deployable_registry_names`] for a
/// problem — CPU backends measured over a few repetitions, accelerator
/// backends through their calibrated models — plus host-padded variants of
/// FPGA devices whose native design is not unroll-friendly, and rank all of
/// them by expected throughput.  `fpga:projected:*` entries are excluded:
/// they are model-designed to win, and the tuner's job is to name a backend
/// one can deploy on.
///
/// # Panics
/// Panics if a registry backend fails to instantiate (a catalogue device
/// that cannot fit its production design).
#[must_use]
pub fn autotune(degree: usize, elements: [usize; 3]) -> TuningReport {
    let num_elements = elements[0] * elements[1] * elements[2];
    let mut candidates = Vec::new();

    // One mesh shared by every candidate: only the execution engine differs
    // between registry entries, so the discretisation is built once.
    let mesh = BoxMesh::new(degree, elements, [1.0; 3], MeshDeformation::None);
    let u = mesh.evaluate(|x, y, z| (x + 0.3) * (y - 0.7) * (z + 0.11));
    let mut w = ElementField::zeros(degree, num_elements);

    for name in Backend::deployable_registry_names() {
        let config = Backend::from_name(&name).expect("registry names resolve");
        let engine = config.instantiate(&mesh);
        let flops = engine.flops_per_application() as f64;
        let (gflops, simulated) = match engine.simulated_seconds_per_application() {
            Some(seconds) => (flops / seconds / 1e9, true),
            None => {
                // Host kernels: measure a few repetitions.
                let timer = WallTimer::start();
                for _ in 0..3 {
                    engine.apply_into(&u, &mut w);
                }
                let seconds = timer.elapsed_wall_seconds().max(1e-12);
                (3.0 * flops / seconds / 1e9, false)
            }
        };
        candidates.push(TuningCandidate {
            label: format!("{name} ({})", engine.label()),
            name: Some(name),
            gflops,
            simulated,
            padded: false,
        });
    }

    // Host-padded FPGA variants: when a device's native design cannot unroll
    // to four, padding elements up to the next synthesised width trades
    // extra (wasted) work for an arbitration-free datapath.
    for slug in arch_db::fpga_device_slugs() {
        let device = arch_db::fpga_device(slug).expect("catalogue slugs resolve");
        let native_design = AcceleratorDesign::for_degree(degree, &device);
        if native_design.unroll >= 4 {
            continue;
        }
        let mut padded_design = native_design;
        padded_design.unroll = 4;
        padded_design.host_padding = true;
        if !synthesize(&padded_design, &device).fits {
            continue;
        }
        let padded_nx = padded_design.points_per_direction();
        let accelerator = FpgaAccelerator::new(device, padded_design);
        let report = accelerator.estimate(num_elements);
        // The padded kernel does more work per element; only the fraction
        // corresponding to the original element size is useful.
        let inflation = (padded_nx as f64 / (degree + 1) as f64).powi(3);
        candidates.push(TuningCandidate {
            name: None,
            label: format!("fpga:{slug} padded to {padded_nx} points (unroll 4)"),
            gflops: report.gflops / inflation,
            simulated: true,
            padded: true,
        });
    }

    candidates.sort_by(|a, b| b.gflops.total_cmp(&a.gflops));
    TuningReport {
        degree,
        num_elements,
        candidates,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::SemSystem;

    #[test]
    fn sweeps_the_whole_registry() {
        let report = autotune(7, [2, 2, 2]);
        let registry = Backend::deployable_registry_names();
        // Degree 7 is unroll-friendly on every catalogue device, so the
        // candidate set is exactly the deployable registry.
        assert_eq!(report.candidates.len(), registry.len());
        for name in &registry {
            assert!(
                report
                    .candidates
                    .iter()
                    .any(|c| c.name.as_deref() == Some(name.as_str())),
                "registry entry `{name}` missing from the report"
            );
        }
        assert!(report.candidates.iter().all(|c| c.gflops > 0.0));
        // Hypothetical devices never compete for the crown.
        assert!(report
            .candidates
            .iter()
            .all(|c| !c.label.contains("projected:")));
    }

    #[test]
    fn arbitration_limited_degrees_also_consider_padding() {
        let report = autotune(9, [2, 2, 2]);
        assert!(
            report.candidates.len() > Backend::deployable_registry_names().len(),
            "padded variants must join the registry candidates"
        );
        let padded: Vec<_> = report.candidates.iter().filter(|c| c.padded).collect();
        assert!(!padded.is_empty());
        assert!(
            padded.iter().all(|c| c.name.is_none() && c.simulated),
            "padded variants are derived simulated configurations"
        );
    }

    #[test]
    fn candidates_are_sorted_best_first_and_the_winner_is_instantiable() {
        let report = autotune(5, [2, 2, 2]);
        for pair in report.candidates.windows(2) {
            assert!(pair[0].gflops >= pair[1].gflops);
        }
        let winner = report.winning_backend().expect("registry winner");
        let config = Backend::from_name(winner).expect("winner resolves");
        let system = SemSystem::builder()
            .degree(5)
            .elements([2, 2, 2])
            .backend(config)
            .build();
        assert_eq!(system.mesh().degree(), 5);
    }

    #[test]
    fn large_problems_favour_an_accelerator() {
        // At 512 elements and N = 7 a simulated FPGA should beat the CPU
        // of this container comfortably.
        let report = autotune(7, [8, 8, 8]);
        assert!(report.best().simulated, "best: {}", report.best().label);
        let winner = report.winning_backend().unwrap();
        assert!(
            winner.starts_with("fpga:") || winner.starts_with("multi:"),
            "winner: {winner}"
        );
    }
}
