//! Host-side offload planning.
//!
//! Mirrors the host responsibilities of the paper's OpenCL flow: lay the
//! geometric factors out as six separate buffers (Section III-B), distribute
//! the eight data regions over the four external banks (Section III-D),
//! optionally pad elements up to the synthesised width (Section III-E), and
//! account for the PCIe transfer volume that the evaluation deliberately
//! excludes from its timings.

use fpga_sim::{AcceleratorDesign, FpgaDevice};
use perf_model::PipelineCost;
use serde::{Deserialize, Serialize};

/// A plan for moving one problem's data to and from the accelerator board.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OffloadPlan {
    /// Polynomial degree of the kernel bitstream.
    pub degree: usize,
    /// Number of elements to process.
    pub num_elements: usize,
    /// Whether host-side padding to the synthesised width is required.
    pub padded: bool,
    /// Points per direction actually sent to the device.
    pub device_points_per_direction: usize,
    /// Bytes transferred host → device (operand + geometric factors + the two
    /// derivative matrices).
    pub bytes_to_device: u64,
    /// Bytes transferred device → host (the result field).
    pub bytes_from_device: u64,
    /// Number of distinct device buffers (data regions) allocated.
    pub device_buffers: usize,
    /// Number of external memory banks the buffers are spread over.
    pub memory_banks: usize,
    /// Bytes of the one-off preconditioner upload (FDM eigenvector and
    /// inverse eigenvalue tables plus the coarse factor, or the Jacobi
    /// inverse diagonal) when the preconditioner runs on-device; zero
    /// otherwise.  Included in [`OffloadPlan::bytes_to_device`], so it is
    /// shared (once-per-session) traffic like the geometric factors.
    pub precond_table_bytes: u64,
}

impl OffloadPlan {
    /// Build the plan for running `num_elements` elements through `design` on
    /// `device`.
    #[must_use]
    pub fn new(design: &AcceleratorDesign, device: &FpgaDevice, num_elements: usize) -> Self {
        let n1 = design.degree + 1;
        let device_nx = design.points_per_direction();
        let padded = device_nx != n1;
        let dofs = (device_nx * device_nx * device_nx) as u64 * num_elements as u64;
        let dbl = std::mem::size_of::<f64>() as u64;
        // u + 6 geometric factor planes in, w out, plus the two (N+1)^2
        // derivative matrices.
        let bytes_to_device = dofs * dbl * 7 + 2 * (device_nx * device_nx) as u64 * dbl;
        let bytes_from_device = dofs * dbl;
        Self {
            degree: design.degree,
            num_elements,
            padded,
            device_points_per_direction: device_nx,
            bytes_to_device,
            bytes_from_device,
            // u, w, 6 gxyz planes: the "eight different data regions" of §III-D.
            device_buffers: 8,
            memory_banks: device.memory_banks,
            precond_table_bytes: 0,
        }
    }

    /// The same plan with a one-off on-device preconditioner upload folded
    /// into the host→device (shared) traffic.
    #[must_use]
    pub fn with_precond_tables(mut self, bytes: u64) -> Self {
        self.bytes_to_device = self.bytes_to_device - self.precond_table_bytes + bytes;
        self.precond_table_bytes = bytes;
        self
    }

    /// Total PCIe traffic in bytes.
    #[must_use]
    pub fn total_transfer_bytes(&self) -> u64 {
        self.bytes_to_device + self.bytes_from_device
    }

    /// Bytes of the operand field `u` (one upload per right-hand side).
    #[must_use]
    pub fn operand_bytes(&self) -> u64 {
        // The result field has the same extent as the operand.
        self.bytes_from_device
    }

    /// Bytes shared by every solve on this problem: the six geometric-factor
    /// planes and the two derivative matrices.  A batched solve uploads them
    /// once, however many right-hand sides it serves.
    #[must_use]
    pub fn shared_bytes(&self) -> u64 {
        self.bytes_to_device - self.operand_bytes()
    }

    /// Total PCIe traffic of serving `batch` right-hand sides in one
    /// session: the shared data crosses the link once, then each RHS pays
    /// only its operand upload and result download.  `batch == 1` equals
    /// [`OffloadPlan::total_transfer_bytes`].
    ///
    /// # Panics
    /// Panics if `batch` is zero.
    #[must_use]
    pub fn batched_transfer_bytes(&self, batch: usize) -> u64 {
        assert!(batch > 0, "need at least one right-hand side");
        let per_rhs = self.operand_bytes() + self.bytes_from_device;
        self.shared_bytes() + per_rhs * batch as u64
    }

    /// Transfer time in seconds over a link of `gbytes_per_sec` (the paper
    /// excludes this from kernel timings; exposed for end-to-end studies).
    #[must_use]
    pub fn transfer_seconds(&self, gbytes_per_sec: f64) -> f64 {
        self.total_transfer_bytes() as f64 / (gbytes_per_sec * 1e9)
    }

    /// Transfer time of a whole `batch`-RHS session over a link of
    /// `gbytes_per_sec` (see [`OffloadPlan::batched_transfer_bytes`]).
    ///
    /// # Panics
    /// Panics if `batch` is zero.
    #[must_use]
    pub fn batched_transfer_seconds(&self, gbytes_per_sec: f64, batch: usize) -> f64 {
        self.batched_transfer_bytes(batch) as f64 / (gbytes_per_sec * 1e9)
    }

    /// Seconds the shared data (geometric factors + derivative matrices)
    /// takes to cross a `gbytes_per_sec` link — the once-per-session upload
    /// of a batched or pipelined serve.
    #[must_use]
    pub fn shared_upload_seconds(&self, gbytes_per_sec: f64) -> f64 {
        self.shared_bytes() as f64 / (gbytes_per_sec * 1e9)
    }

    /// Seconds one operand field takes to upload over a `gbytes_per_sec`
    /// link — the per-RHS H2D stage of the offload pipeline.
    #[must_use]
    pub fn operand_upload_seconds(&self, gbytes_per_sec: f64) -> f64 {
        self.operand_bytes() as f64 / (gbytes_per_sec * 1e9)
    }

    /// Seconds one result field takes to download over a `gbytes_per_sec`
    /// link — the per-RHS D2H stage of the offload pipeline.
    #[must_use]
    pub fn result_download_seconds(&self, gbytes_per_sec: f64) -> f64 {
        self.bytes_from_device as f64 / (gbytes_per_sec * 1e9)
    }

    /// The three-stage pipeline cost of serving right-hand sides whose
    /// compute stage (the whole solve's kernel seconds) costs
    /// `compute_seconds_per_rhs`: shared upload once, then per-RHS operand
    /// upload / kernel / result download over a `gbytes_per_sec` full-duplex
    /// link.  Feed it to [`perf_model::PipelineCost`]'s closed forms for the
    /// serial-vs-overlapped session accounting.
    #[must_use]
    pub fn pipeline_cost(&self, gbytes_per_sec: f64, compute_seconds_per_rhs: f64) -> PipelineCost {
        PipelineCost {
            shared_upload_seconds: self.shared_upload_seconds(gbytes_per_sec),
            upload_seconds: self.operand_upload_seconds(gbytes_per_sec),
            compute_seconds: compute_seconds_per_rhs,
            download_seconds: self.result_download_seconds(gbytes_per_sec),
        }
    }

    /// Buffers per memory bank under the banked allocation.
    #[must_use]
    pub fn buffers_per_bank(&self) -> usize {
        self.device_buffers.div_ceil(self.memory_banks)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unpadded_plan_accounts_for_eight_words_per_dof() {
        let device = FpgaDevice::stratix10_gx2800();
        let design = AcceleratorDesign::for_degree(7, &device);
        let plan = OffloadPlan::new(&design, &device, 4096);
        assert!(!plan.padded);
        assert_eq!(plan.device_points_per_direction, 8);
        let dofs = 512_u64 * 4096;
        assert_eq!(plan.bytes_from_device, dofs * 8);
        assert_eq!(plan.bytes_to_device, dofs * 8 * 7 + 2 * 64 * 8);
        assert_eq!(plan.total_transfer_bytes(), dofs * 64 + 2 * 64 * 8);
        assert_eq!(plan.device_buffers, 8);
        assert_eq!(plan.buffers_per_bank(), 2);
    }

    #[test]
    fn padded_plan_inflates_the_transfers() {
        let device = FpgaDevice::stratix10_gx2800();
        let mut design = AcceleratorDesign::for_degree(9, &device);
        let unpadded = OffloadPlan::new(&design, &device, 64);
        design.unroll = 4;
        design.host_padding = true;
        let padded = OffloadPlan::new(&design, &device, 64);
        assert!(padded.padded);
        assert_eq!(padded.device_points_per_direction, 12);
        assert!(padded.bytes_to_device > unpadded.bytes_to_device);
    }

    #[test]
    fn batched_transfers_pay_the_shared_upload_once() {
        let device = FpgaDevice::stratix10_gx2800();
        let design = AcceleratorDesign::for_degree(7, &device);
        let plan = OffloadPlan::new(&design, &device, 512);
        assert_eq!(plan.batched_transfer_bytes(1), plan.total_transfer_bytes());
        let sequential_16 = 16 * plan.total_transfer_bytes();
        let batched_16 = plan.batched_transfer_bytes(16);
        assert!(batched_16 < sequential_16);
        // Exactly: shared once instead of 16 times.
        assert_eq!(sequential_16 - batched_16, 15 * plan.shared_bytes());
        // Per-RHS traffic drops by well over the 30% acceptance bar (the
        // shared geometric factors dominate the upload).
        let drop = 1.0 - batched_16 as f64 / sequential_16 as f64;
        assert!(drop > 0.3, "drop {drop}");
    }

    #[test]
    fn piecewise_stage_seconds_recompose_the_session_totals() {
        let device = FpgaDevice::stratix10_gx2800();
        let design = AcceleratorDesign::for_degree(7, &device);
        let plan = OffloadPlan::new(&design, &device, 512);
        let gbs = 12.0;
        let pieces = plan.shared_upload_seconds(gbs)
            + plan.operand_upload_seconds(gbs)
            + plan.result_download_seconds(gbs);
        assert!((pieces - plan.transfer_seconds(gbs)).abs() < 1e-15 * pieces.abs().max(1.0));

        // The pipeline cost of a compute-dominated solve hides almost all of
        // the per-RHS traffic at batch 16.
        let cost = plan.pipeline_cost(gbs, 1.0);
        assert_eq!(cost.compute_seconds, 1.0);
        let serial = cost.serial_session_seconds(16);
        let overlapped = cost.overlapped_session_seconds(16);
        assert!(overlapped < serial);
        assert!(cost.exposed_transfer_seconds(16) < 16.0 * plan.transfer_seconds(gbs));
    }

    #[test]
    fn precond_tables_ride_the_shared_upload() {
        let device = FpgaDevice::stratix10_gx2800();
        let design = AcceleratorDesign::for_degree(7, &device);
        let plain = OffloadPlan::new(&design, &device, 512);
        let priced = plain.with_precond_tables(1_000_000);
        assert_eq!(priced.precond_table_bytes, 1_000_000);
        assert_eq!(priced.bytes_to_device, plain.bytes_to_device + 1_000_000);
        // Shared, not per-RHS: a batch pays the tables once.
        assert_eq!(priced.shared_bytes(), plain.shared_bytes() + 1_000_000);
        assert_eq!(priced.operand_bytes(), plain.operand_bytes());
        assert_eq!(
            priced.batched_transfer_bytes(16),
            plain.batched_transfer_bytes(16) + 1_000_000
        );
        // Idempotent re-pricing.
        assert_eq!(priced.with_precond_tables(1_000_000), priced);
        assert_eq!(priced.with_precond_tables(0), plain);
    }

    #[test]
    fn transfer_time_scales_inversely_with_link_speed() {
        let device = FpgaDevice::stratix10_gx2800();
        let design = AcceleratorDesign::for_degree(7, &device);
        let plan = OffloadPlan::new(&design, &device, 1024);
        let slow = plan.transfer_seconds(8.0);
        let fast = plan.transfer_seconds(16.0);
        assert!((slow / fast - 2.0).abs() < 1e-12);
    }
}
