//! Performance summaries returned by the system API.

use serde::{Deserialize, Serialize};

/// Whether a timing figure was measured on the host or produced by the
/// accelerator simulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PerfSource {
    /// Wall-clock measurement of native execution.
    Measured,
    /// Cycle-model estimate from the FPGA simulator.
    Simulated,
}

/// A summary of one kernel evaluation (or a batch of evaluations).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PerfSummary {
    /// Polynomial degree.
    pub degree: usize,
    /// Number of elements.
    pub num_elements: usize,
    /// Number of operator applications the figures cover.
    pub applications: usize,
    /// Total wall (or simulated) time in seconds.
    pub seconds: f64,
    /// Achieved GFLOP/s.
    pub gflops: f64,
    /// Degrees of freedom processed per second.
    pub dofs_per_second: f64,
    /// Power estimate in watts (simulated backends only).
    pub power_watts: Option<f64>,
    /// Power efficiency in GFLOP/s/W, when power is known.
    pub gflops_per_watt: Option<f64>,
    /// Provenance of the timing.
    pub source: PerfSource,
}

impl PerfSummary {
    /// Throughput in millions of DOFs per second — the DOF-rate metric the
    /// paper argues makes cross-degree comparisons easier.
    #[must_use]
    pub fn mdofs_per_second(&self) -> f64 {
        self.dofs_per_second / 1e6
    }

    /// Average seconds of one operator application over the summarised
    /// batch — the per-RHS figure batched serving studies compare (zero
    /// applications yields the raw seconds).
    #[must_use]
    pub fn seconds_per_application(&self) -> f64 {
        self.seconds / self.applications.max(1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dof_rate_conversion() {
        let s = PerfSummary {
            degree: 7,
            num_elements: 64,
            applications: 1,
            seconds: 0.5,
            gflops: 10.0,
            dofs_per_second: 2.5e8,
            power_watts: None,
            gflops_per_watt: None,
            source: PerfSource::Measured,
        };
        assert!((s.mdofs_per_second() - 250.0).abs() < 1e-9);
    }
}
