//! Criterion benchmark of the FPGA-accelerator simulator itself: how long the
//! functional simulation of one kernel invocation takes on the host, per
//! degree (the *simulated* FPGA timings are reported by the `table1`/`fig1`
//! binaries; this bench tracks the cost of running the simulator).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fpga_sim::{FpgaAccelerator, FpgaDevice};
use sem_mesh::{BoxMesh, GeometricFactors};

fn bench_fpga_sim(c: &mut Criterion) {
    let mut group = c.benchmark_group("fpga_sim_execute");
    group.sample_size(10);
    let device = FpgaDevice::stratix10_gx2800();
    for &degree in &[3_usize, 7, 11] {
        let mesh = BoxMesh::unit_cube(degree, 2);
        let geo = GeometricFactors::from_mesh(&mesh);
        let u = mesh.evaluate(|x, y, z| x * y + z);
        let acc = FpgaAccelerator::for_degree(degree, &device);
        group.bench_with_input(BenchmarkId::new("execute", degree), &degree, |b, _| {
            b.iter(|| acc.execute(std::hint::black_box(&u), &geo))
        });
        group.bench_with_input(
            BenchmarkId::new("estimate_4096", degree),
            &degree,
            |b, _| b.iter(|| acc.estimate(std::hint::black_box(4096))),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_fpga_sim);
criterion_main!(benches);
