//! Criterion benchmark of the basis-level building blocks: GLL point
//! generation, derivative-matrix construction and geometric-factor setup.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sem_basis::{gauss_lobatto_legendre, DerivativeMatrix};
use sem_mesh::{BoxMesh, GeometricFactors};

fn bench_setup(c: &mut Criterion) {
    let mut group = c.benchmark_group("setup");
    for &degree in &[7_usize, 11, 15] {
        group.bench_with_input(BenchmarkId::new("gll_points", degree), &degree, |b, &n| {
            b.iter(|| gauss_lobatto_legendre(std::hint::black_box(n + 1)))
        });
        group.bench_with_input(
            BenchmarkId::new("derivative_matrix", degree),
            &degree,
            |b, &n| b.iter(|| DerivativeMatrix::new(std::hint::black_box(n))),
        );
        group.bench_with_input(
            BenchmarkId::new("geometric_factors_8_elements", degree),
            &degree,
            |b, &n| {
                let mesh = BoxMesh::unit_cube(n, 2);
                b.iter(|| GeometricFactors::from_mesh(std::hint::black_box(&mesh)))
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_setup);
criterion_main!(benches);
