//! Criterion benchmark of the Nekbone-style CG proxy (fixed iteration count),
//! the end-to-end workload the paper's kernel lives inside.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sem_kernel::AxImplementation;
use sem_solver::ProxyConfig;

fn bench_proxy(c: &mut Criterion) {
    let mut group = c.benchmark_group("nekbone_proxy");
    group.sample_size(10);
    for &(degree, elems) in &[(3_usize, 4_usize), (7, 2), (9, 2)] {
        let config = ProxyConfig {
            degree,
            elements: [elems, elems, elems],
            cg_iterations: 20,
            implementation: AxImplementation::Parallel,
            precond: sem_solver::PrecondSpec::Jacobi,
        };
        group.bench_with_input(
            BenchmarkId::new("cg20", format!("N{degree}_E{}", elems * elems * elems)),
            &config,
            |b, cfg| b.iter(|| cfg.run()),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_proxy);
criterion_main!(benches);
