//! Criterion benchmark of the gather–scatter (direct stiffness summation)
//! phase, one of the surrounding phases the paper lists as a further
//! acceleration candidate.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sem_mesh::{BoxMesh, GatherScatter};

fn bench_dssum(c: &mut Criterion) {
    let mut group = c.benchmark_group("gather_scatter");
    group.sample_size(20);
    for &(degree, elems) in &[(7_usize, 4_usize), (11, 3), (15, 2)] {
        let mesh = BoxMesh::unit_cube(degree, elems);
        let gs = GatherScatter::from_mesh(&mesh);
        let field = mesh.evaluate(|x, y, z| x + y * z);
        group.bench_with_input(
            BenchmarkId::new("dssum", format!("N{degree}_E{}", mesh.num_elements())),
            &degree,
            |b, _| {
                b.iter(|| {
                    let mut f = field.clone();
                    gs.direct_stiffness_sum(&mut f);
                    f
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_dssum);
criterion_main!(benches);
