//! Criterion benchmark of the native CPU `Ax` kernels (reference, optimised,
//! Rayon-parallel) across the paper's polynomial degrees — the host-side
//! counterpart of Table I.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sem_kernel::{AxImplementation, PoissonOperator};
use sem_mesh::{BoxMesh, ElementField};

fn bench_ax(c: &mut Criterion) {
    let mut group = c.benchmark_group("cpu_ax");
    group.sample_size(10);
    for &degree in &[3_usize, 7, 11, 15] {
        // Keep the total DOF count roughly constant across degrees.
        let elems_per_side = match degree {
            3 => 8,
            7 => 4,
            _ => 2,
        };
        let mesh = BoxMesh::unit_cube(degree, elems_per_side);
        let num_elements = mesh.num_elements();
        let flops = sem_kernel::ops::total_flops(degree, num_elements);
        group.throughput(Throughput::Elements(flops));

        let u = mesh.evaluate(|x, y, z| (x + y) * z + 0.5);
        for (label, implementation) in [
            ("reference", AxImplementation::Reference),
            ("optimized", AxImplementation::Optimized),
            ("parallel", AxImplementation::Parallel),
        ] {
            let op = PoissonOperator::new(&mesh, implementation);
            let mut w = ElementField::zeros(degree, num_elements);
            group.bench_with_input(
                BenchmarkId::new(label, format!("N{degree}_E{num_elements}")),
                &degree,
                |b, _| b.iter(|| op.apply_into(std::hint::black_box(&u), &mut w)),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_ax);
criterion_main!(benches);
