//! Regenerates the Section III optimisation ladder: baseline → BRAM caching +
//! unrolling + split geometric factors → II=1 → banked external memory.
//!
//! Run with `cargo run -p bench --bin ablation --release [degree]`.

use bench::table::fmt;
use bench::TableWriter;

fn main() {
    let degree: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(7);
    let ladder = bench::ladder_gflops(degree, 4096);
    let paper_ladder: &[(&str, Option<f64>)] = &[
        ("baseline", Some(0.025)),
        ("+BRAM/unroll/split-gxyz", Some(10.0)),
        ("+II=1", Some(60.0)),
        ("+banked memory", Some(109.0)),
    ];

    let mut table = TableWriter::new(vec![
        "Stage",
        "GFLOP/s (sim)",
        "GFLOP/s (paper, N=7)",
        "Speedup vs baseline",
    ]);
    let baseline = ladder[0].1;
    for (i, (label, gflops)) in ladder.iter().enumerate() {
        let paper = if degree == 7 {
            paper_ladder[i].1.map_or("-".to_string(), |v| fmt(v, 3))
        } else {
            "-".to_string()
        };
        table.row(vec![
            (*label).to_string(),
            fmt(*gflops, 3),
            paper,
            format!("{:.0}x", gflops / baseline),
        ]);
    }
    println!("Section III optimisation ladder, N = {degree}, 4096 elements\n");
    table.print();
}
