//! Regenerates Fig. 1: observed performance (GFLOP/s) as a function of the
//! problem size (#elements) and the polynomial degree, for the simulated
//! FPGA accelerator and every CPU/GPU baseline.
//!
//! Run with `cargo run -p bench --bin fig1 --release`.
//! Pass a degree as the first argument to print a single panel.

use bench::experiments::{FIG1_ELEMENT_COUNTS, TABLE1_DEGREES};
use bench::table::fmt;
use bench::TableWriter;

fn print_panel(degree: usize) {
    let series = bench::fig1_series(degree);
    let machines: Vec<String> = {
        let mut names = Vec::new();
        for p in &series {
            if !names.contains(&p.machine) {
                names.push(p.machine.clone());
            }
        }
        names
    };

    let mut headers = vec!["#elements".to_string()];
    headers.extend(machines.iter().cloned());
    let mut table = TableWriter::new(headers);
    for &elements in &FIG1_ELEMENT_COUNTS {
        let mut row = vec![elements.to_string()];
        for machine in &machines {
            let point = series
                .iter()
                .find(|p| p.num_elements == elements && &p.machine == machine)
                .expect("series covers every (machine, size) pair");
            row.push(fmt(point.gflops, 1));
        }
        table.row(row);
    }
    println!("\nFig. 1 panel — N = {degree} (GFLOP/s vs #elements)\n");
    table.print();
}

fn main() {
    let arg: Option<usize> = std::env::args().nth(1).and_then(|s| s.parse().ok());
    match arg {
        Some(degree) => print_panel(degree),
        None => {
            for &degree in &TABLE1_DEGREES {
                print_panel(degree);
            }
        }
    }
}
