//! Model sensitivity sweep: which resource (logic, DSP, bandwidth) buys
//! performance on the evaluated board, per polynomial degree — the ablation
//! behind the paper's "invest the silicon in logic (and bandwidth)"
//! recommendation of Section V-D.
//!
//! Run with `cargo run -p bench --bin sensitivity --release`.

use bench::table::fmt;
use bench::TableWriter;
use perf_model::sensitivity::{investment_ranking, sweep, SweepParameter};
use perf_model::FpgaDevice;

fn main() {
    let device = FpgaDevice::stratix10_gx2800();
    let degrees = [7_usize, 11, 15];

    println!("Performance gain from a 4x investment in one resource (GX2800 base, 300 MHz):\n");
    let mut table = TableWriter::new(vec![
        "N",
        "4x bandwidth",
        "4x logic",
        "4x DSPs",
        "best investment",
    ]);
    for &degree in &degrees {
        let ranking = investment_ranking(&device, degree, 300.0);
        let gain_of = |p: SweepParameter| {
            ranking
                .iter()
                .find(|(q, _)| *q == p)
                .map_or(1.0, |(_, g)| *g)
        };
        table.row(vec![
            degree.to_string(),
            format!("{}x", fmt(gain_of(SweepParameter::Bandwidth), 2)),
            format!("{}x", fmt(gain_of(SweepParameter::Logic), 2)),
            format!("{}x", fmt(gain_of(SweepParameter::Dsp), 2)),
            format!("{:?}", ranking[0].0),
        ]);
    }
    table.print();

    println!("\nBandwidth sweep at N = 11 (where does the fabric become the limit?):\n");
    let s = sweep(
        &device,
        SweepParameter::Bandwidth,
        11,
        &perf_model::sensitivity::default_factors(),
        300.0,
    );
    let mut table = TableWriter::new(vec!["bandwidth factor", "GB/s", "GFLOP/s", "bound"]);
    for p in &s.points {
        table.row(vec![
            fmt(p.factor, 1),
            fmt(device.memory_bandwidth_gbs * p.factor, 1),
            fmt(p.prediction.gflops, 0),
            format!("{:?}", p.prediction.bound),
        ]);
    }
    table.print();
    if let Some(f) = s.saturation_factor() {
        println!(
            "\nThe memory system stops being the bottleneck at ~{f:.1}x the current bandwidth;"
        );
        println!(
            "beyond that the double-precision logic (ALM) demand limits the design — the paper's"
        );
        println!("core argument for a higher logic-to-DSP ratio in future devices.");
    }
}
