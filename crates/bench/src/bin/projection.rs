//! Regenerates the Section V-D projections: the Agilex 027, the Stratix 10M,
//! the "Stratix 10M + more DSPs + 600 GB/s" variant, and the hypothetical
//! ideal FPGA, plus the inverse design question ("what would it take to beat
//! an A100?").
//!
//! Run with `cargo run -p bench --bin projection --release`.

use bench::table::fmt;
use bench::TableWriter;
use perf_model::projection::{design_fpga_for_targets, project_device};
use perf_model::throughput::ArbitrationPolicy;
use perf_model::{FpgaDevice, FpuCost, PerformanceBound};

fn bound_label(b: PerformanceBound) -> &'static str {
    match b {
        PerformanceBound::Bandwidth => "memory",
        PerformanceBound::Logic => "logic",
        PerformanceBound::Dsp => "DSP",
        PerformanceBound::Bram => "BRAM",
    }
}

fn main() {
    let degrees = [7_usize, 11, 15];
    let devices = [
        (
            FpgaDevice::stratix10_gx2800(),
            ArbitrationPolicy::PowerOfTwoDivisor,
        ),
        (FpgaDevice::agilex_027(), ArbitrationPolicy::PowerOfTwo),
        (FpgaDevice::stratix10m(), ArbitrationPolicy::PowerOfTwo),
        (FpgaDevice::stratix10m_plus(), ArbitrationPolicy::PowerOfTwo),
        (
            FpgaDevice::hypothetical_ideal(),
            ArbitrationPolicy::Unconstrained,
        ),
    ];

    let mut table = TableWriter::new(vec![
        "Device",
        "N=7 (GF/s)",
        "bound",
        "N=11 (GF/s)",
        "bound",
        "N=15 (GF/s)",
        "bound",
    ]);
    for (device, policy) in &devices {
        let out = project_device(device, &degrees, 300.0, *policy);
        let mut row = vec![device.name.clone()];
        for &d in &degrees {
            let p = out.for_degree(d).unwrap().prediction;
            row.push(fmt(p.gflops, 0));
            row.push(bound_label(p.bound).to_string());
        }
        table.row(row);
    }
    println!("Section V-D — projected SEM-accelerator performance at 300 MHz\n");
    table.print();

    // Inverse question: size a device for A100-class kernel performance.
    let target = [(7, 2_100.0), (11, 3_000.0), (15, 3_970.0)];
    let designed = design_fpga_for_targets(&target, 300.0, FpuCost::stratix10_double());
    let gx = FpgaDevice::stratix10_gx2800();
    println!("\nWhat would it take to beat the A100 (paper's targets: 2.1/3.0/3.97 TFLOP/s)?");
    println!(
        "  ALMs : {:>10.0}  ({:.1}x the GX2800)",
        designed.resources.alms,
        designed.resources.alms / gx.resources.alms
    );
    println!(
        "  DSPs : {:>10.0}  ({:.1}x the GX2800)",
        designed.resources.dsps,
        designed.resources.dsps / gx.resources.dsps
    );
    println!(
        "  BRAM : {:>10.0}  ({:.1}x the GX2800)",
        designed.resources.brams.max(gx.resources.brams * 1.1),
        designed.resources.brams.max(gx.resources.brams * 1.1) / gx.resources.brams
    );
    println!(
        "  Mem  : {:>10.1} GB/s (A100 has 1555 GB/s)",
        designed.memory_bandwidth_gbs
    );
    println!("\nPaper's answer: 6.2 M ALMs, 20 k DSPs, ~12.9 k BRAMs, 1.2 TB/s.");
}
