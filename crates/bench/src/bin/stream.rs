//! Simulated STREAM-for-FPGA sweep: effective external bandwidth vs. transfer
//! size for banked and interleaved allocations — the measurement (paper
//! reference [42]) the evaluation uses to explain its small-input behaviour
//! and model error.
//!
//! Run with `cargo run -p bench --bin stream --release`.

use bench::table::fmt;
use bench::TableWriter;
use fpga_sim::stream::{default_vector_lengths, stream_sweep, StreamKernel};
use fpga_sim::{FpgaDevice, MemoryAllocation};

fn main() {
    let device = FpgaDevice::stratix10_gx2800();
    let lengths = default_vector_lengths();
    let banked = stream_sweep(&device, MemoryAllocation::Banked, &lengths);
    let interleaved = stream_sweep(&device, MemoryAllocation::Interleaved, &lengths);

    let mut table = TableWriter::new(vec![
        "vector KiB",
        "triad banked (GB/s)",
        "triad interleaved (GB/s)",
        "% of peak (banked)",
    ]);
    for &len in &lengths {
        let b = banked
            .iter()
            .find(|p| p.kernel == StreamKernel::Triad && p.elements == len)
            .unwrap();
        let i = interleaved
            .iter()
            .find(|p| p.kernel == StreamKernel::Triad && p.elements == len)
            .unwrap();
        table.row(vec![
            (len * 8 / 1024).to_string(),
            fmt(b.bandwidth_gbs, 1),
            fmt(i.bandwidth_gbs, 1),
            fmt(b.fraction_of_peak * 100.0, 1),
        ]);
    }
    println!(
        "Simulated STREAM triad on {} (peak {} GB/s)\n",
        device.name, device.memory_bandwidth_gbs
    );
    table.print();
}
