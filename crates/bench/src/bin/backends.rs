//! Sweep the execution-backend registry: instantiate every registered
//! backend for one problem, run the manufactured-solution CG solve *through*
//! each backend, and print a comparison table (time, throughput, power,
//! transfer overhead).
//!
//! Run with `cargo run --release -p bench --bin backends -- [degree] [elements_per_side]`.

use bench::table::{fmt, TableWriter};
use sem_accel::{Backend, PerfSource, SemSystem};
use sem_solver::CgOptions;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let degree: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(7);
    let per_side: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(4);

    println!(
        "Backend registry sweep: N = {degree}, {per_side}x{per_side}x{per_side} elements, manufactured Poisson solve\n"
    );
    let mut table = TableWriter::new(vec![
        "backend",
        "source",
        "iters",
        "op time (ms)",
        "GFLOP/s",
        "xfer (ms)",
        "power (W)",
        "max error",
    ]);

    for name in Backend::registry_names() {
        let config = Backend::from_name(&name).expect("registry names resolve");
        let system = SemSystem::builder()
            .degree(degree)
            .elements([per_side; 3])
            .backend(config)
            .build();
        let report = system.solve(CgOptions {
            max_iterations: 2000,
            tolerance: 1e-10,
            record_history: false,
        });
        table.row(vec![
            name,
            match report.source {
                PerfSource::Measured => "measured".to_string(),
                PerfSource::Simulated => "simulated".to_string(),
            },
            report.iterations().to_string(),
            fmt(report.operator.seconds * 1e3, 3),
            fmt(report.operator.gflops, 1),
            fmt(report.transfer_seconds * 1e3, 3),
            report
                .operator
                .power_watts
                .map_or_else(|| "-".to_string(), |w| fmt(w, 0)),
            format!("{:.2e}", report.solution.max_error),
        ]);
    }
    table.print();
    println!(
        "\n(CPU rows are wall-clock measurements on this host; FPGA rows are the\n\
         calibrated simulator's kernel + exchange time, with one PCIe round trip\n\
         charged in the transfer column.)"
    );
}
