//! Regenerates Table II: the architecture overview with derived Byte/FLOP
//! ratios.
//!
//! Run with `cargo run -p bench --bin table2 --release`.

use arch_db::{table2, MachineClass};
use bench::table::fmt;
use bench::TableWriter;

fn main() {
    let mut table = TableWriter::new(vec![
        "Type",
        "Architecture",
        "Tech(nm)",
        "Peak(GFLOP/s)",
        "Mem B/W(GB/s)",
        "TDP(W)",
        "Byte/FLOP",
        "Freq(MHz)",
        "Release",
    ]);
    for arch in table2() {
        let class = match arch.class {
            MachineClass::Fpga => "FPGA",
            MachineClass::Cpu => "CPU",
            MachineClass::Gpu => "GPU",
        };
        table.row(vec![
            class.to_string(),
            arch.name.clone(),
            arch.tech_nm.to_string(),
            fmt(arch.peak_gflops, 1),
            fmt(arch.bandwidth_gbs, 1),
            fmt(arch.tdp_watts, 0),
            fmt(arch.byte_per_flop(), 3),
            fmt(arch.frequency_mhz, 0),
            arch.release_year.to_string(),
        ]);
    }
    println!("Table II — overview of the evaluated systems\n");
    table.print();
}
