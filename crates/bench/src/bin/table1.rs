//! Regenerates Table I: synthesis and performance of the eight SEM
//! accelerators on the Stratix 10 GX2800, compared against the paper's
//! measured values.
//!
//! Run with `cargo run -p bench --bin table1 --release`.

use bench::table::fmt;
use bench::TableWriter;
use fpga_sim::{synthesize, AcceleratorDesign, FpgaDevice};

fn main() {
    let device = FpgaDevice::stratix10_gx2800();
    let mut table = TableWriter::new(vec![
        "N",
        "fmax(MHz)",
        "Logic%",
        "BRAM%",
        "DSP%",
        "Power(W)",
        "GFLOP/s(sim)",
        "GFLOP/s(paper)",
        "GF/s/W(sim)",
        "DOF/cyc(sim)",
        "DOF/cyc(paper)",
        "dev%",
    ]);

    for (paper, sim) in bench::table1_comparison() {
        let design = AcceleratorDesign::for_degree(paper.degree, &device);
        let synth = synthesize(&design, &device);
        let deviation = (sim.gflops - paper.gflops).abs() / paper.gflops * 100.0;
        table.row(vec![
            paper.degree.to_string(),
            fmt(synth.fmax_mhz, 0),
            fmt(synth.utilisation.alms * 100.0, 0),
            fmt(synth.utilisation.brams * 100.0, 0),
            fmt(synth.utilisation.dsps * 100.0, 0),
            fmt(sim.power_watts, 1),
            fmt(sim.gflops, 1),
            fmt(paper.gflops, 1),
            fmt(sim.gflops_per_watt, 2),
            fmt(sim.dofs_per_cycle, 2),
            fmt(paper.dofs_per_cycle, 2),
            fmt(deviation, 1),
        ]);
    }

    println!("Table I — SEM-accelerator synthesis and performance (4096 elements)");
    println!(
        "simulated GX2800 designs vs. the paper's measured values ('dev%' = |sim-paper|/paper)\n"
    );
    table.print();
}
