//! Chaos battery: the fault-tolerant serving host under seeded fault
//! plans, with recovery quality asserted as hard acceptance figures.
//!
//! Four scenarios serve the same seeded request set on the same pool —
//! three identical FPGA boards plus a `cpu:optimized` degradation reserve:
//!
//! * **fault-free** — no injection; the baseline every other row's latency
//!   and solution bits are compared against;
//! * **committed-battery** — an explicit fault trace: three transient
//!   bit-flips and a hang on device 0, a hard death on device 1, plus a
//!   seeded plan on device 2.  The committed artifact's headline row;
//! * **seeded-storm** — independent seeded plans (transients, sticky
//!   slowdowns, hangs — never deaths) on every accelerator;
//! * **sticky-slowdown** — one 32× sticky slowdown, detected through the
//!   modeled-time timeout budget.
//!
//! Acceptance, asserted on every faulted row: **every request completes
//! verified** (zero unserved, residual re-checked on the trusted host
//! operator), the released answers are **bitwise identical** to the
//! fault-free run (all retries land on equivalent accelerators — the cpu
//! reserve is never needed), p99 latency inflation stays under
//! [`P99_INFLATION_BOUND`], and a **replay is bitwise deterministic**
//! (every scenario is served twice and the summaries must serialize
//! identically).  The battery row must additionally detect at least three
//! corruptions, one death and one hang — the committed fault trace the
//! roadmap's acceptance gate names.
//!
//! Everything is modeled time (the chaos host holds `cpu:*` slots out of
//! normal placement), so `BENCH_chaos.json` is bitwise reproducible under
//! the fixed seed on any host.
//!
//! Run with `cargo run --release -p bench --bin chaos -- [degree] [per_side] [requests] [seed]`
//! (defaults `4 2 24 42`, which is also what CI's smoke step and the
//! committed `BENCH_chaos.json` use).

use bench::table::{fmt, TableWriter};
use fpga_sim::{FaultKind, FaultPlan, ScheduledFault};
use sem_serve::{
    ChaosReport, ChaosSummary, FaultToleranceOptions, ProblemSpec, ServeOptions, ServeRequest,
    Server,
};
use serde::Serialize;

/// The accelerator every scenario serves on (three identical boards, so
/// retries land on equivalent backends and bits must not drift).
const FPGA: &str = "fpga:stratix10-gx2800";

/// Hard ceiling on p99 latency inflation of any faulted scenario over the
/// fault-free baseline: retries, backoff waits and quarantine reroutes may
/// stretch the tail, but recovery must stay the same order of magnitude as
/// clean service.
const P99_INFLATION_BOUND: f64 = 5.0;

/// One scenario of the battery.
#[derive(Debug, Clone, Serialize)]
struct ChaosRow {
    /// Scenario label.
    scenario: String,
    /// Faults scheduled across the pool (seeded plans count their drawn
    /// faults).
    injected_faults: usize,
    /// The chaos host's aggregate for this scenario.
    summary: ChaosSummary,
    /// p99 latency of this row over the fault-free baseline's (`None` on
    /// the baseline row itself).
    p99_inflation: Option<f64>,
    /// Whether every released solution matched the fault-free run bit for
    /// bit.
    bitwise_identical_to_baseline: bool,
}

/// The persisted benchmark.
#[derive(Debug, Clone, Serialize)]
struct ChaosBenchReport {
    degree: usize,
    elements_per_side: usize,
    requests: usize,
    /// Request/fault seed.
    seed: u64,
    /// Pool labels, in slot order (the last slot is the cpu reserve).
    pool: Vec<String>,
    max_batch: usize,
    /// Modeled-timeout budget factor of the recovery policy.
    timeout_factor: f64,
    /// Retry ceiling before a job pins to the fallback device.
    max_retries: usize,
    /// The asserted p99-inflation ceiling.
    p99_inflation_bound: f64,
    rows: Vec<ChaosRow>,
}

fn options() -> ServeOptions {
    ServeOptions {
        max_batch: 2,
        ..ServeOptions::default()
    }
}

/// Serve `requests` with `plans` armed, twice, asserting the replay is
/// bitwise deterministic; returns the first run's report.
fn serve_scenario(
    requests: &[ServeRequest],
    plans: &[(usize, FaultPlan)],
    chaos: &FaultToleranceOptions,
) -> ChaosReport {
    let serve_once = || {
        let mut server =
            Server::from_registry_names(&[FPGA, FPGA, FPGA, "cpu:optimized"], options());
        for (device, plan) in plans {
            server.inject_faults(*device, plan.clone());
        }
        server.serve_chaos(requests, *chaos)
    };
    let first = serve_once();
    let replay = serve_once();
    assert_eq!(
        serde::json::to_string(&first.summary()),
        serde::json::to_string(&replay.summary()),
        "a chaos serve must replay bitwise under a fixed fault plan"
    );
    first
}

/// Whether every outcome of `report` matches the baseline bit for bit.
fn bitwise_identical(baseline: &ChaosReport, report: &ChaosReport) -> bool {
    baseline.outcomes.len() == report.outcomes.len()
        && baseline
            .outcomes
            .iter()
            .zip(&report.outcomes)
            .all(|(a, b)| a.request == b.request && a.solution.as_slice() == b.solution.as_slice())
}

/// Count of faults a plan schedules, by detection label, for the table.
fn reason_count(summary: &ChaosSummary, label: &str) -> usize {
    summary
        .faults_by_reason
        .iter()
        .find(|(reason, _)| reason == label)
        .map_or(0, |(_, count)| *count)
}

fn fmt_opt(value: Option<f64>, scale: f64, decimals: usize) -> String {
    value.map_or_else(|| "-".to_string(), |v| fmt(v * scale, decimals))
}

#[allow(clippy::too_many_lines)]
fn main() {
    let args: Vec<String> = std::env::args().collect();
    let positional: Vec<&String> = args[1..].iter().filter(|a| !a.starts_with("--")).collect();
    let degree: usize = positional.first().and_then(|s| s.parse().ok()).unwrap_or(4);
    let per_side: usize = positional.get(1).and_then(|s| s.parse().ok()).unwrap_or(2);
    let request_count: usize = positional.get(2).and_then(|s| s.parse().ok()).unwrap_or(24);
    let seed: u64 = positional.get(3).and_then(|s| s.parse().ok()).unwrap_or(42);

    let spec = ProblemSpec::cube(degree, per_side);
    let requests: Vec<ServeRequest> = (0..request_count)
        .map(|i| ServeRequest::seeded(spec, seed.wrapping_add(i as u64)))
        .collect();
    let chaos = FaultToleranceOptions::default();
    println!(
        "Chaos battery: N = {degree}, {per_side}x{per_side}x{per_side} elements, \
         {request_count} requests, seed {seed}, pool 3x {FPGA} + cpu reserve\n"
    );

    // The committed fault trace: >= 3 transients, >= 1 hang, >= 1 death,
    // plus a seeded plan — the mix the acceptance gate names.
    let battery_plans = vec![
        (
            0,
            FaultPlan::new(vec![
                ScheduledFault {
                    at_op: 3,
                    kind: FaultKind::Transient,
                },
                ScheduledFault {
                    at_op: 30,
                    kind: FaultKind::Transient,
                },
                ScheduledFault {
                    at_op: 70,
                    kind: FaultKind::Transient,
                },
                ScheduledFault {
                    at_op: 110,
                    kind: FaultKind::Hang,
                },
            ]),
        ),
        (
            1,
            FaultPlan::new(vec![ScheduledFault {
                at_op: 25,
                kind: FaultKind::Death,
            }]),
        ),
        (2, FaultPlan::seeded(seed, 2, 400)),
    ];
    let storm_plans: Vec<(usize, FaultPlan)> = (0..3)
        .map(|device| {
            (
                device,
                FaultPlan::seeded(seed.wrapping_add(1000 + device as u64), 3, 600),
            )
        })
        .collect();
    let slowdown_plans = vec![(
        0,
        FaultPlan::new(vec![ScheduledFault {
            at_op: 10,
            kind: FaultKind::Slowdown { factor: 32.0 },
        }]),
    )];

    let scenarios: Vec<(&str, Vec<(usize, FaultPlan)>)> = vec![
        ("fault-free", Vec::new()),
        ("committed-battery", battery_plans),
        ("seeded-storm", storm_plans),
        ("sticky-slowdown", slowdown_plans),
    ];

    let mut table = TableWriter::new(vec![
        "scenario",
        "req",
        "done",
        "retries",
        "corrupt/death/hang/timeout",
        "probes",
        "quarantines",
        "p99 (ms)",
        "inflation",
    ]);
    let mut baseline: Option<ChaosReport> = None;
    let mut rows = Vec::new();
    for (label, plans) in &scenarios {
        let report = serve_scenario(&requests, plans, &chaos);
        let summary = report.summary();
        let injected_faults: usize = plans.iter().map(|(_, plan)| plan.faults().len()).sum();
        let p99_inflation = baseline.as_ref().and_then(|base| {
            let base_p99 = base.latency_percentile_seconds(99.0)?;
            let p99 = report.latency_percentile_seconds(99.0)?;
            Some(p99 / base_p99)
        });
        let bitwise = baseline
            .as_ref()
            .is_none_or(|base| bitwise_identical(base, &report));
        table.row(vec![
            (*label).to_string(),
            summary.requests.to_string(),
            summary.completed.to_string(),
            summary.retries_total.to_string(),
            format!(
                "{}/{}/{}/{}",
                reason_count(&summary, "corrupt"),
                reason_count(&summary, "death"),
                reason_count(&summary, "hang"),
                reason_count(&summary, "timeout"),
            ),
            summary.probes.to_string(),
            summary.quarantines_total.to_string(),
            fmt_opt(summary.p99_latency_seconds, 1e3, 3),
            fmt_opt(p99_inflation, 1.0, 2),
        ]);
        rows.push(ChaosRow {
            scenario: (*label).to_string(),
            injected_faults,
            summary,
            p99_inflation,
            bitwise_identical_to_baseline: bitwise,
        });
        if baseline.is_none() {
            baseline = Some(report);
        }
    }
    table.print();

    // Acceptance.  Every scenario completes every admitted request with a
    // verified residual; nothing is ever lost or silently dropped.
    for row in &rows {
        assert_eq!(
            row.summary.completed, request_count,
            "{}: every admitted request must eventually complete verified",
            row.scenario
        );
        assert_eq!(
            row.summary.unserved, 0,
            "{}: no job may be lost",
            row.scenario
        );
        // Retries all land on equivalent accelerators, so released bits
        // must match the fault-free run exactly.
        assert_eq!(
            row.summary.fallback_jobs, 0,
            "{}: the cpu reserve must not be needed at this fault density",
            row.scenario
        );
        assert!(
            row.bitwise_identical_to_baseline,
            "{}: released answers drifted from the fault-free run",
            row.scenario
        );
        if let Some(inflation) = row.p99_inflation {
            assert!(
                inflation <= P99_INFLATION_BOUND,
                "{}: p99 inflated {inflation:.2}x over the fault-free run \
                 (bound {P99_INFLATION_BOUND})",
                row.scenario
            );
        }
    }
    // The committed battery row must carry the full fault mix.  The mix is
    // a property of the committed invocation: at other sizes/seeds a job
    // can consume a transient and the hang in one session, and the hang
    // outranks the corruption in the reported reason.
    let committed_invocation = degree == 4 && per_side == 2 && request_count == 24 && seed == 42;
    let battery = &rows[1];
    if committed_invocation {
        assert!(
            reason_count(&battery.summary, "corrupt") >= 3,
            "battery must detect >= 3 transient corruptions"
        );
        assert!(
            reason_count(&battery.summary, "death") >= 1,
            "battery must detect the device death"
        );
        assert!(
            reason_count(&battery.summary, "hang") >= 1,
            "battery must detect the hang"
        );
        assert!(
            battery.summary.quarantines_total >= 1,
            "the dead device must be quarantined"
        );
        assert!(
            battery.summary.recovered_requests >= 1,
            "some requests must complete after a failed attempt"
        );
    }
    assert!(
        battery.summary.retries_total >= 1,
        "the battery must observe at least one failed attempt"
    );
    let slowdown = &rows[3];
    assert!(
        reason_count(&slowdown.summary, "timeout") >= 1,
        "the sticky slowdown must blow the modeled timeout budget"
    );
    println!(
        "\nacceptance held: 100% verified completion, bitwise-identical answers, \
         p99 inflation <= {P99_INFLATION_BOUND}x, replays deterministic."
    );

    let report = ChaosBenchReport {
        degree,
        elements_per_side: per_side,
        requests: request_count,
        seed,
        pool: vec![
            FPGA.to_string(),
            FPGA.to_string(),
            FPGA.to_string(),
            "cpu:optimized".to_string(),
        ],
        max_batch: options().max_batch,
        timeout_factor: chaos.timeout_factor,
        max_retries: chaos.max_retries,
        p99_inflation_bound: P99_INFLATION_BOUND,
        rows,
    };
    let json = serde::json::to_string(&report);
    std::fs::write("BENCH_chaos.json", &json).expect("write BENCH_chaos.json");
    println!("wrote BENCH_chaos.json");
}
