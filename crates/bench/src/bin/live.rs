//! Live-traffic serving benchmark: an offered-load ramp over the full
//! `arch-db` FPGA candidate pool, autoscaled against a p99 deadline and
//! compared with the largest static pool at modelled cost-per-solve.
//!
//! For each workload row (a Poisson rate ramp, a bursty trace and a diurnal
//! trace — all seeded, so every figure in the report is deterministic), the
//! same arrival stream is served twice:
//!
//! * **autoscaled** — the `Autoscaler` starts at one (cheapest-by-TDP)
//!   device and flips at most one device per observation window on the
//!   windowed rejection/p99 evidence;
//! * **static** — every candidate active for the whole run, the
//!   largest-pool baseline elasticity is measured against.
//!
//! The acceptance figures: the autoscaled run holds the p99 deadline on
//! every row and provisions strictly fewer watt-seconds per admitted solve
//! than the static pool.  Everything is virtual-time (arrival stamps,
//! simulated session seconds, window boundaries), so `BENCH_live.json` is
//! bitwise reproducible under the fixed seed on any host.
//!
//! Run with `cargo run --release -p bench --bin live -- [degree] [per_side] [horizon_units] [seed]`
//! (defaults `7 2 60 42`, which is also what CI's smoke step and the
//! committed `BENCH_live.json` use).  `horizon_units` is the trace length
//! in multiples of one probed single-request session, so the offered-load
//! ramp stresses the pool identically at every problem size.

use bench::table::{fmt, TableWriter};
use perf_model::WorkloadKind;
use sem_serve::autoscaler::{Autoscaler, AutoscalerPolicy, ScaleDirection};
use sem_serve::{ArrivalStream, LiveOptions, ProblemSpec, ServeOptions, Server};
use sem_solver::{CgOptions, PrecondSpec};
use serde::Serialize;

/// One workload of the ramp, served autoscaled and static.
#[derive(Debug, Clone, Serialize)]
struct LiveRow {
    /// Workload label (`poisson@…`, `bursty`, `diurnal`).
    workload: String,
    /// Mean offered load in requests per modelled second.
    offered_rps: f64,
    /// Requests in the trace.
    requests: usize,
    /// Requests the autoscaled run admitted.
    admitted: usize,
    /// Requests the autoscaled run rejected.
    rejected: usize,
    /// Autoscaled p50 arrival-relative latency (`None` if nothing admitted).
    p50_latency_seconds: Option<f64>,
    /// Autoscaled p99 arrival-relative latency (`None` if nothing admitted).
    p99_latency_seconds: Option<f64>,
    /// Whether the autoscaled p99 sat within the deadline.
    deadline_held: bool,
    /// Observation windows the trace spanned.
    windows: usize,
    /// Autoscaler activations.
    scale_ups: usize,
    /// Autoscaler deactivations.
    scale_downs: usize,
    /// Active devices per window, in window order.
    pool_trace: Vec<usize>,
    /// Mean active devices per window.
    mean_pool_devices: f64,
    /// Peak active devices.
    max_pool_devices: usize,
    /// Autoscaled provisioned watt-seconds per admitted solve.
    cost_per_solve_watt_seconds: Option<f64>,
    /// Final drift-corrector factor of the autoscaled run.
    drift_correction: f64,
    /// Requests the static full pool admitted.
    static_admitted: usize,
    /// Requests the static full pool rejected.
    static_rejected: usize,
    /// Static-pool p99 latency.
    static_p99_latency_seconds: Option<f64>,
    /// Static-pool provisioned watt-seconds per admitted solve.
    static_cost_per_solve_watt_seconds: Option<f64>,
}

/// The persisted benchmark.
#[derive(Debug, Clone, Serialize)]
struct LiveBenchReport {
    degree: usize,
    elements_per_side: usize,
    /// Trace length in probed single-request sessions.
    horizon_units: usize,
    /// Workload seed (arrival times and right-hand sides).
    seed: u64,
    /// Modelled seconds of one single-request session on the cheapest
    /// candidate — the unit every rate and deadline is expressed in.
    probe_session_seconds: f64,
    /// The p99 SLO every autoscaled row is asserted against.
    slo_seconds: f64,
    /// The (tighter) arrival-relative deadline admission prices against.
    admission_deadline_seconds: f64,
    /// Candidate pool labels, in pool order.
    pool: Vec<String>,
    /// Candidate TDP watts, in pool order.
    pool_watts: Vec<f64>,
    rows: Vec<LiveRow>,
}

fn options() -> ServeOptions {
    ServeOptions {
        cg: CgOptions {
            max_iterations: 600,
            tolerance: 1e-10,
            record_history: false,
        },
        max_batch: 4,
        ..ServeOptions::default()
    }
    .with_precond(PrecondSpec::Fdm)
}

/// Modelled seconds of one single-request session on the cheapest
/// candidate: the workload's natural time unit.
fn probe_session_seconds(spec: ProblemSpec) -> f64 {
    let (slots, watts) = Autoscaler::fpga_candidates();
    let cheapest = (0..slots.len())
        .min_by(|&a, &b| watts[a].total_cmp(&watts[b]))
        .expect("non-empty candidate pool");
    let mut server = Server::new(vec![slots[cheapest].clone()], options());
    let stream =
        ArrivalStream::from_workload(WorkloadKind::Poisson { rate_rps: 1.0 }, 1, 1.5, spec);
    assert!(!stream.is_empty(), "probe trace must contain an arrival");
    let generous = LiveOptions {
        deadline_seconds: 1e9,
        batch_window_seconds: 0.0,
        window_seconds: 1e9,
        down_batch: false,
    };
    let report = server.serve_stream(&stream, &generous, None);
    let session = report.outcomes[0].completed_seconds - report.outcomes[0].started_seconds;
    assert!(session > 0.0);
    session
}

#[allow(clippy::too_many_lines)]
fn run_row(
    label: &str,
    kind: WorkloadKind,
    seed: u64,
    horizon_seconds: f64,
    spec: ProblemSpec,
    live: &LiveOptions,
    slo_seconds: f64,
) -> LiveRow {
    let stream = ArrivalStream::from_workload(kind, seed, horizon_seconds, spec);
    let (slots, watts) = Autoscaler::fpga_candidates();

    let mut autoscaled_server = Server::new(slots.clone(), options());
    let mut scaler = Autoscaler::new(
        AutoscalerPolicy::with_deadline(live.deadline_seconds),
        autoscaled_server.slots(),
        watts.clone(),
    );
    let autoscaled = autoscaled_server.serve_stream(&stream, live, Some(&mut scaler));

    let mut static_server = Server::new(slots, options());
    let fixed = static_server.serve_stream(&stream, live, None);

    let p99 = autoscaled.latency_percentile_seconds(99.0);
    LiveRow {
        workload: label.to_string(),
        offered_rps: kind.mean_rate_rps(),
        requests: stream.len(),
        admitted: autoscaled.admitted(),
        rejected: autoscaled.rejected(),
        p50_latency_seconds: autoscaled.latency_percentile_seconds(50.0),
        p99_latency_seconds: p99,
        deadline_held: p99.is_none_or(|p| p <= slo_seconds),
        windows: autoscaled.windows.len(),
        scale_ups: autoscaled
            .scale_events
            .iter()
            .filter(|e| e.direction == ScaleDirection::Up)
            .count(),
        scale_downs: autoscaled
            .scale_events
            .iter()
            .filter(|e| e.direction == ScaleDirection::Down)
            .count(),
        pool_trace: autoscaled.active_trace.iter().map(Vec::len).collect(),
        mean_pool_devices: autoscaled.mean_active_devices(),
        max_pool_devices: autoscaled.max_active_devices(),
        cost_per_solve_watt_seconds: autoscaled.cost_per_solve_watt_seconds(&watts),
        drift_correction: autoscaled.drift_correction,
        static_admitted: fixed.admitted(),
        static_rejected: fixed.rejected(),
        static_p99_latency_seconds: fixed.latency_percentile_seconds(99.0),
        static_cost_per_solve_watt_seconds: fixed.cost_per_solve_watt_seconds(&watts),
    }
}

fn fmt_opt(value: Option<f64>, scale: f64, decimals: usize) -> String {
    value.map_or_else(|| "-".to_string(), |v| fmt(v * scale, decimals))
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let positional: Vec<&String> = args[1..].iter().filter(|a| !a.starts_with("--")).collect();
    let degree: usize = positional.first().and_then(|s| s.parse().ok()).unwrap_or(7);
    let per_side: usize = positional.get(1).and_then(|s| s.parse().ok()).unwrap_or(2);
    let horizon_units: usize = positional.get(2).and_then(|s| s.parse().ok()).unwrap_or(60);
    let seed: u64 = positional.get(3).and_then(|s| s.parse().ok()).unwrap_or(42);

    let spec = ProblemSpec::cube(degree, per_side);
    let unit = probe_session_seconds(spec);
    let horizon = horizon_units as f64 * unit;
    // Admission prices against *predicted* latency; actuals can land a few
    // percent over while the drift corrector converges, so the admission
    // threshold keeps headroom below the p99 SLO the report asserts.
    let slo = 6.0 * unit;
    let live = LiveOptions {
        deadline_seconds: 0.92 * slo,
        batch_window_seconds: 0.1 * unit,
        window_seconds: 8.0 * unit,
        down_batch: true,
    };
    println!(
        "Live serving: N = {degree}, {per_side}x{per_side}x{per_side} elements, \
         probe session {:.3} ms, p99 SLO {:.3} ms (admission at {:.3} ms), \
         horizon {horizon_units} units, seed {seed}\n",
        unit * 1e3,
        slo * 1e3,
        live.deadline_seconds * 1e3
    );

    // The ramp in units of one device's service rate (1/unit), plus a
    // bursty and a diurnal trace around the middle of the ramp.
    let service_rate = 1.0 / unit;
    let mut specs: Vec<(String, WorkloadKind)> = [0.5, 1.5, 3.0]
        .iter()
        .map(|&x| {
            (
                format!("poisson@{x}x"),
                WorkloadKind::Poisson {
                    rate_rps: x * service_rate,
                },
            )
        })
        .collect();
    specs.push((
        "bursty".to_string(),
        WorkloadKind::Bursty {
            base_rps: 0.5 * service_rate,
            burst_rps: 3.0 * service_rate,
            period_seconds: horizon / 4.0,
            burst_fraction: 0.25,
        },
    ));
    specs.push((
        "diurnal".to_string(),
        WorkloadKind::Diurnal {
            mean_rps: 1.5 * service_rate,
            amplitude: 0.8,
            period_seconds: horizon / 2.0,
        },
    ));

    let mut table = TableWriter::new(vec![
        "workload",
        "req",
        "adm",
        "rej",
        "p99 (ms)",
        "held",
        "pool mean/max",
        "ups/downs",
        "W·s/solve",
        "static W·s/solve",
    ]);
    let mut rows = Vec::new();
    for (label, kind) in &specs {
        let row = run_row(label, *kind, seed, horizon, spec, &live, slo);
        table.row(vec![
            row.workload.clone(),
            row.requests.to_string(),
            row.admitted.to_string(),
            row.rejected.to_string(),
            fmt_opt(row.p99_latency_seconds, 1e3, 3),
            row.deadline_held.to_string(),
            format!("{:.2}/{}", row.mean_pool_devices, row.max_pool_devices),
            format!("{}/{}", row.scale_ups, row.scale_downs),
            fmt_opt(row.cost_per_solve_watt_seconds, 1.0, 2),
            fmt_opt(row.static_cost_per_solve_watt_seconds, 1.0, 2),
        ]);
        rows.push(row);
    }
    table.print();

    // Acceptance: the deadline holds on every autoscaled row, and
    // elasticity beats the largest static pool on cost-per-solve wherever
    // both runs admitted work.
    for row in &rows {
        assert!(row.admitted > 0, "{}: nothing admitted", row.workload);
        assert!(
            row.deadline_held,
            "{}: autoscaled p99 {:?} overshot the SLO {slo}",
            row.workload, row.p99_latency_seconds
        );
        let (Some(elastic), Some(fixed)) = (
            row.cost_per_solve_watt_seconds,
            row.static_cost_per_solve_watt_seconds,
        ) else {
            panic!("{}: a run admitted nothing", row.workload);
        };
        assert!(
            elastic < fixed,
            "{}: autoscaled cost {elastic} must undercut the static pool {fixed}",
            row.workload
        );
    }
    let ups: usize = rows.iter().map(|r| r.scale_ups).sum();
    let downs: usize = rows.iter().map(|r| r.scale_downs).sum();
    assert!(ups > 0, "the ramp must trigger scale-ups");
    println!("\nacceptance held: p99 under deadline on every row, elastic cost < static cost ({ups} ups, {downs} downs).");

    let (slots, watts) = Autoscaler::fpga_candidates();
    let report = LiveBenchReport {
        degree,
        elements_per_side: per_side,
        horizon_units,
        seed,
        probe_session_seconds: unit,
        slo_seconds: slo,
        admission_deadline_seconds: live.deadline_seconds,
        pool: slots.into_iter().map(|slot| slot.label).collect(),
        pool_watts: watts,
        rows,
    };
    let json = serde::json::to_string(&report);
    std::fs::write("BENCH_live.json", &json).expect("write BENCH_live.json");
    println!("wrote BENCH_live.json");
}
