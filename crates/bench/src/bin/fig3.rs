//! Regenerates Fig. 3: simulated ("measured") accelerator performance versus
//! the analytic model at 300 MHz and 210 MHz and the roofline, as a function
//! of the polynomial degree, for 4096 elements.
//!
//! Run with `cargo run -p bench --bin fig3 --release`.

use bench::table::fmt;
use bench::TableWriter;

fn main() {
    let mut table = TableWriter::new(vec![
        "N",
        "Measured(sim)",
        "Model@300MHz",
        "Model@210MHz",
        "Roofline",
        "Model err %",
    ]);
    for row in bench::fig3_rows() {
        table.row(vec![
            row.degree.to_string(),
            fmt(row.measured_gflops, 1),
            fmt(row.modelled_300mhz_gflops, 1),
            fmt(row.modelled_210mhz_gflops, 1),
            fmt(row.roofline_gflops, 1),
            fmt(row.model_error_percent, 2),
        ]);
    }
    println!(
        "Fig. 3 — measured vs modelled SEM-accelerator performance, 4096 elements (GFLOP/s)\n"
    );
    table.print();
}
