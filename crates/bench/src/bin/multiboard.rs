//! Multi-board scaling estimate: how the simulated accelerator scales when
//! the element set is partitioned across several boards with a host-network
//! gather–scatter exchange (the natural Nek5000/MPI deployment of the
//! paper's accelerator).
//!
//! Run with `cargo run -p bench --bin multiboard --release [degree] [elements]`.

use bench::table::fmt;
use bench::TableWriter;
use fpga_sim::multi::estimate_scaling;
use fpga_sim::FpgaDevice;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let degree: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(7);
    let elements: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(16384);
    let interconnect_gbs = 12.5; // ~100 Gb/s network

    let device = FpgaDevice::stratix10_gx2800();
    let mut table = TableWriter::new(vec![
        "boards",
        "elems/board",
        "kernel (ms)",
        "exchange (ms)",
        "aggregate GFLOP/s",
        "efficiency",
    ]);
    for &boards in &[1_usize, 2, 4, 8, 16, 32] {
        let est = estimate_scaling(&device, degree, elements, boards, interconnect_gbs);
        table.row(vec![
            boards.to_string(),
            est.elements_per_board.to_string(),
            fmt(est.kernel_seconds * 1e3, 3),
            fmt(est.exchange_seconds * 1e3, 3),
            fmt(est.gflops, 1),
            format!("{}%", fmt(est.parallel_efficiency * 100.0, 0)),
        ]);
    }
    println!(
        "Multi-board scaling, N = {degree}, {elements} elements, {interconnect_gbs} GB/s interconnect\n"
    );
    table.print();
}
