//! Pipelined serving benchmark: the overlap win per backend and the
//! scheduling-policy ranking on a heterogeneous pool.
//!
//! Part 1 — for every simulated registry backend, serve a batch of
//! right-hand sides through `sem-serve`'s three-stage offload pipeline and
//! compare the modelled per-RHS end-to-end seconds against PR 2's serial
//! accounting (one number per backend and batch size, plus the kernel
//! launch/work split from the stage-timing hook).
//!
//! Part 2 — serve a mixed workload over a heterogeneous pool (host CPU +
//! real FPGA + a Section V-D projected device) under each scheduling policy
//! and record throughput, p50/p99 latency and per-device utilisation.
//!
//! Writes `BENCH_serve.json` so successive PRs can track the serving
//! trajectory, and prints summary tables.
//!
//! Run with `cargo run --release -p bench --bin serve -- [degree] [elements_per_side] [requests]`
//! (CI runs a tiny smoke size: `-- 3 2 6`).

use bench::table::{fmt, TableWriter};
use sem_accel::{Backend, SemSystem};
use sem_serve::{
    policy_by_name, policy_names, PipelineConfig, PipelineTimeline, ProblemSpec, ServeOptions,
    ServeRequest, Server,
};
use sem_solver::CgOptions;
use serde::Serialize;

/// Batch sizes of the per-backend overlap sweep.
const BATCHES: [usize; 2] = [16, 64];

/// The heterogeneous policy-comparison pool: measured host, evaluated
/// board, and a model-designed future device, side by side.
const POLICY_POOL: [&str; 3] = [
    "cpu:parallel",
    "fpga:stratix10-gx2800",
    "fpga:projected:a100-class",
];

/// One (backend, batch) point of the overlap sweep.
#[derive(Debug, Clone, Serialize)]
struct PipelineRow {
    backend: String,
    batch: usize,
    iterations: usize,
    /// Per-RHS kernel seconds.
    per_rhs_operator_seconds: f64,
    /// Per-RHS transfer under the serial (blocking) accounting.
    per_rhs_serial_transfer_seconds: f64,
    /// Per-RHS transfer left exposed by the overlapped pipeline.
    per_rhs_pipelined_transfer_seconds: f64,
    /// Serial per-RHS end-to-end seconds (PR 2's accounting).
    per_rhs_serial_modeled_seconds: f64,
    /// Pipelined per-RHS end-to-end seconds.
    per_rhs_pipelined_modeled_seconds: f64,
    /// Relative end-to-end improvement of the overlap, percent.
    overlap_win_percent: f64,
    /// Kernel-channel utilisation of the overlapped session.
    compute_utilisation: f64,
    /// Once-per-submission kernel launch seconds (stage-timing hook).
    launch_seconds: f64,
    /// Whether the served solutions matched `SemSystem::solve_many` bitwise.
    bitwise_identical: bool,
}

/// One policy of the heterogeneous-pool comparison.
#[derive(Debug, Clone, Serialize)]
struct PolicyRow {
    policy: String,
    requests: usize,
    jobs: usize,
    makespan_seconds: f64,
    serial_makespan_seconds: f64,
    throughput_rps: f64,
    p50_latency_seconds: f64,
    p99_latency_seconds: f64,
    /// `label: requests@utilisation` per device.
    devices: Vec<String>,
}

/// The persisted benchmark.
#[derive(Debug, Clone, Serialize)]
struct ServeBenchReport {
    degree: usize,
    elements_per_side: usize,
    policy_requests: usize,
    pool: Vec<String>,
    pipeline: Vec<PipelineRow>,
    policies: Vec<PolicyRow>,
}

fn cg() -> CgOptions {
    CgOptions {
        max_iterations: 2000,
        tolerance: 1e-10,
        record_history: false,
    }
}

fn pipeline_sweep(degree: usize, per_side: usize) -> Vec<PipelineRow> {
    let mut table = TableWriter::new(vec![
        "backend",
        "batch",
        "op/RHS (ms)",
        "serial xfer/RHS (ms)",
        "piped xfer/RHS (ms)",
        "serial e2e/RHS (ms)",
        "piped e2e/RHS (ms)",
        "win",
        "kernel util",
    ]);
    let mut rows = Vec::new();
    let spec = ProblemSpec::cube(degree, per_side);
    for name in Backend::registry_names() {
        let backend = Backend::from_name(&name).expect("registry name resolves");
        if !backend.is_simulated() {
            // Host backends move no data; the pipeline degenerates and the
            // overlap story is about the accelerators.
            continue;
        }
        let system = SemSystem::builder()
            .degree(degree)
            .elements([per_side; 3])
            .backend(backend)
            .build();
        // Cross-check once per backend: the serving path returns the very
        // same vectors (batched solves are batch-size independent, so the
        // smallest batch suffices — the per-batch sweep below reuses the
        // verdict instead of re-solving every workload twice).
        let check_batch = BATCHES[0];
        let check_reports = system.solve_many_manufactured(check_batch, cg(), true);
        let mut server = Server::from_registry_names(
            &[name.as_str()],
            ServeOptions {
                cg: cg(),
                max_batch: check_batch,
                ..ServeOptions::default()
            },
        );
        let requests: Vec<ServeRequest> = (0..check_batch)
            .map(|_| ServeRequest::manufactured(spec))
            .collect();
        let served = server.serve(&requests, &mut sem_serve::RoundRobin::default());
        let bitwise_identical = served
            .outcomes
            .iter()
            .zip(&check_reports)
            .all(|(o, r)| o.solution.as_slice() == r.solution.solution.as_slice());

        for batch in BATCHES {
            let reports = if batch == check_batch {
                check_reports.clone()
            } else {
                system.solve_many_manufactured(batch, cg(), true)
            };
            let timeline = PipelineTimeline::from_reports(
                system.offload_plan().as_ref(),
                &reports,
                PipelineConfig::default(),
            );
            let b = batch as f64;
            let per_rhs_operator_seconds =
                reports.iter().map(|r| r.operator.seconds).sum::<f64>() / b;
            let per_rhs_serial_transfer_seconds =
                reports.iter().map(|r| r.transfer_seconds).sum::<f64>() / b;
            let per_rhs_pipelined_transfer_seconds = reports
                .iter()
                .map(|r| r.pipelined_transfer_seconds)
                .sum::<f64>()
                / b;
            let serial = per_rhs_operator_seconds + per_rhs_serial_transfer_seconds;
            let pipelined = per_rhs_operator_seconds + per_rhs_pipelined_transfer_seconds;
            let launch_seconds = system.accelerator().map_or(0.0, |acc| {
                acc.stage_timing(spec.num_elements()).launch_seconds
            });
            let row = PipelineRow {
                backend: name.clone(),
                batch,
                iterations: reports[0].iterations(),
                per_rhs_operator_seconds,
                per_rhs_serial_transfer_seconds,
                per_rhs_pipelined_transfer_seconds,
                per_rhs_serial_modeled_seconds: serial,
                per_rhs_pipelined_modeled_seconds: pipelined,
                overlap_win_percent: (1.0 - pipelined / serial) * 100.0,
                compute_utilisation: timeline.compute_utilisation(),
                launch_seconds,
                bitwise_identical,
            };
            table.row(vec![
                name.clone(),
                batch.to_string(),
                fmt(row.per_rhs_operator_seconds * 1e3, 3),
                fmt(row.per_rhs_serial_transfer_seconds * 1e3, 4),
                fmt(row.per_rhs_pipelined_transfer_seconds * 1e3, 4),
                fmt(row.per_rhs_serial_modeled_seconds * 1e3, 3),
                fmt(row.per_rhs_pipelined_modeled_seconds * 1e3, 3),
                format!("{:.1}%", row.overlap_win_percent),
                format!("{:.0}%", row.compute_utilisation * 100.0),
            ]);
            rows.push(row);
        }
    }
    table.print();
    rows
}

fn policy_sweep(degree: usize, per_side: usize, num_requests: usize) -> Vec<PolicyRow> {
    let spec = ProblemSpec::cube(degree, per_side);
    let requests: Vec<ServeRequest> = (0..num_requests)
        .map(|i| ServeRequest::seeded(spec, i as u64))
        .collect();
    let mut table = TableWriter::new(vec![
        "policy",
        "makespan (ms)",
        "serial (ms)",
        "rps",
        "p50 (ms)",
        "p99 (ms)",
        "placement",
    ]);
    let mut rows = Vec::new();
    for name in policy_names() {
        let mut policy = policy_by_name(name).expect("known policy");
        let mut server = Server::from_registry_names(
            &POLICY_POOL,
            ServeOptions {
                cg: cg(),
                max_batch: 4,
                ..ServeOptions::default()
            },
        );
        let report = server.serve(&requests, policy.as_mut());
        let summary = report.summary();
        let devices: Vec<String> = summary
            .devices
            .iter()
            .map(|d| format!("{}: {}@{:.0}%", d.label, d.requests, d.utilisation * 100.0))
            .collect();
        table.row(vec![
            name.to_string(),
            fmt(summary.makespan_seconds * 1e3, 3),
            fmt(summary.serial_makespan_seconds * 1e3, 3),
            fmt(summary.throughput_rps, 1),
            fmt(summary.p50_latency_seconds * 1e3, 3),
            fmt(summary.p99_latency_seconds * 1e3, 3),
            devices.join(", "),
        ]);
        rows.push(PolicyRow {
            policy: name.to_string(),
            requests: summary.requests,
            jobs: summary.jobs,
            makespan_seconds: summary.makespan_seconds,
            serial_makespan_seconds: summary.serial_makespan_seconds,
            throughput_rps: summary.throughput_rps,
            p50_latency_seconds: summary.p50_latency_seconds,
            p99_latency_seconds: summary.p99_latency_seconds,
            devices,
        });
    }
    table.print();
    rows
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let degree: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(7);
    let per_side: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(4);
    let num_requests: usize = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(24);

    println!(
        "Pipelined serving: N = {degree}, {per_side}x{per_side}x{per_side} elements\n\
         \nPart 1 — overlap win per simulated backend (batches {BATCHES:?}):\n"
    );
    let pipeline = pipeline_sweep(degree, per_side);
    assert!(
        pipeline.iter().all(|row| row.bitwise_identical),
        "served solutions must be bitwise identical to SemSystem::solve_many"
    );

    println!(
        "\nPart 2 — scheduling policies over {POLICY_POOL:?} ({num_requests} requests, \
         max batch 4):\n"
    );
    let policies = policy_sweep(degree, per_side, num_requests);

    let report = ServeBenchReport {
        degree,
        elements_per_side: per_side,
        policy_requests: num_requests,
        pool: POLICY_POOL.iter().map(|s| s.to_string()).collect(),
        pipeline,
        policies,
    };
    let json = serde::json::to_string(&report);
    std::fs::write("BENCH_serve.json", &json).expect("write BENCH_serve.json");
    println!(
        "\nWrote BENCH_serve.json ({} pipeline rows, {} policies).  Overlap rows\n\
         pipeline upload(i+1) / solve(i) / download(i-1); policy rows serve the\n\
         heterogeneous CPU + FPGA + projected-device pool.",
        report.pipeline.len(),
        report.policies.len()
    );
}
