//! Pipelined serving benchmark: the overlap win per backend and the
//! scheduling-policy ranking on a heterogeneous pool.
//!
//! Part 1 — for every simulated registry backend, serve a batch of
//! right-hand sides through `sem-serve`'s three-stage offload pipeline and
//! compare the modelled per-RHS end-to-end seconds against PR 2's serial
//! accounting (one number per backend and batch size, plus the kernel
//! launch/work split from the stage-timing hook).
//!
//! Part 2 — serve a mixed workload over a heterogeneous pool (host CPU +
//! real FPGA + a Section V-D projected device) under each scheduling policy
//! and record throughput, p50/p99 latency and per-device utilisation.
//!
//! Part 3 — the async host: serve the same stream synchronously and through
//! `Server::serve_async` on a multi-slot CPU pool (real worker threads, so
//! the wall-clock makespan actually shrinks) and on a pinned pool where the
//! idle slots must steal every job they serve.
//!
//! Part 4 — the preconditioner's serving win: the same request stream on the
//! evaluated board under identity / Jacobi / FDM, where the FDM
//! preconditioner collapses the iteration count (and therefore the modelled
//! makespan) while its on-device pass and table upload are fully priced.
//!
//! Writes `BENCH_serve.json` so successive PRs can track the serving
//! trajectory, and prints summary tables.
//!
//! Run with `cargo run --release -p bench --bin serve -- [degree] [elements_per_side] [requests]`
//! (CI runs a tiny smoke size: `-- 3 2 6`).  Passing `--async` makes the
//! Part 3 acceptance criterion a hard assertion (async wall-clock makespan
//! < 0.75x the synchronous path on the multi-slot CPU pool).  Passing
//! `--trace` adds Part 5: one serve of the same workload on the evaluated
//! board under a modelled-clock sem-obs recorder, exporting the Chrome
//! trace (`OBS_trace.json`), the Prometheus snapshot (`OBS_metrics.prom`)
//! and the model-drift calibration report (`OBS_drift.json`) — the
//! committed samples sem-lint's obs-schema pass validates.

use bench::table::{fmt, TableWriter};
use sem_accel::{Backend, SemSystem};
use sem_obs::{chrome_trace_json, recorder, DriftReport, ObsConfig, Recorder};
use sem_serve::{
    policy_by_name, policy_names, Pinned, PipelineConfig, PipelineTimeline, ProblemSpec,
    ServeOptions, ServeRequest, Server,
};
use sem_solver::{CgOptions, PrecondSpec};
use serde::Serialize;

/// Batch sizes of the per-backend overlap sweep.
const BATCHES: [usize; 2] = [16, 64];

/// The heterogeneous policy-comparison pool: measured host, evaluated
/// board, and a model-designed future device, side by side.
const POLICY_POOL: [&str; 3] = [
    "cpu:parallel",
    "fpga:stratix10-gx2800",
    "fpga:projected:a100-class",
];

/// One (backend, batch) point of the overlap sweep.
#[derive(Debug, Clone, Serialize)]
struct PipelineRow {
    backend: String,
    /// Preconditioner the batch solved with.
    precond: String,
    batch: usize,
    iterations: usize,
    /// Per-RHS on-device preconditioner seconds inside the solve.
    per_rhs_precond_seconds: f64,
    /// Per-RHS kernel seconds.
    per_rhs_operator_seconds: f64,
    /// Per-RHS transfer under the serial (blocking) accounting.
    per_rhs_serial_transfer_seconds: f64,
    /// Per-RHS transfer left exposed by the overlapped pipeline.
    per_rhs_pipelined_transfer_seconds: f64,
    /// Serial per-RHS end-to-end seconds (PR 2's accounting).
    per_rhs_serial_modeled_seconds: f64,
    /// Pipelined per-RHS end-to-end seconds.
    per_rhs_pipelined_modeled_seconds: f64,
    /// Relative end-to-end improvement of the overlap, percent.
    overlap_win_percent: f64,
    /// Kernel-channel utilisation of the overlapped session.
    compute_utilisation: f64,
    /// Once-per-submission kernel launch seconds (stage-timing hook).
    launch_seconds: f64,
    /// Whether the served solutions matched `SemSystem::solve_many` bitwise.
    bitwise_identical: bool,
}

/// One policy of the heterogeneous-pool comparison.
#[derive(Debug, Clone, Serialize)]
struct PolicyRow {
    policy: String,
    /// Preconditioner every solve ran.
    precond: String,
    /// Total CG iterations across the admitted requests.
    total_iterations: u64,
    /// Total preconditioner-apply seconds across the admitted requests.
    precond_apply_seconds: f64,
    requests: usize,
    jobs: usize,
    makespan_seconds: f64,
    serial_makespan_seconds: f64,
    throughput_rps: f64,
    p50_latency_seconds: f64,
    p99_latency_seconds: f64,
    /// `label: requests@utilisation` per device.
    devices: Vec<String>,
}

/// One sync-vs-async comparison of Part 3.
#[derive(Debug, Clone, Serialize)]
struct AsyncRow {
    scenario: String,
    pool: Vec<String>,
    policy: String,
    /// Preconditioner every solve ran.
    precond: String,
    requests: usize,
    max_batch: usize,
    /// Measured wall-clock seconds of the synchronous serve.
    sync_wall_seconds: f64,
    /// Measured wall-clock seconds of `serve_async` on the same stream.
    async_wall_seconds: f64,
    /// `sync_wall / async_wall` — the worker threads' makespan win.
    wall_speedup: f64,
    /// Busy worker-seconds per wall second of the async run.
    async_concurrency: f64,
    /// Jobs executed away from their hinted slot.
    steals: usize,
    /// Whether async answers matched the synchronous ones bitwise.
    bitwise_identical: bool,
    /// Cores the host actually has: worker threads can only shrink the
    /// wall-clock makespan when this exceeds one, so the speedup column
    /// must be read against it.
    host_cores: usize,
}

/// One preconditioner of the Part 4 serving comparison.
#[derive(Debug, Clone, Serialize)]
struct PrecondServeRow {
    precond: String,
    requests: usize,
    jobs: usize,
    /// Total CG iterations across the stream — what FDM collapses.
    total_iterations: u64,
    /// Total on-device preconditioner-apply seconds across the stream.
    precond_apply_seconds: f64,
    makespan_seconds: f64,
    throughput_rps: f64,
    p50_latency_seconds: f64,
    p99_latency_seconds: f64,
}

/// The persisted benchmark.
#[derive(Debug, Clone, Serialize)]
struct ServeBenchReport {
    degree: usize,
    elements_per_side: usize,
    policy_requests: usize,
    pool: Vec<String>,
    /// Preconditioner of Parts 1–3 (the serving default).
    precond: String,
    pipeline: Vec<PipelineRow>,
    policies: Vec<PolicyRow>,
    async_host: Vec<AsyncRow>,
    /// Part 4: identity vs Jacobi vs FDM on the evaluated board.
    precond_serving: Vec<PrecondServeRow>,
}

fn cg() -> CgOptions {
    CgOptions {
        max_iterations: 2000,
        tolerance: 1e-10,
        record_history: false,
    }
}

fn pipeline_sweep(degree: usize, per_side: usize) -> Vec<PipelineRow> {
    let mut table = TableWriter::new(vec![
        "backend",
        "batch",
        "op/RHS (ms)",
        "serial xfer/RHS (ms)",
        "piped xfer/RHS (ms)",
        "serial e2e/RHS (ms)",
        "piped e2e/RHS (ms)",
        "win",
        "kernel util",
    ]);
    let mut rows = Vec::new();
    let spec = ProblemSpec::cube(degree, per_side);
    for name in Backend::registry_names() {
        let backend = Backend::from_name(&name).expect("registry name resolves");
        if !backend.is_simulated() {
            // Host backends move no data; the pipeline degenerates and the
            // overlap story is about the accelerators.
            continue;
        }
        let system = SemSystem::builder()
            .degree(degree)
            .elements([per_side; 3])
            .backend(backend)
            .build();
        // Cross-check once per backend: the serving path returns the very
        // same vectors (batched solves are batch-size independent, so the
        // smallest batch suffices — the per-batch sweep below reuses the
        // verdict instead of re-solving every workload twice).
        let check_batch = BATCHES[0];
        let check_reports = system.solve_many_manufactured(check_batch, cg());
        let mut server = Server::from_registry_names(
            &[name.as_str()],
            ServeOptions {
                cg: cg(),
                max_batch: check_batch,
                ..ServeOptions::default()
            },
        );
        let requests: Vec<ServeRequest> = (0..check_batch)
            .map(|_| ServeRequest::manufactured(spec))
            .collect();
        let served = server.serve(&requests, &mut sem_serve::RoundRobin::default());
        let bitwise_identical = served
            .outcomes
            .iter()
            .zip(&check_reports)
            .all(|(o, r)| o.solution.as_slice() == r.solution.solution.as_slice());

        for batch in BATCHES {
            let reports = if batch == check_batch {
                check_reports.clone()
            } else {
                system.solve_many_manufactured(batch, cg())
            };
            let timeline = PipelineTimeline::from_reports(
                system.offload_plan().as_ref(),
                &reports,
                PipelineConfig::default(),
            );
            let b = batch as f64;
            let per_rhs_operator_seconds =
                reports.iter().map(|r| r.operator.seconds).sum::<f64>() / b;
            let per_rhs_precond_seconds =
                reports.iter().map(|r| r.precond_seconds).sum::<f64>() / b;
            let per_rhs_serial_transfer_seconds =
                reports.iter().map(|r| r.transfer_seconds).sum::<f64>() / b;
            let per_rhs_pipelined_transfer_seconds = reports
                .iter()
                .map(|r| r.pipelined_transfer_seconds)
                .sum::<f64>()
                / b;
            let compute = per_rhs_operator_seconds + per_rhs_precond_seconds;
            let serial = compute + per_rhs_serial_transfer_seconds;
            let pipelined = compute + per_rhs_pipelined_transfer_seconds;
            let launch_seconds = system.accelerator().map_or(0.0, |acc| {
                acc.stage_timing(spec.num_elements()).launch_seconds
            });
            let row = PipelineRow {
                backend: name.clone(),
                precond: reports[0].precond.label().to_string(),
                batch,
                iterations: reports[0].iterations(),
                per_rhs_precond_seconds,
                per_rhs_operator_seconds,
                per_rhs_serial_transfer_seconds,
                per_rhs_pipelined_transfer_seconds,
                per_rhs_serial_modeled_seconds: serial,
                per_rhs_pipelined_modeled_seconds: pipelined,
                overlap_win_percent: (1.0 - pipelined / serial) * 100.0,
                compute_utilisation: timeline.compute_utilisation(),
                launch_seconds,
                bitwise_identical,
            };
            table.row(vec![
                name.clone(),
                batch.to_string(),
                fmt(row.per_rhs_operator_seconds * 1e3, 3),
                fmt(row.per_rhs_serial_transfer_seconds * 1e3, 4),
                fmt(row.per_rhs_pipelined_transfer_seconds * 1e3, 4),
                fmt(row.per_rhs_serial_modeled_seconds * 1e3, 3),
                fmt(row.per_rhs_pipelined_modeled_seconds * 1e3, 3),
                format!("{:.1}%", row.overlap_win_percent),
                format!("{:.0}%", row.compute_utilisation * 100.0),
            ]);
            rows.push(row);
        }
    }
    table.print();
    rows
}

fn policy_sweep(degree: usize, per_side: usize, num_requests: usize) -> Vec<PolicyRow> {
    let spec = ProblemSpec::cube(degree, per_side);
    let requests: Vec<ServeRequest> = (0..num_requests)
        .map(|i| ServeRequest::seeded(spec, i as u64))
        .collect();
    let mut table = TableWriter::new(vec![
        "policy",
        "makespan (ms)",
        "serial (ms)",
        "rps",
        "p50 (ms)",
        "p99 (ms)",
        "placement",
    ]);
    let mut rows = Vec::new();
    for name in policy_names() {
        let mut policy = policy_by_name(name).expect("known policy");
        let mut server = Server::from_registry_names(
            &POLICY_POOL,
            ServeOptions {
                cg: cg(),
                max_batch: 4,
                ..ServeOptions::default()
            },
        );
        let report = server.serve(&requests, policy.as_mut());
        let summary = report.summary();
        let p50 = summary
            .p50_latency_seconds
            .expect("policy run admits requests");
        let p99 = summary
            .p99_latency_seconds
            .expect("policy run admits requests");
        let devices: Vec<String> = summary
            .devices
            .iter()
            .map(|d| format!("{}: {}@{:.0}%", d.label, d.requests, d.utilisation * 100.0))
            .collect();
        table.row(vec![
            name.to_string(),
            fmt(summary.makespan_seconds * 1e3, 3),
            fmt(summary.serial_makespan_seconds * 1e3, 3),
            fmt(summary.throughput_rps, 1),
            fmt(p50 * 1e3, 3),
            fmt(p99 * 1e3, 3),
            devices.join(", "),
        ]);
        rows.push(PolicyRow {
            policy: name.to_string(),
            precond: summary.precond.clone(),
            total_iterations: summary.total_iterations,
            precond_apply_seconds: summary.precond_apply_seconds,
            requests: summary.requests,
            jobs: summary.jobs,
            makespan_seconds: summary.makespan_seconds,
            serial_makespan_seconds: summary.serial_makespan_seconds,
            throughput_rps: summary.throughput_rps,
            p50_latency_seconds: p50,
            p99_latency_seconds: p99,
            devices,
        });
    }
    table.print();
    rows
}

/// One Part 3 scenario: run the same stream through both hosts and compare.
fn async_scenario(
    scenario: &str,
    pool: &[&str],
    policy_name: &str,
    requests: &[ServeRequest],
    max_batch: usize,
) -> AsyncRow {
    let options = ServeOptions {
        cg: cg(),
        max_batch,
        ..ServeOptions::default()
    };
    // A fresh policy per host: stateful policies (round-robin's cursor)
    // must hand both runs identical placement hints.
    let make_policy = || -> Box<dyn sem_serve::SchedulingPolicy> {
        match policy_name {
            "pinned" => Box::new(Pinned(0)),
            name => policy_by_name(name).expect("known policy"),
        }
    };
    let mut sync_server = Server::from_registry_names(pool, options);
    let sync = sync_server.serve(requests, make_policy().as_mut());
    let mut async_server = Server::from_registry_names(pool, options);
    let run = async_server.serve_async(requests, make_policy().as_mut());
    let bitwise_identical = run
        .outcomes
        .iter()
        .zip(&sync.outcomes)
        .all(|(a, s)| a.solution.as_slice() == s.solution.as_slice());
    AsyncRow {
        scenario: scenario.to_string(),
        pool: pool.iter().map(ToString::to_string).collect(),
        policy: policy_name.to_string(),
        precond: run.precond.clone(),
        requests: requests.len(),
        max_batch,
        sync_wall_seconds: sync.wall_seconds,
        async_wall_seconds: run.wall_seconds,
        wall_speedup: sync.wall_seconds / run.wall_seconds,
        async_concurrency: run.measured_concurrency(),
        steals: run.total_steals(),
        bitwise_identical,
        host_cores: host_cores(),
    }
}

/// Cores available to this process.
fn host_cores() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

fn async_sweep(degree: usize, per_side: usize, num_requests: usize) -> Vec<AsyncRow> {
    // Wall-clock parallelism only shows once a job outweighs the thread and
    // queue overheads, so the async comparison floors the problem size:
    // sub-millisecond smoke jobs would measure scheduling noise, not the
    // host.  (The solves themselves stay bitwise-checked at every size.)
    let spec = ProblemSpec::cube(degree.max(6), per_side.max(2));
    let num_requests = num_requests.max(8);
    let requests: Vec<ServeRequest> = (0..num_requests)
        .map(|i| ServeRequest::seeded(spec, i as u64))
        .collect();
    // Single-request jobs on single-threaded CPU slots: the synchronous
    // host leaves three of four cores idle, the async host does not.
    let cpu_pool = [
        "cpu:optimized",
        "cpu:optimized",
        "cpu:optimized",
        "cpu:optimized",
    ];
    let rows = vec![
        async_scenario("cpu-pool", &cpu_pool, "round-robin", &requests, 1),
        // Everything hinted to slot 0: the other slots only serve by
        // stealing, which is the whole point of the deque host.
        async_scenario("steal-rebalance", &cpu_pool, "pinned", &requests, 1),
    ];
    let mut table = TableWriter::new(vec![
        "scenario",
        "policy",
        "sync wall (ms)",
        "async wall (ms)",
        "speedup",
        "concurrency",
        "steals",
        "bitwise",
    ]);
    for row in &rows {
        table.row(vec![
            row.scenario.clone(),
            row.policy.clone(),
            fmt(row.sync_wall_seconds * 1e3, 3),
            fmt(row.async_wall_seconds * 1e3, 3),
            format!("{:.2}x", row.wall_speedup),
            format!("{:.2}", row.async_concurrency),
            row.steals.to_string(),
            row.bitwise_identical.to_string(),
        ]);
    }
    table.print();
    rows
}

fn precond_sweep(degree: usize, per_side: usize, num_requests: usize) -> Vec<PrecondServeRow> {
    let spec = ProblemSpec::cube(degree, per_side);
    let requests: Vec<ServeRequest> = (0..num_requests)
        .map(|i| ServeRequest::seeded(spec, i as u64))
        .collect();
    let mut table = TableWriter::new(vec![
        "precond",
        "iters (total)",
        "pc apply (ms)",
        "makespan (ms)",
        "rps",
        "p99 (ms)",
    ]);
    let mut rows = Vec::new();
    for precond in PrecondSpec::all() {
        let options = ServeOptions {
            cg: cg(),
            max_batch: 4,
            ..ServeOptions::default()
        }
        .with_precond(precond);
        let mut server = Server::from_registry_names(&["fpga:stratix10-gx2800"], options);
        let mut policy = policy_by_name("model-optimal").expect("known policy");
        let report = server.serve(&requests, policy.as_mut());
        assert!(report.outcomes.iter().all(|o| o.converged));
        let summary = report.summary();
        let p50 = summary
            .p50_latency_seconds
            .expect("precond run admits requests");
        let p99 = summary
            .p99_latency_seconds
            .expect("precond run admits requests");
        table.row(vec![
            summary.precond.clone(),
            summary.total_iterations.to_string(),
            fmt(summary.precond_apply_seconds * 1e3, 3),
            fmt(summary.makespan_seconds * 1e3, 3),
            fmt(summary.throughput_rps, 1),
            fmt(p99 * 1e3, 3),
        ]);
        rows.push(PrecondServeRow {
            precond: summary.precond,
            requests: summary.requests,
            jobs: summary.jobs,
            total_iterations: summary.total_iterations,
            precond_apply_seconds: summary.precond_apply_seconds,
            makespan_seconds: summary.makespan_seconds,
            throughput_rps: summary.throughput_rps,
            p50_latency_seconds: p50,
            p99_latency_seconds: p99,
        });
    }
    table.print();
    rows
}

/// Part 5 (`--trace`): serve the workload once more on the evaluated board
/// under a modelled-clock recorder and export the three OBS artifacts.
fn observability_export(degree: usize, per_side: usize, num_requests: usize) {
    Recorder::install(ObsConfig::default());
    let spec = ProblemSpec::cube(degree, per_side);
    let requests: Vec<ServeRequest> = (0..num_requests)
        .map(|i| ServeRequest::seeded(spec, i as u64))
        .collect();
    let mut server = Server::from_registry_names(
        &["fpga:stratix10-gx2800"],
        ServeOptions {
            cg: cg(),
            max_batch: 4,
            ..ServeOptions::default()
        },
    );
    let mut policy = policy_by_name("model-optimal").expect("known policy");
    let report = server.serve(&requests, policy.as_mut());
    assert!(report.outcomes.iter().all(|o| o.converged));

    let obs = recorder();
    let snapshot = obs.trace_snapshot();
    assert_eq!(snapshot.dropped_events, 0, "ring must hold the whole serve");
    let trace = chrome_trace_json(&snapshot);
    std::fs::write("OBS_trace.json", format!("{trace}\n")).expect("write OBS_trace.json");

    let metrics = obs.prometheus_text();
    std::fs::write("OBS_metrics.prom", &metrics).expect("write OBS_metrics.prom");

    let samples = obs.drift_samples();
    let drift = DriftReport::aggregate(&samples, perf_model::suspect_term);
    std::fs::write("OBS_drift.json", format!("{}\n", drift.to_json()))
        .expect("write OBS_drift.json");
    Recorder::uninstall();

    let spans = snapshot.events.len();
    let families = metrics.lines().filter(|l| l.starts_with("# TYPE")).count();
    println!(
        "\nPart 5 — observability export ({num_requests} requests on \
         fpga:stratix10-gx2800, modelled clock):\n\
         \n  OBS_trace.json    {spans} spans across {} lanes\n  \
         OBS_metrics.prom  {families} metric families\n  \
         OBS_drift.json    {} samples, {} (stage, backend) rows",
        trace.matches("thread_name").count(),
        drift.total_samples,
        drift.rows.len()
    );
    if let Some(worst) = drift.rows.first() {
        println!(
            "  worst drift: stage `{}` on {} (mean |residual| {:.3e} s) — suspect {}",
            worst.stage, worst.backend, worst.mean_abs_residual_seconds, worst.suspect_term
        );
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let strict_async = args.iter().any(|arg| arg == "--async");
    let trace = args.iter().any(|arg| arg == "--trace");
    let positional: Vec<&String> = args[1..].iter().filter(|a| !a.starts_with("--")).collect();
    let degree: usize = positional.first().and_then(|s| s.parse().ok()).unwrap_or(7);
    let per_side: usize = positional.get(1).and_then(|s| s.parse().ok()).unwrap_or(4);
    let num_requests: usize = positional.get(2).and_then(|s| s.parse().ok()).unwrap_or(24);

    println!(
        "Pipelined serving: N = {degree}, {per_side}x{per_side}x{per_side} elements\n\
         \nPart 1 — overlap win per simulated backend (batches {BATCHES:?}):\n"
    );
    let pipeline = pipeline_sweep(degree, per_side);
    assert!(
        pipeline.iter().all(|row| row.bitwise_identical),
        "served solutions must be bitwise identical to SemSystem::solve_many"
    );

    println!(
        "\nPart 2 — scheduling policies over {POLICY_POOL:?} ({num_requests} requests, \
         max batch 4):\n"
    );
    let policies = policy_sweep(degree, per_side, num_requests);

    println!(
        "\nPart 3 — async host vs synchronous serve ({num_requests} requests, \
         4x cpu:optimized, max batch 1):\n"
    );
    let async_host = async_sweep(degree, per_side, num_requests);
    assert!(
        async_host.iter().all(|row| row.bitwise_identical),
        "async answers must be bitwise identical to the synchronous host"
    );
    // The pinned pool virtually always exhibits stealing, but whether a
    // sibling wakes before the hinted worker drains its deque is ultimately
    // an OS scheduling race — report, don't abort (the deterministic steal
    // guarantees live in the sem-serve test battery).
    if !async_host
        .iter()
        .any(|row| row.scenario == "steal-rebalance" && row.steals > 0)
    {
        println!(
            "\nnote: the pinned pool recorded no steals this run (the hinted worker \
             outran its siblings); see sem-serve/tests/async_serving.rs for the \
             structural guarantee."
        );
    }
    if strict_async {
        let cpu = async_host
            .iter()
            .find(|row| row.scenario == "cpu-pool")
            .expect("cpu-pool row");
        if host_cores() >= 2 {
            assert!(
                cpu.async_wall_seconds < 0.75 * cpu.sync_wall_seconds,
                "--async acceptance: async wall {:.3} ms must be < 0.75x sync wall {:.3} ms",
                cpu.async_wall_seconds * 1e3,
                cpu.sync_wall_seconds * 1e3
            );
            println!(
                "\n--async acceptance held: {:.2}x wall-clock speedup on the CPU pool.",
                cpu.sync_wall_seconds / cpu.async_wall_seconds
            );
        } else {
            // One core: worker threads cannot shrink the makespan, only
            // interleave.  The criterion degrades to "the async host costs
            // almost nothing and still answers bitwise" — the speedup
            // assertion runs on multi-core CI.
            assert!(
                cpu.async_wall_seconds < 1.5 * cpu.sync_wall_seconds,
                "--async on one core: the work-stealing host may cost at most 50% overhead, \
                 got {:.3} ms vs {:.3} ms",
                cpu.async_wall_seconds * 1e3,
                cpu.sync_wall_seconds * 1e3
            );
            println!(
                "\n--async acceptance (single-core host): no parallel speedup is physically \
                 available; verified bitwise identity and {:.1}% host overhead instead.",
                (cpu.async_wall_seconds / cpu.sync_wall_seconds - 1.0) * 100.0
            );
        }
    }

    println!(
        "\nPart 4 — preconditioner serving win on fpga:stratix10-gx2800 \
         ({num_requests} requests, model-optimal):\n"
    );
    let precond_serving = precond_sweep(degree, per_side, num_requests);
    {
        let find = |label: &str| {
            precond_serving
                .iter()
                .find(|r| r.precond == label)
                .expect("swept precond")
        };
        let (jacobi, fdm) = (find("jacobi"), find("fdm"));
        println!(
            "\nFDM vs Jacobi: {:.0}% fewer total iterations, {:.2}x the throughput.",
            (1.0 - fdm.total_iterations as f64 / jacobi.total_iterations as f64) * 100.0,
            fdm.throughput_rps / jacobi.throughput_rps
        );
    }

    if trace {
        observability_export(degree, per_side, num_requests);
    }

    let report = ServeBenchReport {
        degree,
        elements_per_side: per_side,
        policy_requests: num_requests,
        pool: POLICY_POOL.iter().map(ToString::to_string).collect(),
        precond: PrecondSpec::default().label().to_string(),
        pipeline,
        policies,
        async_host,
        precond_serving,
    };
    let json = serde::json::to_string(&report);
    std::fs::write("BENCH_serve.json", &json).expect("write BENCH_serve.json");
    println!(
        "\nWrote BENCH_serve.json ({} pipeline rows, {} policies, {} async rows, \
         {} precond rows).\n\
         Overlap rows pipeline upload(i+1) / solve(i) / download(i-1); policy rows\n\
         serve the heterogeneous CPU + FPGA + projected-device pool; async rows\n\
         compare the work-stealing worker-thread host against the synchronous path;\n\
         precond rows price identity vs Jacobi vs FDM end to end on the evaluated board.",
        report.pipeline.len(),
        report.policies.len(),
        report.async_host.len(),
        report.precond_serving.len()
    );
}
