//! Regenerates Fig. 2: the peak-performance comparison at 4096 elements —
//! the simulated FPGA, every CPU/GPU baseline, power efficiency, rooflines,
//! and the three projected future FPGAs.
//!
//! Run with `cargo run -p bench --bin fig2 --release`.

use bench::table::fmt;
use bench::TableWriter;

fn main() {
    let mut table = TableWriter::new(vec![
        "Machine",
        "N=7",
        "N=11",
        "N=15",
        "Power(W)",
        "GF/s/W",
        "Roofline@15",
        "Projected?",
    ]);
    for row in bench::fig2_rows() {
        table.row(vec![
            row.machine.clone(),
            fmt(row.gflops[0], 1),
            fmt(row.gflops[1], 1),
            fmt(row.gflops[2], 1),
            fmt(row.power_watts, 0),
            fmt(row.gflops_per_watt, 2),
            if row.roofline_gflops.is_finite() {
                fmt(row.roofline_gflops, 0)
            } else {
                "-".to_string()
            },
            if row.projected { "yes" } else { "no" }.to_string(),
        ]);
    }
    println!("Fig. 2 — peak performance comparison at 4096 elements (GFLOP/s)\n");
    table.print();
}
