//! Regenerates the padding analysis of Section III-E / Section IV: for every
//! degree, whether padding the element up to the next unroll-friendly size
//! pays off.
//!
//! Run with `cargo run -p bench --bin padding --release`.

use bench::table::fmt;
use bench::TableWriter;
use perf_model::padding::analyse_padding;

fn main() {
    let mut table = TableWriter::new(vec![
        "N",
        "points",
        "padded to",
        "T unpadded",
        "T padded",
        "work inflation",
        "net gain",
        "verdict",
    ]);
    for degree in 1..=15 {
        let a = analyse_padding(degree, 4, 4.0);
        table.row(vec![
            degree.to_string(),
            (degree + 1).to_string(),
            a.padded_points.to_string(),
            fmt(a.unpadded_throughput, 0),
            fmt(a.padded_throughput, 0),
            fmt(a.work_inflation, 2),
            fmt(a.net_gain, 2),
            if a.net_gain > 1.05 {
                "pads"
            } else if a.net_gain < 0.95 {
                "hurts"
            } else {
                "neutral"
            }
            .to_string(),
        ]);
    }
    println!("Padding analysis (unroll target 4, bandwidth-limited T_max = 4)\n");
    table.print();
    println!("\nAs in the paper: padding mostly hurts or is neutral for the even GLL counts,");
    println!("which is why the final accelerators do not use it.");
}
