//! Batched many-RHS serving sweep: for every registry backend, solve the
//! manufactured problem at batch sizes {1, 4, 16, 64} through
//! `SemSystem::solve_many` and record how the per-RHS cost falls as the
//! offload transfer amortises and the CG scratch is reused.
//!
//! A second sweep walks every degree the specialized kernel family covers
//! (N = 3..=15) and times the same manufactured solve through the pinned
//! generic `optimized` kernel versus the degree-specialized dispatch,
//! recording the per-RHS operator seconds of each and their ratio — the
//! measured payoff of compile-time `NX` that motivates the whole layer.
//!
//! Writes `BENCH_batched.json` next to the working directory so successive
//! PRs can track the batched-serving trajectory, and prints summary tables.
//!
//! Run with `cargo run --release -p bench --bin batched -- [degree] [elements_per_side]`
//! (CI runs tiny sizes as a smoke step: `-- 3 2`).

use bench::table::{fmt, TableWriter};
use sem_accel::{Backend, PerfSource, SemSystem};
use sem_kernel::specialized::{MAX_DEGREE, MIN_DEGREE};
use sem_kernel::AxImplementation;
use sem_mesh::{BoxMesh, ElementField, MeshDeformation};
use sem_solver::{CgOptions, PoissonProblem, PrecondSpec};
use serde::Serialize;

/// Batch sizes of the sweep (the serving shapes the ROADMAP names).
const BATCHES: [usize; 4] = [1, 4, 16, 64];

/// One (backend, batch) point of the sweep.
#[derive(Debug, Clone, Serialize)]
struct BatchedRow {
    backend: String,
    /// Preconditioner the batch solved with (the registry default, Jacobi).
    precond: String,
    simulated: bool,
    batch: usize,
    iterations: usize,
    /// Operator (kernel) seconds attributed to one RHS.
    per_rhs_operator_seconds: f64,
    /// Amortised host↔device transfer seconds attributed to one RHS.
    per_rhs_transfer_seconds: f64,
    /// What one RHS would pay without batching (one full offload round trip).
    unbatched_transfer_seconds: f64,
    /// Relative drop of the per-RHS transfer share versus sequential solves.
    transfer_drop_percent: f64,
    /// Modelled per-RHS end-to-end seconds (operator + amortised transfer).
    per_rhs_modeled_seconds: f64,
    /// Heap allocations the pre-scratch solver would have performed for this
    /// batch and that the reusable `CgScratch` + CSR dssum path eliminates
    /// (modelled: per solve, two setup clones, one work field, one
    /// preconditioned residual per iteration and one global dssum vector per
    /// operator application, minus the batch's single five-field scratch).
    allocations_eliminated: u64,
    max_error: f64,
}

/// One degree of the generic-vs-specialized kernel comparison: the same
/// manufactured Jacobi-CG solve run once through the pinned generic
/// `optimized` kernel and once through the degree-specialized dispatch
/// (which is what `cpu:specialized` — and the auto-upgraded `cpu:optimized`
/// — executes in production).
#[derive(Debug, Clone, Serialize)]
struct DegreeRow {
    degree: usize,
    /// Elements per side of the sweep mesh (capped below the main sweep's
    /// so the full 13-degree walk stays a bench step, not a campaign).
    elements_per_side: usize,
    /// CG iterations of the solve — identical for both variants because the
    /// specialized kernel is bitwise identical to the generic one.
    iterations: usize,
    /// Vector width of the generated kernel at this degree (the same
    /// structural constant `fpga_sim` derives its design unroll from).
    unroll: usize,
    /// Per-RHS operator seconds through the pinned generic kernel.
    generic_per_rhs_operator_seconds: f64,
    /// Per-RHS operator seconds through the specialized dispatch.
    specialized_per_rhs_operator_seconds: f64,
    /// Generic over specialized per-RHS operator seconds (> 1 means the
    /// compile-time `NX` kernels win).
    speedup: f64,
    /// Max |specialized − reference| of one operator application on the
    /// manufactured exact field (parity, not convergence error).
    max_error: f64,
}

/// The persisted sweep.
#[derive(Debug, Clone, Serialize)]
struct BatchedBenchReport {
    degree: usize,
    elements_per_side: usize,
    batches: Vec<usize>,
    rows: Vec<BatchedRow>,
    /// Generic-vs-specialized kernel timing for every covered degree.
    degree_sweep: Vec<DegreeRow>,
}

/// Time the manufactured solve through `operator` and return the best
/// per-RHS operator seconds over `reps` runs plus the iteration count.
fn time_solve(
    problem: &PoissonProblem,
    operator: &sem_kernel::PoissonOperator,
    options: CgOptions,
    reps: usize,
) -> (f64, usize) {
    let mut best = f64::INFINITY;
    let mut iterations = 0;
    for _ in 0..reps {
        let solution = problem.solve_manufactured_through(operator, options, PrecondSpec::Jacobi);
        best = best.min(solution.cg.operator_seconds);
        iterations = solution.cg.iterations;
    }
    (best, iterations)
}

/// Walk every specialized degree, timing generic vs specialized kernels on
/// the same problem and checking one application against the reference
/// kernel.
fn sweep_degrees(per_side: usize) -> Vec<DegreeRow> {
    // Timing-oriented options: enough iterations to integrate over, bounded
    // so the 13-degree sweep stays quick even at N = 15.
    let options = CgOptions {
        max_iterations: 300,
        tolerance: 1e-8,
        record_history: false,
    };
    let mut rows = Vec::new();
    for degree in MIN_DEGREE..=MAX_DEGREE {
        let mesh = BoxMesh::new(degree, [per_side; 3], [1.0; 3], MeshDeformation::None);
        let problem = PoissonProblem::new(mesh, AxImplementation::Specialized);
        let specialized = problem.operator();
        let mut generic = specialized.clone();
        generic.pin_generic();
        let mut reference = specialized.clone();
        reference.set_implementation(AxImplementation::Reference);

        let exact = problem.manufactured_exact();
        let mut w_specialized = ElementField::zeros(degree, problem.mesh().num_elements());
        let mut w_reference = w_specialized.clone();
        specialized.apply_into(&exact, &mut w_specialized);
        reference.apply_into(&exact, &mut w_reference);
        let max_error = w_specialized
            .as_slice()
            .iter()
            .zip(w_reference.as_slice())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0_f64, f64::max);

        let (generic_seconds, iterations) = time_solve(&problem, &generic, options, 2);
        let (specialized_seconds, _) = time_solve(&problem, specialized, options, 2);
        rows.push(DegreeRow {
            degree,
            elements_per_side: per_side,
            iterations,
            unroll: sem_kernel::kernel_structure(degree).map_or(1, |structure| structure.unroll),
            generic_per_rhs_operator_seconds: generic_seconds,
            specialized_per_rhs_operator_seconds: specialized_seconds,
            speedup: generic_seconds / specialized_seconds.max(f64::MIN_POSITIVE),
            max_error,
        });
    }
    rows
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let degree: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(7);
    let per_side: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(4);
    let options = CgOptions {
        max_iterations: 2000,
        tolerance: 1e-10,
        record_history: false,
    };

    println!(
        "Batched serving sweep: N = {degree}, {per_side}x{per_side}x{per_side} elements, \
         batches {BATCHES:?}\n"
    );
    let mut table = TableWriter::new(vec![
        "backend",
        "batch",
        "iters",
        "op/RHS (ms)",
        "xfer/RHS (ms)",
        "xfer drop",
        "modeled/RHS (ms)",
        "allocs saved",
    ]);

    let mut rows = Vec::new();
    for name in Backend::registry_names() {
        let system = SemSystem::builder()
            .degree(degree)
            .elements([per_side; 3])
            .backend_named(&name)
            .build();
        let sequential = system.solve(options);

        for batch in BATCHES {
            let reports = system.solve_many_manufactured(batch, options);
            let per_rhs_operator_seconds =
                reports.iter().map(|r| r.operator.seconds).sum::<f64>() / batch as f64;
            let per_rhs_transfer_seconds =
                reports.iter().map(|r| r.transfer_seconds).sum::<f64>() / batch as f64;
            let unbatched = sequential.transfer_seconds;
            let transfer_drop_percent = if unbatched > 0.0 {
                (1.0 - per_rhs_transfer_seconds / unbatched) * 100.0
            } else {
                0.0
            };
            let iterations = reports[0].iterations();
            let applications: u64 = reports
                .iter()
                .map(|r| r.solution.cg.operator_applications as u64)
                .sum();
            let total_iterations: u64 = reports.iter().map(|r| r.iterations() as u64).sum();
            let allocations_eliminated =
                (batch as u64 * 3 + 2 * total_iterations + applications).saturating_sub(5);
            let row = BatchedRow {
                backend: name.clone(),
                precond: reports[0].precond.label().to_string(),
                simulated: reports[0].source == PerfSource::Simulated,
                batch,
                iterations,
                per_rhs_operator_seconds,
                per_rhs_transfer_seconds,
                unbatched_transfer_seconds: unbatched,
                transfer_drop_percent,
                per_rhs_modeled_seconds: per_rhs_operator_seconds + per_rhs_transfer_seconds,
                allocations_eliminated,
                max_error: reports[0].solution.max_error,
            };
            table.row(vec![
                name.clone(),
                batch.to_string(),
                row.iterations.to_string(),
                fmt(row.per_rhs_operator_seconds * 1e3, 3),
                fmt(row.per_rhs_transfer_seconds * 1e3, 3),
                format!("{:.0}%", row.transfer_drop_percent),
                fmt(row.per_rhs_modeled_seconds * 1e3, 3),
                row.allocations_eliminated.to_string(),
            ]);
            rows.push(row);
        }
    }
    table.print();

    // Degree sweep: generic vs specialized kernel, every covered degree, on
    // a mesh capped at 3^3 elements so the walk stays a bench step.
    let sweep_side = per_side.min(3);
    println!(
        "\nDegree sweep: generic vs specialized kernels, N = {MIN_DEGREE}..={MAX_DEGREE}, \
         {sweep_side}x{sweep_side}x{sweep_side} elements\n"
    );
    let degree_sweep = sweep_degrees(sweep_side);
    let mut sweep_table = TableWriter::new(vec![
        "N",
        "unroll",
        "iters",
        "generic op/RHS (ms)",
        "specialized op/RHS (ms)",
        "speedup",
        "max err",
    ]);
    for row in &degree_sweep {
        sweep_table.row(vec![
            row.degree.to_string(),
            row.unroll.to_string(),
            row.iterations.to_string(),
            fmt(row.generic_per_rhs_operator_seconds * 1e3, 3),
            fmt(row.specialized_per_rhs_operator_seconds * 1e3, 3),
            format!("{:.2}x", row.speedup),
            format!("{:.1e}", row.max_error),
        ]);
    }
    sweep_table.print();

    let report = BatchedBenchReport {
        degree,
        elements_per_side: per_side,
        batches: BATCHES.to_vec(),
        rows,
        degree_sweep,
    };
    let json = serde::json::to_string(&report);
    std::fs::write("BENCH_batched.json", &json).expect("write BENCH_batched.json");
    println!(
        "\nWrote BENCH_batched.json ({} rows).  FPGA rows charge the shared\n\
         geometry/matrix upload once per batch; CPU rows run batch-parallel\n\
         with per-thread scratch, so their transfer column is zero.",
        report.rows.len()
    );
}
