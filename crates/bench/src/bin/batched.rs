//! Batched many-RHS serving sweep: for every registry backend, solve the
//! manufactured problem at batch sizes {1, 4, 16, 64} through
//! `SemSystem::solve_many` and record how the per-RHS cost falls as the
//! offload transfer amortises and the CG scratch is reused.
//!
//! Writes `BENCH_batched.json` next to the working directory so successive
//! PRs can track the batched-serving trajectory, and prints a summary table.
//!
//! Run with `cargo run --release -p bench --bin batched -- [degree] [elements_per_side]`
//! (CI runs tiny sizes as a smoke step: `-- 3 2`).

use bench::table::{fmt, TableWriter};
use sem_accel::{Backend, PerfSource, SemSystem};
use sem_solver::CgOptions;
use serde::Serialize;

/// Batch sizes of the sweep (the serving shapes the ROADMAP names).
const BATCHES: [usize; 4] = [1, 4, 16, 64];

/// One (backend, batch) point of the sweep.
#[derive(Debug, Clone, Serialize)]
struct BatchedRow {
    backend: String,
    /// Preconditioner the batch solved with (the registry default, Jacobi).
    precond: String,
    simulated: bool,
    batch: usize,
    iterations: usize,
    /// Operator (kernel) seconds attributed to one RHS.
    per_rhs_operator_seconds: f64,
    /// Amortised host↔device transfer seconds attributed to one RHS.
    per_rhs_transfer_seconds: f64,
    /// What one RHS would pay without batching (one full offload round trip).
    unbatched_transfer_seconds: f64,
    /// Relative drop of the per-RHS transfer share versus sequential solves.
    transfer_drop_percent: f64,
    /// Modelled per-RHS end-to-end seconds (operator + amortised transfer).
    per_rhs_modeled_seconds: f64,
    /// Heap allocations the pre-scratch solver would have performed for this
    /// batch and that the reusable `CgScratch` + CSR dssum path eliminates
    /// (modelled: per solve, two setup clones, one work field, one
    /// preconditioned residual per iteration and one global dssum vector per
    /// operator application, minus the batch's single five-field scratch).
    allocations_eliminated: u64,
    max_error: f64,
}

/// The persisted sweep.
#[derive(Debug, Clone, Serialize)]
struct BatchedBenchReport {
    degree: usize,
    elements_per_side: usize,
    batches: Vec<usize>,
    rows: Vec<BatchedRow>,
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let degree: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(7);
    let per_side: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(4);
    let options = CgOptions {
        max_iterations: 2000,
        tolerance: 1e-10,
        record_history: false,
    };

    println!(
        "Batched serving sweep: N = {degree}, {per_side}x{per_side}x{per_side} elements, \
         batches {BATCHES:?}\n"
    );
    let mut table = TableWriter::new(vec![
        "backend",
        "batch",
        "iters",
        "op/RHS (ms)",
        "xfer/RHS (ms)",
        "xfer drop",
        "modeled/RHS (ms)",
        "allocs saved",
    ]);

    let mut rows = Vec::new();
    for name in Backend::registry_names() {
        let system = SemSystem::builder()
            .degree(degree)
            .elements([per_side; 3])
            .backend_named(&name)
            .build();
        let sequential = system.solve(options);

        for batch in BATCHES {
            let reports = system.solve_many_manufactured(batch, options);
            let per_rhs_operator_seconds =
                reports.iter().map(|r| r.operator.seconds).sum::<f64>() / batch as f64;
            let per_rhs_transfer_seconds =
                reports.iter().map(|r| r.transfer_seconds).sum::<f64>() / batch as f64;
            let unbatched = sequential.transfer_seconds;
            let transfer_drop_percent = if unbatched > 0.0 {
                (1.0 - per_rhs_transfer_seconds / unbatched) * 100.0
            } else {
                0.0
            };
            let iterations = reports[0].iterations();
            let applications: u64 = reports
                .iter()
                .map(|r| r.solution.cg.operator_applications as u64)
                .sum();
            let total_iterations: u64 = reports.iter().map(|r| r.iterations() as u64).sum();
            let allocations_eliminated =
                (batch as u64 * 3 + 2 * total_iterations + applications).saturating_sub(5);
            let row = BatchedRow {
                backend: name.clone(),
                precond: reports[0].precond.label().to_string(),
                simulated: reports[0].source == PerfSource::Simulated,
                batch,
                iterations,
                per_rhs_operator_seconds,
                per_rhs_transfer_seconds,
                unbatched_transfer_seconds: unbatched,
                transfer_drop_percent,
                per_rhs_modeled_seconds: per_rhs_operator_seconds + per_rhs_transfer_seconds,
                allocations_eliminated,
                max_error: reports[0].solution.max_error,
            };
            table.row(vec![
                name.clone(),
                batch.to_string(),
                row.iterations.to_string(),
                fmt(row.per_rhs_operator_seconds * 1e3, 3),
                fmt(row.per_rhs_transfer_seconds * 1e3, 3),
                format!("{:.0}%", row.transfer_drop_percent),
                fmt(row.per_rhs_modeled_seconds * 1e3, 3),
                row.allocations_eliminated.to_string(),
            ]);
            rows.push(row);
        }
    }
    table.print();

    let report = BatchedBenchReport {
        degree,
        elements_per_side: per_side,
        batches: BATCHES.to_vec(),
        rows,
    };
    let json = serde::json::to_string(&report);
    std::fs::write("BENCH_batched.json", &json).expect("write BENCH_batched.json");
    println!(
        "\nWrote BENCH_batched.json ({} rows).  FPGA rows charge the shared\n\
         geometry/matrix upload once per batch; CPU rows run batch-parallel\n\
         with per-thread scratch, so their transfer column is zero.",
        report.rows.len()
    );
}
