//! Preconditioner sweep: identity vs Jacobi vs FDM across polynomial
//! degrees, measuring what actually dominates an offloaded solve —
//! `iterations × Ax` — on two problems:
//!
//! * the **standard manufactured** Poisson problem (the correctness anchor;
//!   note its right-hand side is a single Laplacian eigenfunction, which
//!   unpreconditioned CG resolves in misleadingly few iterations), and
//! * a **generic** multi-mode right-hand side — the shape of an arbitrary
//!   serving request, where preconditioner strength is what it appears to
//!   be in production.
//!
//! Each (degree, preconditioner, problem) point is solved twice: through
//! `cpu:optimized` (measured wall seconds) and through
//! `fpga:stratix10-gx2800` (modelled end-to-end seconds with the FDM/Jacobi
//! pass claimed on-device and its table upload priced into the offload
//! plan).  Writes `BENCH_precond.json`.
//!
//! Run with `cargo run --release -p bench --bin precond -- [elements_per_side] [degrees...]`
//! (defaults: 4, degrees 3 7 11; CI smoke-runs `-- 2 3`).

use bench::table::{fmt, TableWriter};
use sem_accel::{PrecondSpec, SemSystem, SolveReport};
use sem_mesh::ElementField;
use sem_solver::CgOptions;
use serde::Serialize;

/// A named way of producing one solve report from a system.
type ProblemSolve = (&'static str, Box<dyn Fn(&SemSystem) -> SolveReport>);

/// One (degree, preconditioner, problem) measurement.
#[derive(Debug, Clone, Serialize)]
struct PrecondRow {
    degree: usize,
    elements_per_side: usize,
    precond: String,
    /// `"manufactured"` or `"generic"`.
    problem: String,
    iterations: usize,
    precond_applications: usize,
    /// Measured wall seconds of the whole solve on `cpu:optimized`.
    cpu_wall_seconds: f64,
    /// Measured seconds of the preconditioner applications on the CPU.
    cpu_precond_seconds: f64,
    /// Modelled end-to-end seconds on the simulated FPGA (kernel +
    /// on-device preconditioner + transfers including the table upload).
    fpga_modeled_seconds: f64,
    /// Modelled on-device preconditioner seconds within the FPGA solve.
    fpga_precond_seconds: f64,
    /// Offload transfer seconds of the FPGA solve (preconditioner tables
    /// included in the shared upload).
    fpga_transfer_seconds: f64,
    /// Whether the FPGA backend claimed the preconditioner pass on-device.
    fpga_precond_on_device: bool,
    /// Final relative CG residual (both backends agree bitwise).
    relative_residual: f64,
    /// Max-norm error against the manufactured solution (zero-ish only
    /// meaningful on the manufactured rows; the generic problem has no
    /// closed-form solution and records -1).
    max_error: f64,
}

/// The persisted sweep.
#[derive(Debug, Clone, Serialize)]
struct PrecondBenchReport {
    elements_per_side: usize,
    degrees: Vec<usize>,
    /// Iteration cut of FDM vs Jacobi at N = 7 on the generic serving
    /// workload (the headline figure; the acceptance bar is ≥ 40).
    n7_generic_iteration_cut_percent: f64,
    /// The same cut on the single-eigenfunction manufactured problem, for
    /// honesty about the near-eigenvector artefact.
    n7_manufactured_iteration_cut_percent: f64,
    /// Modelled FPGA end-to-end cut of FDM vs Jacobi at N = 7 (generic).
    n7_generic_fpga_seconds_cut_percent: f64,
    rows: Vec<PrecondRow>,
}

/// The shared serving-shaped right-hand side (one definition with the
/// iteration-regression tests: `PoissonProblem::generic_rhs`).
fn generic_rhs(system: &SemSystem) -> ElementField {
    system.problem().generic_rhs()
}

fn cut_percent(
    rows: &[PrecondRow],
    degree: usize,
    problem: &str,
    f: impl Fn(&PrecondRow) -> f64,
) -> f64 {
    let find = |precond: &str| {
        rows.iter()
            .find(|r| r.degree == degree && r.problem == problem && r.precond == precond)
            .map(&f)
    };
    match (find("jacobi"), find("fdm")) {
        (Some(jacobi), Some(fdm)) if jacobi > 0.0 => (1.0 - fdm / jacobi) * 100.0,
        _ => 0.0,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let per_side: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(4);
    let degrees: Vec<usize> = if args.len() > 2 {
        args[2..].iter().filter_map(|s| s.parse().ok()).collect()
    } else {
        vec![3, 7, 11]
    };
    let options = CgOptions {
        max_iterations: 3000,
        tolerance: 1e-10,
        record_history: false,
    };

    println!(
        "Preconditioner sweep: degrees {degrees:?}, {per_side}x{per_side}x{per_side} elements\n"
    );
    let mut table = TableWriter::new(vec![
        "N",
        "precond",
        "problem",
        "iters",
        "cpu wall (ms)",
        "fpga modeled (ms)",
        "fpga pc (ms)",
        "on-device",
    ]);

    let mut rows = Vec::new();
    for &degree in &degrees {
        for precond in PrecondSpec::all() {
            let suffix = precond
                .name_suffix()
                .map(|s| format!("+{s}"))
                .unwrap_or_default();
            let cpu = SemSystem::builder()
                .degree(degree)
                .elements([per_side; 3])
                .backend_named(&format!("cpu:optimized{suffix}"))
                .build();
            let fpga = SemSystem::builder()
                .degree(degree)
                .elements([per_side; 3])
                .backend_named(&format!("fpga:stratix10-gx2800{suffix}"))
                .build();

            let generic = generic_rhs(&cpu);
            let problems: [ProblemSolve; 2] = [
                (
                    "manufactured",
                    Box::new(move |system: &SemSystem| system.solve(options)),
                ),
                (
                    "generic",
                    Box::new(move |system: &SemSystem| system.solve_rhs(&generic, options)),
                ),
            ];
            for (problem, solve) in problems {
                let cpu_report = solve(&cpu);
                let fpga_report = solve(&fpga);
                assert_eq!(
                    cpu_report.iterations(),
                    fpga_report.iterations(),
                    "same datapath, same iterates"
                );
                let row = PrecondRow {
                    degree,
                    elements_per_side: per_side,
                    precond: precond.label().to_string(),
                    problem: problem.to_string(),
                    iterations: cpu_report.iterations(),
                    precond_applications: cpu_report.precond_applications(),
                    cpu_wall_seconds: cpu_report.host_wall_seconds,
                    cpu_precond_seconds: cpu_report.precond_seconds,
                    fpga_modeled_seconds: fpga_report.modeled_seconds(),
                    fpga_precond_seconds: fpga_report.precond_seconds,
                    fpga_transfer_seconds: fpga_report.transfer_seconds,
                    fpga_precond_on_device: fpga_report.precond_on_device,
                    relative_residual: cpu_report.solution.cg.relative_residual,
                    max_error: if problem == "manufactured" {
                        cpu_report.solution.max_error
                    } else {
                        -1.0
                    },
                };
                table.row(vec![
                    degree.to_string(),
                    row.precond.clone(),
                    row.problem.clone(),
                    row.iterations.to_string(),
                    fmt(row.cpu_wall_seconds * 1e3, 2),
                    fmt(row.fpga_modeled_seconds * 1e3, 3),
                    fmt(row.fpga_precond_seconds * 1e3, 3),
                    row.fpga_precond_on_device.to_string(),
                ]);
                rows.push(row);
            }
        }
    }
    table.print();

    let report = PrecondBenchReport {
        elements_per_side: per_side,
        degrees: degrees.clone(),
        n7_generic_iteration_cut_percent: cut_percent(&rows, 7, "generic", |r| r.iterations as f64),
        n7_manufactured_iteration_cut_percent: cut_percent(&rows, 7, "manufactured", |r| {
            r.iterations as f64
        }),
        n7_generic_fpga_seconds_cut_percent: cut_percent(&rows, 7, "generic", |r| {
            r.fpga_modeled_seconds
        }),
        rows,
    };
    println!(
        "\nN=7 FDM vs Jacobi: {:.0}% fewer iterations on generic right-hand sides \
         ({:.0}% on the single-eigenfunction manufactured problem), \
         {:.0}% less modelled FPGA end-to-end time.",
        report.n7_generic_iteration_cut_percent,
        report.n7_manufactured_iteration_cut_percent,
        report.n7_generic_fpga_seconds_cut_percent,
    );
    if per_side == 4 && degrees.contains(&7) {
        // The committed shape must demonstrate the acceptance bar.
        assert!(
            report.n7_generic_iteration_cut_percent >= 40.0,
            "FDM must cut >= 40% of Jacobi's iterations at N=7, 4^3: got {:.0}%",
            report.n7_generic_iteration_cut_percent
        );
    }

    let json = serde::json::to_string(&report);
    std::fs::write("BENCH_precond.json", &json).expect("write BENCH_precond.json");
    println!("\nWrote BENCH_precond.json ({} rows).", report.rows.len());
}
