//! Minimal fixed-width table writer for the report binaries.

/// Accumulates rows and prints an aligned ASCII table.
#[derive(Debug, Clone)]
pub struct TableWriter {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TableWriter {
    /// Start a table with the given column headers.
    #[must_use]
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        Self {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row; its length must match the header count.
    ///
    /// # Panics
    /// Panics on a column-count mismatch.
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.headers.len(), "column count mismatch");
        self.rows.push(cells);
    }

    /// Render the table as a string.
    #[must_use]
    pub fn render(&self) -> String {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for i in 0..ncols {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{:>width$}", cells[i], width = widths[i]));
            }
            line.push('\n');
            line
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        let total: usize = widths.iter().sum::<usize>() + 2 * (ncols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
        }
        out
    }

    /// Print the rendered table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Format a float with the given number of decimals.
#[must_use]
pub fn fmt(value: f64, decimals: usize) -> String {
    format!("{value:.decimals$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TableWriter::new(vec!["N", "GFLOP/s"]);
        t.row(vec!["7".to_string(), fmt(109.0456, 1)]);
        t.row(vec!["15".to_string(), fmt(211.3, 1)]);
        let s = t.render();
        assert!(s.contains("109.0"));
        assert!(s.contains("211.3"));
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert_eq!(lines[1].chars().collect::<Vec<_>>()[0], '-');
    }

    #[test]
    #[should_panic(expected = "column count mismatch")]
    fn rejects_ragged_rows() {
        let mut t = TableWriter::new(vec!["a", "b"]);
        t.row(vec!["only one"]);
    }
}
