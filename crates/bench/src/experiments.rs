//! Data generators for the paper's tables and figures.
//!
//! Each public function regenerates the numbers behind one table or figure;
//! the binaries in `src/bin/` only format them.  The experiment ↔ module map
//! lives in `DESIGN.md`; paper-vs-reproduced values are recorded in
//! `EXPERIMENTS.md`.

use arch_db::{calibrated_models, MachineModel};
use fpga_sim::{
    AcceleratorDesign, ExecutionReport, FpgaAccelerator, FpgaDevice, OptimizationStage,
};
use perf_model::projection::{calibrated_base, project_device};
use perf_model::throughput::{predict, ArbitrationPolicy};
use perf_model::{measured_table1, roofline_gflops};

/// The polynomial degrees the paper synthesised bitstreams for.
pub const TABLE1_DEGREES: [usize; 8] = [1, 3, 5, 7, 9, 11, 13, 15];

/// The degrees used in the peak-performance comparison (Fig. 2).
pub const FIG2_DEGREES: [usize; 3] = [7, 11, 15];

/// The element-count sweep of Fig. 1.
pub const FIG1_ELEMENT_COUNTS: [usize; 8] = [8, 16, 64, 128, 512, 1024, 4096, 16384];

/// The problem size of the peak comparisons (Fig. 2, Fig. 3, Table I).
pub const REFERENCE_ELEMENTS: usize = 4096;

/// Simulated performance of the production GX2800 accelerator for one degree
/// and problem size.
#[must_use]
pub fn fpga_performance(degree: usize, num_elements: usize) -> ExecutionReport {
    let device = FpgaDevice::stratix10_gx2800();
    FpgaAccelerator::for_degree(degree, &device).estimate(num_elements)
}

/// The Section III optimisation ladder at one degree: (stage label, GFLOP/s).
#[must_use]
pub fn ladder_gflops(degree: usize, num_elements: usize) -> Vec<(&'static str, f64)> {
    let device = FpgaDevice::stratix10_gx2800();
    OptimizationStage::ladder()
        .iter()
        .map(|&stage| {
            let label = match stage {
                OptimizationStage::Baseline => "baseline",
                OptimizationStage::LocalMemory => "+BRAM/unroll/split-gxyz",
                OptimizationStage::InitiationIntervalOne => "+II=1",
                OptimizationStage::Banked => "+banked memory",
            };
            let design = AcceleratorDesign::at_stage(degree, &device, stage);
            let report = FpgaAccelerator::new(device.clone(), design).estimate(num_elements);
            (label, report.gflops)
        })
        .collect()
}

/// One point of Fig. 1: a machine's performance at one degree and size.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig1Point {
    /// Machine name ("SEM-Acc (FPGA)" or a Table II baseline).
    pub machine: String,
    /// Polynomial degree.
    pub degree: usize,
    /// Number of elements.
    pub num_elements: usize,
    /// Achieved GFLOP/s.
    pub gflops: f64,
}

/// Generate the Fig. 1 series: every machine (simulated FPGA + calibrated
/// CPU/GPU models) over the element sweep for one polynomial degree.
#[must_use]
pub fn fig1_series(degree: usize) -> Vec<Fig1Point> {
    let mut points = Vec::new();
    for &elements in &FIG1_ELEMENT_COUNTS {
        points.push(Fig1Point {
            machine: "SEM-Acc (FPGA)".to_string(),
            degree,
            num_elements: elements,
            gflops: fpga_performance(degree, elements).gflops,
        });
        for model in calibrated_models() {
            points.push(Fig1Point {
                machine: model.architecture.name.clone(),
                degree,
                num_elements: elements,
                gflops: model.achieved_gflops(degree, elements),
            });
        }
    }
    points
}

/// One bar group of Fig. 2.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig2Row {
    /// Machine name.
    pub machine: String,
    /// Achieved GFLOP/s at N = 7, 11, 15 and 4096 elements.
    pub gflops: [f64; 3],
    /// Power draw estimate in watts.
    pub power_watts: f64,
    /// Power efficiency (GFLOP/s/W) at the machine's best of the three degrees.
    pub gflops_per_watt: f64,
    /// Roofline bound at N = 15 (the green line of Fig. 2).
    pub roofline_gflops: f64,
    /// Whether this row is a model projection (the three future FPGAs).
    pub projected: bool,
}

fn fig2_row_from_machine(model: &MachineModel) -> Fig2Row {
    let gflops = [
        model.achieved_gflops(7, REFERENCE_ELEMENTS),
        model.achieved_gflops(11, REFERENCE_ELEMENTS),
        model.achieved_gflops(15, REFERENCE_ELEMENTS),
    ];
    let best = gflops.iter().copied().fold(0.0, f64::max);
    Fig2Row {
        machine: model.architecture.name.clone(),
        gflops,
        power_watts: model.power_watts(),
        gflops_per_watt: best / model.power_watts(),
        roofline_gflops: model.roofline_gflops(15),
        projected: false,
    }
}

/// Generate the Fig. 2 comparison: the simulated FPGA, every CPU/GPU baseline
/// and the three projected future FPGAs.
#[must_use]
pub fn fig2_rows() -> Vec<Fig2Row> {
    let mut rows = Vec::new();

    // The evaluated FPGA (simulated).
    let device = FpgaDevice::stratix10_gx2800();
    let gflops = [
        fpga_performance(7, REFERENCE_ELEMENTS),
        fpga_performance(11, REFERENCE_ELEMENTS),
        fpga_performance(15, REFERENCE_ELEMENTS),
    ];
    let best = gflops.iter().map(|r| r.gflops).fold(0.0, f64::max);
    let power = gflops[2].power_watts;
    rows.push(Fig2Row {
        machine: "SEM-Acc (FPGA, Stratix 10 GX2800)".to_string(),
        gflops: [gflops[0].gflops, gflops[1].gflops, gflops[2].gflops],
        power_watts: power,
        gflops_per_watt: best / power,
        roofline_gflops: roofline_gflops(
            500.0,
            device.memory_bandwidth_gbs,
            perf_model::operational_intensity(15),
        ),
        projected: false,
    });

    // CPU and GPU baselines.
    for model in calibrated_models() {
        rows.push(fig2_row_from_machine(&model));
    }

    // Projected future FPGAs (Section V-D).
    let projections = [
        (FpgaDevice::agilex_027(), ArbitrationPolicy::PowerOfTwo),
        (FpgaDevice::stratix10m(), ArbitrationPolicy::PowerOfTwo),
        (
            FpgaDevice::hypothetical_ideal(),
            ArbitrationPolicy::Unconstrained,
        ),
    ];
    for (device, policy) in projections {
        let out = project_device(&device, &FIG2_DEGREES, 300.0, policy);
        let gflops = [
            out.for_degree(7).map_or(0.0, |p| p.prediction.gflops),
            out.for_degree(11).map_or(0.0, |p| p.prediction.gflops),
            out.for_degree(15).map_or(0.0, |p| p.prediction.gflops),
        ];
        let best = gflops.iter().copied().fold(0.0, f64::max);
        rows.push(Fig2Row {
            machine: device.name.clone(),
            gflops,
            power_watts: device.tdp_watts,
            gflops_per_watt: best / device.tdp_watts,
            roofline_gflops: roofline_gflops(
                f64::INFINITY,
                device.memory_bandwidth_gbs,
                perf_model::operational_intensity(15),
            ),
            projected: true,
        });
    }

    rows
}

/// One point of Fig. 3: measured vs modelled performance as a function of N.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig3Row {
    /// Polynomial degree.
    pub degree: usize,
    /// Simulated ("measured") performance at the synthesised clock.
    pub measured_gflops: f64,
    /// Model prediction at the 300 MHz memory clock.
    pub modelled_300mhz_gflops: f64,
    /// Model prediction at 70% of the memory clock (210 MHz).
    pub modelled_210mhz_gflops: f64,
    /// Roofline bound at the full external bandwidth.
    pub roofline_gflops: f64,
    /// Relative model error against the simulated throughput (percent).
    pub model_error_percent: f64,
}

/// Generate the Fig. 3 curves (and the model-error column of Table I).
#[must_use]
pub fn fig3_rows() -> Vec<Fig3Row> {
    let device = FpgaDevice::stratix10_gx2800();
    TABLE1_DEGREES
        .iter()
        .map(|&degree| {
            let measured = fpga_performance(degree, REFERENCE_ELEMENTS);
            let base = calibrated_base(degree);
            let m300 = predict(
                &device,
                degree,
                &base,
                300.0,
                ArbitrationPolicy::PowerOfTwoDivisor,
            );
            let m210 = predict(
                &device,
                degree,
                &base,
                210.0,
                ArbitrationPolicy::PowerOfTwoDivisor,
            );
            let roofline = roofline_gflops(
                500.0,
                device.memory_bandwidth_gbs,
                perf_model::operational_intensity(degree),
            );
            Fig3Row {
                degree,
                measured_gflops: measured.gflops,
                modelled_300mhz_gflops: m300.gflops,
                modelled_210mhz_gflops: m210.gflops,
                roofline_gflops: roofline,
                model_error_percent: perf_model::throughput::model_error_percent(
                    m300.dofs_per_cycle,
                    measured.dofs_per_cycle,
                ),
            }
        })
        .collect()
}

/// Paper-measured Table I rows paired with the simulator's reproduction.
#[must_use]
pub fn table1_comparison() -> Vec<(perf_model::Table1Row, ExecutionReport)> {
    measured_table1()
        .into_iter()
        .map(|row| {
            let sim = fpga_performance(row.degree, REFERENCE_ELEMENTS);
            (row, sim)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1_has_every_machine_at_every_size() {
        let series = fig1_series(7);
        // 1 FPGA + 8 baselines, 8 sizes.
        assert_eq!(series.len(), 9 * FIG1_ELEMENT_COUNTS.len());
        assert!(series.iter().all(|p| p.gflops > 0.0));
    }

    #[test]
    fn fig2_has_baselines_and_projections() {
        let rows = fig2_rows();
        assert_eq!(rows.len(), 1 + 8 + 3);
        assert_eq!(rows.iter().filter(|r| r.projected).count(), 3);
        // The headline result: the FPGA beats every CPU at N = 15 while the
        // Tesla-class GPUs stay ahead.
        let fpga = rows[0].gflops[2];
        for cpu in ["Xeon", "i9", "ThunderX2"] {
            let row = rows.iter().find(|r| r.machine.contains(cpu)).unwrap();
            assert!(fpga > row.gflops[2], "{cpu}");
        }
        let a100 = rows.iter().find(|r| r.machine.contains("A100")).unwrap();
        assert!(a100.gflops[2] > 5.0 * fpga);
        // The hypothetical ideal FPGA rivals the A100.
        let ideal = rows.iter().find(|r| r.machine.contains("ideal")).unwrap();
        assert!(ideal.gflops[1] > a100.gflops[1]);
    }

    #[test]
    fn fig3_model_error_is_small_for_the_well_behaved_degrees() {
        let rows = fig3_rows();
        assert_eq!(rows.len(), 8);
        for row in &rows {
            assert!(row.measured_gflops <= row.roofline_gflops * 1.02);
            if matches!(row.degree, 9 | 11 | 13 | 15) {
                assert!(
                    row.model_error_percent < 15.0,
                    "degree {}: {}%",
                    row.degree,
                    row.model_error_percent
                );
            }
        }
    }

    #[test]
    fn ladder_is_monotonically_increasing() {
        let ladder = ladder_gflops(7, REFERENCE_ELEMENTS);
        assert_eq!(ladder.len(), 4);
        for pair in ladder.windows(2) {
            assert!(pair[1].1 > pair[0].1, "{pair:?}");
        }
    }

    #[test]
    fn table1_comparison_pairs_every_degree() {
        let rows = table1_comparison();
        assert_eq!(rows.len(), 8);
        for (paper, sim) in rows {
            assert_eq!(sim.degree, paper.degree);
        }
    }
}
