//! Shared infrastructure for the report binaries and Criterion benches.
//!
//! Every table and figure of the paper's evaluation has a corresponding
//! binary in `src/bin/` (see `DESIGN.md` for the experiment index).  The
//! functions here produce the underlying numbers so that the binaries stay
//! thin and the integration tests can assert on the same data the reports
//! print.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod experiments;
pub mod table;

pub use experiments::{
    fig1_series, fig2_rows, fig3_rows, fpga_performance, ladder_gflops, table1_comparison,
    Fig1Point, Fig2Row, Fig3Row,
};
pub use table::TableWriter;
