//! One-dimensional spectral element operators.
//!
//! The 3-D operator of the paper is a tensor product of one-dimensional
//! building blocks; having the 1-D collocation mass matrix `B` and stiffness
//! matrix `K = Dᵀ B D` available on their own is useful both for verification
//! (the 3-D operator on an undeformed element factorises into Kronecker
//! products of these) and for building preconditioners (e.g. the fast
//! diagonalisation method used by Nek5000's additive-Schwarz smoother).

use crate::derivative::DerivativeMatrix;
use crate::matrix::DenseMatrix;
use crate::quadrature::gauss_lobatto_legendre;

/// The 1-D diagonal (collocation) mass matrix on the GLL points of degree
/// `degree`, scaled to an element of length `length`.
#[must_use]
pub fn mass_matrix_1d(degree: usize, length: f64) -> DenseMatrix {
    assert!(length > 0.0, "element length must be positive");
    let q = gauss_lobatto_legendre(degree + 1);
    let jac = length / 2.0;
    let mut m = DenseMatrix::zeros(q.len(), q.len());
    for (i, &w) in q.weights.iter().enumerate() {
        m[(i, i)] = w * jac;
    }
    m
}

/// The 1-D stiffness matrix `K = Dᵀ B D` on the GLL points of degree
/// `degree`, scaled to an element of length `length`.
#[must_use]
pub fn stiffness_matrix_1d(degree: usize, length: f64) -> DenseMatrix {
    assert!(length > 0.0, "element length must be positive");
    let dm = DerivativeMatrix::new(degree);
    let q = dm.quadrature();
    // Physical derivative picks up a factor 2/length; the quadrature a factor
    // length/2; combined: (2/length)^2 * (length/2) = 2/length per weight.
    let scale = 2.0 / length;
    let n = q.len();
    let mut k = DenseMatrix::zeros(n, n);
    for i in 0..n {
        for j in 0..n {
            let mut acc = 0.0;
            for l in 0..n {
                acc += dm.d()[(l, i)] * q.weights[l] * dm.d()[(l, j)];
            }
            k[(i, j)] = acc * scale;
        }
    }
    k
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mass_matrix_integrates_constants_to_the_length() {
        for degree in 1..=12 {
            let m = mass_matrix_1d(degree, 2.5);
            let total: f64 = (0..m.rows()).map(|i| m[(i, i)]).sum();
            assert!((total - 2.5).abs() < 1e-12, "degree {degree}");
        }
    }

    #[test]
    fn stiffness_matrix_is_symmetric_and_annihilates_constants() {
        for degree in 1..=10 {
            let k = stiffness_matrix_1d(degree, 1.3);
            assert!(k.is_symmetric(1e-10));
            let ones = vec![1.0; k.cols()];
            let k1 = k.matvec(&ones);
            assert!(k1.iter().all(|v| v.abs() < 1e-9), "degree {degree}");
        }
    }

    #[test]
    fn stiffness_energy_of_a_linear_function_is_exact() {
        // u = x on an element of length L: ∫ (u')^2 = L.
        for degree in 1..=8 {
            let length = 0.7;
            let q = gauss_lobatto_legendre(degree + 1);
            let nodes: Vec<f64> = q
                .nodes
                .iter()
                .map(|&xi| (xi + 1.0) / 2.0 * length)
                .collect();
            let k = stiffness_matrix_1d(degree, length);
            let ku = k.matvec(&nodes);
            let energy: f64 = nodes.iter().zip(&ku).map(|(a, b)| a * b).sum();
            assert!((energy - length).abs() < 1e-10, "degree {degree}: {energy}");
        }
    }

    #[test]
    fn stiffness_eigen_bound_grows_like_n_to_the_fourth() {
        // The largest Gershgorin radius of K grows rapidly with N — the
        // classical stiffness of spectral discretisations that drives CG
        // iteration counts.  Measured ratios per degree doubling are ~3.3x
        // (N=4→8), ~3.7x (8→16), ~3.9x (16→32): clearly super-quadratic in N
        // and approaching the asymptotic 4x-per-doubling regime from below.
        let r = |degree: usize| {
            let k = stiffness_matrix_1d(degree, 1.0);
            (0..k.rows())
                .map(|i| (0..k.cols()).map(|j| k[(i, j)].abs()).sum::<f64>())
                .fold(0.0_f64, f64::max)
        };
        let (r4, r8, r16) = (r(4), r(8), r(16));
        assert!(r8 > 3.0 * r4, "N=4→8 ratio {}", r8 / r4);
        assert!(r16 > 3.0 * r8, "N=8→16 ratio {}", r16 / r8);
        // The per-doubling ratio itself must grow toward the asymptote.
        assert!(r16 / r8 > r8 / r4, "ratios must increase with N");
    }

    #[test]
    fn matches_the_3d_operator_diagonal_structure() {
        // On the reference element the 3-D geometric factor G_rr equals
        // w_i w_j w_k (length 2 per direction), so the 1-D building blocks and
        // the 3-D kernel share the same quadrature scaling.  Check the mass
        // matrix against the quadrature weights directly.
        let degree = 5;
        let q = gauss_lobatto_legendre(degree + 1);
        let m = mass_matrix_1d(degree, 2.0);
        for i in 0..q.len() {
            assert!((m[(i, i)] - q.weights[i]).abs() < 1e-13);
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_nonpositive_lengths() {
        let _ = mass_matrix_1d(3, 0.0);
    }
}
