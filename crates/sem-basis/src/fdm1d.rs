//! One-dimensional fast-diagonalization (FDM) factors on overlapping
//! element patches.
//!
//! The element-local Poisson operator on an undeformed brick factorises into
//! Kronecker sums of the 1-D stiffness/mass pair, so its inverse is three
//! small tensor contractions once each direction's generalized eigenproblem
//!
//! ```text
//! K̂ Sᵢ = B̂ Sᵢ Λᵢ,   SᵢᵀB̂Sᵢ = I
//! ```
//!
//! is solved — Lottes & Fischer's fast diagonalisation method, the local
//! solve of Nek5000's Schwarz smoother.  The local subdomain is the element
//! closure, optionally extended by [`fdm_overlap`] ghost layers into each
//! neighbour: the 1-D operators are the globally assembled operators
//! restricted to the patch nodes (this element's stiffness/mass plus the
//! neighbouring elements' corner blocks), with homogeneous Dirichlet just
//! outside the patch.  Assembling the interface entries from both sides is
//! what keeps the patch operators definite and the Schwarz sum strong on
//! the element faces, where a purely local (unassembled Neumann) block
//! method stalls on its constant modes.
//!
//! Domain-boundary ends have no neighbour: the ghost node and the Dirichlet
//! boundary node are removed from the eigenproblem instead.  Every patch
//! operator is therefore symmetric positive *definite* — the Neumann
//! constant mode never appears.  Dropped nodes are embedded back as zero
//! eigenvector columns with an infinite eigenvalue, so the 3-D inverse
//! `1 / (λˣᵢ + λʸⱼ + λᶻₖ)` is zero for them without any special casing.
//!
//! Neighbour elements are assumed congruent (same length), which holds for
//! the uniform per-direction spacing of the workspace's box meshes.

use crate::eigen::generalized_eigen_diag;
use crate::matrix::DenseMatrix;
use crate::operators1d::{mass_matrix_1d, stiffness_matrix_1d};

/// Ghost-layer depth (GLL nodes extended into each neighbour) used for the
/// FDM patches at a given polynomial degree.  The default is zero: patches
/// are element closures, which already overlap on the shared interface
/// nodes (minimal-overlap Schwarz) with the interface conditions assembled
/// from both sides.  Measured against ghost depths 1–3 on the standard 4³
/// problems, deeper overlap buys at most a couple of CG iterations while
/// inflating the per-apply tensor work by `((N+1+2·overlap)/(N+1))⁴` — a
/// net loss end-to-end — so the extension is kept as an experiment knob
/// (`FDM_OVERLAP`), clamped so a patch never swallows a whole neighbour.
#[must_use]
pub fn fdm_overlap(degree: usize) -> usize {
    std::env::var("FDM_OVERLAP")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0)
        .min(degree)
}

/// Coarse polynomial degree of the two-level FDM preconditioner for a fine
/// degree: degree 2 (vertices + edge/face/centre midpoints) once the fine
/// degree supports it, degree 1 below that, none for degree-1
/// discretisations (whose patches already reach the vertex scale).  Shared
/// by the solver (which builds the coarse space) and the accelerator model
/// (which prices its on-device solve).
#[must_use]
pub fn fdm_coarse_degree(degree: usize) -> usize {
    2.min(degree.saturating_sub(1))
}

/// Which element endpoints carry a homogeneous Dirichlet condition (domain
/// boundary) rather than an assembled interface to a neighbouring element.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Fdm1dBoundary {
    /// Domain boundary (Dirichlet) at the low end; otherwise an assembled
    /// interface with the left neighbour.
    pub dirichlet_lo: bool,
    /// Domain boundary (Dirichlet) at the high end; otherwise an assembled
    /// interface with the right neighbour.
    pub dirichlet_hi: bool,
}

impl Fdm1dBoundary {
    /// The boundary class of element `index` out of `count` in one direction
    /// of an all-Dirichlet box.
    #[must_use]
    pub fn of_element(index: usize, count: usize) -> Self {
        Self {
            dirichlet_lo: index == 0,
            dirichlet_hi: index + 1 == count,
        }
    }
}

/// The fast-diagonalization factors of one direction of one element class:
/// eigenvectors `S` (and transpose) of the generalized 1-D problem on the
/// extended patch, plus the eigenvalues, embedded at full patch size
/// `N + 1 + 2·overlap` (ghost layers, the element's `N + 1` nodes, ghost
/// layers — see [`fdm_overlap`]).
#[derive(Debug, Clone)]
pub struct Fdm1d {
    /// Eigenvector matrix `S`, row-major, patch-sized.  Rows and columns
    /// corresponding to removed nodes (ghosts outside the domain, Dirichlet
    /// boundary nodes) are zero.
    pub s: DenseMatrix,
    /// `Sᵀ`, row-major (precomputed: the apply contracts with both).
    pub st: DenseMatrix,
    /// Generalized eigenvalues, ascending over the kept modes; removed modes
    /// carry `f64::INFINITY` so their 3-D inverse weight is exactly zero.
    pub lambda: Vec<f64>,
}

impl Fdm1d {
    /// Compute the overlapping-patch factors for polynomial degree `degree`
    /// on an element of length `length` with the given endpoint conditions.
    ///
    /// # Panics
    /// Panics if the length is not positive or the restriction removes every
    /// node (degree 1 with both endpoints Dirichlet leaves nothing).
    #[must_use]
    pub fn new(degree: usize, length: f64, boundary: Fdm1dBoundary) -> Self {
        Self::with_overlap(degree, length, boundary, fdm_overlap(degree))
    }

    /// [`Fdm1d::new`] with an explicit ghost-layer depth (clamped to the
    /// degree so a patch never swallows a whole neighbour).
    ///
    /// # Panics
    /// Panics if the length is not positive or the restriction removes every
    /// node.
    #[must_use]
    pub fn with_overlap(
        degree: usize,
        length: f64,
        boundary: Fdm1dBoundary,
        overlap: usize,
    ) -> Self {
        let n = degree + 1;
        let o = overlap.min(degree);
        let m = n + 2 * o;
        let k = stiffness_matrix_1d(degree, length);
        let b = mass_matrix_1d(degree, length);

        // Patch index p: 0..o = low ghost layers, o..o+n = this element's
        // nodes, o+n.. = high ghost layers.  Assemble this element plus the
        // neighbours' corner blocks (neighbours are congruent, so their
        // operators are this element's): the patch operator is exactly the
        // globally assembled 1-D operator restricted to the patch nodes.
        let mut kp = DenseMatrix::zeros(m, m);
        let mut bp = vec![0.0_f64; m];
        for i in 0..n {
            for j in 0..n {
                kp[(i + o, j + o)] += k[(i, j)];
            }
            bp[i + o] += b[(i, i)];
        }
        if !boundary.dirichlet_lo {
            // Left neighbour's last o + 1 nodes are patch nodes 0..=o.
            for t in 0..=o {
                for u in 0..=o {
                    kp[(t, u)] += k[(n - 1 - o + t, n - 1 - o + u)];
                }
                bp[t] += b[(n - 1 - o + t, n - 1 - o + t)];
            }
        }
        if !boundary.dirichlet_hi {
            // Right neighbour's first o + 1 nodes are patch nodes m-1-o..m.
            for t in 0..=o {
                for u in 0..=o {
                    kp[(m - 1 - o + t, m - 1 - o + u)] += k[(t, u)];
                }
                bp[m - 1 - o + t] += b[(t, t)];
            }
        }

        // Removed nodes: the ghost layers and the boundary node at Dirichlet
        // ends (homogeneous Dirichlet holds just outside interface ends,
        // which is the patch truncation itself).
        let kept: Vec<usize> = (0..m)
            .filter(|&p| {
                !(boundary.dirichlet_lo && p <= o || boundary.dirichlet_hi && p >= m - 1 - o)
            })
            .collect();
        assert!(
            !kept.is_empty(),
            "Dirichlet restriction removed every node (degree {degree})"
        );

        let mk = kept.len();
        let k_kept = DenseMatrix::from_fn(mk, mk, |i, j| kp[(kept[i], kept[j])]);
        let b_kept: Vec<f64> = kept.iter().map(|&p| bp[p]).collect();
        let (lambda_kept, s_kept) = generalized_eigen_diag(&k_kept, &b_kept);

        // Embed back at full patch size: removed rows *and* removed mode
        // columns are zero, removed eigenvalues are +∞.
        let mut s = DenseMatrix::zeros(m, m);
        for (ii, &p) in kept.iter().enumerate() {
            for jj in 0..mk {
                s[(p, jj)] = s_kept[(ii, jj)];
            }
        }
        let mut lambda = vec![f64::INFINITY; m];
        lambda[..mk].copy_from_slice(&lambda_kept);
        let st = s.transpose();
        Self { s, st, lambda }
    }

    /// Patch points per direction, `N + 1 + 2·overlap`.
    #[must_use]
    pub fn num_points(&self) -> usize {
        self.lambda.len()
    }

    /// Number of kept (non-removed) modes.
    #[must_use]
    pub fn num_modes(&self) -> usize {
        self.lambda.iter().filter(|l| l.is_finite()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const INTERIOR: Fdm1dBoundary = Fdm1dBoundary {
        dirichlet_lo: false,
        dirichlet_hi: false,
    };
    const BOTH: Fdm1dBoundary = Fdm1dBoundary {
        dirichlet_lo: true,
        dirichlet_hi: true,
    };

    #[test]
    fn boundary_classes_follow_the_element_position() {
        assert_eq!(
            Fdm1dBoundary::of_element(0, 4),
            Fdm1dBoundary {
                dirichlet_lo: true,
                dirichlet_hi: false
            }
        );
        assert_eq!(Fdm1dBoundary::of_element(1, 4), INTERIOR);
        assert_eq!(
            Fdm1dBoundary::of_element(3, 4),
            Fdm1dBoundary {
                dirichlet_lo: false,
                dirichlet_hi: true
            }
        );
        assert_eq!(Fdm1dBoundary::of_element(0, 1), BOTH);
    }

    #[test]
    fn interior_patches_keep_every_node_and_are_definite() {
        let fdm = Fdm1d::new(7, 0.25, INTERIOR);
        assert_eq!(fdm.num_points(), 8);
        assert_eq!(fdm.num_modes(), 8);
        // The patch truncation is a Dirichlet condition just outside the
        // ghosts: no Neumann constant mode, every eigenvalue positive.
        for l in fdm.lambda.iter().filter(|l| l.is_finite()) {
            assert!(*l > 0.0, "{l}");
        }
    }

    #[test]
    fn dirichlet_ends_drop_the_ghost_and_boundary_nodes() {
        let fdm = Fdm1d::new(7, 0.25, BOTH);
        assert_eq!(fdm.num_points(), 8);
        assert_eq!(fdm.num_modes(), 6);
        for l in fdm.lambda.iter().filter(|l| l.is_finite()) {
            assert!(*l > 0.0);
        }
        let m = fdm.num_points();
        // Removed node rows and removed mode columns are zero.
        for j in 0..m {
            for p in [0, m - 1] {
                assert_eq!(fdm.s[(p, j)], 0.0);
            }
        }
        for i in 0..m {
            for j in fdm.num_modes()..m {
                assert_eq!(fdm.s[(i, j)], 0.0);
            }
        }
    }

    #[test]
    fn factors_diagonalise_the_assembled_patch_operator() {
        // Rebuild the patch operator independently (element operator with
        // the interface entries assembled from the neighbour) and check
        // K S = B S Λ on the kept set for a one-sided class.
        let degree = 5;
        let n = degree + 1;
        let length = 0.5;
        let boundary = Fdm1dBoundary {
            dirichlet_lo: true,
            dirichlet_hi: false,
        };
        let fdm = Fdm1d::new(degree, length, boundary);
        assert_eq!(fdm.num_points(), n);
        let k = stiffness_matrix_1d(degree, length);
        let b = mass_matrix_1d(degree, length);
        let mut kp = k.clone();
        let mut bp: Vec<f64> = (0..n).map(|i| b[(i, i)]).collect();
        kp[(n - 1, n - 1)] += k[(0, 0)];
        bp[n - 1] += b[(0, 0)];

        for j in 0..fdm.num_modes() {
            for p in 1..n {
                let ks: f64 = (1..n).map(|q| kp[(p, q)] * fdm.s[(q, j)]).sum();
                let bsl = bp[p] * fdm.s[(p, j)] * fdm.lambda[j];
                assert!(
                    (ks - bsl).abs() < 1e-8 * (1.0 + kp.max_abs()),
                    "({p}, {j}): {ks} vs {bsl}"
                );
            }
        }
    }

    #[test]
    fn ghost_layers_extend_the_patch_when_requested() {
        // The experiment knob widens the eigenproblem by one node per
        // interface end and keeps it definite.
        let fdm = Fdm1d::with_overlap(7, 0.25, INTERIOR, 1);
        assert_eq!(fdm.num_points(), 10);
        assert_eq!(fdm.num_modes(), 10);
        for l in fdm.lambda.iter().filter(|l| l.is_finite()) {
            assert!(*l > 0.0);
        }
    }

    #[test]
    fn transpose_is_consistent() {
        let fdm = Fdm1d::new(4, 1.0, INTERIOR);
        assert_eq!(fdm.st, fdm.s.transpose());
    }

    #[test]
    #[should_panic(expected = "removed every node")]
    fn degree_one_with_full_dirichlet_is_rejected() {
        let _ = Fdm1d::new(1, 1.0, BOTH);
    }
}
