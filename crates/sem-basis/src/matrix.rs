//! A minimal dense, row-major matrix used for the small per-degree operators
//! (differentiation matrices, interpolation operators, assembled element
//! matrices in tests).  It deliberately has no external dependencies — the
//! operators involved are at most a few thousand entries.

use serde::{Deserialize, Serialize};

/// Dense row-major matrix of `f64`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DenseMatrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl DenseMatrix {
    /// Create a zero matrix of the given shape.
    #[must_use]
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Create an identity matrix of size `n`.
    #[must_use]
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Build a matrix from a row-major vector.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    #[must_use]
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "shape mismatch");
        Self { rows, cols, data }
    }

    /// Build a matrix by evaluating `f(row, col)`.
    #[must_use]
    pub fn from_fn<F: FnMut(usize, usize) -> f64>(rows: usize, cols: usize, mut f: F) -> Self {
        let mut m = Self::zeros(rows, cols);
        for i in 0..rows {
            for j in 0..cols {
                m[(i, j)] = f(i, j);
            }
        }
        m
    }

    /// Number of rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Borrow the underlying row-major storage.
    #[must_use]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Consume the matrix and return its row-major storage.
    #[must_use]
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// A single row as a slice.
    #[must_use]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Transposed copy.
    #[must_use]
    pub fn transpose(&self) -> Self {
        Self::from_fn(self.cols, self.rows, |i, j| self[(j, i)])
    }

    /// Matrix-matrix product `self * other`.
    ///
    /// # Panics
    /// Panics if the inner dimensions disagree.
    #[must_use]
    pub fn matmul(&self, other: &Self) -> Self {
        assert_eq!(self.cols, other.rows, "inner dimensions must agree");
        let mut out = Self::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == 0.0 {
                    continue;
                }
                for j in 0..other.cols {
                    out[(i, j)] += a * other[(k, j)];
                }
            }
        }
        out
    }

    /// Matrix-vector product `self * x`.
    ///
    /// # Panics
    /// Panics if `x.len() != self.cols()`.
    #[must_use]
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols, "vector length must match columns");
        let mut y = vec![0.0; self.rows];
        for i in 0..self.rows {
            let mut acc = 0.0;
            for j in 0..self.cols {
                acc += self[(i, j)] * x[j];
            }
            y[i] = acc;
        }
        y
    }

    /// Maximum absolute entry (infinity norm of the vectorised matrix).
    #[must_use]
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0, |m, v| m.max(v.abs()))
    }

    /// Frobenius norm of the difference with another matrix.
    ///
    /// # Panics
    /// Panics if the shapes differ.
    #[must_use]
    pub fn frobenius_distance(&self, other: &Self) -> f64 {
        assert_eq!(self.rows, other.rows);
        assert_eq!(self.cols, other.cols);
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt()
    }

    /// Cholesky factorisation `A = L Lᵀ` of a symmetric positive-definite
    /// matrix, returning the lower-triangular factor (upper triangle zero).
    /// `None` if the matrix is not positive definite (a pivot fails).
    #[must_use]
    pub fn cholesky(&self) -> Option<Self> {
        if self.rows != self.cols {
            return None;
        }
        let n = self.rows;
        let mut l = Self::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let mut sum = self[(i, j)];
                for k in 0..j {
                    sum -= l[(i, k)] * l[(j, k)];
                }
                if i == j {
                    if sum <= 0.0 {
                        return None;
                    }
                    l[(i, i)] = sum.sqrt();
                } else {
                    l[(i, j)] = sum / l[(j, j)];
                }
            }
        }
        Some(l)
    }

    /// Solve `L Lᵀ x = b` in place, where `self` is a Cholesky factor from
    /// [`DenseMatrix::cholesky`].
    ///
    /// # Panics
    /// Panics if `b.len()` does not match the factor's dimension.
    pub fn cholesky_solve_in_place(&self, b: &mut [f64]) {
        let n = self.rows;
        assert_eq!(b.len(), n, "right-hand side length mismatch");
        // Forward substitution: L y = b.
        for i in 0..n {
            let mut sum = b[i];
            for k in 0..i {
                sum -= self[(i, k)] * b[k];
            }
            b[i] = sum / self[(i, i)];
        }
        // Back substitution: Lᵀ x = y.
        for i in (0..n).rev() {
            let mut sum = b[i];
            for k in (i + 1)..n {
                sum -= self[(k, i)] * b[k];
            }
            b[i] = sum / self[(i, i)];
        }
    }

    /// Whether the matrix is symmetric within `tol`.
    #[must_use]
    pub fn is_symmetric(&self, tol: f64) -> bool {
        if self.rows != self.cols {
            return false;
        }
        for i in 0..self.rows {
            for j in (i + 1)..self.cols {
                if (self[(i, j)] - self[(j, i)]).abs() > tol {
                    return false;
                }
            }
        }
        true
    }
}

impl std::ops::Index<(usize, usize)> for DenseMatrix {
    type Output = f64;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        &self.data[i * self.cols + j]
    }
}

impl std::ops::IndexMut<(usize, usize)> for DenseMatrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        &mut self.data[i * self.cols + j]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_is_neutral() {
        let a = DenseMatrix::from_fn(3, 3, |i, j| (i * 3 + j) as f64);
        let id = DenseMatrix::identity(3);
        assert_eq!(a.matmul(&id), a);
        assert_eq!(id.matmul(&a), a);
    }

    #[test]
    fn matvec_matches_matmul() {
        let a = DenseMatrix::from_fn(4, 3, |i, j| (i + 2 * j) as f64);
        let x = vec![1.0, -2.0, 0.5];
        let xm = DenseMatrix::from_vec(3, 1, x.clone());
        let via_matmul = a.matmul(&xm);
        let via_matvec = a.matvec(&x);
        for i in 0..4 {
            assert!((via_matmul[(i, 0)] - via_matvec[i]).abs() < 1e-14);
        }
    }

    #[test]
    fn transpose_involution() {
        let a = DenseMatrix::from_fn(5, 2, |i, j| (i as f64) - 3.0 * j as f64);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn symmetry_detection() {
        let s = DenseMatrix::from_fn(4, 4, |i, j| (i + j) as f64);
        assert!(s.is_symmetric(1e-14));
        let ns = DenseMatrix::from_fn(4, 4, |i, j| (i as f64) - j as f64);
        assert!(!ns.is_symmetric(1e-14));
        let rect = DenseMatrix::zeros(2, 3);
        assert!(!rect.is_symmetric(1e-14));
    }

    #[test]
    fn cholesky_solves_an_spd_system() {
        // A = Mᵀ M + I is SPD for any M.
        let n = 6;
        let m = DenseMatrix::from_fn(n, n, |i, j| ((i * 7 + j * 3) as f64 * 0.29).sin());
        let mut a = m.transpose().matmul(&m);
        for i in 0..n {
            a[(i, i)] += 1.0;
        }
        let l = a.cholesky().expect("SPD must factor");
        // Upper triangle of L is zero.
        for i in 0..n {
            for j in (i + 1)..n {
                assert_eq!(l[(i, j)], 0.0);
            }
        }
        // L Lᵀ reconstructs A.
        let back = l.matmul(&l.transpose());
        assert!(back.frobenius_distance(&a) < 1e-12 * (1.0 + a.max_abs()));
        // Solving reproduces a known x.
        let x_true: Vec<f64> = (0..n).map(|i| (i as f64) - 2.5).collect();
        let mut b = a.matvec(&x_true);
        l.cholesky_solve_in_place(&mut b);
        for (xi, ti) in b.iter().zip(&x_true) {
            assert!((xi - ti).abs() < 1e-11, "{xi} vs {ti}");
        }
    }

    #[test]
    fn cholesky_rejects_indefinite_matrices() {
        let mut a = DenseMatrix::identity(3);
        a[(2, 2)] = -1.0;
        assert!(a.cholesky().is_none());
        assert!(DenseMatrix::zeros(2, 3).cholesky().is_none());
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn mismatched_matmul_panics() {
        let a = DenseMatrix::zeros(2, 3);
        let b = DenseMatrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }
}
