//! The spectral differentiation matrix on GLL points.
//!
//! In the paper's kernel (Listing 1) the arrays `dx` and `dxt` hold the
//! one-dimensional differentiation matrix `D` and its transpose `Dᵀ`:
//! applying `D` along each of the three tensor directions yields the local
//! gradient of a field on the reference element.
//!
//! The entries on the GLL points \(\xi_i\) of degree \(N\) have the classical
//! closed form
//!
//! \[D_{ij} = \frac{L_N(\xi_i)}{L_N(\xi_j)} \frac{1}{\xi_i - \xi_j}, \quad i \ne j\]
//! \[D_{00} = -\frac{N(N+1)}{4}, \qquad D_{NN} = +\frac{N(N+1)}{4}, \qquad D_{ii} = 0 \text{ otherwise.}\]

use crate::legendre::legendre;
use crate::matrix::DenseMatrix;
use crate::quadrature::{gauss_lobatto_legendre, Quadrature};

/// The differentiation operator for a single polynomial degree.
#[derive(Debug, Clone, PartialEq)]
pub struct DerivativeMatrix {
    degree: usize,
    quadrature: Quadrature,
    d: DenseMatrix,
    dt: DenseMatrix,
}

impl DerivativeMatrix {
    /// Build the GLL differentiation matrix for polynomial degree `degree`.
    ///
    /// # Panics
    /// Panics if `degree == 0` (a constant basis has no meaningful
    /// differentiation matrix in the SEM setting).
    #[must_use]
    pub fn new(degree: usize) -> Self {
        assert!(degree >= 1, "degree must be at least 1");
        let n = degree + 1;
        let quadrature = gauss_lobatto_legendre(n);
        let xi = &quadrature.nodes;
        let nf = degree as f64;
        let corner = nf * (nf + 1.0) / 4.0;

        let mut d = DenseMatrix::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                if i == j {
                    d[(i, j)] = if i == 0 {
                        -corner
                    } else if i == n - 1 {
                        corner
                    } else {
                        0.0
                    };
                } else {
                    let li = legendre(degree, xi[i]);
                    let lj = legendre(degree, xi[j]);
                    d[(i, j)] = (li / lj) / (xi[i] - xi[j]);
                }
            }
        }
        let dt = d.transpose();
        Self {
            degree,
            quadrature,
            d,
            dt,
        }
    }

    /// The polynomial degree `N`.
    #[must_use]
    pub fn degree(&self) -> usize {
        self.degree
    }

    /// Number of GLL points, `N + 1`.
    #[must_use]
    pub fn num_points(&self) -> usize {
        self.degree + 1
    }

    /// The GLL quadrature rule the matrix lives on.
    #[must_use]
    pub fn quadrature(&self) -> &Quadrature {
        &self.quadrature
    }

    /// The differentiation matrix `D` (row-major, `D[(i, j)] = l_j'(ξ_i)`).
    #[must_use]
    pub fn d(&self) -> &DenseMatrix {
        &self.d
    }

    /// The transposed matrix `Dᵀ`.
    #[must_use]
    pub fn dt(&self) -> &DenseMatrix {
        &self.dt
    }

    /// Flattened row-major copy of `D`, in the layout the kernels consume
    /// (`dx[l + i*(N+1)]` in the paper's Listing 1 indexing).
    #[must_use]
    pub fn d_flat(&self) -> Vec<f64> {
        self.d.as_slice().to_vec()
    }

    /// Flattened row-major copy of `Dᵀ`.
    #[must_use]
    pub fn dt_flat(&self) -> Vec<f64> {
        self.dt.as_slice().to_vec()
    }

    /// Differentiate nodal values of a 1-D function sampled on the GLL points.
    #[must_use]
    pub fn differentiate(&self, values: &[f64]) -> Vec<f64> {
        self.d.matvec(values)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lagrange::LagrangeBasis;

    #[test]
    fn rows_sum_to_zero() {
        // Differentiating a constant gives zero: every row of D sums to 0.
        for degree in 1..=15 {
            let dm = DerivativeMatrix::new(degree);
            for i in 0..dm.num_points() {
                let s: f64 = dm.d().row(i).iter().sum();
                assert!(s.abs() < 1e-10, "degree {degree} row {i}: {s}");
            }
        }
    }

    #[test]
    fn differentiates_monomials_exactly() {
        for degree in 2..=12 {
            let dm = DerivativeMatrix::new(degree);
            let xi = &dm.quadrature().nodes;
            // d/dx x^k is exact for k <= N.
            for k in 0..=degree {
                let values: Vec<f64> = xi.iter().map(|&x| x.powi(k as i32)).collect();
                let deriv = dm.differentiate(&values);
                for (i, &x) in xi.iter().enumerate() {
                    let exact = if k == 0 {
                        0.0
                    } else {
                        k as f64 * x.powi(k as i32 - 1)
                    };
                    assert!(
                        (deriv[i] - exact).abs() < 1e-8 * (1.0 + exact.abs()),
                        "degree {degree}, x^{k} at node {i}: {} vs {exact}",
                        deriv[i]
                    );
                }
            }
        }
    }

    #[test]
    fn corner_entries_match_closed_form() {
        for degree in 1..=12 {
            let dm = DerivativeMatrix::new(degree);
            let corner = degree as f64 * (degree as f64 + 1.0) / 4.0;
            assert!((dm.d()[(0, 0)] + corner).abs() < 1e-12);
            assert!((dm.d()[(degree, degree)] - corner).abs() < 1e-12);
        }
    }

    #[test]
    fn matches_lagrange_cardinal_derivatives() {
        for degree in 1..=9 {
            let dm = DerivativeMatrix::new(degree);
            let basis = LagrangeBasis::new(&dm.quadrature().nodes);
            let n = dm.num_points();
            for i in 0..n {
                for j in 0..n {
                    // D[(i, j)] = l_j'(xi_i)
                    let expect = basis.cardinal_derivative_at_node(j, i);
                    assert!(
                        (dm.d()[(i, j)] - expect).abs() < 1e-9,
                        "degree {degree} ({i},{j}): {} vs {expect}",
                        dm.d()[(i, j)]
                    );
                }
            }
        }
    }

    #[test]
    fn transpose_is_consistent() {
        let dm = DerivativeMatrix::new(7);
        for i in 0..8 {
            for j in 0..8 {
                assert_eq!(dm.d()[(i, j)], dm.dt()[(j, i)]);
            }
        }
        assert_eq!(dm.d_flat().len(), 64);
        assert_eq!(dm.dt_flat().len(), 64);
    }

    #[test]
    fn negative_sum_antisymmetry_of_spectrum() {
        // D is similar to a nilpotent-plus-boundary operator; a cheap sanity
        // check is that the trace equals D_00 + D_NN = 0.
        for degree in 1..=14 {
            let dm = DerivativeMatrix::new(degree);
            let trace: f64 = (0..dm.num_points()).map(|i| dm.d()[(i, i)]).sum();
            assert!(trace.abs() < 1e-10);
        }
    }
}
