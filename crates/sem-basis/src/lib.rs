//! Spectral element basis functions.
//!
//! This crate provides the one-dimensional building blocks of the Spectral
//! Element Method (SEM) used throughout the workspace:
//!
//! * [`legendre`] — Legendre polynomials \(P_N\) and their derivatives,
//!   evaluated with the three-term Bonnet recurrence.
//! * [`quadrature`] — Gauss–Legendre and Gauss–Lobatto–Legendre (GLL)
//!   quadrature nodes and weights.  GLL points are the collocation points of
//!   the SEM basis; there are \(N+1\) of them for polynomial degree \(N\).
//! * [`lagrange`] — Lagrange interpolation through arbitrary node sets using
//!   barycentric weights.
//! * [`derivative`] — the spectral differentiation matrix `D` on the GLL
//!   points (the `dx`/`dxt` operators of the paper's Listing 1).
//! * [`interp`] — interpolation operators between nodal sets (e.g. GLL → GL),
//!   used for over-integration and for building coarse/fine transfer
//!   operators.
//! * [`matrix`] — a minimal dense row-major matrix type for the small
//!   per-degree operators.
//! * [`eigen`] — a dependency-free symmetric (Jacobi-rotation) eigensolver
//!   and the generalized `K S = B S Λ` decomposition for diagonal `B`.
//! * [`fdm1d`] — the per-direction fast-diagonalization factors the FDM
//!   tensor-product preconditioner is assembled from.
//!
//! Everything is dependency-free, double precision and deterministic, and is
//! validated by unit tests plus property-based tests (see `tests/`).

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod derivative;
pub mod eigen;
pub mod fdm1d;
pub mod interp;
pub mod lagrange;
pub mod legendre;
pub mod matrix;
pub mod operators1d;
pub mod quadrature;

pub use derivative::DerivativeMatrix;
pub use eigen::{generalized_eigen_diag, symmetric_eigen};
pub use fdm1d::{fdm_coarse_degree, fdm_overlap, Fdm1d, Fdm1dBoundary};
pub use interp::{degree_prolongation, interpolation_matrix};
pub use lagrange::LagrangeBasis;
pub use legendre::{legendre, legendre_derivative, legendre_pair};
pub use matrix::DenseMatrix;
pub use operators1d::{mass_matrix_1d, stiffness_matrix_1d};
pub use quadrature::{gauss_legendre, gauss_lobatto_legendre, Quadrature};

/// Number of Gauss–Lobatto–Legendre points for a polynomial degree `n`.
///
/// The SEM basis of degree `N` collocates on `N + 1` GLL points per
/// direction, so a 3-D element holds `(N + 1)^3` degrees of freedom.
#[inline]
#[must_use]
pub fn num_gll_points(degree: usize) -> usize {
    degree + 1
}

/// Number of degrees of freedom in a single 3-D hexahedral element of
/// polynomial degree `degree`.
#[inline]
#[must_use]
pub fn dofs_per_element(degree: usize) -> usize {
    let nx = num_gll_points(degree);
    nx * nx * nx
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gll_count_matches_degree() {
        assert_eq!(num_gll_points(7), 8);
        assert_eq!(dofs_per_element(7), 512);
        assert_eq!(dofs_per_element(1), 8);
    }
}
