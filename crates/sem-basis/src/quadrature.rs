//! Gauss–Legendre and Gauss–Lobatto–Legendre quadrature rules.
//!
//! The GLL points \(\xi_0 = -1 < \xi_1 < \dots < \xi_N = 1\) are the
//! collocation points of the SEM basis (Section II of the paper).  They are
//! the roots of \((1-\xi^2) L_N'(\xi)\) and carry the quadrature weights
//! \(w_i = \frac{2}{N(N+1)} \frac{1}{L_N(\xi_i)^2}\).

use crate::legendre::{legendre, legendre_pair};

/// A one-dimensional quadrature rule: nodes in `[-1, 1]` and matching weights.
#[derive(Debug, Clone, PartialEq)]
pub struct Quadrature {
    /// Quadrature nodes, sorted ascending in `[-1, 1]`.
    pub nodes: Vec<f64>,
    /// Quadrature weights, positive, summing to 2 (the length of `[-1, 1]`).
    pub weights: Vec<f64>,
}

impl Quadrature {
    /// Number of points in the rule.
    #[must_use]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the rule is empty (never true for the constructors here).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Integrate a function over `[-1, 1]` with this rule.
    #[must_use]
    pub fn integrate<F: Fn(f64) -> f64>(&self, f: F) -> f64 {
        self.nodes
            .iter()
            .zip(&self.weights)
            .map(|(&x, &w)| w * f(x))
            .sum()
    }
}

/// Maximum Newton iterations when locating quadrature nodes.
const MAX_NEWTON_ITERS: usize = 100;
/// Convergence tolerance for the node search.
const NEWTON_TOL: f64 = 1e-15;

/// Gauss–Lobatto–Legendre rule with `n` points (`n >= 2`), i.e. polynomial
/// degree `N = n - 1`.  Exact for polynomials up to degree `2N - 1`.
///
/// # Panics
/// Panics if `n < 2`; a Lobatto rule always contains both endpoints.
#[must_use]
pub fn gauss_lobatto_legendre(n: usize) -> Quadrature {
    assert!(n >= 2, "a GLL rule needs at least the two endpoints");
    let degree = n - 1; // polynomial degree N
    let nf = degree as f64;
    let mut nodes = vec![0.0_f64; n];
    let mut weights = vec![0.0_f64; n];

    nodes[0] = -1.0;
    nodes[n - 1] = 1.0;

    // Interior nodes are the roots of P_N'(x).  Start from the
    // Chebyshev–Gauss–Lobatto points, which interlace them closely, and
    // polish with Newton on q(x) = P_{N+1}(x) - P_{N-1}(x) whose roots
    // coincide with those of (1 - x^2) P_N'(x) in the interior.
    for (i, node) in nodes.iter_mut().enumerate().take(n - 1).skip(1) {
        let theta = std::f64::consts::PI * i as f64 / nf;
        let mut x = -(theta.cos());
        // Newton iteration on f(x) = P_N'(x) using
        // P_N''(x) = (2x P_N'(x) - N(N+1) P_N(x)) / (1 - x^2).
        for _ in 0..MAX_NEWTON_ITERS {
            let (p, dp) = legendre_pair(degree, x);
            let d2p = (2.0 * x * dp - nf * (nf + 1.0) * p) / (1.0 - x * x);
            let step = dp / d2p;
            x -= step;
            if step.abs() < NEWTON_TOL {
                break;
            }
        }
        *node = x;
    }
    nodes.sort_by(|a, b| a.partial_cmp(b).expect("nodes are finite"));

    let scale = 2.0 / (nf * (nf + 1.0));
    for (weight, &node) in weights.iter_mut().zip(&nodes) {
        let p = legendre(degree, node);
        *weight = scale / (p * p);
    }

    Quadrature { nodes, weights }
}

/// Gauss–Legendre rule with `n` points (`n >= 1`).  Exact for polynomials up
/// to degree `2n - 1`.  Used for over-integration and as an independent
/// cross-check of the GLL rule in tests.
#[must_use]
pub fn gauss_legendre(n: usize) -> Quadrature {
    assert!(n >= 1, "a Gauss rule needs at least one point");
    let mut nodes = vec![0.0_f64; n];
    let mut weights = vec![0.0_f64; n];
    let nf = n as f64;
    for i in 0..n {
        // Standard initial guess (roots of Chebyshev polynomial).
        let mut x = (std::f64::consts::PI * (i as f64 + 0.75) / (nf + 0.5)).cos();
        for _ in 0..MAX_NEWTON_ITERS {
            let (p, dp) = legendre_pair(n, x);
            let step = p / dp;
            x -= step;
            if step.abs() < NEWTON_TOL {
                break;
            }
        }
        let (_, dp) = legendre_pair(n, x);
        nodes[i] = x;
        weights[i] = 2.0 / ((1.0 - x * x) * dp * dp);
    }
    // Newton above produces descending order; sort ascending with weights.
    let mut idx: Vec<usize> = (0..n).collect();
    idx.sort_by(|&a, &b| nodes[a].partial_cmp(&nodes[b]).expect("finite"));
    let nodes_sorted: Vec<f64> = idx.iter().map(|&i| nodes[i]).collect();
    let weights_sorted: Vec<f64> = idx.iter().map(|&i| weights[i]).collect();
    Quadrature {
        nodes: nodes_sorted,
        weights: weights_sorted,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() <= tol, "{a} != {b} (tol {tol})");
    }

    #[test]
    #[should_panic(expected = "at least the two endpoints")]
    fn gll_requires_two_points() {
        let _ = gauss_lobatto_legendre(1);
    }

    #[test]
    fn gll_known_values_degree_2() {
        // N = 2: points -1, 0, 1 with weights 1/3, 4/3, 1/3.
        let q = gauss_lobatto_legendre(3);
        assert_close(q.nodes[0], -1.0, 1e-15);
        assert_close(q.nodes[1], 0.0, 1e-15);
        assert_close(q.nodes[2], 1.0, 1e-15);
        assert_close(q.weights[0], 1.0 / 3.0, 1e-14);
        assert_close(q.weights[1], 4.0 / 3.0, 1e-14);
        assert_close(q.weights[2], 1.0 / 3.0, 1e-14);
    }

    #[test]
    fn gll_known_values_degree_3() {
        // N = 3: interior points +-1/sqrt(5), weights 1/6, 5/6.
        let q = gauss_lobatto_legendre(4);
        assert_close(q.nodes[1], -(1.0 / 5.0_f64.sqrt()), 1e-13);
        assert_close(q.nodes[2], 1.0 / 5.0_f64.sqrt(), 1e-13);
        assert_close(q.weights[0], 1.0 / 6.0, 1e-13);
        assert_close(q.weights[1], 5.0 / 6.0, 1e-13);
    }

    #[test]
    fn gll_weights_sum_to_two() {
        for n in 2..=20 {
            let q = gauss_lobatto_legendre(n);
            let sum: f64 = q.weights.iter().sum();
            assert_close(sum, 2.0, 1e-12);
            assert!(q.weights.iter().all(|&w| w > 0.0));
        }
    }

    #[test]
    fn gll_nodes_symmetric_and_sorted() {
        for n in 2..=17 {
            let q = gauss_lobatto_legendre(n);
            for i in 1..n {
                assert!(q.nodes[i] > q.nodes[i - 1]);
            }
            for i in 0..n {
                assert_close(q.nodes[i], -q.nodes[n - 1 - i], 1e-13);
                assert_close(q.weights[i], q.weights[n - 1 - i], 1e-13);
            }
        }
    }

    #[test]
    fn gll_exactness() {
        // A GLL rule with n points integrates polynomials of degree 2n-3 exactly.
        for n in 2..=12 {
            let q = gauss_lobatto_legendre(n);
            let max_deg = 2 * n - 3;
            for d in 0..=max_deg {
                let approx = q.integrate(|x| x.powi(d as i32));
                let exact = if d % 2 == 1 {
                    0.0
                } else {
                    2.0 / (d as f64 + 1.0)
                };
                assert_close(approx, exact, 1e-11);
            }
        }
    }

    #[test]
    fn gl_exactness() {
        for n in 1..=12 {
            let q = gauss_legendre(n);
            let max_deg = 2 * n - 1;
            for d in 0..=max_deg {
                let approx = q.integrate(|x| x.powi(d as i32));
                let exact = if d % 2 == 1 {
                    0.0
                } else {
                    2.0 / (d as f64 + 1.0)
                };
                assert_close(approx, exact, 1e-11);
            }
        }
    }

    #[test]
    fn gl_and_gll_agree_on_smooth_function() {
        let f = |x: f64| (3.0 * x).sin() + x * x;
        let a = gauss_legendre(24).integrate(f);
        let b = gauss_lobatto_legendre(24).integrate(f);
        assert_close(a, b, 1e-12);
    }

    #[test]
    fn gll_interior_nodes_are_extrema_of_legendre() {
        use crate::legendre::legendre_derivative;
        for n in 3..=16 {
            let q = gauss_lobatto_legendre(n);
            for i in 1..n - 1 {
                let d = legendre_derivative(n - 1, q.nodes[i]);
                assert!(d.abs() < 1e-9, "P'_N({}) = {d}", q.nodes[i]);
            }
        }
    }
}
