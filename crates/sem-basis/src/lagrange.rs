//! Lagrange interpolation through an arbitrary set of distinct nodes, using
//! barycentric weights for numerically stable evaluation.
//!
//! The SEM basis functions \(l_i(\xi)\) of the paper are exactly the Lagrange
//! cardinal functions on the GLL points: \(l_i(\xi_j) = \delta_{ij}\).

/// A Lagrange basis on a fixed set of distinct nodes.
#[derive(Debug, Clone, PartialEq)]
pub struct LagrangeBasis {
    nodes: Vec<f64>,
    /// Barycentric weights \(w_i = 1 / \prod_{j \ne i} (x_i - x_j)\).
    bary: Vec<f64>,
}

impl LagrangeBasis {
    /// Build the basis from a node set.
    ///
    /// # Panics
    /// Panics if fewer than one node is supplied or if two nodes coincide.
    #[must_use]
    pub fn new(nodes: &[f64]) -> Self {
        assert!(!nodes.is_empty(), "need at least one node");
        let n = nodes.len();
        let mut bary = vec![1.0_f64; n];
        for i in 0..n {
            for j in 0..n {
                if i != j {
                    let d = nodes[i] - nodes[j];
                    assert!(d != 0.0, "nodes must be distinct");
                    bary[i] /= d;
                }
            }
        }
        Self {
            nodes: nodes.to_vec(),
            bary,
        }
    }

    /// The interpolation nodes.
    #[must_use]
    pub fn nodes(&self) -> &[f64] {
        &self.nodes
    }

    /// Number of basis functions (== number of nodes).
    #[must_use]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the basis is empty (never true after construction).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Evaluate the `i`-th cardinal function at `x`.
    #[must_use]
    pub fn eval_cardinal(&self, i: usize, x: f64) -> f64 {
        // Exact hit on a node: cardinal property.
        for (j, &xj) in self.nodes.iter().enumerate() {
            if x == xj {
                return if i == j { 1.0 } else { 0.0 };
            }
        }
        // Barycentric second form.
        let mut num = 0.0;
        let mut den = 0.0;
        for (j, (&xj, &wj)) in self.nodes.iter().zip(&self.bary).enumerate() {
            let t = wj / (x - xj);
            den += t;
            if j == i {
                num = t;
            }
        }
        num / den
    }

    /// Interpolate nodal values `values` (one per node) at point `x`.
    ///
    /// # Panics
    /// Panics if `values.len()` differs from the number of nodes.
    #[must_use]
    pub fn interpolate(&self, values: &[f64], x: f64) -> f64 {
        assert_eq!(values.len(), self.nodes.len());
        for (j, &xj) in self.nodes.iter().enumerate() {
            if x == xj {
                return values[j];
            }
        }
        let mut num = 0.0;
        let mut den = 0.0;
        for ((&xj, &wj), &fj) in self.nodes.iter().zip(&self.bary).zip(values) {
            let t = wj / (x - xj);
            num += t * fj;
            den += t;
        }
        num / den
    }

    /// Evaluate the derivative of the `i`-th cardinal function at node `j`.
    ///
    /// This is the entry \(D_{ji} = l_i'(x_j)\) of the differentiation matrix;
    /// exposed here mainly for cross-checking [`crate::derivative`].
    #[must_use]
    pub fn cardinal_derivative_at_node(&self, i: usize, j: usize) -> f64 {
        let n = self.nodes.len();
        assert!(i < n && j < n);
        if i == j {
            // D_jj = -sum_{k != j} D_jk, enforced by the negative sum trick.
            let mut acc = 0.0;
            for k in 0..n {
                if k != j {
                    acc += self.cardinal_derivative_at_node(k, j);
                }
            }
            -acc
        } else {
            (self.bary[i] / self.bary[j]) / (self.nodes[j] - self.nodes[i])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quadrature::gauss_lobatto_legendre;

    #[test]
    fn cardinal_property() {
        let q = gauss_lobatto_legendre(8);
        let basis = LagrangeBasis::new(&q.nodes);
        for i in 0..8 {
            for j in 0..8 {
                let v = basis.eval_cardinal(i, q.nodes[j]);
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!((v - expect).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn partition_of_unity() {
        let q = gauss_lobatto_legendre(10);
        let basis = LagrangeBasis::new(&q.nodes);
        for &x in &[-0.95, -0.3, 0.0, 0.123, 0.87_f64] {
            let sum: f64 = (0..basis.len()).map(|i| basis.eval_cardinal(i, x)).sum();
            assert!((sum - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn reproduces_polynomials_exactly() {
        // Interpolation on N+1 nodes reproduces polynomials up to degree N.
        let q = gauss_lobatto_legendre(6);
        let basis = LagrangeBasis::new(&q.nodes);
        let poly = |x: f64| 3.0 - 2.0 * x + 0.5 * x.powi(3) - 1.25 * x.powi(5);
        let values: Vec<f64> = q.nodes.iter().map(|&x| poly(x)).collect();
        for &x in &[-0.77, -0.2, 0.05, 0.4, 0.99_f64] {
            assert!((basis.interpolate(&values, x) - poly(x)).abs() < 1e-11);
        }
    }

    #[test]
    fn interpolate_at_node_returns_value() {
        let nodes = [-1.0, -0.3, 0.4, 1.0];
        let basis = LagrangeBasis::new(&nodes);
        let vals = [2.0, -1.0, 0.5, 7.0];
        for (i, &x) in nodes.iter().enumerate() {
            assert_eq!(basis.interpolate(&vals, x), vals[i]);
        }
    }

    #[test]
    #[should_panic(expected = "distinct")]
    fn duplicate_nodes_panic() {
        let _ = LagrangeBasis::new(&[0.0, 0.5, 0.5]);
    }
}
