//! Legendre polynomials and their derivatives.
//!
//! The SEM basis of the paper is built on the Nth order Legendre polynomial
//! \(L_N\): the GLL points are the roots of \((1 - \xi^2) L_N'(\xi)\) and the
//! Lagrange basis functions are expressed through \(L_N\) (Section II of the
//! paper).  We evaluate \(P_n\) with the Bonnet three-term recurrence
//!
//! \[(n+1) P_{n+1}(x) = (2n+1) x P_n(x) - n P_{n-1}(x)\]
//!
//! which is numerically stable on \([-1, 1]\).

/// Evaluate the Legendre polynomial \(P_n(x)\).
///
/// # Examples
/// ```
/// use sem_basis::legendre;
/// assert!((legendre(0, 0.3) - 1.0).abs() < 1e-15);
/// assert!((legendre(1, 0.3) - 0.3).abs() < 1e-15);
/// // P_2(x) = (3x^2 - 1)/2
/// assert!((legendre(2, 0.3) - (3.0 * 0.09 - 1.0) / 2.0).abs() < 1e-15);
/// ```
#[must_use]
pub fn legendre(n: usize, x: f64) -> f64 {
    legendre_pair(n, x).0
}

/// Evaluate the derivative \(P_n'(x)\) of the Legendre polynomial.
///
/// Uses the standard relation
/// \((x^2 - 1) P_n'(x) = n (x P_n(x) - P_{n-1}(x))\) away from the endpoints
/// and the exact endpoint values \(P_n'(\pm 1) = (\pm 1)^{n-1} n(n+1)/2\).
#[must_use]
pub fn legendre_derivative(n: usize, x: f64) -> f64 {
    legendre_pair(n, x).1
}

/// Evaluate \((P_n(x), P_n'(x))\) together.
///
/// Returns the pair so that callers needing both (Newton iterations on the
/// GLL points, derivative matrices) only run the recurrence once.
#[must_use]
pub fn legendre_pair(n: usize, x: f64) -> (f64, f64) {
    if n == 0 {
        return (1.0, 0.0);
    }
    if n == 1 {
        return (x, 1.0);
    }
    // Bonnet recurrence for the values, running derivative via
    // P'_{k+1} = P'_{k-1} + (2k+1) P_k.
    let mut p_prev = 1.0_f64; // P_0
    let mut p_curr = x; // P_1
    let mut d_prev = 0.0_f64; // P_0'
    let mut d_curr = 1.0_f64; // P_1'
    for k in 1..n {
        let kf = k as f64;
        let p_next = ((2.0 * kf + 1.0) * x * p_curr - kf * p_prev) / (kf + 1.0);
        let d_next = d_prev + (2.0 * kf + 1.0) * p_curr;
        p_prev = p_curr;
        p_curr = p_next;
        d_prev = d_curr;
        d_curr = d_next;
    }
    (p_curr, d_curr)
}

/// Evaluate the "q" combination \(q(x) = P_{n+1}(x) - P_{n-1}(x)\) and its
/// derivative, used for locating the interior GLL nodes (the roots of
/// \(P_n'\), which are the roots of `q` up to a constant factor).
#[must_use]
pub fn legendre_q(n: usize, x: f64) -> (f64, f64) {
    let (p_np1, d_np1) = legendre_pair(n + 1, x);
    let (p_nm1, d_nm1) = legendre_pair(n - 1, x);
    (p_np1 - p_nm1, d_np1 - d_nm1)
}

/// The L2 norm squared of \(P_n\) over \([-1, 1]\): \(2 / (2n + 1)\).
#[inline]
#[must_use]
pub fn legendre_norm_sq(n: usize) -> f64 {
    2.0 / (2.0 * n as f64 + 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!(
            (a - b).abs() <= tol * (1.0 + a.abs().max(b.abs())),
            "{a} != {b} (tol {tol})"
        );
    }

    #[test]
    fn low_order_closed_forms() {
        for &x in &[-1.0, -0.7, -0.2, 0.0, 0.33, 0.8, 1.0_f64] {
            assert_close(legendre(0, x), 1.0, 1e-15);
            assert_close(legendre(1, x), x, 1e-15);
            assert_close(legendre(2, x), 0.5 * (3.0 * x * x - 1.0), 1e-14);
            assert_close(legendre(3, x), 0.5 * (5.0 * x * x * x - 3.0 * x), 1e-14);
            assert_close(
                legendre(4, x),
                (35.0 * x.powi(4) - 30.0 * x * x + 3.0) / 8.0,
                1e-13,
            );
        }
    }

    #[test]
    fn derivative_closed_forms() {
        for &x in &[-0.9, -0.3, 0.1, 0.5, 0.95_f64] {
            assert_close(legendre_derivative(1, x), 1.0, 1e-15);
            assert_close(legendre_derivative(2, x), 3.0 * x, 1e-14);
            assert_close(legendre_derivative(3, x), 0.5 * (15.0 * x * x - 3.0), 1e-14);
        }
    }

    #[test]
    fn endpoint_values() {
        for n in 0..20 {
            // P_n(1) = 1, P_n(-1) = (-1)^n
            assert_close(legendre(n, 1.0), 1.0, 1e-13);
            let sign = if n % 2 == 0 { 1.0 } else { -1.0 };
            assert_close(legendre(n, -1.0), sign, 1e-13);
            // P_n'(1) = n(n+1)/2
            let expect = n as f64 * (n as f64 + 1.0) / 2.0;
            assert_close(legendre_derivative(n, 1.0), expect, 1e-12);
        }
    }

    #[test]
    fn derivative_matches_finite_difference() {
        let h = 1e-6;
        for n in 2..16 {
            for &x in &[-0.8, -0.25, 0.0, 0.4, 0.77_f64] {
                let fd = (legendre(n, x + h) - legendre(n, x - h)) / (2.0 * h);
                assert_close(legendre_derivative(n, x), fd, 1e-6);
            }
        }
    }

    #[test]
    fn norm_squared_by_quadrature() {
        // Validate ||P_n||^2 = 2/(2n+1) with a fine trapezoid rule.
        let m = 200_000;
        for n in 0..8 {
            let mut acc = 0.0;
            for i in 0..=m {
                let x = -1.0 + 2.0 * i as f64 / m as f64;
                let w = if i == 0 || i == m { 0.5 } else { 1.0 };
                let p = legendre(n, x);
                acc += w * p * p;
            }
            acc *= 2.0 / m as f64;
            assert_close(acc, legendre_norm_sq(n), 1e-6);
        }
    }

    #[test]
    fn q_combination_consistent() {
        for n in 2..12 {
            for &x in &[-0.6, 0.1, 0.73_f64] {
                let (q, _) = legendre_q(n, x);
                let expect = legendre(n + 1, x) - legendre(n - 1, x);
                assert_close(q, expect, 1e-13);
            }
        }
    }
}
