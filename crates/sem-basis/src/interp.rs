//! Interpolation operators between nodal sets.
//!
//! These are used for over-integration (interpolating GLL data onto a finer
//! Gauss rule), for building prolongation/restriction operators between
//! polynomial degrees, and for the host-side padding path of the accelerator
//! (interpolating a degree-N element onto the padded degree the bitstream was
//! synthesised for).

use crate::lagrange::LagrangeBasis;
use crate::matrix::DenseMatrix;

/// Build the interpolation matrix `J` that maps nodal values on `from_nodes`
/// to values on `to_nodes`: `u_to = J * u_from`.
///
/// `J` has shape `(to_nodes.len(), from_nodes.len())` and each row sums to 1
/// (it reproduces constants exactly).
#[must_use]
pub fn interpolation_matrix(from_nodes: &[f64], to_nodes: &[f64]) -> DenseMatrix {
    let basis = LagrangeBasis::new(from_nodes);
    DenseMatrix::from_fn(to_nodes.len(), from_nodes.len(), |i, j| {
        basis.eval_cardinal(j, to_nodes[i])
    })
}

/// Prolongation operator from polynomial degree `from_degree` to
/// `to_degree >= from_degree` on GLL points (exact for polynomials of degree
/// `from_degree`).
#[must_use]
pub fn degree_prolongation(from_degree: usize, to_degree: usize) -> DenseMatrix {
    assert!(to_degree >= from_degree, "prolongation must not lose order");
    let from = crate::quadrature::gauss_lobatto_legendre(from_degree + 1);
    let to = crate::quadrature::gauss_lobatto_legendre(to_degree + 1);
    interpolation_matrix(&from.nodes, &to.nodes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quadrature::{gauss_legendre, gauss_lobatto_legendre};

    #[test]
    fn rows_sum_to_one() {
        let from = gauss_lobatto_legendre(8);
        let to = gauss_legendre(12);
        let j = interpolation_matrix(&from.nodes, &to.nodes);
        for i in 0..j.rows() {
            let s: f64 = j.row(i).iter().sum();
            assert!((s - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn identity_when_nodes_match() {
        let q = gauss_lobatto_legendre(6);
        let j = interpolation_matrix(&q.nodes, &q.nodes);
        let id = DenseMatrix::identity(q.len());
        assert!(j.frobenius_distance(&id) < 1e-12);
    }

    #[test]
    fn exact_for_polynomials_below_degree() {
        let from = gauss_lobatto_legendre(6); // degree 5
        let to = gauss_legendre(9);
        let j = interpolation_matrix(&from.nodes, &to.nodes);
        let poly = |x: f64| 1.0 - x + 2.0 * x.powi(3) + 0.25 * x.powi(5);
        let coarse: Vec<f64> = from.nodes.iter().map(|&x| poly(x)).collect();
        let fine = j.matvec(&coarse);
        for (i, &x) in to.nodes.iter().enumerate() {
            assert!((fine[i] - poly(x)).abs() < 1e-11);
        }
    }

    #[test]
    fn prolongation_then_sampling_is_exact() {
        let p = degree_prolongation(3, 7);
        assert_eq!(p.rows(), 8);
        assert_eq!(p.cols(), 4);
        let coarse_nodes = gauss_lobatto_legendre(4).nodes;
        let fine_nodes = gauss_lobatto_legendre(8).nodes;
        let poly = |x: f64| 0.5 + 2.0 * x - x.powi(3);
        let coarse: Vec<f64> = coarse_nodes.iter().map(|&x| poly(x)).collect();
        let fine = p.matvec(&coarse);
        for (i, &x) in fine_nodes.iter().enumerate() {
            assert!((fine[i] - poly(x)).abs() < 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "must not lose order")]
    fn prolongation_to_lower_degree_panics() {
        let _ = degree_prolongation(7, 3);
    }
}
