//! Dense symmetric eigensolvers for the small per-degree operators.
//!
//! The fast-diagonalization preconditioner (see [`crate::fdm1d`]) needs the
//! generalized eigendecomposition `K S = B S Λ` of the one-dimensional
//! stiffness/mass pair on every element direction.  The matrices involved are
//! at most `(N + 1) × (N + 1)` — a few hundred entries — so a classical
//! cyclic Jacobi rotation sweep is both dependency-free and accurate to
//! machine precision, which is all the workspace's offline setup path needs.

use crate::matrix::DenseMatrix;

/// Relative off-diagonal threshold at which the Jacobi sweep stops.
const JACOBI_TOLERANCE: f64 = 1e-14;

/// Maximum number of full sweeps (far more than the ~`log`-many a
/// well-conditioned symmetric matrix of this size ever needs).
const MAX_SWEEPS: usize = 64;

/// Eigendecomposition of a symmetric matrix: `A = V diag(λ) Vᵀ` with the
/// eigenvalues ascending and `V` orthonormal (columns are eigenvectors).
///
/// Uses cyclic Jacobi rotations; the input is read from the lower triangle
/// (the matrix is expected symmetric).
///
/// # Panics
/// Panics if `a` is not square or the sweep fails to converge (which cannot
/// happen for finite symmetric input within [`MAX_SWEEPS`]).
#[must_use]
pub fn symmetric_eigen(a: &DenseMatrix) -> (Vec<f64>, DenseMatrix) {
    assert_eq!(a.rows(), a.cols(), "matrix must be square");
    let n = a.rows();
    let mut m = a.clone();
    let mut v = DenseMatrix::identity(n);
    if n <= 1 {
        let lambda = if n == 1 { vec![m[(0, 0)]] } else { Vec::new() };
        return (lambda, v);
    }

    let scale = (0..n)
        .flat_map(|i| (0..n).map(move |j| (i, j)))
        .fold(0.0_f64, |s, (i, j)| s.max(m[(i, j)].abs()))
        .max(f64::MIN_POSITIVE);

    let mut converged = false;
    for _ in 0..MAX_SWEEPS {
        let off: f64 = (0..n)
            .flat_map(|p| ((p + 1)..n).map(move |q| (p, q)))
            .map(|(p, q)| m[(p, q)].abs())
            .fold(0.0_f64, f64::max);
        if off <= JACOBI_TOLERANCE * scale {
            converged = true;
            break;
        }
        for p in 0..n {
            for q in (p + 1)..n {
                let apq = m[(p, q)];
                if apq.abs() <= JACOBI_TOLERANCE * scale * 1e-2 {
                    continue;
                }
                // Classical Jacobi rotation annihilating (p, q).
                let theta = (m[(q, q)] - m[(p, p)]) / (2.0 * apq);
                let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
                let c = 1.0 / (t * t + 1.0).sqrt();
                let s = t * c;
                for k in 0..n {
                    let mkp = m[(k, p)];
                    let mkq = m[(k, q)];
                    m[(k, p)] = c * mkp - s * mkq;
                    m[(k, q)] = s * mkp + c * mkq;
                }
                for k in 0..n {
                    let mpk = m[(p, k)];
                    let mqk = m[(q, k)];
                    m[(p, k)] = c * mpk - s * mqk;
                    m[(q, k)] = s * mpk + c * mqk;
                }
                for k in 0..n {
                    let vkp = v[(k, p)];
                    let vkq = v[(k, q)];
                    v[(k, p)] = c * vkp - s * vkq;
                    v[(k, q)] = s * vkp + c * vkq;
                }
            }
        }
    }
    assert!(converged, "Jacobi eigensolver failed to converge");

    // Sort eigenpairs ascending so callers get a deterministic order.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&i, &j| m[(i, i)].total_cmp(&m[(j, j)]));
    let lambda: Vec<f64> = order.iter().map(|&i| m[(i, i)]).collect();
    let vectors = DenseMatrix::from_fn(n, n, |i, j| v[(i, order[j])]);
    (lambda, vectors)
}

/// Generalized eigendecomposition `K S = B S Λ` with `SᵀBS = I`, for a
/// symmetric `K` and a *diagonal* positive `B` (the SEM collocation mass
/// matrix).  Reduced to a standard symmetric problem through the congruence
/// `C = B^{-1/2} K B^{-1/2}`, then transformed back: `S = B^{-1/2} Q`.
///
/// # Panics
/// Panics if the dimensions disagree or any `b` entry is not strictly
/// positive.
#[must_use]
pub fn generalized_eigen_diag(k: &DenseMatrix, b_diag: &[f64]) -> (Vec<f64>, DenseMatrix) {
    assert_eq!(k.rows(), k.cols(), "stiffness must be square");
    assert_eq!(k.rows(), b_diag.len(), "mass diagonal length mismatch");
    assert!(
        b_diag.iter().all(|&b| b > 0.0),
        "mass diagonal must be positive"
    );
    let n = k.rows();
    let inv_sqrt: Vec<f64> = b_diag.iter().map(|&b| 1.0 / b.sqrt()).collect();
    let c = DenseMatrix::from_fn(n, n, |i, j| inv_sqrt[i] * k[(i, j)] * inv_sqrt[j]);
    let (lambda, q) = symmetric_eigen(&c);
    let s = DenseMatrix::from_fn(n, n, |i, j| inv_sqrt[i] * q[(i, j)]);
    (lambda, s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operators1d::{mass_matrix_1d, stiffness_matrix_1d};

    fn reconstruct(lambda: &[f64], v: &DenseMatrix) -> DenseMatrix {
        let n = lambda.len();
        DenseMatrix::from_fn(n, n, |i, j| {
            (0..n).map(|k| v[(i, k)] * lambda[k] * v[(j, k)]).sum()
        })
    }

    #[test]
    fn diagonal_matrices_are_their_own_decomposition() {
        let mut a = DenseMatrix::zeros(3, 3);
        a[(0, 0)] = 3.0;
        a[(1, 1)] = -1.0;
        a[(2, 2)] = 2.0;
        let (lambda, v) = symmetric_eigen(&a);
        assert_eq!(lambda, vec![-1.0, 2.0, 3.0]);
        // Columns are signed unit vectors.
        for j in 0..3 {
            let norm: f64 = (0..3).map(|i| v[(i, j)] * v[(i, j)]).sum();
            assert!((norm - 1.0).abs() < 1e-14);
        }
    }

    #[test]
    fn reconstructs_random_symmetric_matrices() {
        for n in [2_usize, 5, 9, 16] {
            // Deterministic pseudo-random symmetric matrix.
            let a = DenseMatrix::from_fn(n, n, |i, j| {
                let (lo, hi) = if i <= j { (i, j) } else { (j, i) };
                ((lo * 31 + hi * 17) as f64 * 0.37).sin()
            });
            let (lambda, v) = symmetric_eigen(&a);
            let back = reconstruct(&lambda, &v);
            assert!(
                a.frobenius_distance(&back) < 1e-11 * (1.0 + a.max_abs()) * n as f64,
                "n = {n}: {}",
                a.frobenius_distance(&back)
            );
            // Eigenvalues ascend.
            for w in lambda.windows(2) {
                assert!(w[0] <= w[1] + 1e-12);
            }
        }
    }

    #[test]
    fn eigenvectors_are_orthonormal() {
        let n = 8;
        let a = DenseMatrix::from_fn(n, n, |i, j| 1.0 / (1.0 + i as f64 + j as f64));
        let (_, v) = symmetric_eigen(&a);
        let vtv = v.transpose().matmul(&v);
        assert!(vtv.frobenius_distance(&DenseMatrix::identity(n)) < 1e-12);
    }

    #[test]
    fn generalized_pair_satisfies_k_s_equals_b_s_lambda() {
        for degree in [2_usize, 4, 7, 11] {
            let length = 0.25;
            let k = stiffness_matrix_1d(degree, length);
            let b = mass_matrix_1d(degree, length);
            let b_diag: Vec<f64> = (0..b.rows()).map(|i| b[(i, i)]).collect();
            let (lambda, s) = generalized_eigen_diag(&k, &b_diag);
            let n = k.rows();
            // K S = B S Λ, column by column.
            for j in 0..n {
                for i in 0..n {
                    let ks: f64 = (0..n).map(|l| k[(i, l)] * s[(l, j)]).sum();
                    let bsl = b_diag[i] * s[(i, j)] * lambda[j];
                    assert!(
                        (ks - bsl).abs() < 1e-9 * (1.0 + k.max_abs()),
                        "degree {degree}, ({i}, {j}): {ks} vs {bsl}"
                    );
                }
            }
            // SᵀBS = I.
            for i in 0..n {
                for j in 0..n {
                    let dot: f64 = (0..n).map(|l| s[(l, i)] * b_diag[l] * s[(l, j)]).sum();
                    let expect = if i == j { 1.0 } else { 0.0 };
                    assert!((dot - expect).abs() < 1e-10, "degree {degree}");
                }
            }
            // The Neumann stiffness has exactly one (near-)zero eigenvalue:
            // the constant mode.
            assert!(lambda[0].abs() < 1e-9 * lambda[degree].max(1.0));
            assert!(lambda[1] > 1e-6);
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn generalized_rejects_degenerate_mass() {
        let k = DenseMatrix::identity(2);
        let _ = generalized_eigen_diag(&k, &[1.0, 0.0]);
    }
}
