//! Property-based tests for the spectral basis building blocks.

use proptest::prelude::*;
use sem_basis::{
    gauss_legendre, gauss_lobatto_legendre, interpolation_matrix, legendre, legendre_derivative,
    DerivativeMatrix, LagrangeBasis,
};

proptest! {
    /// |P_n(x)| <= 1 on [-1, 1] for every n.
    #[test]
    fn legendre_bounded_on_interval(n in 0usize..40, x in -1.0f64..=1.0) {
        let v = legendre(n, x);
        prop_assert!(v.abs() <= 1.0 + 1e-12, "P_{n}({x}) = {v}");
    }

    /// Legendre parity: P_n(-x) = (-1)^n P_n(x).
    #[test]
    fn legendre_parity(n in 0usize..30, x in -1.0f64..=1.0) {
        let a = legendre(n, x);
        let b = legendre(n, -x);
        let sign = if n % 2 == 0 { 1.0 } else { -1.0 };
        prop_assert!((a - sign * b).abs() < 1e-11);
    }

    /// The derivative recurrence matches a central finite difference.
    #[test]
    fn legendre_derivative_consistent(n in 1usize..20, x in -0.99f64..=0.99) {
        let h = 1e-6;
        let fd = (legendre(n, x + h) - legendre(n, x - h)) / (2.0 * h);
        let an = legendre_derivative(n, x);
        prop_assert!((fd - an).abs() < 1e-5 * (1.0 + an.abs()));
    }

    /// GLL weights are positive, symmetric and sum to 2 for any degree.
    #[test]
    fn gll_weights_well_formed(degree in 1usize..=24) {
        let q = gauss_lobatto_legendre(degree + 1);
        let sum: f64 = q.weights.iter().sum();
        prop_assert!((sum - 2.0).abs() < 1e-11);
        for (i, &w) in q.weights.iter().enumerate() {
            prop_assert!(w > 0.0);
            prop_assert!((w - q.weights[q.len() - 1 - i]).abs() < 1e-11);
        }
    }

    /// GLL quadrature integrates random polynomials of degree <= 2N-1 exactly.
    #[test]
    fn gll_exact_on_random_polynomials(
        degree in 2usize..=12,
        coeffs in proptest::collection::vec(-2.0f64..2.0, 1..8),
    ) {
        let q = gauss_lobatto_legendre(degree + 1);
        // Keep the polynomial degree within the exactness range 2N - 1.
        let max_terms = (2 * degree).saturating_sub(1).min(coeffs.len());
        let coeffs = &coeffs[..max_terms.max(1)];
        let f = |x: f64| {
            coeffs
                .iter()
                .enumerate()
                .map(|(k, &c)| c * x.powi(k as i32))
                .sum::<f64>()
        };
        let exact: f64 = coeffs
            .iter()
            .enumerate()
            .map(|(k, &c)| if k % 2 == 0 { 2.0 * c / (k as f64 + 1.0) } else { 0.0 })
            .sum();
        prop_assert!((q.integrate(f) - exact).abs() < 1e-9 * (1.0 + exact.abs()));
    }

    /// Gauss and Gauss-Lobatto rules agree on smooth integrands once both are fine enough.
    #[test]
    fn gauss_and_lobatto_agree(freq in 0.5f64..4.0) {
        let f = |x: f64| (freq * x).cos() + 0.3 * (2.0 * x).sin();
        let a = gauss_legendre(30).integrate(f);
        let b = gauss_lobatto_legendre(30).integrate(f);
        prop_assert!((a - b).abs() < 1e-10);
    }

    /// Lagrange interpolation on GLL points reproduces random polynomials of the same degree.
    #[test]
    fn lagrange_reproduces_polynomials(
        degree in 1usize..=10,
        coeffs in proptest::collection::vec(-3.0f64..3.0, 1..11),
        x in -1.0f64..=1.0,
    ) {
        let q = gauss_lobatto_legendre(degree + 1);
        let basis = LagrangeBasis::new(&q.nodes);
        let coeffs = &coeffs[..coeffs.len().min(degree + 1)];
        let poly = |x: f64| {
            coeffs
                .iter()
                .enumerate()
                .map(|(k, &c)| c * x.powi(k as i32))
                .sum::<f64>()
        };
        let nodal: Vec<f64> = q.nodes.iter().map(|&x| poly(x)).collect();
        let interp = basis.interpolate(&nodal, x);
        prop_assert!((interp - poly(x)).abs() < 1e-9 * (1.0 + poly(x).abs()));
    }

    /// The differentiation matrix annihilates constants and differentiates
    /// random polynomials of degree <= N exactly at every node.
    #[test]
    fn derivative_matrix_exact(
        degree in 1usize..=12,
        coeffs in proptest::collection::vec(-2.0f64..2.0, 1..13),
    ) {
        let dm = DerivativeMatrix::new(degree);
        let xi = dm.quadrature().nodes.clone();
        let coeffs = &coeffs[..coeffs.len().min(degree + 1)];
        let poly = |x: f64| {
            coeffs
                .iter()
                .enumerate()
                .map(|(k, &c)| c * x.powi(k as i32))
                .sum::<f64>()
        };
        let dpoly = |x: f64| {
            coeffs
                .iter()
                .enumerate()
                .skip(1)
                .map(|(k, &c)| c * k as f64 * x.powi(k as i32 - 1))
                .sum::<f64>()
        };
        let nodal: Vec<f64> = xi.iter().map(|&x| poly(x)).collect();
        let deriv = dm.differentiate(&nodal);
        for (i, &x) in xi.iter().enumerate() {
            prop_assert!(
                (deriv[i] - dpoly(x)).abs() < 1e-7 * (1.0 + dpoly(x).abs()),
                "degree {degree} node {i}"
            );
        }
    }

    /// Interpolation matrices reproduce constants (rows sum to one) for any
    /// source/target degree combination.
    #[test]
    fn interpolation_reproduces_constants(from_deg in 1usize..=10, to_deg in 1usize..=10) {
        let from = gauss_lobatto_legendre(from_deg + 1);
        let to = gauss_lobatto_legendre(to_deg + 1);
        let j = interpolation_matrix(&from.nodes, &to.nodes);
        for i in 0..j.rows() {
            let s: f64 = j.row(i).iter().sum();
            prop_assert!((s - 1.0).abs() < 1e-10);
        }
    }
}
