//! Property-style tests for the spectral basis building blocks.
//!
//! The offline build cannot use `proptest`, so each property is exercised
//! over a deterministic seeded sweep of random inputs instead of a shrinking
//! search — same invariants, reproducible cases.

use rand::{rngs::StdRng, Rng, SeedableRng};
use sem_basis::{
    gauss_legendre, gauss_lobatto_legendre, interpolation_matrix, legendre, legendre_derivative,
    DerivativeMatrix, LagrangeBasis,
};

fn random_coeffs(rng: &mut StdRng, len: usize, scale: f64) -> Vec<f64> {
    (0..len).map(|_| rng.gen_range(-scale..scale)).collect()
}

/// |P_n(x)| <= 1 on [-1, 1] for every n.
#[test]
fn legendre_bounded_on_interval() {
    let mut rng = StdRng::seed_from_u64(1);
    for _ in 0..200 {
        let n = rng.gen_range(0usize..40);
        let x = rng.gen_range(-1.0..1.0);
        let v = legendre(n, x);
        assert!(v.abs() <= 1.0 + 1e-12, "P_{n}({x}) = {v}");
    }
    // Include the end points the open range cannot hit.
    for n in 0..40 {
        assert!(legendre(n, 1.0).abs() <= 1.0 + 1e-12);
        assert!(legendre(n, -1.0).abs() <= 1.0 + 1e-12);
    }
}

/// Legendre parity: P_n(-x) = (-1)^n P_n(x).
#[test]
fn legendre_parity() {
    let mut rng = StdRng::seed_from_u64(2);
    for _ in 0..200 {
        let n = rng.gen_range(0usize..30);
        let x = rng.gen_range(-1.0..1.0);
        let a = legendre(n, x);
        let b = legendre(n, -x);
        let sign = if n % 2 == 0 { 1.0 } else { -1.0 };
        assert!((a - sign * b).abs() < 1e-11, "n = {n}, x = {x}");
    }
}

/// The derivative recurrence matches a central finite difference.
#[test]
fn legendre_derivative_consistent() {
    let mut rng = StdRng::seed_from_u64(3);
    for _ in 0..200 {
        let n = rng.gen_range(1usize..20);
        let x = rng.gen_range(-0.99..0.99);
        let h = 1e-6;
        let fd = (legendre(n, x + h) - legendre(n, x - h)) / (2.0 * h);
        let an = legendre_derivative(n, x);
        assert!(
            (fd - an).abs() < 1e-5 * (1.0 + an.abs()),
            "n = {n}, x = {x}"
        );
    }
}

/// GLL weights are positive, symmetric and sum to 2 for any degree.
#[test]
fn gll_weights_well_formed() {
    for degree in 1usize..=24 {
        let q = gauss_lobatto_legendre(degree + 1);
        let sum: f64 = q.weights.iter().sum();
        assert!((sum - 2.0).abs() < 1e-11, "degree {degree}: sum {sum}");
        for (i, &w) in q.weights.iter().enumerate() {
            assert!(w > 0.0, "degree {degree}, weight {i}");
            assert!(
                (w - q.weights[q.len() - 1 - i]).abs() < 1e-11,
                "degree {degree}, weight {i} not symmetric"
            );
        }
    }
}

/// GLL quadrature integrates random polynomials of degree <= 2N-1 exactly.
#[test]
fn gll_exact_on_random_polynomials() {
    let mut rng = StdRng::seed_from_u64(4);
    for _ in 0..100 {
        let degree = rng.gen_range(2usize..=12);
        let len = rng.gen_range(1usize..8);
        let coeffs = random_coeffs(&mut rng, len, 2.0);
        let q = gauss_lobatto_legendre(degree + 1);
        // Keep the polynomial degree within the exactness range 2N - 1.
        let max_terms = (2 * degree).saturating_sub(1).min(coeffs.len());
        let coeffs = &coeffs[..max_terms.max(1)];
        let f = |x: f64| {
            coeffs
                .iter()
                .enumerate()
                .map(|(k, &c)| c * x.powi(k as i32))
                .sum::<f64>()
        };
        let exact: f64 = coeffs
            .iter()
            .enumerate()
            .map(|(k, &c)| {
                if k % 2 == 0 {
                    2.0 * c / (k as f64 + 1.0)
                } else {
                    0.0
                }
            })
            .sum();
        assert!(
            (q.integrate(f) - exact).abs() < 1e-9 * (1.0 + exact.abs()),
            "degree {degree}"
        );
    }
}

/// Gauss and Gauss-Lobatto rules agree on smooth integrands once both are
/// fine enough.
#[test]
fn gauss_and_lobatto_agree() {
    let mut rng = StdRng::seed_from_u64(5);
    for _ in 0..50 {
        let freq = rng.gen_range(0.5..4.0);
        let f = |x: f64| (freq * x).cos() + 0.3 * (2.0 * x).sin();
        let a = gauss_legendre(30).integrate(f);
        let b = gauss_lobatto_legendre(30).integrate(f);
        assert!((a - b).abs() < 1e-10, "freq {freq}");
    }
}

/// Lagrange interpolation on GLL points reproduces random polynomials of the
/// same degree.
#[test]
fn lagrange_reproduces_polynomials() {
    let mut rng = StdRng::seed_from_u64(6);
    for _ in 0..100 {
        let degree = rng.gen_range(1usize..=10);
        let len = rng.gen_range(1usize..11);
        let coeffs = random_coeffs(&mut rng, len, 3.0);
        let x = rng.gen_range(-1.0..1.0);
        let q = gauss_lobatto_legendre(degree + 1);
        let basis = LagrangeBasis::new(&q.nodes);
        let coeffs = &coeffs[..coeffs.len().min(degree + 1)];
        let poly = |x: f64| {
            coeffs
                .iter()
                .enumerate()
                .map(|(k, &c)| c * x.powi(k as i32))
                .sum::<f64>()
        };
        let nodal: Vec<f64> = q.nodes.iter().map(|&x| poly(x)).collect();
        let interp = basis.interpolate(&nodal, x);
        assert!(
            (interp - poly(x)).abs() < 1e-9 * (1.0 + poly(x).abs()),
            "degree {degree}, x {x}"
        );
    }
}

/// The differentiation matrix annihilates constants and differentiates random
/// polynomials of degree <= N exactly at every node.
#[test]
fn derivative_matrix_exact() {
    let mut rng = StdRng::seed_from_u64(7);
    for _ in 0..100 {
        let degree = rng.gen_range(1usize..=12);
        let len = rng.gen_range(1usize..13);
        let coeffs = random_coeffs(&mut rng, len, 2.0);
        let dm = DerivativeMatrix::new(degree);
        let xi = dm.quadrature().nodes.clone();
        let coeffs = &coeffs[..coeffs.len().min(degree + 1)];
        let poly = |x: f64| {
            coeffs
                .iter()
                .enumerate()
                .map(|(k, &c)| c * x.powi(k as i32))
                .sum::<f64>()
        };
        let dpoly = |x: f64| {
            coeffs
                .iter()
                .enumerate()
                .skip(1)
                .map(|(k, &c)| c * k as f64 * x.powi(k as i32 - 1))
                .sum::<f64>()
        };
        let nodal: Vec<f64> = xi.iter().map(|&x| poly(x)).collect();
        let deriv = dm.differentiate(&nodal);
        for (i, &x) in xi.iter().enumerate() {
            assert!(
                (deriv[i] - dpoly(x)).abs() < 1e-7 * (1.0 + dpoly(x).abs()),
                "degree {degree} node {i}"
            );
        }
    }
}

/// Interpolation matrices reproduce constants (rows sum to one) for any
/// source/target degree combination.
#[test]
fn interpolation_reproduces_constants() {
    for from_deg in 1usize..=10 {
        for to_deg in 1usize..=10 {
            let from = gauss_lobatto_legendre(from_deg + 1);
            let to = gauss_lobatto_legendre(to_deg + 1);
            let j = interpolation_matrix(&from.nodes, &to.nodes);
            for i in 0..j.rows() {
                let s: f64 = j.row(i).iter().sum();
                assert!(
                    (s - 1.0).abs() < 1e-10,
                    "{from_deg} -> {to_deg}, row {i}: {s}"
                );
            }
        }
    }
}
