//! The span/event model: fixed-size, `Copy`, allocation-free records.
//!
//! A [`SpanEvent`] is everything the recorder stores per observation — no
//! strings, no boxes.  Runtime names (backend ids, device slots) are
//! interned once into a [`LabelId`] outside the hot path; the ids carried
//! here are plain integers with [`NO_ID`] as the "absent" sentinel.

/// Sentinel for an absent `request`/`job` id.
pub const NO_ID: u64 = u64::MAX;

/// Interned label handle (`0` = no label); see `Recorder::intern`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LabelId(pub u32);

impl LabelId {
    /// The empty label.
    pub const NONE: Self = Self(0);
}

/// What a span describes.  The discriminant order is part of the exported
/// trace's stable sort key, so variants are grouped by layer: solver,
/// offload stages, serving, scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SpanKind {
    /// One CG iteration (index = iteration number within the solve).
    CgIteration,
    /// One operator application (`w = A p`).
    OperatorApply,
    /// One preconditioner application (`z = M⁻¹ r`).
    PrecondApply,
    /// One batched solve on a backend (a `solve_many` session).
    Solve,
    /// Shared-operand upload (geometry/operator tables), once per session.
    SharedUpload,
    /// Per-request H2D operand upload.
    Upload,
    /// Per-request kernel compute stage.
    Compute,
    /// Per-iteration residual streaming back to the host.
    ResidualStream,
    /// Per-request D2H result download.
    Download,
    /// One batch job occupying a device slot (index = device slot).
    PipelineSlot,
    /// Admission accepted a job (span covers predicted completion).
    AdmissionAdmit,
    /// Admission rejected a request against its deadline.
    AdmissionReject,
    /// Admission split a job to fit a deadline (down-batching).
    DownBatchSplit,
    /// A worker stole a job hinted at another device (index = thief).
    Steal,
    /// A worker parked waiting for work (index = worker).
    WorkerPark,
    /// A worker woke up (index = worker).
    WorkerUnpark,
    /// A simulated-accelerator stage timing (label names the stage).
    SimStage,
}

impl SpanKind {
    /// Stable display name (also the Chrome-trace event name).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Self::CgIteration => "cg_iteration",
            Self::OperatorApply => "operator_apply",
            Self::PrecondApply => "precond_apply",
            Self::Solve => "solve",
            Self::SharedUpload => "shared_upload",
            Self::Upload => "upload",
            Self::Compute => "compute",
            Self::ResidualStream => "residual_stream",
            Self::Download => "download",
            Self::PipelineSlot => "pipeline_slot",
            Self::AdmissionAdmit => "admission_admit",
            Self::AdmissionReject => "admission_reject",
            Self::DownBatchSplit => "downbatch_split",
            Self::Steal => "steal",
            Self::WorkerPark => "worker_park",
            Self::WorkerUnpark => "worker_unpark",
            Self::SimStage => "sim_stage",
        }
    }

    /// Stable small integer for sort keys (the declaration order).
    #[must_use]
    pub fn rank(self) -> u8 {
        self as u8
    }
}

/// Whether an event's content is reproducible run-to-run under a fixed
/// seed, or depends on the OS schedule.
///
/// * [`Scope::Deterministic`] — emitted from deterministic code (admission
///   decisions, modelled pipeline plans, sequential modelled solves); with
///   the modelled clock these events are byte-reproducible and form the
///   deterministic Chrome export.
/// * [`Scope::ScheduleDependent`] — emitted from worker threads or stamped
///   with measured time (steals, parks, wall-clock kernel applies); they
///   appear in wall-mode exports but are filtered from the deterministic
///   one.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Scope {
    /// Content is a pure function of the request stream and the seed.
    Deterministic,
    /// Content varies with thread scheduling or host timing.
    ScheduleDependent,
}

/// One recorded span (`start == end` encodes an instant event).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpanEvent {
    /// What happened.
    pub kind: SpanKind,
    /// Reproducibility class (see [`Scope`]).
    pub scope: Scope,
    /// Interned label (backend name, device, stage), or [`LabelId::NONE`].
    pub label: LabelId,
    /// Stable request id ([`NO_ID`] when not request-scoped).
    pub request: u64,
    /// Stable job id ([`NO_ID`] when not job-scoped).
    pub job: u64,
    /// Free per-kind index: iteration, device slot, worker, split depth.
    pub index: u64,
    /// Span start, in clock seconds (see `ObsClock`).
    pub start_seconds: f64,
    /// Span end, in clock seconds.
    pub end_seconds: f64,
}

impl SpanEvent {
    /// A span with no request/job/index attribution (fill in what applies).
    #[must_use]
    pub fn new(kind: SpanKind, scope: Scope, start_seconds: f64, end_seconds: f64) -> Self {
        Self {
            kind,
            scope,
            label: LabelId::NONE,
            request: NO_ID,
            job: NO_ID,
            index: 0,
            start_seconds,
            end_seconds,
        }
    }

    /// Attach an interned label.
    #[must_use]
    pub fn with_label(mut self, label: LabelId) -> Self {
        self.label = label;
        self
    }

    /// Attach a request id.
    #[must_use]
    pub fn with_request(mut self, request: u64) -> Self {
        self.request = request;
        self
    }

    /// Attach a job id.
    #[must_use]
    pub fn with_job(mut self, job: u64) -> Self {
        self.job = job;
        self
    }

    /// Attach the per-kind index.
    #[must_use]
    pub fn with_index(mut self, index: u64) -> Self {
        self.index = index;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_fills_every_field() {
        let event = SpanEvent::new(SpanKind::Upload, Scope::Deterministic, 1.0, 2.0)
            .with_label(LabelId(3))
            .with_request(7)
            .with_job(2)
            .with_index(5);
        assert_eq!(event.kind.name(), "upload");
        assert_eq!(event.label, LabelId(3));
        assert_eq!(event.request, 7);
        assert_eq!(event.job, 2);
        assert_eq!(event.index, 5);
        assert_eq!(event.start_seconds, 1.0);
        assert_eq!(event.end_seconds, 2.0);
    }

    #[test]
    fn kind_ranks_are_distinct_and_ordered() {
        let kinds = [
            SpanKind::CgIteration,
            SpanKind::OperatorApply,
            SpanKind::PrecondApply,
            SpanKind::Solve,
            SpanKind::SharedUpload,
            SpanKind::Upload,
            SpanKind::Compute,
            SpanKind::ResidualStream,
            SpanKind::Download,
            SpanKind::PipelineSlot,
            SpanKind::AdmissionAdmit,
            SpanKind::AdmissionReject,
            SpanKind::DownBatchSplit,
            SpanKind::Steal,
            SpanKind::WorkerPark,
            SpanKind::WorkerUnpark,
            SpanKind::SimStage,
        ];
        for window in kinds.windows(2) {
            assert!(window[0].rank() < window[1].rank());
            assert_ne!(window[0].name(), window[1].name());
        }
    }
}
