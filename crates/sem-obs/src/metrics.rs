//! Label-aware metrics: counters, gauges, and log-linear histograms.
//!
//! The registry is built for the workspace's hot paths: after a series
//! exists (first touch allocates it), every further update is a name/label
//! lookup over preallocated storage plus an atomic — no allocation, so
//! per-solve metric updates stay inside the repo's alloc-free budget.
//!
//! Metric names must follow the `sem_<crate>_<noun>_<unit>` convention
//! ([`name_matches_convention`]); sem-lint's `obs-naming` pass checks every
//! registration site statically, and the registry asserts it at runtime.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Crate tokens a metric name may claim (`sem_<crate>_…`).
pub const METRIC_CRATES: &[&str] = &[
    "basis", "mesh", "kernel", "solver", "accel", "sim", "model", "serve", "obs", "bench",
];

/// Unit suffixes a metric name must end with (`…_<unit>`).
pub const METRIC_UNITS: &[&str] = &["total", "seconds", "bytes", "count", "ratio"];

/// Whether `name` matches `sem_<crate>_<noun>_<unit>`: lowercase
/// snake-case, a known crate token, at least one noun segment, and a known
/// unit suffix.
#[must_use]
pub fn name_matches_convention(name: &str) -> bool {
    if !name
        .chars()
        .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')
    {
        return false;
    }
    let segments: Vec<&str> = name.split('_').collect();
    if segments.len() < 4 || segments.iter().any(|s| s.is_empty()) {
        return false;
    }
    segments[0] == "sem"
        && METRIC_CRATES.contains(&segments[1])
        && METRIC_UNITS.contains(segments.last().expect("len checked"))
}

/// Histogram bucketing: log-linear — each power-of-two octave between
/// 2^[`MIN_EXP`] and 2^[`MAX_EXP`] is subdivided into [`SUBDIVISIONS`]
/// linear sub-buckets, plus an underflow and an overflow bucket.
const MIN_EXP: i32 = -30;
/// Upper octave bound (2^10 s ≈ 17 min).
const MAX_EXP: i32 = 10;
/// Linear sub-buckets per octave.
const SUBDIVISIONS: usize = 4;
/// Total bucket count (underflow + octaves × subdivisions + overflow).
const BUCKETS: usize = ((MAX_EXP - MIN_EXP) as usize) * SUBDIVISIONS + 2;

/// The bucket a value falls into.
fn bucket_index(value: f64) -> usize {
    let floor = (MIN_EXP as f64).exp2();
    if value.is_nan() || value <= floor {
        return 0;
    }
    if value >= (MAX_EXP as f64).exp2() {
        return BUCKETS - 1;
    }
    let exp = value.log2().floor();
    let octave = (exp as i32 - MIN_EXP).clamp(0, MAX_EXP - MIN_EXP - 1) as usize;
    let fraction = value / exp.exp2();
    let sub = (((fraction - 1.0) * SUBDIVISIONS as f64) as usize).min(SUBDIVISIONS - 1);
    1 + octave * SUBDIVISIONS + sub
}

/// The inclusive upper bound of a bucket (for Prometheus `le` labels);
/// `None` is the overflow (`+Inf`) bucket.
fn bucket_upper_bound(index: usize) -> Option<f64> {
    if index + 1 >= BUCKETS {
        return None;
    }
    if index == 0 {
        return Some((MIN_EXP as f64).exp2());
    }
    let k = index - 1;
    let exp = MIN_EXP + (k / SUBDIVISIONS) as i32;
    let sub = k % SUBDIVISIONS;
    Some((exp as f64).exp2() * (1.0 + (sub + 1) as f64 / SUBDIVISIONS as f64))
}

/// Atomically add to an f64 stored as bits in an `AtomicU64`.
fn add_f64(bits: &AtomicU64, delta: f64) {
    let mut current = bits.load(Ordering::Relaxed);
    loop {
        let next = (f64::from_bits(current) + delta).to_bits();
        match bits.compare_exchange_weak(current, next, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(observed) => current = observed,
        }
    }
}

/// One metric cell.
enum Cell {
    Counter(AtomicU64),
    /// f64 bits.
    Gauge(AtomicU64),
    Histogram {
        buckets: Vec<AtomicU64>,
        count: AtomicU64,
        /// f64 bits.
        sum: AtomicU64,
    },
}

/// The kind tag Prometheus output needs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    Counter,
    Gauge,
    Histogram,
}

impl Kind {
    fn as_str(self) -> &'static str {
        match self {
            Self::Counter => "counter",
            Self::Gauge => "gauge",
            Self::Histogram => "histogram",
        }
    }
}

/// One labelled series of a family.
struct Series {
    labels: Vec<(String, String)>,
    cell: Cell,
}

impl Series {
    fn matches(&self, labels: &[(&str, &str)]) -> bool {
        self.labels.len() == labels.len()
            && self
                .labels
                .iter()
                .zip(labels)
                .all(|(have, want)| have.0 == want.0 && have.1 == want.1)
    }
}

/// One named metric family.
struct Family {
    name: &'static str,
    kind: Kind,
    series: Vec<Series>,
}

/// The metrics registry (one per installed recorder).
#[derive(Default)]
pub struct MetricsRegistry {
    families: Mutex<Vec<Family>>,
}

impl MetricsRegistry {
    /// New empty registry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Locate (or, on first touch, create) a series and apply `update` to
    /// its cell.  After first touch the path performs no allocation.
    fn with_cell(
        &self,
        name: &'static str,
        kind: Kind,
        labels: &[(&str, &str)],
        update: impl FnOnce(&Cell),
    ) {
        assert!(
            name_matches_convention(name),
            "metric `{name}` violates the sem_<crate>_<noun>_<unit> naming convention"
        );
        let Ok(mut families) = self.families.lock() else {
            return;
        };
        let family = match families.iter_mut().find(|f| f.name == name) {
            Some(found) => {
                assert!(
                    found.kind == kind,
                    "metric `{name}` registered as {} and used as {}",
                    found.kind.as_str(),
                    kind.as_str()
                );
                found
            }
            None => {
                families.push(Family {
                    name,
                    kind,
                    series: Vec::new(),
                });
                families.last_mut().expect("just pushed")
            }
        };
        if let Some(series) = family.series.iter().find(|s| s.matches(labels)) {
            update(&series.cell);
            return;
        }
        let cell = match kind {
            Kind::Counter => Cell::Counter(AtomicU64::new(0)),
            Kind::Gauge => Cell::Gauge(AtomicU64::new(0.0_f64.to_bits())),
            Kind::Histogram => Cell::Histogram {
                buckets: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
                count: AtomicU64::new(0),
                sum: AtomicU64::new(0.0_f64.to_bits()),
            },
        };
        family.series.push(Series {
            labels: labels
                .iter()
                .map(|(k, v)| ((*k).to_string(), (*v).to_string()))
                .collect(),
            cell,
        });
        update(&family.series.last().expect("just pushed").cell);
    }

    /// Add `delta` to a counter series.
    pub fn counter_add(&self, name: &'static str, labels: &[(&str, &str)], delta: u64) {
        self.with_cell(name, Kind::Counter, labels, |cell| {
            if let Cell::Counter(value) = cell {
                value.fetch_add(delta, Ordering::Relaxed);
            }
        });
    }

    /// Set a gauge series.
    pub fn gauge_set(&self, name: &'static str, labels: &[(&str, &str)], value: f64) {
        self.with_cell(name, Kind::Gauge, labels, |cell| {
            if let Cell::Gauge(bits) = cell {
                bits.store(value.to_bits(), Ordering::Relaxed);
            }
        });
    }

    /// Observe one value into a log-linear histogram series.
    pub fn observe(&self, name: &'static str, labels: &[(&str, &str)], value: f64) {
        self.with_cell(name, Kind::Histogram, labels, |cell| {
            if let Cell::Histogram {
                buckets,
                count,
                sum,
            } = cell
            {
                buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
                count.fetch_add(1, Ordering::Relaxed);
                add_f64(sum, value);
            }
        });
    }

    /// Render the whole registry in the Prometheus text exposition format,
    /// deterministically ordered (families by name, series by labels).
    #[must_use]
    pub fn prometheus_text(&self) -> String {
        let Ok(mut families) = self.families.lock() else {
            return String::new();
        };
        families.sort_by_key(|f| f.name);
        let mut out = String::new();
        for family in &mut *families {
            family.series.sort_by(|a, b| a.labels.cmp(&b.labels));
            out.push_str(&format!(
                "# TYPE {} {}\n",
                family.name,
                family.kind.as_str()
            ));
            for series in &family.series {
                match &series.cell {
                    Cell::Counter(value) => {
                        out.push_str(&format!(
                            "{}{} {}\n",
                            family.name,
                            render_labels(&series.labels, None),
                            value.load(Ordering::Relaxed)
                        ));
                    }
                    Cell::Gauge(bits) => {
                        out.push_str(&format!(
                            "{}{} {}\n",
                            family.name,
                            render_labels(&series.labels, None),
                            f64::from_bits(bits.load(Ordering::Relaxed))
                        ));
                    }
                    Cell::Histogram {
                        buckets,
                        count,
                        sum,
                    } => {
                        let mut cumulative = 0_u64;
                        for (index, bucket) in buckets.iter().enumerate() {
                            cumulative += bucket.load(Ordering::Relaxed);
                            let le = match bucket_upper_bound(index) {
                                Some(bound) => format!("{bound}"),
                                None => "+Inf".to_string(),
                            };
                            out.push_str(&format!(
                                "{}_bucket{} {cumulative}\n",
                                family.name,
                                render_labels(&series.labels, Some(&le)),
                            ));
                        }
                        out.push_str(&format!(
                            "{}_sum{} {}\n",
                            family.name,
                            render_labels(&series.labels, None),
                            f64::from_bits(sum.load(Ordering::Relaxed))
                        ));
                        out.push_str(&format!(
                            "{}_count{} {}\n",
                            family.name,
                            render_labels(&series.labels, None),
                            count.load(Ordering::Relaxed)
                        ));
                    }
                }
            }
        }
        out
    }
}

/// Render `{k="v",…}` (empty string when there are no labels and no `le`).
fn render_labels(labels: &[(String, String)], le: Option<&str>) -> String {
    if labels.is_empty() && le.is_none() {
        return String::new();
    }
    let mut parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", v.replace('\\', "\\\\").replace('"', "\\\"")))
        .collect();
    if let Some(le) = le {
        parts.push(format!("le=\"{le}\""));
    }
    format!("{{{}}}", parts.join(","))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn naming_convention_accepts_and_rejects() {
        assert!(name_matches_convention("sem_solver_cg_iterations_total"));
        assert!(name_matches_convention("sem_serve_request_latency_seconds"));
        assert!(name_matches_convention("sem_obs_dropped_events_total"));
        // Wrong prefix, unknown crate, missing unit, missing noun, casing.
        assert!(!name_matches_convention("solver_cg_iterations_total"));
        assert!(!name_matches_convention("sem_unknown_cg_iterations_total"));
        assert!(!name_matches_convention("sem_solver_cg_iterations"));
        assert!(!name_matches_convention("sem_solver_total"));
        assert!(!name_matches_convention("sem_Solver_cg_total"));
        assert!(!name_matches_convention("sem__solver_cg_total"));
    }

    #[test]
    fn counters_accumulate_per_label_set() {
        let registry = MetricsRegistry::new();
        registry.counter_add("sem_serve_requests_total", &[("backend", "cpu")], 2);
        registry.counter_add("sem_serve_requests_total", &[("backend", "cpu")], 3);
        registry.counter_add("sem_serve_requests_total", &[("backend", "fpga")], 1);
        let text = registry.prometheus_text();
        assert!(text.contains("# TYPE sem_serve_requests_total counter"));
        assert!(text.contains("sem_serve_requests_total{backend=\"cpu\"} 5"));
        assert!(text.contains("sem_serve_requests_total{backend=\"fpga\"} 1"));
    }

    #[test]
    fn gauges_keep_the_last_value() {
        let registry = MetricsRegistry::new();
        registry.gauge_set("sem_serve_queue_depth_count", &[], 3.0);
        registry.gauge_set("sem_serve_queue_depth_count", &[], 1.5);
        assert!(registry
            .prometheus_text()
            .contains("sem_serve_queue_depth_count 1.5"));
    }

    #[test]
    fn histogram_buckets_are_cumulative_and_sum_counts_match() {
        let registry = MetricsRegistry::new();
        for value in [1e-4, 2e-4, 0.5, 2.0] {
            registry.observe("sem_accel_solve_seconds", &[], value);
        }
        let text = registry.prometheus_text();
        assert!(text.contains("# TYPE sem_accel_solve_seconds histogram"));
        assert!(text.contains("sem_accel_solve_seconds_count 4"));
        let inf_line = text
            .lines()
            .find(|l| l.contains("le=\"+Inf\""))
            .expect("overflow bucket");
        assert!(inf_line.ends_with(" 4"), "{inf_line}");
        let sum_line = text
            .lines()
            .find(|l| l.starts_with("sem_accel_solve_seconds_sum"))
            .expect("sum line");
        let sum: f64 = sum_line.split(' ').next_back().unwrap().parse().unwrap();
        assert!((sum - 2.5003).abs() < 1e-12);
    }

    #[test]
    fn bucket_index_is_monotone_over_bounds() {
        let mut previous = 0;
        for index in 0..BUCKETS - 1 {
            let bound = bucket_upper_bound(index).unwrap();
            // A value just below the bound lands at or before this bucket.
            let at = bucket_index(bound * (1.0 - 1e-12));
            assert!(at <= index, "value under bound {bound} fell in {at}");
            assert!(at >= previous);
            previous = at;
        }
        assert_eq!(bucket_index(f64::NAN), 0);
        assert_eq!(bucket_index(-1.0), 0);
        assert_eq!(bucket_index(1e9), BUCKETS - 1);
    }

    #[test]
    #[should_panic(expected = "naming convention")]
    fn misnamed_metric_is_rejected() {
        // lint: obs-naming-ok (this test proves the registry rejects the misnamed metric)
        MetricsRegistry::new().counter_add("requests", &[], 1);
    }
}
