//! `sem-obs`: deterministic tracing, metrics, and model-drift telemetry
//! for the solve/serve stack.
//!
//! The paper's FPGA evaluation lives on per-stage accounting — kernel
//! cycles vs H2D/D2H transfer vs launch overhead — and once solves span a
//! device pool, *where time goes per request* is the difference between a
//! capacity plan and a guess.  This crate is the workspace's observability
//! layer, threaded through every other crate:
//!
//! * [`recorder`] — a global [`Recorder`] handle in front of preallocated
//!   per-thread event rings.  Disabled, every call is one relaxed
//!   `AtomicBool` load; enabled, recording a [`SpanEvent`] is a
//!   fixed-size write into storage sized up front (no allocation — proven
//!   by `tests/alloc_free.rs` over the CG hot loop).
//! * [`clock`] — the pluggable [`ObsClock`]: the *single sanctioned host
//!   `Instant` site* of the workspace (sem-lint's wall-clock pass pins the
//!   pragma to the file defining `ObsClock`).  On [`ObsClock::Modeled`]
//!   spans are stamped with the modelled seconds already flowing through
//!   `SolveReport`/`PipelineTimeline`, so traces are byte-reproducible.
//! * [`event`] — the span model: CG iterations, kernel applies, offload
//!   stages, pipeline slots, admission verdicts, steals, parks — each
//!   tagged [`Scope::Deterministic`] or [`Scope::ScheduleDependent`].
//! * [`metrics`] — label-aware counters / gauges / log-linear histograms
//!   under the `sem_<crate>_<noun>_<unit>` naming convention, with a
//!   Prometheus text snapshot.
//! * [`export`] — the Chrome trace-event JSON exporter (Perfetto-loadable)
//!   with the byte-determinism contract.
//! * [`drift`] — modelled-vs-actual residuals per offload stage per
//!   request, aggregated into the [`DriftReport`] that tells us which
//!   `perf_model` terms are lying — the autoscaler's future input signal.
//!
//! ```
//! use sem_obs::{recorder, ObsConfig, Recorder, Scope, SpanEvent, SpanKind};
//!
//! Recorder::install(ObsConfig::default()); // modelled clock
//! let obs = recorder();
//! let start = obs.stamp(0.0);
//! let end = obs.stamp(1.5e-3);
//! obs.record(SpanEvent::new(SpanKind::Solve, Scope::Deterministic, start, end));
//! obs.counter_add("sem_serve_requests_total", &[("backend", "cpu")], 1);
//! let trace = sem_obs::export::chrome_trace_json(&obs.trace_snapshot());
//! assert!(trace.contains("\"name\":\"solve\""));
//! Recorder::uninstall();
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod clock;
pub mod drift;
pub mod event;
pub mod export;
pub mod metrics;
pub mod recorder;

pub use clock::{ObsClock, WallEpoch, WallTimer};
pub use drift::{DriftReport, DriftRow, DriftSample};
pub use event::{LabelId, Scope, SpanEvent, SpanKind, NO_ID};
pub use export::chrome_trace_json;
pub use metrics::{name_matches_convention, MetricsRegistry};
pub use recorder::{recorder, ObsConfig, Recorder, TraceSnapshot, DEFAULT_RING_CAPACITY};
