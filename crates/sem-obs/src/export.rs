//! Exporters: Chrome trace-event JSON (loadable in Perfetto / `chrome://
//! tracing`) for spans, alongside the Prometheus text snapshot the
//! metrics registry renders itself.
//!
//! Determinism contract: under the modelled clock the export keeps only
//! [`Scope::Deterministic`] events, assigns track ids from the event
//! *kind* (never the recording thread), and sorts by a total order over
//! the event content — so the same seed produces byte-identical JSON no
//! matter how many worker threads recorded, on both the sync and the
//! work-stealing serving paths.  Under the wall clock every event is kept
//! (steals, parks, measured kernel applies included) with the same stable
//! ordering rules; the bytes then vary with the host, which is the point.

use crate::drift::{json_number, json_string};
use crate::event::{Scope, SpanEvent, NO_ID};
use crate::recorder::TraceSnapshot;

/// Order events by content only (never by recording thread): time, kind,
/// then attribution ids.
fn stable_order(a: &SpanEvent, b: &SpanEvent) -> std::cmp::Ordering {
    a.start_seconds
        .total_cmp(&b.start_seconds)
        .then_with(|| a.end_seconds.total_cmp(&b.end_seconds))
        .then_with(|| a.kind.rank().cmp(&b.kind.rank()))
        .then_with(|| a.request.cmp(&b.request))
        .then_with(|| a.job.cmp(&b.job))
        .then_with(|| a.index.cmp(&b.index))
        .then_with(|| a.label.cmp(&b.label))
}

/// Render a snapshot as Chrome trace-event JSON.
///
/// Events become `ph:"X"` complete events with microsecond `ts`/`dur`;
/// each [`crate::event::SpanKind`] gets its own named track (`tid` = kind
/// rank, with `thread_name` metadata), and request/job/index/label ride in
/// `args` so rows join against `ServeReport` by `request`.
#[must_use]
pub fn chrome_trace_json(snapshot: &TraceSnapshot) -> String {
    let mut events: Vec<&SpanEvent> = snapshot
        .events
        .iter()
        .map(|(_, event)| event)
        .filter(|event| !snapshot.modeled_clock || event.scope == Scope::Deterministic)
        .collect();
    events.sort_by(|a, b| stable_order(a, b));

    let mut lanes: Vec<u8> = events.iter().map(|e| e.kind.rank()).collect();
    lanes.sort_unstable();
    lanes.dedup();

    let mut out = String::new();
    out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    let mut first = true;
    for lane in &lanes {
        let name = events
            .iter()
            .find(|e| e.kind.rank() == *lane)
            .map_or("", |e| e.kind.name());
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&format!(
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":{lane},\
             \"args\":{{\"name\":{}}}}}",
            json_string(name)
        ));
    }
    for event in events {
        if !first {
            out.push(',');
        }
        first = false;
        let ts = event.start_seconds * 1e6;
        let dur = ((event.end_seconds - event.start_seconds) * 1e6).max(0.0);
        let cat = match event.scope {
            Scope::Deterministic => "deterministic",
            Scope::ScheduleDependent => "schedule_dependent",
        };
        out.push_str(&format!(
            "{{\"name\":{},\"cat\":\"{cat}\",\"ph\":\"X\",\"pid\":0,\"tid\":{},\
             \"ts\":{},\"dur\":{},\"args\":{{",
            json_string(event.kind.name()),
            event.kind.rank(),
            json_number(ts),
            json_number(dur),
        ));
        let mut first_arg = true;
        let mut arg = |out: &mut String, key: &str, value: String| {
            if !first_arg {
                out.push(',');
            }
            first_arg = false;
            out.push_str(&format!("\"{key}\":{value}"));
        };
        if event.request != NO_ID {
            arg(&mut out, "request", format!("{}", event.request));
        }
        if event.job != NO_ID {
            arg(&mut out, "job", format!("{}", event.job));
        }
        arg(&mut out, "index", format!("{}", event.index));
        let label = snapshot.label(event.label);
        if !label.is_empty() {
            arg(&mut out, "label", json_string(label));
        }
        out.push_str("}}");
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{LabelId, SpanKind};

    fn snapshot(modeled: bool, events: Vec<SpanEvent>) -> TraceSnapshot {
        TraceSnapshot {
            modeled_clock: modeled,
            events: events.into_iter().map(|e| (0, e)).collect(),
            labels: vec!["fpga:test".to_string()],
            dropped_events: 0,
        }
    }

    #[test]
    fn modeled_export_filters_schedule_dependent_events() {
        let det = SpanEvent::new(SpanKind::Upload, Scope::Deterministic, 0.0, 1.0).with_request(2);
        let sched = SpanEvent::new(SpanKind::Steal, Scope::ScheduleDependent, 0.5, 0.5);
        let json = chrome_trace_json(&snapshot(true, vec![det, sched]));
        assert!(json.contains("\"name\":\"upload\""));
        assert!(!json.contains("\"name\":\"steal\""));
        assert!(json.contains("\"request\":2"));
        // Wall-mode export keeps everything.
        let wall = chrome_trace_json(&snapshot(false, vec![det, sched]));
        assert!(wall.contains("\"name\":\"steal\""));
        assert!(wall.contains("\"cat\":\"schedule_dependent\""));
    }

    #[test]
    fn export_is_independent_of_recording_order_and_thread() {
        let a = SpanEvent::new(SpanKind::Compute, Scope::Deterministic, 1.0, 2.0).with_request(0);
        let b = SpanEvent::new(SpanKind::Upload, Scope::Deterministic, 0.0, 1.0).with_request(1);
        let forward = chrome_trace_json(&snapshot(true, vec![a, b]));
        let mut reversed = snapshot(true, vec![b, a]);
        // Simulate the same events surfacing from a different ring.
        for entry in &mut reversed.events {
            entry.0 = 7;
        }
        assert_eq!(forward, chrome_trace_json(&reversed));
    }

    #[test]
    fn spans_carry_microsecond_timestamps_and_labels() {
        let event = SpanEvent::new(SpanKind::Download, Scope::Deterministic, 0.5, 0.75)
            .with_label(LabelId(1))
            .with_job(4);
        let json = chrome_trace_json(&snapshot(true, vec![event]));
        assert!(json.contains("\"ts\":500000"));
        assert!(json.contains("\"dur\":250000"));
        assert!(json.contains("\"label\":\"fpga:test\""));
        assert!(json.contains("\"job\":4"));
        assert!(json.contains("\"thread_name\""));
        assert!(json.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["));
        assert!(json.ends_with("]}"));
    }
}
