//! The observability clock — the **single sanctioned host-clock site** of
//! the workspace.
//!
//! Every measured second in the repo flows through this module: the
//! recorder stamps spans through [`ObsClock`], and code that needs a raw
//! stopwatch (CPU backends timing an operator application) uses
//! [`WallTimer`].  No other non-support file may touch
//! `std::time::Instant`; the sem-lint wall-clock pass enforces exactly
//! that — a `// lint: wall-clock` pragma is only accepted in the module
//! that defines `ObsClock`.
//!
//! The modelled variant exists so traces stay bit-deterministic: when the
//! recorder runs on [`ObsClock::Modeled`], span stamps are the modelled
//! seconds the caller already carries (`SolveReport`, `PipelineTimeline`),
//! and the host clock is never read.

// lint: wall-clock (the one sanctioned Instant site: ObsClock/WallTimer re-export host time to the rest of the workspace)
use std::time::Instant;

/// A monotonic stopwatch over the host clock.
///
/// This is the primitive measurement modules use instead of importing
/// `Instant` themselves; naming the accessor `elapsed_wall_seconds` keeps
/// the result inside the lint's measured-identifier family so it can never
/// be compared against modelled seconds on one line without a waiver.
#[derive(Debug, Clone, Copy)]
pub struct WallTimer {
    start: Instant,
}

impl WallTimer {
    /// Start the stopwatch now.
    #[must_use]
    pub fn start() -> Self {
        Self {
            start: Instant::now(),
        }
    }

    /// Measured seconds since [`WallTimer::start`].
    #[must_use]
    pub fn elapsed_wall_seconds(&self) -> f64 {
        self.start.elapsed().as_secs_f64()
    }
}

/// The epoch wall-mode span stamps are relative to (captured when the
/// recorder is installed, so exported trace timestamps start near zero).
#[derive(Debug, Clone, Copy)]
pub struct WallEpoch {
    start: Instant,
}

impl WallEpoch {
    /// Capture the epoch now.
    #[must_use]
    pub fn now() -> Self {
        Self {
            start: Instant::now(),
        }
    }

    /// Measured seconds since the epoch.
    #[must_use]
    pub fn elapsed_wall_seconds(&self) -> f64 {
        self.start.elapsed().as_secs_f64()
    }
}

impl Default for WallEpoch {
    fn default() -> Self {
        Self::now()
    }
}

/// The pluggable time source spans are stamped by.
#[derive(Debug, Clone, Copy)]
pub enum ObsClock {
    /// Deterministic: a stamp is the modelled seconds the caller supplies
    /// (the figures already flowing through `SolveReport` /
    /// `PipelineTimeline`).  The host clock is never read, so traces are
    /// byte-reproducible under a fixed seed.
    Modeled,
    /// Measured: a stamp is host seconds since the recorder's epoch; the
    /// caller-supplied modelled value is ignored.
    Wall(WallEpoch),
}

impl ObsClock {
    /// Stamp one instant: the supplied modelled seconds under
    /// [`ObsClock::Modeled`], host seconds since the epoch under
    /// [`ObsClock::Wall`].
    #[must_use]
    pub fn stamp(&self, modeled_seconds: f64) -> f64 {
        match self {
            Self::Modeled => modeled_seconds,
            Self::Wall(epoch) => epoch.elapsed_wall_seconds(),
        }
    }

    /// Whether this clock is the deterministic modelled variant.
    #[must_use]
    pub fn is_modeled(&self) -> bool {
        matches!(self, Self::Modeled)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn modeled_clock_echoes_the_supplied_seconds() {
        let clock = ObsClock::Modeled;
        assert_eq!(clock.stamp(0.0), 0.0);
        assert_eq!(clock.stamp(1.25), 1.25);
        assert!(clock.is_modeled());
    }

    #[test]
    fn wall_clock_is_monotone_and_ignores_the_argument() {
        let clock = ObsClock::Wall(WallEpoch::now());
        let a = clock.stamp(1e9);
        let b = clock.stamp(-1e9);
        assert!(a >= 0.0);
        assert!(b >= a);
        assert!(!clock.is_modeled());
    }

    #[test]
    fn wall_timer_measures_forward() {
        let timer = WallTimer::start();
        let first = timer.elapsed_wall_seconds();
        let second = timer.elapsed_wall_seconds();
        assert!(first >= 0.0);
        assert!(second >= first);
    }
}
