//! Model-drift telemetry: per-stage modelled-vs-actual residuals,
//! aggregated into a calibration report.
//!
//! Every admitted request contributes one [`DriftSample`] per offload
//! stage: the seconds the admission-time model predicted for that stage
//! against the seconds the executed timeline actually charged.  The
//! aggregate [`DriftReport`] then says, per (stage, backend), how far the
//! model is off and — through a caller-supplied mapping — which
//! `perf_model` term is the likely liar (upload drift implicates the link
//! bandwidth, compute drift the kernel throughput model, and so on).
//! The report is the feedback signal the ROADMAP's SLO autoscaler will
//! consume.

/// One predicted-vs-actual pair for one stage of one request.
#[derive(Debug, Clone, PartialEq)]
pub struct DriftSample {
    /// Stable request id (joins against `ServeReport` and the trace).
    pub request: u64,
    /// Stage name (`shared_upload`, `upload`, `compute`, `residual_stream`,
    /// `download`, `total`).
    pub stage: &'static str,
    /// Backend the request executed on.
    pub backend: String,
    /// Seconds the admission-time model predicted for this stage.
    pub predicted_seconds: f64,
    /// Seconds the executed timeline actually charged.
    pub actual_seconds: f64,
}

impl DriftSample {
    /// Signed residual: predicted minus actual (positive = the model
    /// over-estimates).
    #[must_use]
    pub fn residual_seconds(&self) -> f64 {
        self.predicted_seconds - self.actual_seconds
    }
}

/// Aggregate over one (stage, backend) group.
#[derive(Debug, Clone, PartialEq)]
pub struct DriftRow {
    /// Stage name.
    pub stage: String,
    /// Backend name.
    pub backend: String,
    /// Samples aggregated.
    pub samples: usize,
    /// Mean signed residual (predicted − actual), seconds.
    pub mean_residual_seconds: f64,
    /// Mean absolute residual, seconds.
    pub mean_abs_residual_seconds: f64,
    /// Worst absolute residual, seconds.
    pub max_abs_residual_seconds: f64,
    /// Mean |residual| / actual over samples with nonzero actual.
    pub mean_relative_error: f64,
    /// The `perf_model` term this stage's drift implicates.
    pub suspect_term: String,
}

/// The calibration report: every (stage, backend) group, worst first.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DriftReport {
    /// Total samples aggregated.
    pub total_samples: usize,
    /// Aggregate rows, sorted by descending mean absolute residual.
    pub rows: Vec<DriftRow>,
}

impl DriftReport {
    /// Aggregate raw samples; `suspect_term` maps a stage name to the
    /// `perf_model` term its drift implicates (see
    /// `perf_model::calibration::suspect_term`).
    #[must_use]
    pub fn aggregate(samples: &[DriftSample], suspect_term: fn(&str) -> &'static str) -> Self {
        let mut groups: Vec<(&str, &str, Vec<&DriftSample>)> = Vec::new();
        for sample in samples {
            match groups
                .iter_mut()
                .find(|(stage, backend, _)| *stage == sample.stage && *backend == sample.backend)
            {
                Some((_, _, group)) => group.push(sample),
                None => groups.push((sample.stage, sample.backend.as_str(), vec![sample])),
            }
        }
        let mut rows: Vec<DriftRow> = groups
            .into_iter()
            .map(|(stage, backend, group)| {
                let n = group.len() as f64;
                let mean = group.iter().map(|s| s.residual_seconds()).sum::<f64>() / n;
                let mean_abs = group
                    .iter()
                    .map(|s| s.residual_seconds().abs())
                    .sum::<f64>()
                    / n;
                let max_abs = group
                    .iter()
                    .map(|s| s.residual_seconds().abs())
                    .fold(0.0, f64::max);
                let relative: Vec<f64> = group
                    .iter()
                    .filter(|s| s.actual_seconds > 0.0)
                    .map(|s| s.residual_seconds().abs() / s.actual_seconds)
                    .collect();
                let mean_relative = if relative.is_empty() {
                    0.0
                } else {
                    relative.iter().sum::<f64>() / relative.len() as f64
                };
                DriftRow {
                    stage: stage.to_string(),
                    backend: backend.to_string(),
                    samples: group.len(),
                    mean_residual_seconds: mean,
                    mean_abs_residual_seconds: mean_abs,
                    max_abs_residual_seconds: max_abs,
                    mean_relative_error: mean_relative,
                    suspect_term: suspect_term(stage).to_string(),
                }
            })
            .collect();
        rows.sort_by(|a, b| {
            b.mean_abs_residual_seconds
                .total_cmp(&a.mean_abs_residual_seconds)
                .then_with(|| a.stage.cmp(&b.stage))
                .then_with(|| a.backend.cmp(&b.backend))
        });
        Self {
            total_samples: samples.len(),
            rows,
        }
    }

    /// Hand-written JSON rendering (sem-obs is dependency-free); keys are
    /// pinned by sem-lint's obs-artifact check.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{{\"total_samples\":{},\"rows\":[",
            self.total_samples
        ));
        for (i, row) in self.rows.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"stage\":{},\"backend\":{},\"samples\":{},\
                 \"mean_residual_seconds\":{},\"mean_abs_residual_seconds\":{},\
                 \"max_abs_residual_seconds\":{},\"mean_relative_error\":{},\
                 \"suspect_term\":{}}}",
                json_string(&row.stage),
                json_string(&row.backend),
                row.samples,
                json_number(row.mean_residual_seconds),
                json_number(row.mean_abs_residual_seconds),
                json_number(row.max_abs_residual_seconds),
                json_number(row.mean_relative_error),
                json_string(&row.suspect_term),
            ));
        }
        out.push_str("]}");
        out
    }
}

/// Escape a string for JSON.
pub(crate) fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Render a finite double as JSON (non-finite values become `null`; Rust's
/// shortest-round-trip `Display` never emits exponents, so the output is
/// always valid JSON).
pub(crate) fn json_number(value: f64) -> String {
    if value.is_finite() {
        format!("{value}")
    } else {
        "null".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn term(stage: &str) -> &'static str {
        match stage {
            "upload" | "download" => "host_link_gbs",
            "compute" => "seconds_per_application",
            _ => "other",
        }
    }

    fn sample(request: u64, stage: &'static str, predicted: f64, actual: f64) -> DriftSample {
        DriftSample {
            request,
            stage,
            backend: "fpga:test".to_string(),
            predicted_seconds: predicted,
            actual_seconds: actual,
        }
    }

    #[test]
    fn aggregates_per_stage_with_worst_first() {
        let samples = vec![
            sample(0, "upload", 2.0, 1.0),
            sample(1, "upload", 1.0, 2.0),
            sample(0, "compute", 5.0, 1.0),
        ];
        let report = DriftReport::aggregate(&samples, term);
        assert_eq!(report.total_samples, 3);
        assert_eq!(report.rows.len(), 2);
        assert_eq!(report.rows[0].stage, "compute");
        assert_eq!(report.rows[0].suspect_term, "seconds_per_application");
        assert_eq!(report.rows[0].max_abs_residual_seconds, 4.0);
        let upload = &report.rows[1];
        assert_eq!(upload.samples, 2);
        assert_eq!(upload.mean_residual_seconds, 0.0);
        assert_eq!(upload.mean_abs_residual_seconds, 1.0);
        assert!((upload.mean_relative_error - 0.75).abs() < 1e-12);
    }

    #[test]
    fn json_is_parseable_shape() {
        let report = DriftReport::aggregate(&[sample(0, "upload", 1.5, 1.0)], term);
        let json = report.to_json();
        assert!(json.starts_with("{\"total_samples\":1"));
        assert!(json.contains("\"stage\":\"upload\""));
        assert!(json.contains("\"suspect_term\":\"host_link_gbs\""));
        assert!(json.contains("\"mean_residual_seconds\":0.5"));
        assert!(json.ends_with("]}"));
    }

    #[test]
    fn json_number_handles_non_finite() {
        assert_eq!(json_number(f64::INFINITY), "null");
        assert_eq!(json_number(0.25), "0.25");
        assert_eq!(json_string("a\"b"), "\"a\\\"b\"");
    }
}
