//! The global recorder: an `AtomicBool` gate in front of preallocated
//! per-thread event rings.
//!
//! * **Disabled** (the default), every recording call is one relaxed
//!   atomic load and a branch — cheap enough to leave in the CG hot loop.
//! * **Enabled**, a recording call locks the calling thread's own ring
//!   (uncontended in steady state) and writes one fixed-size
//!   [`SpanEvent`] into storage sized up front — no allocation.  When a
//!   ring fills, further events are counted as dropped, never reallocated.
//!
//! Threads register their ring lazily on first use after an
//! [`Recorder::install`]; that one-time registration allocates, which is
//! why callers that must prove allocation-freedom (see
//! `tests/alloc_free.rs`) warm the recorder up with one throwaway
//! recording first — exactly the pattern already used for `CgScratch`.

use crate::clock::ObsClock;
use crate::drift::DriftSample;
use crate::event::{LabelId, SpanEvent};
use crate::metrics::MetricsRegistry;
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Default per-thread ring capacity (events).
pub const DEFAULT_RING_CAPACITY: usize = 1 << 16;

/// Recorder configuration for [`Recorder::install`].
#[derive(Debug, Clone, Copy)]
pub struct ObsConfig {
    /// The time source span stamps come from.
    pub clock: ObsClock,
    /// Capacity of each per-thread event ring.
    pub ring_capacity: usize,
}

impl Default for ObsConfig {
    fn default() -> Self {
        Self {
            clock: ObsClock::Modeled,
            ring_capacity: DEFAULT_RING_CAPACITY,
        }
    }
}

/// One thread's preallocated event storage.
struct Ring {
    events: Vec<SpanEvent>,
    capacity: usize,
    dropped: u64,
}

impl Ring {
    fn with_capacity(capacity: usize) -> Self {
        Self {
            events: Vec::with_capacity(capacity),
            capacity,
            dropped: 0,
        }
    }

    /// Append without ever growing the allocation.
    fn push(&mut self, event: SpanEvent) {
        if self.events.len() < self.capacity {
            self.events.push(event);
        } else {
            self.dropped += 1;
        }
    }
}

/// Interned label table: stable ids for runtime strings (backend names,
/// stages) so hot-path events carry a `u32` instead of a `String`.
#[derive(Default)]
struct LabelTable {
    names: Vec<String>,
    index: BTreeMap<String, u32>,
}

impl LabelTable {
    fn intern(&mut self, name: &str) -> LabelId {
        if let Some(&id) = self.index.get(name) {
            return LabelId(id);
        }
        let id = u32::try_from(self.names.len() + 1).unwrap_or(u32::MAX);
        self.names.push(name.to_string());
        self.index.insert(name.to_string(), id);
        LabelId(id)
    }
}

/// Shared state of one installed recorder.
struct Core {
    clock: ObsClock,
    ring_capacity: usize,
    rings: Mutex<Vec<Arc<Mutex<Ring>>>>,
    labels: Mutex<LabelTable>,
    metrics: MetricsRegistry,
    drift: Mutex<Vec<DriftSample>>,
}

/// The gate every recording call branches on.
static ENABLED: AtomicBool = AtomicBool::new(false);
/// Bumped on every install/uninstall so thread caches re-register.
static GENERATION: AtomicU64 = AtomicU64::new(0);
/// The installed core (behind a mutex so tests can reinstall).
static CORE: Mutex<Option<Arc<Core>>> = Mutex::new(None);

thread_local! {
    /// Per-thread cache: (generation, core, this thread's ring).
    static THREAD: RefCell<Option<ThreadCache>> = const { RefCell::new(None) };
}

struct ThreadCache {
    generation: u64,
    core: Arc<Core>,
    ring: Arc<Mutex<Ring>>,
}

/// Run `f` against the calling thread's cache, registering a ring for this
/// thread first if the recorder was (re)installed since the last call.
fn with_thread<R>(f: impl FnOnce(&ThreadCache) -> R) -> Option<R> {
    let generation = GENERATION.load(Ordering::Acquire);
    THREAD.with(|slot| {
        let mut slot = slot.borrow_mut();
        let stale = slot
            .as_ref()
            .is_none_or(|cache| cache.generation != generation);
        if stale {
            let core = {
                let guard = CORE.lock().ok()?;
                guard.as_ref().map(Arc::clone)?
            };
            let ring = Arc::new(Mutex::new(Ring::with_capacity(core.ring_capacity)));
            if let Ok(mut rings) = core.rings.lock() {
                rings.push(Arc::clone(&ring));
            }
            *slot = Some(ThreadCache {
                generation,
                core,
                ring,
            });
        }
        slot.as_ref().map(f)
    })
}

/// A copy of everything the recorder holds, taken at export time.
#[derive(Debug, Clone)]
pub struct TraceSnapshot {
    /// Whether stamps came from the deterministic modelled clock.
    pub modeled_clock: bool,
    /// Every recorded event, tagged with the id of the ring it came from.
    pub events: Vec<(u32, SpanEvent)>,
    /// Interned label strings; `labels[id - 1]` resolves a [`LabelId`].
    pub labels: Vec<String>,
    /// Events lost to full rings.
    pub dropped_events: u64,
}

impl TraceSnapshot {
    /// Resolve an interned label (empty string for [`LabelId::NONE`] or an
    /// unknown id).
    #[must_use]
    pub fn label(&self, id: LabelId) -> &str {
        if id.0 == 0 {
            return "";
        }
        self.labels
            .get(id.0 as usize - 1)
            .map_or("", String::as_str)
    }
}

/// The zero-sized handle every layer records through; obtain it with
/// [`recorder()`].
#[derive(Debug, Clone, Copy, Default)]
pub struct Recorder;

/// The global recorder handle.
#[must_use]
pub fn recorder() -> Recorder {
    Recorder
}

impl Recorder {
    /// Install (or replace) the global recorder and enable recording.
    pub fn install(config: ObsConfig) {
        let core = Arc::new(Core {
            clock: config.clock,
            ring_capacity: config.ring_capacity.max(1),
            rings: Mutex::new(Vec::new()),
            labels: Mutex::new(LabelTable::default()),
            metrics: MetricsRegistry::new(),
            drift: Mutex::new(Vec::new()),
        });
        if let Ok(mut slot) = CORE.lock() {
            *slot = Some(core);
        }
        GENERATION.fetch_add(1, Ordering::AcqRel);
        ENABLED.store(true, Ordering::Release);
    }

    /// Disable and drop the global recorder (thread caches expire lazily).
    pub fn uninstall() {
        ENABLED.store(false, Ordering::Release);
        GENERATION.fetch_add(1, Ordering::AcqRel);
        if let Ok(mut slot) = CORE.lock() {
            *slot = None;
        }
    }

    /// Whether recording is enabled — the one branch disabled call sites
    /// pay.
    #[must_use]
    pub fn is_enabled(self) -> bool {
        ENABLED.load(Ordering::Relaxed)
    }

    /// Stamp one instant: the supplied modelled seconds under the modelled
    /// clock, host seconds since the install epoch under the wall clock.
    /// Returns the argument unchanged when disabled.
    #[must_use]
    pub fn stamp(self, modeled_seconds: f64) -> f64 {
        if !self.is_enabled() {
            return modeled_seconds;
        }
        with_thread(|cache| cache.core.clock.stamp(modeled_seconds)).unwrap_or(modeled_seconds)
    }

    /// Whether the installed clock is the deterministic modelled one
    /// (true when disabled: disabled recording is trivially deterministic).
    #[must_use]
    pub fn clock_is_modeled(self) -> bool {
        if !self.is_enabled() {
            return true;
        }
        with_thread(|cache| cache.core.clock.is_modeled()).unwrap_or(true)
    }

    /// Record one span into the calling thread's ring.  Allocation-free
    /// after the thread's first recording (which registers the ring).
    pub fn record(self, event: SpanEvent) {
        if !self.is_enabled() {
            return;
        }
        with_thread(|cache| {
            if let Ok(mut ring) = cache.ring.lock() {
                ring.push(event);
            }
        });
    }

    /// Intern a label, returning a stable id (idempotent; allocates only
    /// on a label's first appearance).  [`LabelId::NONE`] when disabled.
    #[must_use]
    pub fn intern(self, name: &str) -> LabelId {
        if !self.is_enabled() {
            return LabelId::NONE;
        }
        with_thread(|cache| {
            cache
                .core
                .labels
                .lock()
                .map_or(LabelId::NONE, |mut table| table.intern(name))
        })
        .unwrap_or(LabelId::NONE)
    }

    /// Add to a counter (no-op when disabled).
    pub fn counter_add(self, name: &'static str, labels: &[(&str, &str)], delta: u64) {
        if !self.is_enabled() {
            return;
        }
        with_thread(|cache| cache.core.metrics.counter_add(name, labels, delta));
    }

    /// Set a gauge (no-op when disabled).
    pub fn gauge_set(self, name: &'static str, labels: &[(&str, &str)], value: f64) {
        if !self.is_enabled() {
            return;
        }
        with_thread(|cache| cache.core.metrics.gauge_set(name, labels, value));
    }

    /// Observe one value into a histogram (no-op when disabled).
    pub fn observe(self, name: &'static str, labels: &[(&str, &str)], value: f64) {
        if !self.is_enabled() {
            return;
        }
        with_thread(|cache| cache.core.metrics.observe(name, labels, value));
    }

    /// Record one model-drift sample (no-op when disabled).  Drift
    /// recording happens once per request at job-assembly time, off the
    /// hot path, so samples may allocate.
    pub fn record_drift(self, sample: DriftSample) {
        if !self.is_enabled() {
            return;
        }
        with_thread(|cache| {
            if let Ok(mut samples) = cache.core.drift.lock() {
                samples.push(sample);
            }
        });
    }

    /// Copy out every recorded event, label, and ring-drop count.
    /// Returns an empty snapshot when disabled.
    #[must_use]
    pub fn trace_snapshot(self) -> TraceSnapshot {
        let empty = TraceSnapshot {
            modeled_clock: true,
            events: Vec::new(),
            labels: Vec::new(),
            dropped_events: 0,
        };
        if !self.is_enabled() {
            return empty;
        }
        with_thread(|cache| {
            let mut events = Vec::new();
            let mut dropped = 0_u64;
            if let Ok(rings) = cache.core.rings.lock() {
                for (ring_id, ring) in rings.iter().enumerate() {
                    if let Ok(ring) = ring.lock() {
                        let id = u32::try_from(ring_id).unwrap_or(u32::MAX);
                        events.extend(ring.events.iter().map(|&e| (id, e)));
                        dropped += ring.dropped;
                    }
                }
            }
            let labels = cache
                .core
                .labels
                .lock()
                .map(|table| table.names.clone())
                .unwrap_or_default();
            TraceSnapshot {
                modeled_clock: cache.core.clock.is_modeled(),
                events,
                labels,
                dropped_events: dropped,
            }
        })
        .unwrap_or(empty)
    }

    /// Copy out every recorded drift sample.
    #[must_use]
    pub fn drift_samples(self) -> Vec<DriftSample> {
        if !self.is_enabled() {
            return Vec::new();
        }
        with_thread(|cache| {
            cache
                .core
                .drift
                .lock()
                .map(|samples| samples.clone())
                .unwrap_or_default()
        })
        .unwrap_or_default()
    }

    /// Render the metrics registry as Prometheus text (the ring-drop
    /// counter is folded in so exports surface lossy traces).
    #[must_use]
    pub fn prometheus_text(self) -> String {
        if !self.is_enabled() {
            return String::new();
        }
        with_thread(|cache| {
            let mut dropped = 0_u64;
            if let Ok(rings) = cache.core.rings.lock() {
                for ring in &*rings {
                    if let Ok(ring) = ring.lock() {
                        dropped += ring.dropped;
                    }
                }
            }
            // A gauge, not a counter: re-snapshotting must stay idempotent.
            cache
                .core
                .metrics
                .gauge_set("sem_obs_dropped_events_count", &[], dropped as f64);
            cache.core.metrics.prometheus_text()
        })
        .unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Scope, SpanKind};

    /// The recorder is global state; serialize tests touching it.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    fn locked() -> std::sync::MutexGuard<'static, ()> {
        TEST_LOCK
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    #[test]
    fn disabled_recorder_drops_everything() {
        let _guard = locked();
        Recorder::uninstall();
        let obs = recorder();
        assert!(!obs.is_enabled());
        obs.record(SpanEvent::new(
            SpanKind::CgIteration,
            Scope::Deterministic,
            0.0,
            1.0,
        ));
        assert_eq!(obs.stamp(2.5), 2.5);
        assert_eq!(obs.intern("cpu"), LabelId::NONE);
        assert!(obs.trace_snapshot().events.is_empty());
        assert!(obs.prometheus_text().is_empty());
    }

    #[test]
    fn enabled_recorder_captures_events_and_labels() {
        let _guard = locked();
        Recorder::install(ObsConfig::default());
        let obs = recorder();
        let label = obs.intern("fpga:test");
        assert_eq!(obs.intern("fpga:test"), label, "interning is idempotent");
        obs.record(
            SpanEvent::new(SpanKind::Upload, Scope::Deterministic, 1.0, 2.0).with_label(label),
        );
        let snapshot = obs.trace_snapshot();
        assert_eq!(snapshot.events.len(), 1);
        assert_eq!(snapshot.label(snapshot.events[0].1.label), "fpga:test");
        assert!(snapshot.modeled_clock);
        assert_eq!(snapshot.dropped_events, 0);
        Recorder::uninstall();
    }

    #[test]
    fn full_ring_counts_drops_instead_of_growing() {
        let _guard = locked();
        Recorder::install(ObsConfig {
            clock: ObsClock::Modeled,
            ring_capacity: 4,
        });
        let obs = recorder();
        for i in 0..10 {
            obs.record(SpanEvent::new(
                SpanKind::CgIteration,
                Scope::Deterministic,
                f64::from(i),
                f64::from(i),
            ));
        }
        let snapshot = obs.trace_snapshot();
        assert_eq!(snapshot.events.len(), 4);
        assert_eq!(snapshot.dropped_events, 6);
        Recorder::uninstall();
    }

    #[test]
    fn reinstall_resets_state() {
        let _guard = locked();
        Recorder::install(ObsConfig::default());
        let obs = recorder();
        obs.record(SpanEvent::new(
            SpanKind::Solve,
            Scope::Deterministic,
            0.0,
            1.0,
        ));
        assert_eq!(obs.trace_snapshot().events.len(), 1);
        Recorder::install(ObsConfig::default());
        assert!(obs.trace_snapshot().events.is_empty());
        Recorder::uninstall();
    }

    #[test]
    fn rings_from_other_threads_are_collected() {
        let _guard = locked();
        Recorder::install(ObsConfig::default());
        let obs = recorder();
        obs.record(SpanEvent::new(
            SpanKind::Solve,
            Scope::Deterministic,
            0.0,
            1.0,
        ));
        std::thread::spawn(move || {
            recorder().record(SpanEvent::new(
                SpanKind::Steal,
                Scope::ScheduleDependent,
                0.5,
                0.5,
            ));
        })
        .join()
        .expect("worker thread");
        let snapshot = recorder().trace_snapshot();
        assert_eq!(snapshot.events.len(), 2);
        Recorder::uninstall();
    }
}
