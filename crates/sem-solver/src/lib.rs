//! Iterative solvers and the Nekbone-style proxy driver.
//!
//! The paper's kernel lives inside a preconditioned Krylov solver — in
//! Nekbone, a conjugate-gradient iteration over element-local storage with
//! direct stiffness summation after every operator application.  This crate
//! provides exactly that:
//!
//! * [`cg`] — (preconditioned) conjugate gradients on element-local fields,
//!   with multiplicity-weighted inner products and Dirichlet masking; the
//!   solver is generic over the [`cg::LocalOperator`] trait, the execution
//!   seam through which accelerator backends (see `sem-accel`) plug in;
//! * [`jacobi`] — the diagonal (Jacobi) preconditioner built from the exact
//!   operator diagonal;
//! * [`poisson`] — a complete "manufactured solution" Poisson problem:
//!   assemble the right-hand side for a known analytic solution, solve, and
//!   report discretisation errors — the end-to-end check that every piece of
//!   the stack (basis, mesh, geometric factors, kernel, gather–scatter,
//!   masking, CG) is correct;
//! * [`proxy`] — the Nekbone-like benchmark driver used by the examples and
//!   benches (fixed iteration count, FLOP accounting).

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod cg;
pub mod fdm;
pub mod jacobi;
pub mod poisson;
pub mod precond;
pub mod proxy;

pub use cg::{
    CgApplyResult, CgOptions, CgOutcome, CgScratch, CgSolver, IdentityPreconditioner,
    LocalOperator, Preconditioner, SolveFault,
};
pub use fdm::{coarse_space_dofs, FdmPreconditioner};
pub use jacobi::JacobiPreconditioner;
pub use poisson::{PoissonProblem, PoissonSolution};
pub use precond::{AnyPreconditioner, PrecondSpec};
pub use proxy::{ProxyConfig, ProxyResult};
