//! End-to-end Poisson problems with manufactured solutions.
//!
//! This is the correctness anchor of the whole stack: pick an analytic
//! solution `u*` of the homogeneous Dirichlet Poisson problem, build the
//! right-hand side `f = -Δu*`, discretise, solve with CG, and measure how far
//! the discrete solution is from `u*`.  Spectral convergence of that error as
//! the degree grows is strong evidence that basis, geometry, kernel,
//! gather–scatter and solver are all consistent.

use crate::cg::{CgOptions, CgOutcome, CgSolver, IdentityPreconditioner, LocalOperator};
use crate::fdm::FdmPreconditioner;
use crate::jacobi::JacobiPreconditioner;
use crate::precond::{AnyPreconditioner, PrecondSpec};
use sem_kernel::{AxImplementation, PoissonOperator};
use sem_mesh::{BoxMesh, DirichletMask, ElementField, GatherScatter};

/// A discretised homogeneous-Dirichlet Poisson problem on a box mesh.
pub struct PoissonProblem {
    mesh: BoxMesh,
    operator: PoissonOperator,
    gather_scatter: GatherScatter,
    mask: DirichletMask,
}

/// Outcome of a manufactured-solution solve.
#[derive(Debug, Clone)]
pub struct PoissonSolution {
    /// The discrete solution.
    pub solution: ElementField,
    /// Maximum nodal error against the manufactured solution.
    pub max_error: f64,
    /// Weighted (mass-matrix) L2 error against the manufactured solution.
    pub l2_error: f64,
    /// The raw CG statistics.
    pub cg: CgOutcome,
}

impl PoissonProblem {
    /// Discretise the problem on `mesh` with the given kernel implementation.
    #[must_use]
    pub fn new(mesh: BoxMesh, implementation: AxImplementation) -> Self {
        let operator = PoissonOperator::new(&mesh, implementation);
        let gather_scatter = GatherScatter::from_mesh(&mesh);
        let mask = DirichletMask::from_mesh(&mesh);
        Self {
            mesh,
            operator,
            gather_scatter,
            mask,
        }
    }

    /// The underlying mesh.
    #[must_use]
    pub fn mesh(&self) -> &BoxMesh {
        &self.mesh
    }

    /// The matrix-free operator.
    #[must_use]
    pub fn operator(&self) -> &PoissonOperator {
        &self.operator
    }

    /// The gather–scatter operator.
    #[must_use]
    pub fn gather_scatter(&self) -> &GatherScatter {
        &self.gather_scatter
    }

    /// The Dirichlet mask.
    #[must_use]
    pub fn mask(&self) -> &DirichletMask {
        &self.mask
    }

    /// Build the discrete right-hand side for a forcing function `f(x,y,z)`:
    /// `b = mask(QQᵀ (B f))` with `B` the diagonal mass matrix.
    #[must_use]
    pub fn right_hand_side<F: Fn(f64, f64, f64) -> f64>(&self, forcing: F) -> ElementField {
        let mut b = self.mesh.evaluate(forcing);
        b.pointwise_mul(self.operator.geometry().mass());
        self.gather_scatter.direct_stiffness_sum(&mut b);
        self.mask.apply(&mut b);
        b
    }

    /// The discrete right-hand side of the standard manufactured problem
    /// (`u*(x, y, z) = Π_i sin(π x_i / L_i)`), ready to hand to a batched
    /// solve path (`sem-accel`'s `solve_many`).
    #[must_use]
    pub fn manufactured_rhs(&self) -> ElementField {
        let lengths = self.mesh.lengths();
        let pi = std::f64::consts::PI;
        let factor: f64 = lengths.iter().map(|&l| (pi / l) * (pi / l)).sum();
        self.right_hand_side(|x, y, z| {
            factor
                * (pi * x / lengths[0]).sin()
                * (pi * y / lengths[1]).sin()
                * (pi * z / lengths[2]).sin()
        })
    }

    /// A right-hand side with broad spectral content — the shape of an
    /// arbitrary serving request (several incommensurate sine modes plus a
    /// non-separable bump).  The *standard manufactured* right-hand side is
    /// a single Laplacian eigenfunction that unpreconditioned CG resolves in
    /// misleadingly few iterations, so preconditioner comparisons (the
    /// `precond` bench and the iteration-regression tests) run on this one.
    #[must_use]
    pub fn generic_rhs(&self) -> ElementField {
        let pi = std::f64::consts::PI;
        self.right_hand_side(move |x, y, z| {
            3.0 * pi * pi * (pi * x).sin() * (pi * y).sin() * (pi * z).sin()
                + 14.0 * pi * pi * (3.0 * pi * x).sin() * (2.0 * pi * y).sin() * (pi * z).sin()
                + 0.5 * (5.0 * pi * x).sin() * (4.0 * pi * y).sin() * (3.0 * pi * z).sin()
                + x * (1.0 - x) * y * (1.0 - y) * z * (1.0 - z) * (7.3 * x * y).cos()
        })
    }

    /// The masked nodal values of the standard manufactured solution, for
    /// error measurement via [`PoissonProblem::error_against`].
    #[must_use]
    pub fn manufactured_exact(&self) -> ElementField {
        let lengths = self.mesh.lengths();
        let pi = std::f64::consts::PI;
        let mut exact = self.mesh.evaluate(|x, y, z| {
            (pi * x / lengths[0]).sin() * (pi * y / lengths[1]).sin() * (pi * z / lengths[2]).sin()
        });
        self.mask.apply(&mut exact);
        exact
    }

    /// Maximum nodal error and weighted (mass-matrix) L2 error of `solution`
    /// against a masked exact field, computed in one fused sweep with no
    /// intermediate fields.
    ///
    /// # Panics
    /// Panics if the fields do not match the problem's dimensions.
    #[must_use]
    pub fn error_against(&self, solution: &ElementField, exact: &ElementField) -> (f64, f64) {
        assert_eq!(solution.len(), exact.len(), "field size mismatch");
        let mass = self.operator.geometry().mass();
        let multiplicity = self.gather_scatter.multiplicity();
        assert_eq!(solution.len(), mass.len(), "mass size mismatch");
        let mut max_error = 0.0_f64;
        let mut l2_sq = 0.0_f64;
        for (((&u, &e), &b), &m) in solution
            .as_slice()
            .iter()
            .zip(exact.as_slice())
            .zip(mass.as_slice())
            .zip(multiplicity)
        {
            let diff = u - e;
            max_error = max_error.max(diff.abs());
            // Weight by B / multiplicity so each unique grid point is
            // integrated once.
            l2_sq += diff * diff * b / m;
        }
        (max_error, l2_sq.sqrt())
    }

    /// Solve with the standard manufactured solution
    /// `u*(x, y, z) = Π_i sin(π x_i / L_i)` (which vanishes on the boundary),
    /// returning error metrics.
    #[must_use]
    pub fn solve_manufactured(&self, options: CgOptions, precond: PrecondSpec) -> PoissonSolution {
        self.solve_manufactured_through(&self.operator, options, precond)
    }

    /// Solve the manufactured problem, routing every operator application of
    /// the CG iteration through `operator` — any [`LocalOperator`], e.g. an
    /// execution backend from `sem-accel` — while right-hand-side assembly
    /// and preconditioning stay on the host discretisation.
    ///
    /// Assembles the same bits as [`PoissonProblem::manufactured_rhs`], so a
    /// batched driver replicating that right-hand side reproduces this solve
    /// exactly.
    ///
    /// # Panics
    /// Panics if `operator` does not match the problem's degree and element
    /// count.
    #[must_use]
    pub fn solve_manufactured_through<Op: LocalOperator + ?Sized>(
        &self,
        operator: &Op,
        options: CgOptions,
        precond: PrecondSpec,
    ) -> PoissonSolution {
        let rhs = self.manufactured_rhs();
        let cg = self.solve_rhs_through(operator, options, precond, &rhs);
        let exact_field = self.manufactured_exact();
        let (max_error, l2_error) = self.error_against(&cg.solution, &exact_field);
        PoissonSolution {
            solution: cg.solution.clone(),
            max_error,
            l2_error,
            cg,
        }
    }

    /// Solve an already-assembled (continuous, masked) right-hand side
    /// through `operator`, returning the raw CG outcome — no exact solution
    /// is associated, so there are no error metrics.  This is the
    /// single-RHS building block of the batched `solve_many` path in
    /// `sem-accel`.
    ///
    /// # Panics
    /// Panics if `operator` or `rhs` do not match the problem's degree and
    /// element count.
    #[must_use]
    pub fn solve_rhs_through<Op: LocalOperator + ?Sized>(
        &self,
        operator: &Op,
        options: CgOptions,
        precond: PrecondSpec,
        rhs: &ElementField,
    ) -> CgOutcome {
        assert_eq!(operator.degree(), self.mesh.degree(), "degree mismatch");
        assert_eq!(
            operator.num_elements(),
            self.mesh.num_elements(),
            "element count mismatch"
        );
        let solver = CgSolver::new(operator, &self.gather_scatter, &self.mask, options);
        let pc = self.preconditioner(precond);
        solver.solve(rhs, &pc)
    }

    /// Build the preconditioner a spec names, against the host
    /// discretisation.  Building is setup cost (the FDM eigendecompositions
    /// and coarse factorisation in particular), so batched drivers construct
    /// it once per session, not per solve.
    #[must_use]
    pub fn preconditioner(&self, spec: PrecondSpec) -> AnyPreconditioner {
        match spec {
            PrecondSpec::Identity => AnyPreconditioner::Identity(IdentityPreconditioner),
            PrecondSpec::Jacobi => AnyPreconditioner::Jacobi(self.jacobi_preconditioner()),
            PrecondSpec::Fdm => AnyPreconditioner::Fdm(Box::new(self.fdm_preconditioner())),
        }
    }

    /// The Jacobi preconditioner of this discretisation (the diagonal comes
    /// from the host operator; building it is setup cost, so batched drivers
    /// construct it once per batch).
    #[must_use]
    pub fn jacobi_preconditioner(&self) -> JacobiPreconditioner {
        JacobiPreconditioner::new(&self.operator, &self.gather_scatter, &self.mask)
    }

    /// The two-level fast-diagonalization preconditioner of this
    /// discretisation (eigendecompositions and the Galerkin coarse solve are
    /// computed here, once).
    #[must_use]
    pub fn fdm_preconditioner(&self) -> FdmPreconditioner {
        FdmPreconditioner::new(&self.mesh, &self.operator, &self.gather_scatter, &self.mask)
    }

    /// Solve for an arbitrary forcing with a known exact solution and report
    /// the errors.
    #[must_use]
    pub fn solve_with_exact<F, G>(
        &self,
        options: CgOptions,
        precond: PrecondSpec,
        forcing: F,
        exact: G,
    ) -> PoissonSolution
    where
        F: Fn(f64, f64, f64) -> f64,
        G: Fn(f64, f64, f64) -> f64,
    {
        self.solve_with_exact_through(&self.operator, options, precond, forcing, exact)
    }

    /// Like [`PoissonProblem::solve_with_exact`], but iterating through an
    /// arbitrary [`LocalOperator`] (an execution backend) instead of the
    /// problem's own host operator.
    ///
    /// # Panics
    /// Panics if `operator` does not match the problem's degree and element
    /// count.
    #[must_use]
    pub fn solve_with_exact_through<Op, F, G>(
        &self,
        operator: &Op,
        options: CgOptions,
        precond: PrecondSpec,
        forcing: F,
        exact: G,
    ) -> PoissonSolution
    where
        Op: LocalOperator + ?Sized,
        F: Fn(f64, f64, f64) -> f64,
        G: Fn(f64, f64, f64) -> f64,
    {
        assert_eq!(operator.degree(), self.mesh.degree(), "degree mismatch");
        assert_eq!(
            operator.num_elements(),
            self.mesh.num_elements(),
            "element count mismatch"
        );
        let rhs = self.right_hand_side(forcing);
        let solver = CgSolver::new(operator, &self.gather_scatter, &self.mask, options);
        // The preconditioner comes from the host discretisation; it does not
        // change what is being solved.
        let pc = self.preconditioner(precond);
        let cg = solver.solve(&rhs, &pc);

        let mut exact_field = self.mesh.evaluate(exact);
        self.mask.apply(&mut exact_field);
        // One fused sweep instead of diff/weighted intermediate clones.
        let (max_error, l2_error) = self.error_against(&cg.solution, &exact_field);

        PoissonSolution {
            solution: cg.solution.clone(),
            max_error,
            l2_error,
            cg,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn solve(degree: usize, elems: usize, precond: PrecondSpec) -> PoissonSolution {
        let mesh = BoxMesh::unit_cube(degree, elems);
        let problem = PoissonProblem::new(mesh, AxImplementation::Optimized);
        problem.solve_manufactured(
            CgOptions {
                max_iterations: 3000,
                tolerance: 1e-12,
                record_history: false,
            },
            precond,
        )
    }

    #[test]
    fn converges_to_the_manufactured_solution() {
        let sol = solve(7, 2, PrecondSpec::Jacobi);
        assert!(sol.cg.converged);
        assert!(sol.max_error < 1e-6, "max error {}", sol.max_error);
        assert!(sol.l2_error < 1e-6, "l2 error {}", sol.l2_error);
    }

    #[test]
    fn error_decays_spectrally_with_degree() {
        let mut previous = f64::INFINITY;
        for degree in [2, 4, 6, 8] {
            let sol = solve(degree, 2, PrecondSpec::Jacobi);
            assert!(
                sol.max_error < previous,
                "degree {degree}: error {} did not decrease (prev {previous})",
                sol.max_error
            );
            previous = sol.max_error;
        }
        assert!(previous < 1e-7, "degree 8 should be near machine accurate");
    }

    #[test]
    fn rhs_is_masked_and_continuous() {
        let mesh = BoxMesh::unit_cube(4, 2);
        let problem = PoissonProblem::new(mesh, AxImplementation::Optimized);
        let rhs = problem.right_hand_side(|x, y, z| x + y + z);
        assert!(problem.gather_scatter().is_continuous(&rhs, 1e-12));
        let mut masked = rhs.clone();
        problem.mask().apply(&mut masked);
        let mut diff = masked;
        diff.axpy(-1.0, &rhs);
        assert!(diff.max_abs() == 0.0);
    }
}
