//! The fast-diagonalization (FDM) tensor-product preconditioner.
//!
//! Jacobi scaling fixes the *magnitude* spread of the operator diagonal but
//! none of the intra-element stiffness that makes spectral discretisations
//! ill-conditioned; the dominant cost of a backend-routed solve is
//! `iterations × Ax`, so the highest-leverage optimisation is algorithmic.
//! This preconditioner attacks the iteration count the way Nek5000 does,
//! with a two-level overlapping Schwarz method:
//!
//! **Fine level — overlapping-patch fast diagonalisation.**  Each element's
//! subdomain is the element extended by one GLL layer into every neighbour.
//! On an undeformed brick the patch operator is the Kronecker sum of 1-D
//! stiffness/mass pairs on `N + 3` nodes ([`sem_basis::fdm1d`]), so its
//! inverse is three small tensor contractions each way:
//!
//! ```text
//! Â⁻¹ r = (S ⊗ S ⊗ S) diag(λˣᵢ + λʸⱼ + λᶻₖ)⁻¹ (Sᵀ ⊗ Sᵀ ⊗ Sᵀ) r
//! ```
//!
//! The patch solves are summed with the overlap counting weight `W̃`
//! (inverse patch-coverage count per grid point) on *both* sides —
//! `Σₑ R̃ₑᵀ W̃ Âₑ⁻¹ W̃ R̃ₑ` — which keeps the preconditioner symmetric
//! positive definite, so plain CG applies.  The one-layer overlap is what
//! makes the sum strong on element faces, where zero-overlap block methods
//! stall; every patch operator is definite (the truncation just outside the
//! ghost layer is a homogeneous Dirichlet condition), so there is no Neumann
//! constant mode to special-case.
//!
//! **Coarse level — degree-`c` Galerkin correction.**  Patch solves cannot
//! move error that is smooth *across* many elements, so a low-degree SEM
//! space on the same element grid is added additively:
//! `M⁻¹ = M⁻¹₍ₛ₎ + P A_c⁻¹ Pᵀ` with `P` the tensor GLL interpolation
//! prolongation and `A_c = Pᵀ A P` the Galerkin coarse operator (assembled
//! once against the real SEM operator, so it is exact on deformed meshes
//! too) factored by dense Cholesky.  This is the same division of labour as
//! Nek5000's hybrid Schwarz: local tensor solves for the intra-element
//! spectrum, a coarse solve for the mesh-level modes.
//!
//! On deformed meshes the patch factors come from the undeformed element
//! extents, so the fine level is approximate there — exactly the trade
//! Nek5000 makes.  Setup (eigendecompositions, inverse eigenvalue tables,
//! coarse assembly and factorisation) allocates once;
//! [`Preconditioner::apply_into`] is allocation-free after the per-thread
//! scratch warms up, so the CG hot loop stays heap-silent.

use crate::cg::Preconditioner;
use sem_basis::{fdm_overlap, DenseMatrix, Fdm1d, Fdm1dBoundary};
use sem_kernel::fdm::{fdm_element_apply, rcontract_x, rcontract_y, rcontract_z, FdmScratch};
use sem_kernel::specialized::{DegreeDispatch, COARSE_POINTS};
use sem_kernel::PoissonOperator;
use sem_mesh::{BoxMesh, DirichletMask, ElementField, GatherScatter};
use std::cell::RefCell;

/// Relative threshold below which an eigenvalue sum is treated as a removed
/// mode (belt and braces: with overlapping patches every kept mode is
/// strictly positive already).
const ZERO_MODE_TOLERANCE: f64 = 1e-12;

/// Sentinel for patch nodes outside the domain.
const OUTSIDE: u32 = u32::MAX;

/// Dimension of the FDM coarse space for a fine degree on an
/// `[ex, ey, ez]` element grid — the interior points of the degree-`c`
/// coarse grid, `Π_d (c·e_d − 1)` (zero when no coarse level exists).
/// Accelerator backends price the on-device coarse solve with this without
/// building the preconditioner.
#[must_use]
pub fn coarse_space_dofs(degree: usize, element_counts: [usize; 3]) -> usize {
    let c = sem_basis::fdm_coarse_degree(degree);
    if c == 0 {
        return 0;
    }
    element_counts.iter().map(|&e| c * e - 1).product()
}

/// Per-direction FDM factors of one boundary class.
#[derive(Debug, Clone)]
struct DirectionClass {
    boundary: Fdm1dBoundary,
    factors: Fdm1d,
}

/// One (x-class, y-class, z-class) combination's inverse eigenvalue table.
#[derive(Debug, Clone)]
struct ComboTable {
    class: [usize; 3],
    inv: Vec<f64>,
}

/// The coarse level: a degree-`c` SEM space on the same element grid,
/// prolongated by tensor-product GLL interpolation.  `c = 1` is the classic
/// element-vertex (Q1) space; higher degrees add edge/face/centre modes.
#[derive(Debug, Clone)]
struct CoarseCorrection {
    /// Coarse polynomial degree `c`.
    degree: usize,
    /// Coarse degrees of freedom (interior coarse grid points).
    num_dofs: usize,
    /// Per element, the coarse dof of each of its `(c+1)³` coarse nodes in
    /// element-major order (`-1`: boundary node, not a dof).
    element_dofs: Vec<Vec<i32>>,
    /// 1-D prolongation `J` (fine GLL × coarse GLL nodes), row-major, and
    /// its transpose.
    j: DenseMatrix,
    jt: DenseMatrix,
    /// Cholesky factor of the Galerkin coarse operator `Pᵀ A P`.
    factor: DenseMatrix,
    /// Degree-specialized transfer kernels, resolved once at setup when the
    /// coarse space is the degree-2 one the specialized family is generated
    /// for and the fine degree is covered.
    dispatch: Option<DegreeDispatch>,
}

impl CoarseCorrection {
    /// Coarse nodes per direction, `c + 1`.
    fn coarse_nx(&self) -> usize {
        self.degree + 1
    }

    /// Accumulate one element's share of the restriction `Pᵀ w` (where `w`
    /// is already counting-weighted) into the coarse right-hand side, using
    /// `t1`/`t2` as contraction buffers (each at least `nx³` long).
    fn restrict_element(
        &self,
        e: usize,
        weighted: &[f64],
        nx: usize,
        rhs: &mut [f64],
        t1: &mut [f64],
        t2: &mut [f64],
    ) {
        self.restrict_local(weighted, nx, t1, t2);
        for (local, &dof) in self.element_dofs[e].iter().enumerate() {
            if dof >= 0 {
                rhs[dof as usize] += t1[local];
            }
        }
    }

    /// `t1[..cnx³] = Jᵀ⊗Jᵀ⊗Jᵀ fine` (`t2` is the ping-pong buffer).
    fn restrict_local(&self, fine: &[f64], nx: usize, t1: &mut [f64], t2: &mut [f64]) {
        let jt = self.jt.as_slice();
        if let Some(dispatch) = &self.dispatch {
            dispatch.coarse_restrict(jt, fine, t1, t2);
            return;
        }
        let cnx = self.coarse_nx();
        rcontract_x(jt, cnx, nx, fine, t1, nx, nx);
        rcontract_y(jt, cnx, nx, t1, t2, cnx, nx);
        rcontract_z(jt, cnx, nx, t2, t1, cnx, cnx);
    }

    /// `out[..nx³] = J⊗J⊗J t1[..cnx³]` (`t1` is clobbered, `t2` is the
    /// ping-pong buffer; the result lands in `t2`).
    fn prolong_local<'b>(&self, t1: &'b mut [f64], t2: &'b mut [f64], nx: usize) -> &'b [f64] {
        let j = self.j.as_slice();
        if let Some(dispatch) = &self.dispatch {
            dispatch.coarse_prolong(j, t1, t2);
            return t2;
        }
        let cnx = self.coarse_nx();
        rcontract_x(j, nx, cnx, &t1[..cnx * cnx * cnx], t2, cnx, cnx);
        rcontract_y(j, nx, cnx, t2, t1, nx, cnx);
        rcontract_z(j, nx, cnx, t1, t2, nx, nx);
        t2
    }

    /// Add the prolongation `P c` of a coarse vector into one element, using
    /// `t1`/`t2` as buffers (each at least `nx³` long).
    fn prolong_element_add(
        &self,
        e: usize,
        c: &[f64],
        nx: usize,
        out: &mut [f64],
        t1: &mut [f64],
        t2: &mut [f64],
    ) {
        for (local, &dof) in self.element_dofs[e].iter().enumerate() {
            t1[local] = if dof >= 0 { c[dof as usize] } else { 0.0 };
        }
        let prolonged = self.prolong_local(t1, t2, nx);
        for (o, &v) in out.iter_mut().zip(prolonged.iter()) {
            *o += v;
        }
    }
}

/// Reusable per-thread buffers of one FDM application.
#[derive(Debug, Default)]
struct ApplyScratch {
    kernel: FdmScratch,
    /// Patch-coverage-weighted residual, full field.
    weighted_residual: Vec<f64>,
    /// Counting-weighted residual of one element (coarse restriction input).
    staged: Vec<f64>,
    /// Patch gather/solve buffers, `(N+3)³` each.
    patch_in: Vec<f64>,
    patch_out: Vec<f64>,
    /// Local index of every patch node (`OUTSIDE` beyond the domain).
    patch_src: Vec<u32>,
    /// Global accumulation of the weighted patch corrections.
    z_global: Vec<f64>,
    /// Per-direction extended-axis maps (`-1`: outside).
    axis: [Vec<i64>; 3],
    /// Coarse right-hand side / solution.
    coarse_rhs: Vec<f64>,
    /// Coarse transfer contraction buffers.
    ct1: Vec<f64>,
    ct2: Vec<f64>,
}

thread_local! {
    static APPLY_SCRATCH: RefCell<ApplyScratch> = RefCell::new(ApplyScratch::default());
}

/// The fast-diagonalization preconditioner of a box-mesh discretisation.
#[derive(Debug, Clone)]
pub struct FdmPreconditioner {
    degree: usize,
    num_elements: usize,
    element_counts: [usize; 3],
    /// Ghost-layer depth captured at setup (the `FDM_OVERLAP` experiment
    /// knob is read exactly once, here — every table and the apply-time
    /// patch extent are sized from this copy, so a later environment change
    /// cannot desynchronise them).
    overlap: usize,
    /// Distinct boundary classes per direction (at most three each:
    /// low-boundary, interior, high-boundary — or one both-ends class).
    classes: [Vec<DirectionClass>; 3],
    /// Per-element combo index into `combos`.
    combo_of_element: Vec<u32>,
    /// Inverse eigenvalue-sum tables, one per distinct class combination.
    combos: Vec<ComboTable>,
    /// The counting weight (inverse node multiplicity) feeding the coarse
    /// restriction.
    weight: ElementField,
    /// The overlap counting weight `W̃` (inverse patch-coverage count),
    /// per local node and per global node.
    patch_weight_local: ElementField,
    patch_weight_global: Vec<f64>,
    /// The coarse solve (`None` for degree-1 discretisations, whose fine
    /// patches already reach the vertex scale).
    coarse: Option<CoarseCorrection>,
    gather_scatter: GatherScatter,
    mask: DirichletMask,
    /// Modelled seconds one application costs when the backend claims the
    /// pass on-device (`None`: measure wall-clock instead).
    modeled_seconds: Option<f64>,
    /// Degree-specialized patch kernel, resolved once at setup from the
    /// patch extent `N + 1 + 2·overlap` (covers overlapping patches too as
    /// long as the extent stays within the generated range).
    dispatch: Option<DegreeDispatch>,
}

impl FdmPreconditioner {
    /// Build the preconditioner: solve the per-direction generalized
    /// eigenproblems (once per distinct boundary class), precompute the
    /// inverse eigenvalue-sum table of every class combination and the
    /// overlap weights, and assemble + factor the Galerkin coarse operator
    /// against `operator`.  All setup cost lives here; applications allocate
    /// nothing.
    #[must_use]
    pub fn new(
        mesh: &BoxMesh,
        operator: &PoissonOperator,
        gather_scatter: &GatherScatter,
        mask: &DirichletMask,
    ) -> Self {
        let degree = mesh.degree();
        let overlap = fdm_overlap(degree);
        let pnx = degree + 1 + 2 * overlap;
        let counts = mesh.element_counts();
        let lengths = mesh.lengths();

        // Per direction: the distinct boundary classes actually present.
        let mut classes: [Vec<DirectionClass>; 3] = [Vec::new(), Vec::new(), Vec::new()];
        let mut class_of_position: [Vec<usize>; 3] = [Vec::new(), Vec::new(), Vec::new()];
        for d in 0..3 {
            let h = lengths[d] / counts[d] as f64;
            for p in 0..counts[d] {
                let boundary = Fdm1dBoundary::of_element(p, counts[d]);
                let idx = classes[d]
                    .iter()
                    .position(|c| c.boundary == boundary)
                    .unwrap_or_else(|| {
                        classes[d].push(DirectionClass {
                            boundary,
                            factors: Fdm1d::with_overlap(degree, h, boundary, overlap),
                        });
                        classes[d].len() - 1
                    });
                class_of_position[d].push(idx);
            }
        }

        // Enumerate the class combinations elements actually use and build
        // one inverse eigenvalue-sum table per combination.
        let mut combos: Vec<ComboTable> = Vec::new();
        let mut combo_of_element = Vec::with_capacity(mesh.num_elements());
        for ek in 0..counts[2] {
            for ej in 0..counts[1] {
                for ei in 0..counts[0] {
                    let class = [
                        class_of_position[0][ei],
                        class_of_position[1][ej],
                        class_of_position[2][ek],
                    ];
                    let idx = combos
                        .iter()
                        .position(|c| c.class == class)
                        .unwrap_or_else(|| {
                            combos.push(ComboTable {
                                class,
                                inv: Self::inverse_table(
                                    pnx,
                                    &classes[0][class[0]].factors.lambda,
                                    &classes[1][class[1]].factors.lambda,
                                    &classes[2][class[2]].factors.lambda,
                                ),
                            });
                            combos.len() - 1
                        });
                    combo_of_element.push(u32::try_from(idx).expect("combo count fits u32"));
                }
            }
        }

        // Overlap coverage: how many patches contain each global grid point.
        // Per direction a node at depth `i` is covered by its own element,
        // plus the neighbours' patches when within their ghost reach; 3-D
        // coverage is the product.
        let nx = degree + 1;
        let mut coverage = vec![0_u32; gather_scatter.num_global_dofs()];
        let l2g = gather_scatter.local_to_global();
        let o = overlap;
        let covers = |pos: usize, count: usize, i: usize| -> u32 {
            let mut c = 1;
            if pos > 0 && i <= o {
                c += 1;
            }
            if pos + 1 < count && i + 1 + o >= nx {
                c += 1;
            }
            c
        };
        let npts = nx * nx * nx;
        for ek in 0..counts[2] {
            for ej in 0..counts[1] {
                for ei in 0..counts[0] {
                    let e = ei + counts[0] * (ej + counts[1] * ek);
                    let mut local = e * npts;
                    for k in 0..nx {
                        let ck = covers(ek, counts[2], k);
                        for j in 0..nx {
                            let cj = covers(ej, counts[1], j);
                            for i in 0..nx {
                                let ci = covers(ei, counts[0], i);
                                // Every copy of a global node writes the same
                                // product, so plain stores suffice.
                                coverage[l2g[local]] = ci * cj * ck;
                                local += 1;
                            }
                        }
                    }
                }
            }
        }
        let patch_weight_global: Vec<f64> = coverage
            .iter()
            .map(|&c| if c == 0 { 0.0 } else { 1.0 / f64::from(c) })
            .collect();
        let mut patch_weight_local = ElementField::zeros(degree, mesh.num_elements());
        for (w, &g) in patch_weight_local.as_mut_slice().iter_mut().zip(l2g) {
            *w = patch_weight_global[g];
        }

        let coarse = Self::build_coarse(mesh, operator);

        Self {
            degree,
            num_elements: mesh.num_elements(),
            element_counts: counts,
            overlap,
            classes,
            combo_of_element,
            combos,
            weight: gather_scatter.inverse_multiplicity(),
            patch_weight_local,
            patch_weight_global,
            coarse,
            gather_scatter: gather_scatter.clone(),
            mask: mask.clone(),
            modeled_seconds: None,
            dispatch: DegreeDispatch::for_points(pnx),
        }
    }

    /// Pin the generic kernels for the patch solve and coarse transfer even
    /// when the degree is covered — the escape hatch parity tests and
    /// benchmarks use to compare generic against specialized.
    #[must_use]
    pub fn with_generic_kernels(mut self) -> Self {
        self.dispatch = None;
        if let Some(coarse) = &mut self.coarse {
            coarse.dispatch = None;
        }
        self
    }

    /// The same preconditioner with the given modelled per-application cost
    /// attached (used when an accelerator backend claims the FDM pass
    /// on-device and prices it with its own cycle model).
    #[must_use]
    pub fn with_modeled_seconds(mut self, seconds: f64) -> Self {
        self.modeled_seconds = Some(seconds);
        self
    }

    /// Modelled seconds of one application, when a backend attached them.
    #[must_use]
    pub fn modeled_seconds(&self) -> Option<f64> {
        self.modeled_seconds
    }

    /// Polynomial degree.
    #[must_use]
    pub fn degree(&self) -> usize {
        self.degree
    }

    /// Number of elements.
    #[must_use]
    pub fn num_elements(&self) -> usize {
        self.num_elements
    }

    /// Number of distinct per-direction eigendecompositions solved at setup.
    #[must_use]
    pub fn num_direction_classes(&self) -> usize {
        self.classes.iter().map(Vec::len).sum()
    }

    /// Number of distinct inverse eigenvalue-sum tables.
    #[must_use]
    pub fn num_combo_tables(&self) -> usize {
        self.combos.len()
    }

    /// Dimension of the coarse space (zero when no coarse level exists).
    #[must_use]
    pub fn coarse_dofs(&self) -> usize {
        self.coarse.as_ref().map_or(0, |c| c.num_dofs)
    }

    /// `1 / (λˣᵢ + λʸⱼ + λᶻₖ)` with removed modes (infinite eigenvalues)
    /// mapped to zero.
    fn inverse_table(pnx: usize, lx: &[f64], ly: &[f64], lz: &[f64]) -> Vec<f64> {
        let max_sum = lx
            .iter()
            .chain(ly)
            .chain(lz)
            .filter(|l| l.is_finite())
            .fold(0.0_f64, |m, &l| m.max(l))
            * 3.0;
        let mut inv = Vec::with_capacity(pnx * pnx * pnx);
        for &z in lz {
            for &y in ly {
                for &x in lx {
                    let sum = x + y + z;
                    // `1/∞ = 0` silently drops removed nodes; the tolerance
                    // is a guard against rounding on near-singular sums.
                    inv.push(if sum > ZERO_MODE_TOLERANCE * max_sum {
                        1.0 / sum
                    } else {
                        0.0
                    });
                }
            }
        }
        inv
    }

    /// Assemble and factor the Galerkin coarse operator `A_c = Pᵀ A P` on
    /// the degree-`c` coarse space: one SEM operator application per coarse
    /// basis function, restricted back through the counting weight.
    /// Setup-only cost, linear in the coarse dimension times one `Ax`.
    fn build_coarse(mesh: &BoxMesh, operator: &PoissonOperator) -> Option<CoarseCorrection> {
        let coarse_degree = sem_basis::fdm_coarse_degree(mesh.degree());
        if coarse_degree == 0 {
            return None;
        }
        // The coarse grid shares the element grid; only its connectivity and
        // boundary flags matter, so the undeformed mesh is enough.
        let coarse_mesh = BoxMesh::new(
            coarse_degree,
            mesh.element_counts(),
            mesh.lengths(),
            sem_mesh::MeshDeformation::None,
        );
        let cnx = coarse_degree + 1;
        let mut dof_of_global = vec![-1_i32; coarse_mesh.num_global_dofs()];
        let mut num_dofs = 0_usize;
        let mut element_dofs = Vec::with_capacity(mesh.num_elements());
        for e in 0..coarse_mesh.num_elements() {
            let mut dofs = Vec::with_capacity(cnx * cnx * cnx);
            for k in 0..cnx {
                for j in 0..cnx {
                    for i in 0..cnx {
                        let g = coarse_mesh.global_node_id(e, i, j, k);
                        if coarse_mesh.is_boundary_node(e, i, j, k) {
                            dofs.push(-1);
                        } else {
                            if dof_of_global[g] < 0 {
                                dof_of_global[g] =
                                    i32::try_from(num_dofs).expect("coarse dof fits i32");
                                num_dofs += 1;
                            }
                            dofs.push(dof_of_global[g]);
                        }
                    }
                }
            }
            element_dofs.push(dofs);
        }
        if num_dofs == 0 {
            return None;
        }

        let j = sem_basis::degree_prolongation(coarse_degree, mesh.degree());
        let jt = j.transpose();
        // The specialized transfer kernels are generated for the degree-2
        // coarse space (3 nodes per direction) only.
        let dispatch = if cnx == COARSE_POINTS {
            DegreeDispatch::for_degree(mesh.degree())
        } else {
            None
        };
        let mut coarse = CoarseCorrection {
            degree: coarse_degree,
            num_dofs,
            element_dofs,
            j,
            jt,
            factor: DenseMatrix::zeros(0, 0),
            dispatch,
        };

        // Galerkin assembly, element by element: the coarse basis functions
        // vanish on the Dirichlet boundary and the assembled operator is the
        // sum of element contributions, so
        // `A_c[v, w] = Σₑ (J e_v)|ₑᵀ Âₑ (J e_w)|ₑ` — `(c+1)³` element-local
        // operator applications per element, O(elements) setup instead of
        // one full-mesh `Ax` per coarse dof (which is O(elements²) overall).
        let nx = mesh.degree() + 1;
        let npts = nx * nx * nx;
        let planes = operator.split_planes();
        let derivative = operator.derivative();
        let (d, dt) = (derivative.d().as_slice(), derivative.dt().as_slice());
        let mut ax_scratch = sem_kernel::optimized::AxScratch::new(nx);
        let cpts = cnx * cnx * cnx;
        let mut a_c = DenseMatrix::zeros(num_dofs, num_dofs);
        let mut y = vec![0.0; npts];
        let (mut t1, mut t2) = (vec![0.0; npts], vec![0.0; npts]);
        for e in 0..mesh.num_elements() {
            let range = e * npts..(e + 1) * npts;
            let g = [
                &planes[0][range.clone()],
                &planes[1][range.clone()],
                &planes[2][range.clone()],
                &planes[3][range.clone()],
                &planes[4][range.clone()],
                &planes[5][range.clone()],
            ];
            for w_local in 0..cpts {
                let w = coarse.element_dofs[e][w_local];
                if w < 0 {
                    continue;
                }
                t1[..cpts].iter_mut().for_each(|v| *v = 0.0);
                t1[w_local] = 1.0;
                let p_w = coarse.prolong_local(&mut t1, &mut t2, nx);
                sem_kernel::optimized::ax_element_split(p_w, &mut y, g, d, dt, nx, &mut ax_scratch);
                coarse.restrict_local(&y, nx, &mut t1, &mut t2);
                for (v_local, &v) in coarse.element_dofs[e].iter().enumerate() {
                    if v >= 0 {
                        a_c[(v as usize, w as usize)] += t1[v_local];
                    }
                }
            }
        }
        coarse.factor = a_c
            .cholesky()
            .expect("Galerkin coarse operator is symmetric positive definite");
        Some(coarse)
    }

    /// Fill one direction's extended-axis map: patch index →
    /// `element_position * nx + node` in that direction, or `-1` outside the
    /// domain.  The ghost layers reach `overlap` GLL nodes into each
    /// neighbour.
    fn fill_axis(axis: &mut Vec<i64>, pos: usize, count: usize, nx: usize, overlap: usize) {
        axis.clear();
        for t in 0..overlap {
            axis.push(if pos > 0 {
                ((pos - 1) * nx + nx - 1 - overlap + t) as i64
            } else {
                -1
            });
        }
        for i in 0..nx {
            axis.push((pos * nx + i) as i64);
        }
        for t in 0..overlap {
            axis.push(if pos + 1 < count {
                ((pos + 1) * nx + 1 + t) as i64
            } else {
                -1
            });
        }
    }
}

impl Preconditioner for FdmPreconditioner {
    fn seconds_per_application(&self) -> Option<f64> {
        self.modeled_seconds
    }

    // lint: alloc-free (runs once per CG iteration; scratch lives in a
    // thread-local and is resized only on shape change)
    fn apply_into(&self, r: &ElementField, z: &mut ElementField) {
        assert_eq!(r.degree(), self.degree, "residual degree mismatch");
        assert_eq!(
            r.num_elements(),
            self.num_elements,
            "residual element count mismatch"
        );
        assert_eq!(r.len(), z.len(), "output size mismatch");
        let nx = self.degree + 1;
        let overlap = self.overlap;
        let pnx = nx + 2 * overlap;
        let npts = nx * nx * nx;
        let ppts = pnx * pnx * pnx;
        let [ex, ey, _ez] = self.element_counts;
        let l2g = self.gather_scatter.local_to_global();

        APPLY_SCRATCH.with(|cell| {
            let s = &mut *cell.borrow_mut();
            if s.weighted_residual.len() != r.len() {
                s.weighted_residual.resize(r.len(), 0.0);
            }
            if s.staged.len() != npts {
                s.staged.resize(npts, 0.0);
                s.ct1.resize(npts, 0.0);
                s.ct2.resize(npts, 0.0);
            }
            if s.patch_in.len() != ppts {
                s.patch_in.resize(ppts, 0.0);
                s.patch_out.resize(ppts, 0.0);
                s.patch_src.resize(ppts, OUTSIDE);
            }
            if s.z_global.len() != self.patch_weight_global.len() {
                s.z_global.resize(self.patch_weight_global.len(), 0.0);
            }
            s.z_global.iter_mut().for_each(|v| *v = 0.0);
            if let Some(coarse) = &self.coarse {
                s.coarse_rhs.resize(coarse.num_dofs, 0.0);
                s.coarse_rhs.iter_mut().for_each(|v| *v = 0.0);
            }

            // W̃-weighted residual (continuous: the weight is a function of
            // the global node, the residual is continuous).
            for ((w, &rv), &wv) in s
                .weighted_residual
                .iter_mut()
                .zip(r.as_slice())
                .zip(self.patch_weight_local.as_slice())
            {
                *w = rv * wv;
            }

            for e in 0..self.num_elements {
                let (ei, ej, ek) = (e % ex, (e / ex) % ey, e / (ex * ey));
                // Coarse restriction of the counting-weighted residual.
                if let Some(coarse) = &self.coarse {
                    let start = e * npts;
                    for ((d, &rv), &wv) in s
                        .staged
                        .iter_mut()
                        .zip(&r.as_slice()[start..start + npts])
                        .zip(&self.weight.as_slice()[start..start + npts])
                    {
                        *d = rv * wv;
                    }
                    coarse.restrict_element(
                        e,
                        &s.staged,
                        nx,
                        &mut s.coarse_rhs,
                        &mut s.ct1,
                        &mut s.ct2,
                    );
                }

                // Gather the overlapping patch from the weighted residual.
                Self::fill_axis(&mut s.axis[0], ei, self.element_counts[0], nx, overlap);
                Self::fill_axis(&mut s.axis[1], ej, self.element_counts[1], nx, overlap);
                Self::fill_axis(&mut s.axis[2], ek, self.element_counts[2], nx, overlap);
                let mut p = 0;
                for &az in &s.axis[2] {
                    for &ay in &s.axis[1] {
                        for &ax in &s.axis[0] {
                            if ax < 0 || ay < 0 || az < 0 {
                                s.patch_in[p] = 0.0;
                                s.patch_src[p] = OUTSIDE;
                            } else {
                                let (pex, ni) = (ax as usize / nx, ax as usize % nx);
                                let (pey, nj) = (ay as usize / nx, ay as usize % nx);
                                let (pez, nk) = (az as usize / nx, az as usize % nx);
                                let src =
                                    (pex + ex * (pey + ey * pez)) * npts + ni + nx * (nj + nx * nk);
                                s.patch_in[p] = s.weighted_residual[src];
                                s.patch_src[p] = u32::try_from(src).expect("local index fits u32");
                            }
                            p += 1;
                        }
                    }
                }

                // Patch tensor-product solve.
                let combo = &self.combos[self.combo_of_element[e] as usize];
                let fx = &self.classes[0][combo.class[0]].factors;
                let fy = &self.classes[1][combo.class[1]].factors;
                let fz = &self.classes[2][combo.class[2]].factors;
                if let Some(dispatch) = &self.dispatch {
                    dispatch.fdm_element_apply(
                        [fx.s.as_slice(), fy.s.as_slice(), fz.s.as_slice()],
                        [fx.st.as_slice(), fy.st.as_slice(), fz.st.as_slice()],
                        &combo.inv,
                        &s.patch_in,
                        &mut s.patch_out,
                    );
                } else {
                    fdm_element_apply(
                        [fx.s.as_slice(), fy.s.as_slice(), fz.s.as_slice()],
                        [fx.st.as_slice(), fy.st.as_slice(), fz.st.as_slice()],
                        &combo.inv,
                        &s.patch_in,
                        &mut s.patch_out,
                        pnx,
                        &mut s.kernel,
                    );
                }

                // Scatter the weighted correction to the global grid.
                for (&src, &zv) in s.patch_src.iter().zip(&s.patch_out) {
                    if src != OUTSIDE {
                        let g = l2g[src as usize];
                        s.z_global[g] += self.patch_weight_global[g] * zv;
                    }
                }
            }

            // Broadcast the (continuous by construction) global correction
            // back to element-local storage.
            for (zv, &g) in z.as_mut_slice().iter_mut().zip(l2g) {
                *zv = s.z_global[g];
            }

            // Additive coarse correction: z += P A_c⁻¹ Pᵀ (W r).  The
            // interpolation prolongation is continuous, so the sum stays
            // continuous.
            if let Some(coarse) = &self.coarse {
                coarse.factor.cholesky_solve_in_place(&mut s.coarse_rhs);
                for e in 0..self.num_elements {
                    coarse.prolong_element_add(
                        e,
                        &s.coarse_rhs,
                        nx,
                        &mut z.as_mut_slice()[e * npts..(e + 1) * npts],
                        &mut s.ct1,
                        &mut s.ct2,
                    );
                }
            }
        });
        self.mask.apply(z);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cg::{CgOptions, CgSolver, IdentityPreconditioner};
    use crate::jacobi::JacobiPreconditioner;
    use sem_kernel::AxImplementation;
    use sem_mesh::MeshDeformation;

    fn problem(
        degree: usize,
        elems: usize,
    ) -> (BoxMesh, PoissonOperator, GatherScatter, DirichletMask) {
        let mesh = BoxMesh::unit_cube(degree, elems);
        let op = PoissonOperator::new(&mesh, AxImplementation::Optimized);
        let gs = GatherScatter::from_mesh(&mesh);
        let mask = DirichletMask::from_mesh(&mesh);
        (mesh, op, gs, mask)
    }

    fn manufactured_rhs(
        mesh: &BoxMesh,
        solver: &CgSolver<'_>,
        mask: &DirichletMask,
    ) -> ElementField {
        let pi = std::f64::consts::PI;
        let mut x_exact =
            mesh.evaluate(move |x, y, z| (pi * x).sin() * (pi * y).sin() * (pi * z).sin());
        mask.apply(&mut x_exact);
        solver.apply_operator(&x_exact)
    }

    #[test]
    fn specialized_kernels_are_bitwise_identical_in_the_apply() {
        let (mesh, op, gs, mask) = problem(7, 2);
        let pre = FdmPreconditioner::new(&mesh, &op, &gs, &mask);
        assert!(pre.dispatch.is_some(), "degree 7 patches are covered");
        let pre_generic = pre.clone().with_generic_kernels();
        let pi = std::f64::consts::PI;
        let mut r = mesh.evaluate(move |x, y, z| {
            (pi * x).sin() * (2.0 * pi * y).sin() * (pi * z).cos() + 0.3 * x * y
        });
        mask.apply(&mut r);
        let mut z_spec = ElementField::zeros(7, mesh.num_elements());
        let mut z_gen = ElementField::zeros(7, mesh.num_elements());
        pre.apply_into(&r, &mut z_spec);
        pre_generic.apply_into(&r, &mut z_gen);
        assert_eq!(z_spec.as_slice(), z_gen.as_slice());
    }

    /// A right-hand side with broad spectral content — the shape of an
    /// arbitrary serving request.  The standard manufactured solution is a
    /// single Laplacian eigenfunction, which unpreconditioned CG resolves in
    /// misleadingly few iterations; preconditioner comparisons belong on
    /// generic data.
    fn generic_rhs(mesh: &BoxMesh, solver: &CgSolver<'_>, mask: &DirichletMask) -> ElementField {
        let pi = std::f64::consts::PI;
        let mut x = mesh.evaluate(move |x, y, z| {
            (pi * x).sin() * (pi * y).sin() * (pi * z).sin()
                + 0.4 * (3.0 * pi * x).sin() * (2.0 * pi * y).sin() * (pi * z).sin()
                + 0.2 * (5.0 * pi * x).sin() * (4.0 * pi * y).sin() * (3.0 * pi * z).sin()
                + 0.3 * x * (1.0 - x) * y * (1.0 - y) * z * (1.0 - z) * (7.3 * x * y).cos()
        });
        mask.apply(&mut x);
        solver.apply_operator(&x)
    }

    #[test]
    fn single_dirichlet_element_is_solved_in_one_iteration() {
        // With one element every direction is Dirichlet-restricted, so the
        // patch solve *is* the exact inverse and CG converges immediately.
        let (mesh, op, gs, mask) = problem(6, 1);
        let solver = CgSolver::new(&op, &gs, &mask, CgOptions::default());
        let rhs = manufactured_rhs(&mesh, &solver, &mask);
        let pc = FdmPreconditioner::new(&mesh, &op, &gs, &mask);
        let out = solver.solve(&rhs, &pc);
        assert!(out.converged);
        assert!(out.iterations <= 2, "iterations {}", out.iterations);
    }

    #[test]
    fn cuts_iterations_well_below_jacobi_on_generic_right_hand_sides() {
        let (mesh, op, gs, mask) = problem(7, 3);
        let options = CgOptions {
            max_iterations: 2000,
            tolerance: 1e-10,
            record_history: false,
        };
        let solver = CgSolver::new(&op, &gs, &mask, options);
        let rhs = generic_rhs(&mesh, &solver, &mask);

        let plain = solver.solve(&rhs, &IdentityPreconditioner);
        let jacobi = solver.solve(&rhs, &JacobiPreconditioner::new(&op, &gs, &mask));
        let fdm = solver.solve(&rhs, &FdmPreconditioner::new(&mesh, &op, &gs, &mask));
        assert!(plain.converged && jacobi.converged && fdm.converged);
        assert!(fdm.iterations <= jacobi.iterations);
        assert!(jacobi.iterations <= plain.iterations);
        // The acceptance bar of the bench: >= 40% fewer iterations at N = 7
        // (measured 60%+ here).
        assert!(
            (fdm.iterations as f64) <= 0.6 * jacobi.iterations as f64,
            "fdm {} vs jacobi {}",
            fdm.iterations,
            jacobi.iterations
        );
        // And the same solution.
        let mut diff = fdm.solution.clone();
        diff.axpy(-1.0, &jacobi.solution);
        assert!(diff.max_abs() < 1e-7 * (1.0 + jacobi.solution.max_abs()));
    }

    #[test]
    fn converges_to_the_manufactured_solution_like_jacobi() {
        // The standard manufactured solution is a single Laplacian
        // eigenfunction — easy for any Krylov solve — so it anchors
        // correctness here, not preconditioner strength.
        let (mesh, op, gs, mask) = problem(7, 2);
        let options = CgOptions {
            max_iterations: 2000,
            tolerance: 1e-10,
            record_history: false,
        };
        let solver = CgSolver::new(&op, &gs, &mask, options);
        let rhs = manufactured_rhs(&mesh, &solver, &mask);
        let jacobi = solver.solve(&rhs, &JacobiPreconditioner::new(&op, &gs, &mask));
        let fdm = solver.solve(&rhs, &FdmPreconditioner::new(&mesh, &op, &gs, &mask));
        assert!(jacobi.converged && fdm.converged);
        assert!(fdm.iterations <= jacobi.iterations);
        let mut diff = fdm.solution.clone();
        diff.axpy(-1.0, &jacobi.solution);
        assert!(diff.max_abs() < 1e-7 * (1.0 + jacobi.solution.max_abs()));
    }

    #[test]
    fn setup_reuses_eigendecompositions_across_elements() {
        let (mesh, op, gs, mask) = problem(5, 4);
        let pc = FdmPreconditioner::new(&mesh, &op, &gs, &mask);
        // Four elements per direction: low / interior / high classes only.
        assert_eq!(pc.num_direction_classes(), 9);
        // 3 classes per direction -> at most 27 tables for 64 elements.
        assert_eq!(pc.num_combo_tables(), 27);
        assert_eq!(pc.num_elements(), 64);
        // Degree-2 coarse grid: (2·4 − 1)³ interior points.
        assert_eq!(pc.coarse_dofs(), 343);
    }

    #[test]
    fn still_preconditions_deformed_meshes() {
        // The patch factors come from the undeformed extents, so the fine
        // level is inexact here (the Galerkin coarse level stays exact) —
        // FDM must still converge to the right answer and beat identity CG.
        let mesh = BoxMesh::new(
            5,
            [2, 2, 2],
            [1.0; 3],
            MeshDeformation::Sinusoidal { amplitude: 0.04 },
        );
        let op = PoissonOperator::new(&mesh, AxImplementation::Optimized);
        let gs = GatherScatter::from_mesh(&mesh);
        let mask = DirichletMask::from_mesh(&mesh);
        let options = CgOptions {
            max_iterations: 2000,
            tolerance: 1e-10,
            record_history: false,
        };
        let solver = CgSolver::new(&op, &gs, &mask, options);
        let rhs = manufactured_rhs(&mesh, &solver, &mask);
        let plain = solver.solve(&rhs, &IdentityPreconditioner);
        let fdm = solver.solve(&rhs, &FdmPreconditioner::new(&mesh, &op, &gs, &mask));
        assert!(plain.converged && fdm.converged);
        assert!(fdm.iterations < plain.iterations);
        let mut diff = fdm.solution.clone();
        diff.axpy(-1.0, &plain.solution);
        assert!(diff.max_abs() < 1e-7 * (1.0 + plain.solution.max_abs()));
    }

    #[test]
    fn apply_is_symmetric_in_the_weighted_inner_product() {
        // CG requires M⁻¹ symmetric w.r.t. the multiplicity-weighted inner
        // product; the both-sides overlap weight and the Galerkin coarse
        // term guarantee it.
        let (mesh, op, gs, mask) = problem(4, 3);
        let pc = FdmPreconditioner::new(&mesh, &op, &gs, &mask);
        let solver = CgSolver::new(&op, &gs, &mask, CgOptions::default());
        let mut a = mesh.evaluate(|x, y, z| (3.1 * x).sin() + y * y - z);
        let mut b = mesh.evaluate(|x, y, z| x * y + (2.0 * z).cos());
        // Symmetry holds on continuous masked fields (the solver only ever
        // feeds it those).
        gs.direct_stiffness_sum(&mut a);
        gs.direct_stiffness_sum(&mut b);
        mask.apply(&mut a);
        mask.apply(&mut b);
        let za = pc.apply(&a);
        let zb = pc.apply(&b);
        let left = solver.inner_product(&a, &zb);
        let right = solver.inner_product(&b, &za);
        assert!(
            (left - right).abs() < 1e-10 * (1.0 + left.abs()),
            "{left} vs {right}"
        );
    }

    #[test]
    fn correction_is_continuous_and_masked() {
        let (mesh, op, gs, mask) = problem(3, 3);
        let pc = FdmPreconditioner::new(&mesh, &op, &gs, &mask);
        let mut r = mesh.evaluate(|x, y, z| x * (1.3 - y) + z * z);
        gs.direct_stiffness_sum(&mut r);
        mask.apply(&mut r);
        let z = pc.apply(&r);
        assert!(gs.is_continuous(&z, 1e-10));
        let mut masked = z.clone();
        mask.apply(&mut masked);
        let mut diff = masked;
        diff.axpy(-1.0, &z);
        assert!(diff.max_abs() == 0.0, "boundary values must stay zero");
    }

    #[test]
    fn modeled_seconds_are_attached_not_invented() {
        let (mesh, op, gs, mask) = problem(3, 2);
        let pc = FdmPreconditioner::new(&mesh, &op, &gs, &mask);
        assert_eq!(pc.modeled_seconds(), None);
        let priced = pc.with_modeled_seconds(1.5e-4);
        assert_eq!(priced.modeled_seconds(), Some(1.5e-4));
    }
}
