//! Preconditioner configuration: which preconditioner a solve runs, as
//! plain serde-friendly data.
//!
//! [`PrecondSpec`] is the configuration half (it travels inside backend
//! registry strings like `cpu:optimized+fdm` — see `sem-accel`);
//! [`AnyPreconditioner`] is the runtime half, a concrete instance built by
//! [`crate::PoissonProblem::preconditioner`] that dispatches to the
//! identity, Jacobi or FDM implementation without boxing.

use crate::cg::{IdentityPreconditioner, Preconditioner};
use crate::fdm::FdmPreconditioner;
use crate::jacobi::JacobiPreconditioner;
use sem_mesh::ElementField;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Which preconditioner a solve uses.  The default is Jacobi — the
/// behaviour every solve in this workspace had before preconditioning
/// became configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum PrecondSpec {
    /// No preconditioning (plain CG).
    Identity,
    /// The assembled-diagonal (Jacobi) preconditioner.
    #[default]
    Jacobi,
    /// The two-level fast-diagonalization preconditioner (element-patch
    /// tensor solves plus a Galerkin coarse correction).
    Fdm,
}

impl PrecondSpec {
    /// Every spec, in presentation order.
    #[must_use]
    pub fn all() -> [Self; 3] {
        [Self::Identity, Self::Jacobi, Self::Fdm]
    }

    /// Short human-readable label.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            Self::Identity => "identity",
            Self::Jacobi => "jacobi",
            Self::Fdm => "fdm",
        }
    }

    /// The registry-name suffix of this spec (`None` for the default, which
    /// is written without a suffix so existing names keep meaning what they
    /// always meant).
    #[must_use]
    pub fn name_suffix(&self) -> Option<&'static str> {
        match self {
            Self::Identity => Some("none"),
            Self::Jacobi => None,
            Self::Fdm => Some("fdm"),
        }
    }

    /// Parse a registry-name suffix (the part after `+`).
    #[must_use]
    pub fn from_name_suffix(suffix: &str) -> Option<Self> {
        match suffix {
            "none" | "identity" => Some(Self::Identity),
            "jacobi" => Some(Self::Jacobi),
            "fdm" => Some(Self::Fdm),
            _ => None,
        }
    }
}

impl fmt::Display for PrecondSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// A concrete preconditioner instance behind a [`PrecondSpec`].
///
/// The FDM variant is boxed: it carries eigendecompositions, tables and a
/// coarse factor, orders of magnitude larger than the other variants (and
/// `AnyPreconditioner` values are moved around by the session builder).
#[derive(Debug, Clone)]
pub enum AnyPreconditioner {
    /// Plain CG.
    Identity(IdentityPreconditioner),
    /// Assembled operator diagonal.
    Jacobi(JacobiPreconditioner),
    /// Two-level fast diagonalisation.
    Fdm(Box<FdmPreconditioner>),
}

impl AnyPreconditioner {
    /// The spec this instance realises.
    #[must_use]
    pub fn spec(&self) -> PrecondSpec {
        match self {
            Self::Identity(_) => PrecondSpec::Identity,
            Self::Jacobi(_) => PrecondSpec::Jacobi,
            Self::Fdm(_) => PrecondSpec::Fdm,
        }
    }

    /// Attach a modelled per-application cost (used when an accelerator
    /// backend claims the preconditioner pass on-device).  The identity has
    /// nothing to model and ignores it.
    #[must_use]
    pub fn with_modeled_seconds(self, seconds: f64) -> Self {
        match self {
            Self::Identity(p) => Self::Identity(p),
            Self::Jacobi(p) => Self::Jacobi(p.with_modeled_seconds(seconds)),
            Self::Fdm(p) => Self::Fdm(Box::new(p.with_modeled_seconds(seconds))),
        }
    }
}

impl Preconditioner for AnyPreconditioner {
    fn apply_into(&self, r: &ElementField, z: &mut ElementField) {
        match self {
            Self::Identity(p) => p.apply_into(r, z),
            Self::Jacobi(p) => p.apply_into(r, z),
            Self::Fdm(p) => p.apply_into(r, z),
        }
    }

    fn seconds_per_application(&self) -> Option<f64> {
        match self {
            Self::Identity(p) => p.seconds_per_application(),
            Self::Jacobi(p) => p.seconds_per_application(),
            Self::Fdm(p) => p.seconds_per_application(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suffixes_round_trip() {
        for spec in PrecondSpec::all() {
            match spec.name_suffix() {
                Some(suffix) => {
                    assert_eq!(PrecondSpec::from_name_suffix(suffix), Some(spec));
                }
                None => assert_eq!(spec, PrecondSpec::default()),
            }
        }
        assert_eq!(
            PrecondSpec::from_name_suffix("identity"),
            Some(PrecondSpec::Identity)
        );
        assert_eq!(
            PrecondSpec::from_name_suffix("jacobi"),
            Some(PrecondSpec::Jacobi)
        );
        assert_eq!(PrecondSpec::from_name_suffix("ilu"), None);
    }

    #[test]
    fn serde_round_trip() {
        for spec in PrecondSpec::all() {
            let json = serde::json::to_string(&spec);
            let back: PrecondSpec = serde::json::from_str(&json).unwrap();
            assert_eq!(back, spec);
        }
    }

    #[test]
    fn labels_are_distinct() {
        let labels: Vec<_> = PrecondSpec::all().iter().map(PrecondSpec::label).collect();
        assert_eq!(labels, vec!["identity", "jacobi", "fdm"]);
        assert_eq!(format!("{}", PrecondSpec::Fdm), "fdm");
    }
}
