//! Preconditioned conjugate gradients on element-local storage.
//!
//! The iteration mirrors Nekbone: fields stay in element-local (discontinuous)
//! storage, every operator application is followed by direct stiffness
//! summation and Dirichlet masking, and all inner products are weighted by the
//! inverse node multiplicity so each unique grid point is counted once.

use sem_kernel::PoissonOperator;
use sem_mesh::{DirichletMask, ElementField, GatherScatter};
use sem_obs::{recorder, Scope, SpanEvent, SpanKind, WallTimer};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A typed backend failure observed mid-solve.
///
/// This is the solver-side mirror of the device-level error an execution
/// backend raises (e.g. `fpga_sim::DeviceError`): `sem-solver` cannot name
/// accelerator types, so the adapter in `sem-accel` translates.  A faulted
/// solve aborts immediately — its outcome carries the fault and
/// `converged == false`, and the serving layer decides where to retry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolveFault {
    /// The device died; this and any further application would fail.
    DeviceDead {
        /// Device-lifetime operator-application count at the failure.
        at_op: u64,
    },
    /// The kernel hung on one application and the modelled watchdog fired;
    /// the device may still be usable.
    KernelHung {
        /// Device-lifetime operator-application count at the failure.
        at_op: u64,
    },
}

impl fmt::Display for SolveFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolveFault::DeviceDead { at_op } => write!(f, "device dead at op {at_op}"),
            SolveFault::KernelHung { at_op } => write!(f, "kernel hung at op {at_op}"),
        }
    }
}

impl std::error::Error for SolveFault {}

/// The element-local operator a Krylov solver iterates with.
///
/// This is the execution seam of the workspace: the solver only ever sees
/// `w = A u` on element-local storage plus a little cost accounting, so the
/// same CG iteration runs unchanged against a native CPU kernel, the
/// simulated FPGA accelerator, a multi-board partition, or any future
/// backend (`sem-accel` provides adapters for all of them).
///
/// The trait is object-safe: solvers accept `&dyn LocalOperator` so backends
/// can be chosen at runtime.
pub trait LocalOperator {
    /// Polynomial degree `N`.
    fn degree(&self) -> usize;

    /// Number of elements.
    fn num_elements(&self) -> usize;

    /// Apply the element-local operator: `w = A u` (no direct stiffness
    /// summation, no masking — the solver does both afterwards).
    fn apply_local_into(&self, u: &ElementField, w: &mut ElementField);

    /// Floating-point operations of one application.
    fn flops_per_application(&self) -> u64;

    /// Seconds one application costs according to the operator's own
    /// accounting (e.g. simulated kernel time for an accelerator model).
    /// `None` means the caller should measure wall-clock time instead.
    fn seconds_per_application(&self) -> Option<f64> {
        None
    }

    /// Whether this operator claims the fused `w = QQᵀ(A u)` application
    /// (operator plus direct stiffness summation in one pass).  Accelerator
    /// backends that keep the field resident claim it so the gather–scatter
    /// does not bounce back to a separate host pass; the solver then calls
    /// [`LocalOperator::apply_dssum_into`] instead of applying and summing
    /// separately.
    fn fuses_dssum(&self) -> bool {
        false
    }

    /// Fused operator application plus direct stiffness summation:
    /// `w = QQᵀ(A u)` (still no masking).  The default composes
    /// [`LocalOperator::apply_local_into`] with the gather–scatter's CSR
    /// sweep; operators that return `true` from
    /// [`LocalOperator::fuses_dssum`] may override it with a genuinely
    /// single-pass implementation.
    fn apply_dssum_into(
        &self,
        u: &ElementField,
        gather_scatter: &GatherScatter,
        w: &mut ElementField,
    ) {
        self.apply_local_into(u, w);
        gather_scatter.direct_stiffness_sum(w);
    }

    /// Fallible operator application: like
    /// [`LocalOperator::apply_local_into`], but a backend that can fail
    /// (dead device, hung kernel) reports it instead of succeeding.  The
    /// default wraps the infallible path, so existing operators are
    /// perfect devices without any change.
    ///
    /// # Errors
    /// Returns the fault when the backend cannot complete the application.
    fn try_apply_local_into(&self, u: &ElementField, w: &mut ElementField) -> CgApplyResult {
        self.apply_local_into(u, w);
        Ok(())
    }

    /// Fallible fused operator-plus-dssum application (see
    /// [`LocalOperator::apply_dssum_into`]).
    ///
    /// # Errors
    /// Returns the fault when the backend cannot complete the application.
    fn try_apply_dssum_into(
        &self,
        u: &ElementField,
        gather_scatter: &GatherScatter,
        w: &mut ElementField,
    ) -> CgApplyResult {
        self.apply_dssum_into(u, gather_scatter, w);
        Ok(())
    }
}

/// Result of one fallible operator application.
pub type CgApplyResult = Result<(), SolveFault>;

impl LocalOperator for PoissonOperator {
    fn degree(&self) -> usize {
        self.degree()
    }

    fn num_elements(&self) -> usize {
        self.num_elements()
    }

    fn apply_local_into(&self, u: &ElementField, w: &mut ElementField) {
        self.apply_into(u, w);
    }

    fn flops_per_application(&self) -> u64 {
        self.flops_per_application()
    }
}

/// Stopping criteria and iteration limits for the CG solver.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct CgOptions {
    /// Maximum number of iterations.
    pub max_iterations: usize,
    /// Relative residual tolerance (‖r‖ / ‖b‖).
    pub tolerance: f64,
    /// Record the residual norm of every iteration.
    pub record_history: bool,
}

impl Default for CgOptions {
    fn default() -> Self {
        Self {
            max_iterations: 200,
            tolerance: 1e-10,
            record_history: true,
        }
    }
}

/// Result of a CG solve.
#[derive(Debug, Clone)]
pub struct CgOutcome {
    /// The solution in element-local storage (continuous across elements).
    pub solution: ElementField,
    /// Number of iterations performed.
    pub iterations: usize,
    /// Final relative residual.
    pub relative_residual: f64,
    /// Residual norm per iteration (if requested).
    pub residual_history: Vec<f64>,
    /// Whether the tolerance was reached within the iteration limit.
    pub converged: bool,
    /// Total floating-point operations spent in operator applications.
    pub operator_flops: u64,
    /// Number of operator applications performed.
    pub operator_applications: usize,
    /// Seconds attributed to operator applications, accumulated per
    /// application from the backend: wall-clock measurements for native
    /// operators, the backend's own (e.g. simulated) accounting otherwise
    /// (see [`LocalOperator::seconds_per_application`]).
    pub operator_seconds: f64,
    /// Number of preconditioner applications performed (one before the loop
    /// plus one per iteration that continues).
    pub precond_applications: usize,
    /// Seconds attributed to preconditioner applications: the
    /// preconditioner's own (e.g. on-device simulated) accounting when it
    /// has one (see [`Preconditioner::seconds_per_application`]), measured
    /// wall-clock otherwise.
    pub precond_seconds: f64,
    /// The backend fault that aborted the solve, if any.  A faulted
    /// outcome never converged and its partial iterate must not be
    /// released; the serving layer retries the request elsewhere.
    pub fault: Option<SolveFault>,
}

impl CgOutcome {
    /// Achieved operator throughput in GFLOP/s over the accumulated
    /// per-application cost (zero when nothing was applied).
    #[must_use]
    pub fn operator_gflops(&self) -> f64 {
        if self.operator_seconds > 0.0 {
            self.operator_flops as f64 / self.operator_seconds / 1e9
        } else {
            0.0
        }
    }
}

/// A preconditioner maps a residual to a search-direction correction.
pub trait Preconditioner {
    /// Apply `z = M^{-1} r` into a preallocated output (`z` is fully
    /// overwritten) — the allocation-free path the CG hot loop uses.
    fn apply_into(&self, r: &ElementField, z: &mut ElementField);

    /// Seconds one application costs according to the preconditioner's own
    /// accounting — set when an accelerator backend claims the pass
    /// on-device and prices it with its cycle model.  `None` means the
    /// solver measures wall-clock time instead.
    fn seconds_per_application(&self) -> Option<f64> {
        None
    }

    /// Apply `z = M^{-1} r`, allocating the output (convenience wrapper over
    /// [`Preconditioner::apply_into`]).
    fn apply(&self, r: &ElementField) -> ElementField {
        let mut z = ElementField::zeros(r.degree(), r.num_elements());
        self.apply_into(r, &mut z);
        z
    }
}

/// The identity preconditioner (plain CG).
#[derive(Debug, Clone, Copy, Default)]
pub struct IdentityPreconditioner;

impl Preconditioner for IdentityPreconditioner {
    fn apply_into(&self, r: &ElementField, z: &mut ElementField) {
        z.copy_from(r);
    }

    fn seconds_per_application(&self) -> Option<f64> {
        // A copy, not work: charging a deterministic zero keeps simulated
        // backends' solve accounting free of measured noise.
        Some(0.0)
    }
}

/// Reusable work buffers for [`CgSolver::solve_with_scratch`]: the five
/// fields (`x`, `r`, `z`, `p`, `w`) a CG solve iterates on, allocated once
/// and reused across solves so a solve performs **zero heap allocations**
/// after setup.  A batched driver (`sem-accel`'s `solve_many`) shares one
/// scratch across its whole batch.
#[derive(Debug, Clone)]
pub struct CgScratch {
    /// The iterate.
    x: ElementField,
    /// The residual.
    r: ElementField,
    /// The preconditioned residual.
    z: ElementField,
    /// The search direction.
    p: ElementField,
    /// The operator application `A p`.
    w: ElementField,
}

impl CgScratch {
    /// Allocate scratch for a problem of the given degree and element count.
    #[must_use]
    pub fn new(degree: usize, num_elements: usize) -> Self {
        Self {
            x: ElementField::zeros(degree, num_elements),
            r: ElementField::zeros(degree, num_elements),
            z: ElementField::zeros(degree, num_elements),
            p: ElementField::zeros(degree, num_elements),
            w: ElementField::zeros(degree, num_elements),
        }
    }

    /// Allocate scratch matching an operator's dimensions.
    #[must_use]
    pub fn for_operator<Op: LocalOperator + ?Sized>(operator: &Op) -> Self {
        Self::new(operator.degree(), operator.num_elements())
    }

    /// Whether the scratch matches the given problem dimensions.
    #[must_use]
    pub fn matches(&self, degree: usize, num_elements: usize) -> bool {
        self.x.degree() == degree && self.x.num_elements() == num_elements
    }
}

/// Conjugate-gradient solver bound to an operator, gather–scatter and mask.
///
/// The solver is generic over any [`LocalOperator`] (defaulting to the
/// native [`PoissonOperator`] for backwards compatibility), including
/// unsized `dyn LocalOperator` trait objects, so execution backends can be
/// selected at runtime.
pub struct CgSolver<'a, Op: LocalOperator + ?Sized = PoissonOperator> {
    operator: &'a Op,
    gather_scatter: &'a GatherScatter,
    mask: &'a DirichletMask,
    inverse_multiplicity: ElementField,
    options: CgOptions,
}

impl<'a, Op: LocalOperator + ?Sized> CgSolver<'a, Op> {
    /// Create a solver.
    #[must_use]
    pub fn new(
        operator: &'a Op,
        gather_scatter: &'a GatherScatter,
        mask: &'a DirichletMask,
        options: CgOptions,
    ) -> Self {
        let inverse_multiplicity = gather_scatter.inverse_multiplicity();
        Self {
            operator,
            gather_scatter,
            mask,
            inverse_multiplicity,
            options,
        }
    }

    /// The options in use.
    #[must_use]
    pub fn options(&self) -> CgOptions {
        self.options
    }

    /// Weighted global inner product of two local fields.
    #[must_use]
    pub fn inner_product(&self, a: &ElementField, b: &ElementField) -> f64 {
        a.dot_weighted(b, &self.inverse_multiplicity)
    }

    /// One full "masked continuous operator" application:
    /// `w = mask(QQᵀ (A u))`.
    #[must_use]
    pub fn apply_operator(&self, u: &ElementField) -> ElementField {
        let mut w = ElementField::zeros(self.operator.degree(), self.operator.num_elements());
        self.operator.apply_local_into(u, &mut w);
        self.gather_scatter.direct_stiffness_sum(&mut w);
        self.mask.apply(&mut w);
        w
    }

    /// Like [`CgSolver::apply_operator`], but into a preallocated output and
    /// returning the seconds the application cost (measured wall-clock when
    /// the operator has no accounting of its own).  Operators that claim the
    /// fused `Ax`+dssum pass (see [`LocalOperator::fuses_dssum`]) get one
    /// call instead of an apply followed by a host gather–scatter.
    ///
    /// `accumulated_seconds` is the solve's running operator+preconditioner
    /// cost so far: under the modelled observability clock the recorded
    /// span is stamped with it, so per-apply spans tile the solve
    /// deterministically.
    fn apply_operator_into(
        &self,
        u: &ElementField,
        w: &mut ElementField,
        accumulated_seconds: f64,
    ) -> Result<f64, SolveFault> {
        let obs = recorder();
        match self.operator.seconds_per_application() {
            Some(seconds) => {
                let span_start = obs.stamp(accumulated_seconds);
                if self.operator.fuses_dssum() {
                    self.operator
                        .try_apply_dssum_into(u, self.gather_scatter, w)?;
                } else {
                    self.operator.try_apply_local_into(u, w)?;
                    self.gather_scatter.direct_stiffness_sum(w);
                }
                self.mask.apply(w);
                let span_end = obs.stamp(accumulated_seconds + seconds);
                obs.record(SpanEvent::new(
                    SpanKind::OperatorApply,
                    Scope::Deterministic,
                    span_start,
                    span_end,
                ));
                Ok(seconds)
            }
            None if self.operator.fuses_dssum() => {
                // The fused pass is indivisible, so its wall clock includes
                // the summation.
                let span_start = obs.stamp(accumulated_seconds);
                let timer = WallTimer::start();
                self.operator
                    .try_apply_dssum_into(u, self.gather_scatter, w)?;
                let seconds = timer.elapsed_wall_seconds();
                self.mask.apply(w);
                let span_end = obs.stamp(accumulated_seconds + seconds);
                obs.record(SpanEvent::new(
                    SpanKind::OperatorApply,
                    Scope::ScheduleDependent,
                    span_start,
                    span_end,
                ));
                Ok(seconds)
            }
            None => {
                // Time only the local operator, not dssum/mask, so the
                // accumulated seconds divide the operator FLOPs cleanly.
                let span_start = obs.stamp(accumulated_seconds);
                let timer = WallTimer::start();
                self.operator.try_apply_local_into(u, w)?;
                let seconds = timer.elapsed_wall_seconds();
                self.gather_scatter.direct_stiffness_sum(w);
                self.mask.apply(w);
                let span_end = obs.stamp(accumulated_seconds + seconds);
                obs.record(SpanEvent::new(
                    SpanKind::OperatorApply,
                    Scope::ScheduleDependent,
                    span_start,
                    span_end,
                ));
                Ok(seconds)
            }
        }
    }

    /// Solve `A x = b` with an optional preconditioner, allocating a private
    /// [`CgScratch`] (see [`CgSolver::solve_with_scratch`] for the reusable,
    /// allocation-free entry point).
    ///
    /// `rhs` must already be continuous (direct-stiffness-summed) and masked;
    /// [`crate::poisson::PoissonProblem`] produces it in that form.
    #[must_use]
    pub fn solve<P: Preconditioner>(&self, rhs: &ElementField, precond: &P) -> CgOutcome {
        let mut scratch = CgScratch::new(self.operator.degree(), self.operator.num_elements());
        self.solve_with_scratch(rhs, precond, &mut scratch)
    }

    /// Solve `A x = b` reusing caller-owned work buffers.
    ///
    /// After the scratch is allocated (once, reusable across any number of
    /// solves) the iteration performs **no heap allocation**: the residual,
    /// search direction, preconditioned residual and operator output all
    /// live in `scratch`, the preconditioner writes through
    /// [`Preconditioner::apply_into`], and the gather–scatter runs its CSR
    /// sweep in place.  The only allocations per solve are the returned
    /// solution (cloned out of the scratch on exit) and, when
    /// `record_history` is set, the residual history.
    ///
    /// # Panics
    /// Panics if `rhs` or `scratch` do not match the operator's degree and
    /// element count.
    #[must_use]
    pub fn solve_with_scratch<P: Preconditioner>(
        &self,
        rhs: &ElementField,
        precond: &P,
        scratch: &mut CgScratch,
    ) -> CgOutcome {
        let degree = self.operator.degree();
        let nelems = self.operator.num_elements();
        assert_eq!(rhs.degree(), degree, "rhs degree mismatch");
        assert_eq!(rhs.num_elements(), nelems, "rhs element count mismatch");
        assert!(
            scratch.matches(degree, nelems),
            "scratch dimensions mismatch"
        );

        scratch.x.fill_zero();
        scratch.r.copy_from(rhs);
        self.mask.apply(&mut scratch.r);

        let b_norm = self.inner_product(&scratch.r, &scratch.r).sqrt();
        let mut history = Vec::new();
        if b_norm == 0.0 {
            return CgOutcome {
                solution: scratch.x.clone(),
                iterations: 0,
                relative_residual: 0.0,
                residual_history: history,
                converged: true,
                operator_flops: 0,
                operator_applications: 0,
                operator_seconds: 0.0,
                precond_applications: 0,
                precond_seconds: 0.0,
                fault: None,
            };
        }

        let obs = recorder();
        // One CG iteration is reproducible only when both its costed passes
        // carry their own (modelled) accounting; a measured pass makes the
        // stamps host-dependent.
        let iteration_scope = if self.operator.seconds_per_application().is_some()
            && precond.seconds_per_application().is_some()
        {
            Scope::Deterministic
        } else {
            Scope::ScheduleDependent
        };

        let mut precond_applications = 0_usize;
        let mut precond_seconds = 0.0_f64;
        precond_seconds += Self::apply_precond_into(precond, &scratch.r, &mut scratch.z, 0.0);
        precond_applications += 1;
        self.mask.apply(&mut scratch.z);
        scratch.p.copy_from(&scratch.z);
        let mut rz = self.inner_product(&scratch.r, &scratch.z);
        let mut operator_flops = 0_u64;
        let mut operator_applications = 0_usize;
        let mut operator_seconds = 0.0_f64;
        let mut converged = false;
        let mut iterations = 0;
        let mut rel_res = 1.0;
        let mut fault = None;

        // lint: alloc-free (the CG iteration loop reuses preallocated scratch; one
        // allocation per iteration would dominate small solves)
        for iter in 0..self.options.max_iterations {
            iterations = iter + 1;
            let span_start = obs.stamp(operator_seconds + precond_seconds);
            match self.apply_operator_into(
                &scratch.p,
                &mut scratch.w,
                operator_seconds + precond_seconds,
            ) {
                Ok(seconds) => operator_seconds += seconds,
                Err(observed) => {
                    // The backend failed mid-iteration: the application
                    // never completed, so it is not counted, and the
                    // partial iterate is poisoned — abort and report.
                    iterations = iter;
                    fault = Some(observed);
                    break;
                }
            }
            operator_flops += self.operator.flops_per_application();
            operator_applications += 1;
            let pw = self.inner_product(&scratch.p, &scratch.w);
            // A breakdown (pw <= 0) can only occur through rounding on a
            // semi-definite system; bail out with what we have.
            if pw <= 0.0 {
                break;
            }
            let alpha = rz / pw;
            scratch.x.axpy(alpha, &scratch.p);
            scratch.r.axpy(-alpha, &scratch.w);

            let r_norm = self.inner_product(&scratch.r, &scratch.r).sqrt();
            rel_res = r_norm / b_norm;
            if self.options.record_history {
                history.push(rel_res);
            }
            if rel_res < self.options.tolerance {
                converged = true;
                let span_end = obs.stamp(operator_seconds + precond_seconds);
                obs.record(
                    SpanEvent::new(SpanKind::CgIteration, iteration_scope, span_start, span_end)
                        .with_index(iter as u64),
                );
                break;
            }

            precond_seconds += Self::apply_precond_into(
                precond,
                &scratch.r,
                &mut scratch.z,
                operator_seconds + precond_seconds,
            );
            precond_applications += 1;
            self.mask.apply(&mut scratch.z);
            let rz_new = self.inner_product(&scratch.r, &scratch.z);
            let beta = rz_new / rz;
            rz = rz_new;
            // p = z + beta p
            scratch.p.scale_add(beta, &scratch.z);
            let span_end = obs.stamp(operator_seconds + precond_seconds);
            obs.record(
                SpanEvent::new(SpanKind::CgIteration, iteration_scope, span_start, span_end)
                    .with_index(iter as u64),
            );
        }

        obs.counter_add("sem_solver_cg_iterations_total", &[], iterations as u64);
        obs.counter_add(
            "sem_solver_operator_applications_total",
            &[],
            operator_applications as u64,
        );
        obs.observe("sem_solver_operator_seconds", &[], operator_seconds);
        obs.observe("sem_solver_precond_seconds", &[], precond_seconds);

        CgOutcome {
            solution: scratch.x.clone(),
            iterations,
            relative_residual: rel_res,
            residual_history: history,
            converged,
            operator_flops,
            operator_applications,
            operator_seconds,
            precond_applications,
            precond_seconds,
            fault,
        }
    }

    /// One preconditioner application with its cost: the preconditioner's
    /// own accounting when it has one (on-device model), measured wall-clock
    /// otherwise.  `accumulated_seconds` stamps the recorded span exactly
    /// like [`CgSolver::apply_operator_into`].
    fn apply_precond_into<P: Preconditioner + ?Sized>(
        precond: &P,
        r: &ElementField,
        z: &mut ElementField,
        accumulated_seconds: f64,
    ) -> f64 {
        let obs = recorder();
        match precond.seconds_per_application() {
            Some(seconds) => {
                let span_start = obs.stamp(accumulated_seconds);
                precond.apply_into(r, z);
                let span_end = obs.stamp(accumulated_seconds + seconds);
                obs.record(SpanEvent::new(
                    SpanKind::PrecondApply,
                    Scope::Deterministic,
                    span_start,
                    span_end,
                ));
                seconds
            }
            None => {
                let span_start = obs.stamp(accumulated_seconds);
                let timer = WallTimer::start();
                precond.apply_into(r, z);
                let seconds = timer.elapsed_wall_seconds();
                let span_end = obs.stamp(accumulated_seconds + seconds);
                obs.record(SpanEvent::new(
                    SpanKind::PrecondApply,
                    Scope::ScheduleDependent,
                    span_start,
                    span_end,
                ));
                seconds
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sem_kernel::AxImplementation;
    use sem_mesh::BoxMesh;

    fn make_problem(
        degree: usize,
        elems: usize,
    ) -> (BoxMesh, PoissonOperator, GatherScatter, DirichletMask) {
        let mesh = BoxMesh::unit_cube(degree, elems);
        let op = PoissonOperator::new(&mesh, AxImplementation::Optimized);
        let gs = GatherScatter::from_mesh(&mesh);
        let mask = DirichletMask::from_mesh(&mesh);
        (mesh, op, gs, mask)
    }

    #[test]
    fn zero_rhs_returns_zero_solution_immediately() {
        let (_, op, gs, mask) = make_problem(3, 2);
        let solver = CgSolver::new(&op, &gs, &mask, CgOptions::default());
        let rhs = ElementField::zeros(3, 8);
        let out = solver.solve(&rhs, &IdentityPreconditioner);
        assert!(out.converged);
        assert_eq!(out.iterations, 0);
        assert!(out.solution.max_abs() == 0.0);
    }

    #[test]
    fn solves_a_manufactured_system() {
        // Build b = A x_exact for a random-ish continuous masked x_exact and
        // recover it with CG.
        let (mesh, op, gs, mask) = make_problem(4, 2);
        let mut x_exact = mesh.evaluate(|x, y, z| (x * (1.0 - x)) * (y * (1.0 - y)) * z.sin());
        mask.apply(&mut x_exact);
        let solver = CgSolver::new(
            &op,
            &gs,
            &mask,
            CgOptions {
                max_iterations: 500,
                tolerance: 1e-12,
                record_history: true,
            },
        );
        let rhs = solver.apply_operator(&x_exact);
        let out = solver.solve(&rhs, &IdentityPreconditioner);
        assert!(out.converged, "residual {}", out.relative_residual);
        let mut diff = out.solution.clone();
        diff.axpy(-1.0, &x_exact);
        assert!(
            diff.max_abs() < 1e-7 * (1.0 + x_exact.max_abs()),
            "max error {}",
            diff.max_abs()
        );
        assert!(out.operator_flops > 0);
    }

    #[test]
    fn residual_history_is_monotonically_bounded() {
        let (mesh, op, gs, mask) = make_problem(3, 2);
        let mut x_exact = mesh.evaluate(|x, y, z| (3.0 * x).sin() * y * (1.0 - z));
        mask.apply(&mut x_exact);
        let solver = CgSolver::new(&op, &gs, &mask, CgOptions::default());
        let rhs = solver.apply_operator(&x_exact);
        let out = solver.solve(&rhs, &IdentityPreconditioner);
        // CG residuals are not strictly monotone, but the final residual must
        // be far below the initial one and the history non-empty.
        assert!(!out.residual_history.is_empty());
        assert!(out.relative_residual < 1e-8);
    }

    #[test]
    fn shared_scratch_solves_match_fresh_scratch_solves_bitwise() {
        let (mesh, op, gs, mask) = make_problem(4, 2);
        let solver = CgSolver::new(
            &op,
            &gs,
            &mask,
            CgOptions {
                max_iterations: 300,
                tolerance: 1e-11,
                record_history: true,
            },
        );
        let mut shared = CgScratch::for_operator(&op);
        for trial in 0..3 {
            let mut x_exact = mesh.evaluate(|x, y, z| {
                (x * (1.0 - x)) * (y * (1.0 - y)) * ((1.0 + trial as f64) * z).sin()
            });
            mask.apply(&mut x_exact);
            let rhs = solver.apply_operator(&x_exact);
            // One scratch reused across the whole batch of solves...
            let reused = solver.solve_with_scratch(&rhs, &IdentityPreconditioner, &mut shared);
            // ...must match a solve with private buffers bitwise.
            let fresh = solver.solve(&rhs, &IdentityPreconditioner);
            assert_eq!(reused.solution.as_slice(), fresh.solution.as_slice());
            assert_eq!(reused.iterations, fresh.iterations);
            assert_eq!(reused.residual_history, fresh.residual_history);
            assert!(reused.converged);
        }
    }

    #[test]
    #[should_panic(expected = "scratch dimensions mismatch")]
    fn mismatched_scratch_is_rejected() {
        let (_, op, gs, mask) = make_problem(3, 2);
        let solver = CgSolver::new(&op, &gs, &mask, CgOptions::default());
        let rhs = ElementField::zeros(3, 8);
        let mut wrong = CgScratch::new(4, 8);
        let _ = solver.solve_with_scratch(&rhs, &IdentityPreconditioner, &mut wrong);
    }

    /// A host operator that dies after a fixed number of applications —
    /// the solver-side model of a device death mid-solve.
    struct DyingOperator<'a> {
        inner: &'a PoissonOperator,
        ok_ops: std::cell::Cell<usize>,
    }

    impl LocalOperator for DyingOperator<'_> {
        fn degree(&self) -> usize {
            self.inner.degree()
        }

        fn num_elements(&self) -> usize {
            self.inner.num_elements()
        }

        fn apply_local_into(&self, u: &ElementField, w: &mut ElementField) {
            self.inner.apply_into(u, w);
        }

        fn flops_per_application(&self) -> u64 {
            self.inner.flops_per_application()
        }

        fn try_apply_local_into(&self, u: &ElementField, w: &mut ElementField) -> CgApplyResult {
            let remaining = self.ok_ops.get();
            if remaining == 0 {
                return Err(SolveFault::DeviceDead {
                    at_op: self.ok_ops.get() as u64,
                });
            }
            self.ok_ops.set(remaining - 1);
            self.apply_local_into(u, w);
            Ok(())
        }
    }

    #[test]
    fn a_device_fault_aborts_the_solve_and_is_reported() {
        let (mesh, op, gs, mask) = make_problem(4, 2);
        let mut x_exact = mesh.evaluate(|x, y, z| (x * (1.0 - x)) * y * z.sin());
        mask.apply(&mut x_exact);
        let healthy_solver = CgSolver::new(&op, &gs, &mask, CgOptions::default());
        let rhs = healthy_solver.apply_operator(&x_exact);
        let healthy = healthy_solver.solve(&rhs, &IdentityPreconditioner);
        assert!(healthy.converged && healthy.iterations > 3);

        let dying = DyingOperator {
            inner: &op,
            ok_ops: std::cell::Cell::new(3),
        };
        let solver = CgSolver::new(
            &dying as &dyn LocalOperator,
            &gs,
            &mask,
            CgOptions::default(),
        );
        let out = solver.solve(&rhs, &IdentityPreconditioner);
        assert!(!out.converged);
        assert_eq!(out.fault, Some(SolveFault::DeviceDead { at_op: 0 }));
        // Exactly the successful applications are counted.
        assert_eq!(out.operator_applications, 3);
        assert_eq!(out.iterations, 3);
        // The fault-free solve stays fault-free.
        assert_eq!(healthy.fault, None);
    }

    #[test]
    fn solution_is_continuous_and_masked() {
        let (mesh, op, gs, mask) = make_problem(3, 3);
        let mut x_exact = mesh.evaluate(|x, y, z| x * y * z * (1.0 - x));
        mask.apply(&mut x_exact);
        let solver = CgSolver::new(&op, &gs, &mask, CgOptions::default());
        let rhs = solver.apply_operator(&x_exact);
        let out = solver.solve(&rhs, &IdentityPreconditioner);
        assert!(gs.is_continuous(&out.solution, 1e-8));
        let mut masked = out.solution.clone();
        mask.apply(&mut masked);
        let mut diff = masked;
        diff.axpy(-1.0, &out.solution);
        assert!(diff.max_abs() < 1e-14, "boundary values must stay zero");
    }
}
