//! Preconditioned conjugate gradients on element-local storage.
//!
//! The iteration mirrors Nekbone: fields stay in element-local (discontinuous)
//! storage, every operator application is followed by direct stiffness
//! summation and Dirichlet masking, and all inner products are weighted by the
//! inverse node multiplicity so each unique grid point is counted once.

use sem_kernel::PoissonOperator;
use sem_mesh::{DirichletMask, ElementField, GatherScatter};
use serde::{Deserialize, Serialize};

/// Stopping criteria and iteration limits for the CG solver.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct CgOptions {
    /// Maximum number of iterations.
    pub max_iterations: usize,
    /// Relative residual tolerance (‖r‖ / ‖b‖).
    pub tolerance: f64,
    /// Record the residual norm of every iteration.
    pub record_history: bool,
}

impl Default for CgOptions {
    fn default() -> Self {
        Self {
            max_iterations: 200,
            tolerance: 1e-10,
            record_history: true,
        }
    }
}

/// Result of a CG solve.
#[derive(Debug, Clone)]
pub struct CgOutcome {
    /// The solution in element-local storage (continuous across elements).
    pub solution: ElementField,
    /// Number of iterations performed.
    pub iterations: usize,
    /// Final relative residual.
    pub relative_residual: f64,
    /// Residual norm per iteration (if requested).
    pub residual_history: Vec<f64>,
    /// Whether the tolerance was reached within the iteration limit.
    pub converged: bool,
    /// Total floating-point operations spent in operator applications.
    pub operator_flops: u64,
}

/// A preconditioner maps a residual to a search-direction correction.
pub trait Preconditioner {
    /// Apply `z = M^{-1} r`.
    fn apply(&self, r: &ElementField) -> ElementField;
}

/// The identity preconditioner (plain CG).
#[derive(Debug, Clone, Copy, Default)]
pub struct IdentityPreconditioner;

impl Preconditioner for IdentityPreconditioner {
    fn apply(&self, r: &ElementField) -> ElementField {
        r.clone()
    }
}

/// Conjugate-gradient solver bound to an operator, gather–scatter and mask.
pub struct CgSolver<'a> {
    operator: &'a PoissonOperator,
    gather_scatter: &'a GatherScatter,
    mask: &'a DirichletMask,
    inverse_multiplicity: ElementField,
    options: CgOptions,
}

impl<'a> CgSolver<'a> {
    /// Create a solver.
    #[must_use]
    pub fn new(
        operator: &'a PoissonOperator,
        gather_scatter: &'a GatherScatter,
        mask: &'a DirichletMask,
        options: CgOptions,
    ) -> Self {
        let inverse_multiplicity = gather_scatter.inverse_multiplicity();
        Self {
            operator,
            gather_scatter,
            mask,
            inverse_multiplicity,
            options,
        }
    }

    /// The options in use.
    #[must_use]
    pub fn options(&self) -> CgOptions {
        self.options
    }

    /// Weighted global inner product of two local fields.
    #[must_use]
    pub fn inner_product(&self, a: &ElementField, b: &ElementField) -> f64 {
        a.dot_weighted(b, &self.inverse_multiplicity)
    }

    /// One full "masked continuous operator" application:
    /// `w = mask(QQᵀ (A u))`.
    #[must_use]
    pub fn apply_operator(&self, u: &ElementField) -> ElementField {
        let mut w = self.operator.apply(u);
        self.gather_scatter.direct_stiffness_sum(&mut w);
        self.mask.apply(&mut w);
        w
    }

    /// Solve `A x = b` with an optional preconditioner.
    ///
    /// `rhs` must already be continuous (direct-stiffness-summed) and masked;
    /// [`crate::poisson::PoissonProblem`] produces it in that form.
    #[must_use]
    pub fn solve<P: Preconditioner>(&self, rhs: &ElementField, precond: &P) -> CgOutcome {
        let degree = self.operator.degree();
        let nelems = self.operator.num_elements();
        assert_eq!(rhs.degree(), degree, "rhs degree mismatch");
        assert_eq!(rhs.num_elements(), nelems, "rhs element count mismatch");

        let mut x = ElementField::zeros(degree, nelems);
        let mut r = rhs.clone();
        self.mask.apply(&mut r);

        let b_norm = self.inner_product(&r, &r).sqrt();
        let mut history = Vec::new();
        if b_norm == 0.0 {
            return CgOutcome {
                solution: x,
                iterations: 0,
                relative_residual: 0.0,
                residual_history: history,
                converged: true,
                operator_flops: 0,
            };
        }

        let mut z = precond.apply(&r);
        self.mask.apply(&mut z);
        let mut p = z.clone();
        let mut rz = self.inner_product(&r, &z);
        let mut operator_flops = 0_u64;
        let mut converged = false;
        let mut iterations = 0;
        let mut rel_res = 1.0;

        for iter in 0..self.options.max_iterations {
            iterations = iter + 1;
            let w = self.apply_operator(&p);
            operator_flops += self.operator.flops_per_application();
            let pw = self.inner_product(&p, &w);
            // A breakdown (pw <= 0) can only occur through rounding on a
            // semi-definite system; bail out with what we have.
            if pw <= 0.0 {
                break;
            }
            let alpha = rz / pw;
            x.axpy(alpha, &p);
            r.axpy(-alpha, &w);

            let r_norm = self.inner_product(&r, &r).sqrt();
            rel_res = r_norm / b_norm;
            if self.options.record_history {
                history.push(rel_res);
            }
            if rel_res < self.options.tolerance {
                converged = true;
                break;
            }

            let mut z_new = precond.apply(&r);
            self.mask.apply(&mut z_new);
            let rz_new = self.inner_product(&r, &z_new);
            let beta = rz_new / rz;
            rz = rz_new;
            z = z_new;
            // p = z + beta p
            p.scale_add(beta, &z);
        }

        CgOutcome {
            solution: x,
            iterations,
            relative_residual: rel_res,
            residual_history: history,
            converged,
            operator_flops,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sem_kernel::AxImplementation;
    use sem_mesh::BoxMesh;

    fn make_problem(
        degree: usize,
        elems: usize,
    ) -> (BoxMesh, PoissonOperator, GatherScatter, DirichletMask) {
        let mesh = BoxMesh::unit_cube(degree, elems);
        let op = PoissonOperator::new(&mesh, AxImplementation::Optimized);
        let gs = GatherScatter::from_mesh(&mesh);
        let mask = DirichletMask::from_mesh(&mesh);
        (mesh, op, gs, mask)
    }

    #[test]
    fn zero_rhs_returns_zero_solution_immediately() {
        let (_, op, gs, mask) = make_problem(3, 2);
        let solver = CgSolver::new(&op, &gs, &mask, CgOptions::default());
        let rhs = ElementField::zeros(3, 8);
        let out = solver.solve(&rhs, &IdentityPreconditioner);
        assert!(out.converged);
        assert_eq!(out.iterations, 0);
        assert!(out.solution.max_abs() == 0.0);
    }

    #[test]
    fn solves_a_manufactured_system() {
        // Build b = A x_exact for a random-ish continuous masked x_exact and
        // recover it with CG.
        let (mesh, op, gs, mask) = make_problem(4, 2);
        let mut x_exact = mesh.evaluate(|x, y, z| (x * (1.0 - x)) * (y * (1.0 - y)) * z.sin());
        mask.apply(&mut x_exact);
        let solver = CgSolver::new(
            &op,
            &gs,
            &mask,
            CgOptions {
                max_iterations: 500,
                tolerance: 1e-12,
                record_history: true,
            },
        );
        let rhs = solver.apply_operator(&x_exact);
        let out = solver.solve(&rhs, &IdentityPreconditioner);
        assert!(out.converged, "residual {}", out.relative_residual);
        let mut diff = out.solution.clone();
        diff.axpy(-1.0, &x_exact);
        assert!(
            diff.max_abs() < 1e-7 * (1.0 + x_exact.max_abs()),
            "max error {}",
            diff.max_abs()
        );
        assert!(out.operator_flops > 0);
    }

    #[test]
    fn residual_history_is_monotonically_bounded() {
        let (mesh, op, gs, mask) = make_problem(3, 2);
        let mut x_exact = mesh.evaluate(|x, y, z| (3.0 * x).sin() * y * (1.0 - z));
        mask.apply(&mut x_exact);
        let solver = CgSolver::new(&op, &gs, &mask, CgOptions::default());
        let rhs = solver.apply_operator(&x_exact);
        let out = solver.solve(&rhs, &IdentityPreconditioner);
        // CG residuals are not strictly monotone, but the final residual must
        // be far below the initial one and the history non-empty.
        assert!(!out.residual_history.is_empty());
        assert!(out.relative_residual < 1e-8);
    }

    #[test]
    fn solution_is_continuous_and_masked() {
        let (mesh, op, gs, mask) = make_problem(3, 3);
        let mut x_exact = mesh.evaluate(|x, y, z| x * y * z * (1.0 - x));
        mask.apply(&mut x_exact);
        let solver = CgSolver::new(&op, &gs, &mask, CgOptions::default());
        let rhs = solver.apply_operator(&x_exact);
        let out = solver.solve(&rhs, &IdentityPreconditioner);
        assert!(gs.is_continuous(&out.solution, 1e-8));
        let mut masked = out.solution.clone();
        mask.apply(&mut masked);
        let mut diff = masked;
        diff.axpy(-1.0, &out.solution);
        assert!(diff.max_abs() < 1e-14, "boundary values must stay zero");
    }
}
