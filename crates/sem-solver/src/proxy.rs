//! The Nekbone-style proxy benchmark driver.
//!
//! Nekbone times a fixed number of CG iterations of the Poisson operator on a
//! box of elements and reports FLOP/s — that is the "CPU version" the paper
//! compares its accelerator against.  [`ProxyConfig::run`] reproduces the
//! same structure natively in Rust so the host CPU of this reproduction can
//! be placed on the same axes.

use crate::cg::{CgOptions, CgSolver};
use crate::poisson::PoissonProblem;
use crate::precond::PrecondSpec;
use sem_kernel::AxImplementation;
use sem_mesh::BoxMesh;
use sem_obs::WallTimer;
use serde::{Deserialize, Serialize};

/// Configuration of a proxy run.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ProxyConfig {
    /// Polynomial degree `N`.
    pub degree: usize,
    /// Elements per direction `[ex, ey, ez]`.
    pub elements: [usize; 3],
    /// Number of CG iterations to time (Nekbone default is 100).
    pub cg_iterations: usize,
    /// Kernel implementation to use.
    pub implementation: AxImplementation,
    /// Which preconditioner to run.
    pub precond: PrecondSpec,
}

impl Default for ProxyConfig {
    fn default() -> Self {
        Self {
            degree: 7,
            elements: [8, 8, 8],
            cg_iterations: 100,
            implementation: AxImplementation::Parallel,
            precond: PrecondSpec::Jacobi,
        }
    }
}

/// Measured result of a proxy run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ProxyResult {
    /// The configuration that was run.
    pub config: ProxyConfig,
    /// Total number of elements.
    pub num_elements: usize,
    /// Total local degrees of freedom.
    pub num_dofs: u64,
    /// Wall-clock seconds spent in the timed CG loop.
    pub seconds: f64,
    /// CG iterations actually performed.
    pub iterations: usize,
    /// Floating-point operations spent in operator applications.
    pub operator_flops: u64,
    /// Achieved operator GFLOP/s (operator FLOPs / wall time).
    pub gflops: f64,
    /// Final relative residual.
    pub relative_residual: f64,
}

impl ProxyConfig {
    /// Total number of elements of the configured box.
    #[must_use]
    pub fn num_elements(&self) -> usize {
        self.elements[0] * self.elements[1] * self.elements[2]
    }

    /// Run the proxy benchmark: set up the box problem, run the configured
    /// number of CG iterations with a zero tolerance (so the iteration count
    /// is fixed, like Nekbone), and report timings.
    #[must_use]
    pub fn run(&self) -> ProxyResult {
        let mesh = BoxMesh::new(
            self.degree,
            self.elements,
            [1.0; 3],
            sem_mesh::MeshDeformation::None,
        );
        let problem = PoissonProblem::new(mesh, self.implementation);
        let operator = problem.operator();

        let pi = std::f64::consts::PI;
        let mut rhs = problem
            .mesh()
            .evaluate(|x, y, z| 3.0 * pi * pi * (pi * x).sin() * (pi * y).sin() * (pi * z).sin());
        rhs.pointwise_mul(operator.geometry().mass());
        problem.gather_scatter().direct_stiffness_sum(&mut rhs);
        problem.mask().apply(&mut rhs);

        let options = CgOptions {
            max_iterations: self.cg_iterations,
            tolerance: 0.0, // run the full iteration budget, Nekbone-style
            record_history: false,
        };
        let solver = CgSolver::new(operator, problem.gather_scatter(), problem.mask(), options);

        // Preconditioner setup (eigendecompositions for FDM) stays outside
        // the timed loop, like Nekbone's setup phase.
        let pc = problem.preconditioner(self.precond);
        let timer = WallTimer::start();
        let outcome = solver.solve(&rhs, &pc);
        let seconds = timer.elapsed_wall_seconds();

        let gflops = if seconds > 0.0 {
            outcome.operator_flops as f64 / seconds / 1e9
        } else {
            0.0
        };

        ProxyResult {
            config: *self,
            num_elements: self.num_elements(),
            num_dofs: operator.dofs_per_application(),
            seconds,
            iterations: outcome.iterations,
            operator_flops: outcome.operator_flops,
            gflops,
            relative_residual: outcome.relative_residual,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_proxy_run_completes_and_reports_sane_numbers() {
        let config = ProxyConfig {
            degree: 4,
            elements: [2, 2, 2],
            cg_iterations: 10,
            implementation: AxImplementation::Optimized,
            precond: PrecondSpec::Jacobi,
        };
        let result = config.run();
        assert_eq!(result.num_elements, 8);
        assert_eq!(result.iterations, 10);
        assert_eq!(result.num_dofs, 8 * 125);
        assert_eq!(
            result.operator_flops,
            10 * 8 * 125 * sem_kernel::flops_per_dof(4) as u64
        );
        assert!(result.seconds > 0.0);
        assert!(result.gflops > 0.0);
        // Ten iterations of Jacobi-CG on this tiny problem already reduce the
        // residual substantially.
        assert!(result.relative_residual < 0.5);
    }

    #[test]
    fn default_config_is_the_nekbone_shape() {
        let c = ProxyConfig::default();
        assert_eq!(c.degree, 7);
        assert_eq!(c.cg_iterations, 100);
        assert_eq!(c.num_elements(), 512);
    }
}
