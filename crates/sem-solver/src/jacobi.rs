//! Diagonal (Jacobi) preconditioner.
//!
//! The preconditioner is the inverse of the *assembled* operator diagonal:
//! the per-element diagonals are direct-stiffness-summed so shared nodes see
//! the diagonal of the global matrix, exactly as Nekbone does.

use crate::cg::Preconditioner;
use sem_kernel::{assemble::operator_diagonal, PoissonOperator};
use sem_mesh::{DirichletMask, ElementField, GatherScatter};

/// Jacobi preconditioner `M = diag(A)`.
#[derive(Debug, Clone)]
pub struct JacobiPreconditioner {
    inverse_diagonal: ElementField,
    /// Modelled seconds one application costs when the backend claims the
    /// pointwise scale on-device (`None`: measure wall-clock instead).
    modeled_seconds: Option<f64>,
}

impl JacobiPreconditioner {
    /// Build the preconditioner from the operator, summing the element
    /// diagonals across shared nodes and masking the boundary.
    #[must_use]
    pub fn new(
        operator: &PoissonOperator,
        gather_scatter: &GatherScatter,
        mask: &DirichletMask,
    ) -> Self {
        let mut diag = operator_diagonal(operator);
        gather_scatter.direct_stiffness_sum(&mut diag);
        let mut inverse_diagonal = diag.clone();
        for (inv, &d) in inverse_diagonal
            .as_mut_slice()
            .iter_mut()
            .zip(diag.as_slice())
        {
            // Diagonal entries are strictly positive on valid meshes; guard
            // anyway so a degenerate input cannot produce infinities.
            *inv = if d.abs() > f64::MIN_POSITIVE {
                1.0 / d
            } else {
                0.0
            };
        }
        // Masked (Dirichlet) nodes never participate in the solve.
        mask.apply(&mut inverse_diagonal);
        Self {
            inverse_diagonal,
            modeled_seconds: None,
        }
    }

    /// The same preconditioner with a modelled per-application cost attached
    /// (used when an accelerator backend claims the pass on-device).
    #[must_use]
    pub fn with_modeled_seconds(mut self, seconds: f64) -> Self {
        self.modeled_seconds = Some(seconds);
        self
    }

    /// The inverse diagonal as a field (for inspection/tests).
    #[must_use]
    pub fn inverse_diagonal(&self) -> &ElementField {
        &self.inverse_diagonal
    }
}

impl Preconditioner for JacobiPreconditioner {
    // lint: alloc-free (runs once per CG iteration against caller scratch)
    fn apply_into(&self, r: &ElementField, z: &mut ElementField) {
        z.copy_from(r);
        z.pointwise_mul(&self.inverse_diagonal);
    }

    fn seconds_per_application(&self) -> Option<f64> {
        self.modeled_seconds
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cg::{CgOptions, CgSolver, IdentityPreconditioner};
    use sem_kernel::AxImplementation;
    use sem_mesh::BoxMesh;

    #[test]
    fn inverse_diagonal_is_positive_in_the_interior() {
        let mesh = BoxMesh::unit_cube(4, 2);
        let op = PoissonOperator::new(&mesh, AxImplementation::Optimized);
        let gs = GatherScatter::from_mesh(&mesh);
        let mask = DirichletMask::from_mesh(&mesh);
        let pc = JacobiPreconditioner::new(&op, &gs, &mask);
        let nx = mesh.points_per_direction();
        for e in 0..mesh.num_elements() {
            for k in 0..nx {
                for j in 0..nx {
                    for i in 0..nx {
                        let v = pc.inverse_diagonal().at(e, i, j, k);
                        if mesh.is_boundary_node(e, i, j, k) {
                            assert_eq!(v, 0.0);
                        } else {
                            assert!(v > 0.0);
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn jacobi_reduces_iteration_count() {
        let degree = 6;
        let mesh = BoxMesh::unit_cube(degree, 2);
        let op = PoissonOperator::new(&mesh, AxImplementation::Optimized);
        let gs = GatherScatter::from_mesh(&mesh);
        let mask = DirichletMask::from_mesh(&mesh);
        let solver = CgSolver::new(
            &op,
            &gs,
            &mask,
            CgOptions {
                max_iterations: 2000,
                tolerance: 1e-10,
                record_history: false,
            },
        );
        let mut x_exact = mesh.evaluate(|x, y, z| {
            (std::f64::consts::PI * x).sin()
                * (std::f64::consts::PI * y).sin()
                * (std::f64::consts::PI * z).sin()
        });
        mask.apply(&mut x_exact);
        let rhs = solver.apply_operator(&x_exact);

        let plain = solver.solve(&rhs, &IdentityPreconditioner);
        let pc = JacobiPreconditioner::new(&op, &gs, &mask);
        let precond = solver.solve(&rhs, &pc);

        assert!(plain.converged && precond.converged);
        assert!(
            precond.iterations <= plain.iterations,
            "jacobi {} vs plain {}",
            precond.iterations,
            plain.iterations
        );
    }

    #[test]
    fn preconditioned_solution_matches_plain_solution() {
        let mesh = BoxMesh::unit_cube(3, 2);
        let op = PoissonOperator::new(&mesh, AxImplementation::Optimized);
        let gs = GatherScatter::from_mesh(&mesh);
        let mask = DirichletMask::from_mesh(&mesh);
        let solver = CgSolver::new(&op, &gs, &mask, CgOptions::default());
        let mut x_exact = mesh.evaluate(|x, y, z| x * (1.0 - x) * y * (1.0 - y) * z * (1.0 - z));
        mask.apply(&mut x_exact);
        let rhs = solver.apply_operator(&x_exact);
        let pc = JacobiPreconditioner::new(&op, &gs, &mask);
        let a = solver.solve(&rhs, &IdentityPreconditioner);
        let b = solver.solve(&rhs, &pc);
        let mut diff = a.solution.clone();
        diff.axpy(-1.0, &b.solution);
        assert!(diff.max_abs() < 1e-7);
    }
}
