//! Vendored, dependency-free stand-in for the subset of `serde` (plus a
//! `serde_json`-style JSON module) that this workspace uses.
//!
//! The build environment of this repository has no access to crates.io, so
//! the real `serde` cannot be pulled in.  Rather than stubbing serialization
//! out entirely, this crate implements a small but genuine data model:
//!
//! * [`Value`] — a JSON-like tree (null, bool, number, string, array,
//!   object);
//! * [`Serialize`] / [`Deserialize`] — traits converting types to and from
//!   [`Value`];
//! * [`json`] — a JSON writer/parser so values (and therefore any deriving
//!   type) round-trip through text;
//! * re-exported `#[derive(Serialize, Deserialize)]` macros (from the
//!   companion `serde_derive` proc-macro crate) that generate field-wise
//!   implementations using serde's externally-tagged enum representation.
//!
//! The surface is intentionally tiny, but it is *real*: `to_value` →
//! `json::to_string` → `json::from_str` → `from_value` reproduces the
//! original datum, which is what the workspace's config round-trip tests
//! exercise.  Swapping the real serde back in later only requires deleting
//! this crate and pointing the workspace dependency at crates.io.

#![deny(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};

pub mod json;
mod value;

pub use value::Value;

/// Error produced when a [`Value`] cannot be interpreted as the requested
/// type, or when JSON text cannot be parsed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    /// Create an error with the given message.
    #[must_use]
    pub fn new(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "serde error: {}", self.message)
    }
}

impl std::error::Error for Error {}

/// Types that can be converted into a [`Value`] tree.
pub trait Serialize {
    /// Convert `self` into a [`Value`].
    fn to_value(&self) -> Value;
}

/// Types that can be reconstructed from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Reconstruct `Self` from a [`Value`], or explain why it does not fit.
    ///
    /// # Errors
    /// Returns an [`Error`] when the value's shape or content does not match.
    fn from_value(value: &Value) -> Result<Self, Error>;
}

// ---------------------------------------------------------------------------
// Primitive implementations
// ---------------------------------------------------------------------------

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(f64::from(*self))
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                match value {
                    Value::Number(n) => Ok(*n as $t),
                    other => Err(Error::new(format!(
                        "expected number, found {}", other.kind()
                    ))),
                }
            }
        }
    )*};
}

impl_float!(f32, f64);

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                match value {
                    Value::Number(n) => {
                        if n.fract() != 0.0 {
                            return Err(Error::new(format!(
                                "expected integer, found {n}"
                            )));
                        }
                        Ok(*n as $t)
                    }
                    other => Err(Error::new(format!(
                        "expected integer, found {}", other.kind()
                    ))),
                }
            }
        }
    )*};
}

impl_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::new(format!("expected bool, found {}", other.kind()))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::String(s) => Ok(s.clone()),
            other => Err(Error::new(format!(
                "expected string, found {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => Ok(Some(T::from_value(other)?)),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::new(format!(
                "expected array, found {}",
                other.kind()
            ))),
        }
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let items = Vec::<T>::from_value(value)?;
        let found = items.len();
        items
            .try_into()
            .map_err(|_| Error::new(format!("expected array of length {N}, found {found}")))
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Array(items) if items.len() == 2 => {
                Ok((A::from_value(&items[0])?, B::from_value(&items[1])?))
            }
            other => Err(Error::new(format!(
                "expected two-element array, found {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u32::from_value(&7u32.to_value()).unwrap(), 7);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert!(bool::from_value(&true.to_value()).unwrap());
        let v: Vec<f64> = vec![1.0, 2.0];
        assert_eq!(Vec::<f64>::from_value(&v.to_value()).unwrap(), v);
        let a: [usize; 3] = [4, 4, 4];
        assert_eq!(<[usize; 3]>::from_value(&a.to_value()).unwrap(), a);
        let o: Option<String> = None;
        assert_eq!(Option::<String>::from_value(&o.to_value()).unwrap(), None);
    }

    #[test]
    fn type_mismatches_are_reported() {
        assert!(bool::from_value(&Value::Number(1.0)).is_err());
        assert!(u64::from_value(&Value::Number(0.5)).is_err());
        assert!(<[f64; 2]>::from_value(&Value::Array(vec![Value::Number(1.0)])).is_err());
    }
}
