//! The JSON-like value tree.

use crate::Error;

/// A JSON-like datum: the intermediate representation every serializable
/// type converts through.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (stored as `f64`, like JavaScript/JSON).
    Number(f64),
    /// A string.
    String(String),
    /// An ordered sequence.
    Array(Vec<Value>),
    /// An ordered map of string keys to values (insertion order preserved so
    /// output is deterministic).
    Object(Vec<(String, Value)>),
}

impl Value {
    /// A short human-readable name of the variant, for error messages.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Number(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }

    /// Look up a key in an object.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Look up a required object field, with a descriptive error.
    ///
    /// # Errors
    /// Returns an [`Error`] if `self` is not an object or lacks the field.
    pub fn field(&self, key: &str) -> Result<&Value, Error> {
        match self {
            Value::Object(_) => self
                .get(key)
                .ok_or_else(|| Error::new(format!("missing field `{key}`"))),
            other => Err(Error::new(format!(
                "expected object with field `{key}`, found {}",
                other.kind()
            ))),
        }
    }

    /// The string content, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric content, if this is a number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }
}
