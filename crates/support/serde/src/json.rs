//! JSON text encoding and decoding for [`Value`] trees (and therefore for
//! any type implementing the crate's [`Serialize`]/[`Deserialize`] traits).

use crate::{Deserialize, Error, Serialize, Value};

/// Serialize a value to compact JSON text.
#[must_use]
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> String {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out);
    out
}

/// Parse JSON text into any deserializable type.
///
/// # Errors
/// Returns an [`Error`] on malformed JSON or on a shape mismatch.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let value = parse_value(text)?;
    T::from_value(&value)
}

/// Parse JSON text into a raw [`Value`].
///
/// # Errors
/// Returns an [`Error`] on malformed JSON or trailing input.
pub fn parse_value(text: &str) -> Result<Value, Error> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    parser.skip_whitespace();
    let value = parser.parse()?;
    parser.skip_whitespace();
    if parser.pos != parser.bytes.len() {
        return Err(Error::new(format!(
            "trailing characters at byte {}",
            parser.pos
        )));
    }
    Ok(value)
}

fn write_value(value: &Value, out: &mut String) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => {
            if n.is_finite() {
                // Rust's shortest-round-trip formatting keeps `from_str ∘
                // to_string` lossless for every finite double.
                out.push_str(&format!("{n}"));
            } else {
                // JSON has no infinities; null is the conventional fallback.
                out.push_str("null");
            }
        }
        Value::String(s) => write_string(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out);
            }
            out.push(']');
        }
        Value::Object(entries) => {
            out.push('{');
            for (i, (key, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(key, out);
                out.push(':');
                write_value(item, out);
            }
            out.push('}');
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_whitespace(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                byte as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, literal: &str) -> bool {
        if self.bytes[self.pos..].starts_with(literal.as_bytes()) {
            self.pos += literal.len();
            true
        } else {
            false
        }
    }

    fn parse(&mut self) -> Result<Value, Error> {
        self.skip_whitespace();
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            Some(b) => Err(Error::new(format!(
                "unexpected `{}` at byte {}",
                b as char, self.pos
            ))),
            None => Err(Error::new("unexpected end of input")),
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number encoding"))?;
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let rest = &self.bytes[self.pos..];
            let mut chars = std::str::from_utf8(rest)
                .map_err(|_| Error::new("invalid UTF-8 in string"))?
                .chars();
            match chars.next() {
                None => return Err(Error::new("unterminated string")),
                Some('"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some('\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| Error::new("invalid \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::new("invalid \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("invalid \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(Error::new("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(c) => {
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse()?);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `]` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_whitespace();
            let key = self.parse_string()?;
            self.skip_whitespace();
            self.expect(b':')?;
            let value = self.parse()?;
            entries.push((key, value));
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn values_round_trip_through_text() {
        let value = Value::Object(vec![
            (
                "name".to_string(),
                Value::String("GX2800 \"520N\"".to_string()),
            ),
            ("banks".to_string(), Value::Number(4.0)),
            ("bw".to_string(), Value::Number(76.8)),
            (
                "flags".to_string(),
                Value::Array(vec![Value::Bool(true), Value::Null]),
            ),
        ]);
        let text = {
            let mut out = String::new();
            write_value(&value, &mut out);
            out
        };
        assert_eq!(parse_value(&text).unwrap(), value);
    }

    #[test]
    fn doubles_survive_exactly() {
        for x in [0.1, 76.8, 1.0 / 3.0, -2.5e-11, f64::MAX] {
            let text = to_string(&x);
            let back: f64 = from_str(&text).unwrap();
            assert_eq!(back, x);
        }
    }

    #[test]
    fn malformed_input_errors() {
        assert!(parse_value("{").is_err());
        assert!(parse_value("[1,]").is_err());
        assert!(parse_value("12 34").is_err());
        assert!(parse_value("\"unterminated").is_err());
    }
}
