//! Vendored stand-in for the subset of `rand` this workspace uses in tests:
//! `StdRng::seed_from_u64(..)` plus `Rng::gen_range(a..b)` for floats and
//! integers.
//!
//! The offline build environment cannot fetch the real `rand`.  The
//! generator here is SplitMix64 seeded xoshiro256**, which is more than
//! adequate for generating test fields; it is *not* intended for
//! cryptographic use.  Streams are fully deterministic per seed, which is
//! what the reproducibility-sensitive tests rely on.

#![deny(missing_docs)]
#![deny(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// High-level sampling helpers, automatically available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Sample uniformly from a half-open range `low..high`.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<T: RngCore> Rng for T {}

/// Ranges that can be sampled uniformly.
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draw one uniform sample from the range.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> Self::Output;
}

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample_from<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample an empty range");
        // 53 uniform mantissa bits in [0, 1).
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + (self.end - self.start) * unit
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample an empty range");
                let span = (self.end - self.start) as u64;
                // Modulo bias is negligible for the small spans tests use.
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample an empty range");
                let span = (end - start) as u64 + 1;
                start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

impl_int_range!(usize, u64, u32, u16, u8);

impl SampleRange for RangeInclusive<f64> {
    type Output = f64;
    fn sample_from<R: RngCore>(self, rng: &mut R) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "cannot sample an empty range");
        // Closed-interval sampling: 53 uniform bits over [0, 1].
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64);
        start + (end - start) * unit
    }
}

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Construct a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    pub use super::StdRng;
}

/// The default deterministic generator: xoshiro256** seeded via SplitMix64.
#[derive(Debug, Clone)]
pub struct StdRng {
    state: [u64; 4],
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        // SplitMix64 expansion, the standard way to seed xoshiro.
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        Self {
            state: [next(), next(), next(), next()],
        }
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let [s0, s1, s2, s3] = self.state;
        let result = s1.wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s1 << 17;
        let mut s = [s0, s1, s2, s3];
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        self.state = s;
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(11);
        let mut b = StdRng::seed_from_u64(11);
        let mut c = StdRng::seed_from_u64(12);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn float_samples_stay_in_range_and_vary() {
        let mut rng = StdRng::seed_from_u64(7);
        let samples: Vec<f64> = (0..1000).map(|_| rng.gen_range(-1.0..1.0)).collect();
        assert!(samples.iter().all(|&x| (-1.0..1.0).contains(&x)));
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        assert!(mean.abs() < 0.1, "mean {mean} suspiciously far from zero");
        let distinct: std::collections::HashSet<u64> =
            samples.iter().map(|x| x.to_bits()).collect();
        assert!(distinct.len() > 990);
    }

    #[test]
    fn integer_samples_cover_the_range() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 5];
        for _ in 0..200 {
            seen[rng.gen_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
