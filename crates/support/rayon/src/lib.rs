//! Vendored stand-in for the slice-parallelism subset of `rayon` that this
//! workspace uses (`par_chunks_mut(..).enumerate().for_each_init(..)`).
//!
//! The offline build environment cannot fetch the real `rayon`, so this crate
//! provides the same API backed by `std::thread::scope`: the chunk list is
//! divided into contiguous runs, one per available core, and each worker
//! thread owns a private `for_each_init` state.  Semantics match rayon where
//! it matters for this workspace: every chunk is visited exactly once with
//! its global index, chunk-local arithmetic is unchanged (so results are
//! bitwise identical to sequential execution), and the closure requirements
//! (`Sync` operations over `Send` data) are the same.

#![deny(missing_docs)]
#![deny(unsafe_code)]

use std::num::NonZeroUsize;

/// Rayon-style prelude: import the parallel-slice extension trait.
pub mod prelude {
    pub use crate::ParallelSliceMut;
}

/// Extension trait adding parallel chunk iteration to mutable slices.
pub trait ParallelSliceMut<T: Send> {
    /// Split the slice into chunks of `chunk_size` (the last chunk may be
    /// shorter) for parallel traversal.
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T> {
        assert!(chunk_size > 0, "chunk size must be positive");
        ParChunksMut {
            slice: self,
            chunk_size,
        }
    }
}

/// Parallel iterator over mutable chunks of a slice.
pub struct ParChunksMut<'a, T> {
    slice: &'a mut [T],
    chunk_size: usize,
}

impl<'a, T: Send> ParChunksMut<'a, T> {
    /// Pair every chunk with its index.
    #[must_use]
    pub fn enumerate(self) -> EnumeratedChunksMut<'a, T> {
        EnumeratedChunksMut(self)
    }

    /// Run `op` on every chunk in parallel.
    pub fn for_each<F>(self, op: F)
    where
        F: Fn(&mut [T]) + Sync,
    {
        self.enumerate()
            .for_each_init(|| (), |(), (_, chunk)| op(chunk));
    }
}

/// An enumerated parallel chunk iterator.
pub struct EnumeratedChunksMut<'a, T>(ParChunksMut<'a, T>);

impl<T: Send> EnumeratedChunksMut<'_, T> {
    /// Run `op` on every `(index, chunk)` pair in parallel, giving each
    /// worker thread its own state created by `init`.
    pub fn for_each_init<S, INIT, F>(self, init: INIT, op: F)
    where
        INIT: Fn() -> S + Sync,
        F: Fn(&mut S, (usize, &mut [T])) + Sync,
    {
        let chunk_size = self.0.chunk_size;
        let slice = self.0.slice;
        if slice.is_empty() {
            return;
        }
        let num_chunks = slice.len().div_ceil(chunk_size);
        let threads = std::thread::available_parallelism()
            .map_or(1, NonZeroUsize::get)
            .min(num_chunks);

        if threads <= 1 {
            let mut state = init();
            for (index, chunk) in slice.chunks_mut(chunk_size).enumerate() {
                op(&mut state, (index, chunk));
            }
            return;
        }

        let chunks_per_thread = num_chunks.div_ceil(threads);
        let init = &init;
        let op = &op;
        std::thread::scope(|scope| {
            let mut rest = slice;
            let mut first_index = 0;
            while !rest.is_empty() {
                let take = (chunks_per_thread * chunk_size).min(rest.len());
                let (run, tail) = rest.split_at_mut(take);
                rest = tail;
                let base = first_index;
                first_index += run.len().div_ceil(chunk_size);
                scope.spawn(move || {
                    let mut state = init();
                    for (offset, chunk) in run.chunks_mut(chunk_size).enumerate() {
                        op(&mut state, (base + offset, chunk));
                    }
                });
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use std::num::NonZeroUsize;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn every_chunk_is_visited_once_with_its_global_index() {
        let mut data = vec![0usize; 103]; // deliberately not a multiple of 4
        data.as_mut_slice()
            .par_chunks_mut(4)
            .enumerate()
            .for_each_init(
                || (),
                |(), (index, chunk)| {
                    for v in chunk.iter_mut() {
                        *v = index + 1;
                    }
                },
            );
        for (i, v) in data.iter().enumerate() {
            assert_eq!(*v, i / 4 + 1);
        }
    }

    #[test]
    fn init_runs_at_most_once_per_thread() {
        let inits = AtomicUsize::new(0);
        let mut data = vec![0u8; 64];
        data.as_mut_slice()
            .par_chunks_mut(1)
            .enumerate()
            .for_each_init(
                || inits.fetch_add(1, Ordering::SeqCst),
                |_, (_, chunk)| chunk[0] = 1,
            );
        let threads = std::thread::available_parallelism().map_or(1, NonZeroUsize::get);
        assert!(inits.load(Ordering::SeqCst) <= threads.min(64));
        assert!(data.iter().all(|&v| v == 1));
    }

    #[test]
    fn empty_slices_are_a_no_op() {
        let mut data: Vec<f64> = Vec::new();
        data.as_mut_slice()
            .par_chunks_mut(8)
            .for_each(|_| panic!("must not be called"));
    }
}
