//! An unbounded MPSC channel with the `crossbeam-channel` API shape:
//! cloneable [`Sender`]s, a blocking [`Receiver`], and disconnection
//! semantics (a receive on an empty channel with no live senders fails
//! instead of blocking forever).

use crate::sched::{self, SchedOp};
use std::collections::VecDeque;
use std::fmt;
use std::sync::{Arc, Condvar, Mutex};

/// The error returned by [`Sender::send`] when the receiver is gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SendError<T>(pub T);

impl<T> fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sending on a disconnected channel")
    }
}

/// The error returned by [`Receiver::recv`] when the channel is empty and
/// every sender is gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "receiving on an empty, disconnected channel")
    }
}

/// The error returned by [`Receiver::try_recv`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    /// The channel is empty but senders are still alive.
    Empty,
    /// The channel is empty and every sender is gone.
    Disconnected,
}

struct Inner<T> {
    queue: VecDeque<T>,
    senders: usize,
    receiver_alive: bool,
}

struct Shared<T> {
    inner: Mutex<Inner<T>>,
    ready: Condvar,
}

/// An unbounded channel: any number of senders, one receiver.
#[must_use]
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        inner: Mutex::new(Inner {
            queue: VecDeque::new(),
            senders: 1,
            receiver_alive: true,
        }),
        ready: Condvar::new(),
    });
    (
        Sender {
            shared: Arc::clone(&shared),
        },
        Receiver { shared },
    )
}

/// The sending half of a channel.
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

impl<T> Sender<T> {
    /// Send a message; fails only if the receiver was dropped.
    pub fn send(&self, message: T) -> Result<(), SendError<T>> {
        sched::yield_point(SchedOp::ChannelSend);
        let mut inner = self.shared.inner.lock().expect("channel poisoned");
        if !inner.receiver_alive {
            return Err(SendError(message));
        }
        inner.queue.push_back(message);
        drop(inner);
        self.shared.ready.notify_one();
        Ok(())
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.shared.inner.lock().expect("channel poisoned").senders += 1;
        Self {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut inner = self.shared.inner.lock().expect("channel poisoned");
        inner.senders -= 1;
        let last = inner.senders == 0;
        drop(inner);
        if last {
            // Wake the receiver so it can observe the disconnection.
            self.shared.ready.notify_all();
        }
    }
}

/// The receiving half of a channel.
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

impl<T> Receiver<T> {
    /// Block until a message arrives or every sender is gone.
    pub fn recv(&self) -> Result<T, RecvError> {
        sched::yield_point(SchedOp::ChannelRecv);
        let mut inner = self.shared.inner.lock().expect("channel poisoned");
        loop {
            if let Some(message) = inner.queue.pop_front() {
                return Ok(message);
            }
            if inner.senders == 0 {
                return Err(RecvError);
            }
            inner = self
                .shared
                .ready
                .wait(inner)
                .expect("channel poisoned while waiting");
        }
    }

    /// Take a message if one is already queued.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        sched::yield_point(SchedOp::ChannelRecv);
        let mut inner = self.shared.inner.lock().expect("channel poisoned");
        match inner.queue.pop_front() {
            Some(message) => Ok(message),
            None if inner.senders == 0 => Err(TryRecvError::Disconnected),
            None => Err(TryRecvError::Empty),
        }
    }

    /// A blocking iterator over incoming messages; ends when every sender is
    /// gone and the queue is drained.
    pub fn iter(&self) -> Iter<'_, T> {
        Iter { receiver: self }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        self.shared
            .inner
            .lock()
            .expect("channel poisoned")
            .receiver_alive = false;
    }
}

impl<'a, T> IntoIterator for &'a Receiver<T> {
    type Item = T;
    type IntoIter = Iter<'a, T>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

/// Blocking message iterator (see [`Receiver::iter`]).
pub struct Iter<'a, T> {
    receiver: &'a Receiver<T>,
}

impl<T> Iterator for Iter<'_, T> {
    type Item = T;

    fn next(&mut self) -> Option<T> {
        self.receiver.recv().ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_arrive_in_send_order() {
        let (tx, rx) = unbounded();
        for i in 0..10 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let got: Vec<i32> = rx.iter().collect();
        assert_eq!(got, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn recv_unblocks_on_last_sender_drop() {
        let (tx, rx) = unbounded::<u32>();
        let tx2 = tx.clone();
        let handle = std::thread::spawn(move || {
            tx2.send(1).unwrap();
            drop(tx2);
        });
        drop(tx);
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Err(RecvError), "disconnected after drain");
        handle.join().unwrap();
    }

    #[test]
    fn try_recv_distinguishes_empty_from_disconnected() {
        let (tx, rx) = unbounded::<u8>();
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        tx.send(9).unwrap();
        assert_eq!(rx.try_recv(), Ok(9));
        drop(tx);
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn send_fails_after_receiver_drop() {
        let (tx, rx) = unbounded::<u8>();
        drop(rx);
        assert_eq!(tx.send(3), Err(SendError(3)));
    }

    #[test]
    fn many_producers_conserve_messages() {
        let (tx, rx) = unbounded::<(usize, usize)>();
        std::thread::scope(|scope| {
            for producer in 0..4 {
                let tx = tx.clone();
                scope.spawn(move || {
                    for i in 0..250 {
                        tx.send((producer, i)).unwrap();
                    }
                });
            }
            drop(tx);
            let mut counts = [0usize; 4];
            let mut last_seen = [None::<usize>; 4];
            for (producer, i) in &rx {
                counts[producer] += 1;
                // Per-sender FIFO: each producer's messages arrive in order.
                assert!(last_seen[producer].is_none_or(|prev| prev < i));
                last_seen[producer] = Some(i);
            }
            assert_eq!(counts, [250; 4]);
        });
    }
}
