//! A pluggable schedule hook for systematic concurrency testing.
//!
//! Every queue operation in [`crate::deque`] and [`crate::channel`] passes
//! through [`yield_point`] before it touches shared state.  In production no
//! scheduler is installed and the call is a single relaxed atomic load — the
//! hook exists so a loom-style explorer (see `sem_serve::explore`) can
//! serialize a pool of worker threads and drive them through chosen
//! interleavings: each *controlled* thread parks at every yield point until
//! the installed [`Scheduler`] grants it the next step.
//!
//! Threads opt in explicitly with [`controlled`]; uncontrolled threads (the
//! caller that seeds queues, unrelated tests in the same process) pass
//! through untouched, so installing a scheduler perturbs only the pool under
//! test.

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

/// The shared-state operation a controlled thread is about to perform.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SchedOp {
    /// `Injector::push`.
    InjectorPush,
    /// `Injector::steal`.
    InjectorSteal,
    /// `Worker::push`.
    WorkerPush,
    /// `Worker::pop` (owner side).
    WorkerPop,
    /// `Stealer::steal` (thief side).
    WorkerSteal,
    /// `channel::Sender::send`.
    ChannelSend,
    /// `channel::Receiver::recv` / `try_recv`.
    ChannelRecv,
}

impl SchedOp {
    /// Short stable mnemonic (used in schedule traces).
    #[must_use]
    pub fn mnemonic(self) -> &'static str {
        match self {
            SchedOp::InjectorPush => "ip",
            SchedOp::InjectorSteal => "is",
            SchedOp::WorkerPush => "wp",
            SchedOp::WorkerPop => "wo",
            SchedOp::WorkerSteal => "ws",
            SchedOp::ChannelSend => "cs",
            SchedOp::ChannelRecv => "cr",
        }
    }
}

/// A schedule controller for a pool of cooperating threads.
///
/// Implementations typically *block* inside [`Scheduler::thread_started`] and
/// [`Scheduler::yield_point`] until they decide it is the calling thread's
/// turn, which serializes the pool and makes the interleaving a pure function
/// of the controller's choices.
pub trait Scheduler: Send + Sync {
    /// A controlled thread came up and identifies as `index`.  Called once
    /// per thread, before any yield point from that thread.
    fn thread_started(&self, index: usize);

    /// A controlled thread is about to perform `op`.  Returning hands the
    /// thread one step: it runs until its next yield point (or until it
    /// finishes).
    fn yield_point(&self, index: usize, op: SchedOp);

    /// A controlled thread is done: it will reach no further yield points.
    fn thread_finished(&self, index: usize);

    /// Whether the steal operation `op` the controlled thread `index` is
    /// about to perform should observe simulated contention
    /// ([`crate::deque::Steal::Retry`]) instead of touching the queue.
    ///
    /// Called *after* [`Scheduler::yield_point`] grants the step, so the
    /// decision rides the granted step rather than adding one.  The
    /// default — no contention, ever — preserves the vendored deque's
    /// uncontended behaviour; explorers override it to drive the
    /// contended-sweep paths that a mutex-backed deque can otherwise
    /// never reach.
    fn steal_contended(&self, index: usize, op: SchedOp) -> bool {
        let _ = (index, op);
        false
    }
}

/// Fast-path flag: true only while a scheduler is installed.
static ACTIVE: AtomicBool = AtomicBool::new(false);

/// The installed scheduler.  Guarded by a mutex only on install/uninstall
/// and thread registration — yield points use the thread-local clone.
static INSTALLED: Mutex<Option<Arc<dyn Scheduler>>> = Mutex::new(None);

thread_local! {
    /// This thread's control registration: its pool index plus a clone of
    /// the scheduler it registered with (so yield points never take the
    /// global lock).
    static CONTROL: RefCell<Option<(usize, Arc<dyn Scheduler>)>> = const { RefCell::new(None) };
}

/// Install `scheduler` as the process-wide schedule controller.
///
/// # Panics
/// Panics if a scheduler is already installed — explorers must serialize
/// (and [`uninstall`]) their runs.
pub fn install(scheduler: Arc<dyn Scheduler>) {
    let mut slot = INSTALLED.lock().expect("scheduler slot poisoned");
    assert!(
        slot.is_none(),
        "a schedule controller is already installed; explorer runs must not overlap"
    );
    *slot = Some(scheduler);
    ACTIVE.store(true, Ordering::SeqCst);
}

/// Remove the installed scheduler (no-op when none is installed).
pub fn uninstall() {
    let mut slot = INSTALLED.lock().expect("scheduler slot poisoned");
    ACTIVE.store(false, Ordering::SeqCst);
    *slot = None;
}

/// Register the calling thread as controlled pool member `index` for the
/// lifetime of the returned guard.  Inert (and nearly free) when no
/// scheduler is installed.
#[must_use]
pub fn controlled(index: usize) -> ControlGuard {
    if !ACTIVE.load(Ordering::SeqCst) {
        return ControlGuard { registered: false };
    }
    let scheduler = INSTALLED
        .lock()
        .expect("scheduler slot poisoned")
        .as_ref()
        .map(Arc::clone);
    match scheduler {
        Some(scheduler) => {
            CONTROL.with(|cell| *cell.borrow_mut() = Some((index, Arc::clone(&scheduler))));
            scheduler.thread_started(index);
            ControlGuard { registered: true }
        }
        None => ControlGuard { registered: false },
    }
}

/// RAII registration of a controlled thread (see [`controlled`]).
#[derive(Debug)]
pub struct ControlGuard {
    registered: bool,
}

impl Drop for ControlGuard {
    fn drop(&mut self) {
        if !self.registered {
            return;
        }
        CONTROL.with(|cell| {
            if let Some((index, scheduler)) = cell.borrow_mut().take() {
                scheduler.thread_finished(index);
            }
        });
    }
}

/// The instrumentation point every queue operation passes through.  A single
/// relaxed load when no scheduler is installed; a scheduling decision when
/// the calling thread is controlled.
#[inline]
pub(crate) fn yield_point(op: SchedOp) {
    if !ACTIVE.load(Ordering::Relaxed) {
        return;
    }
    yield_point_slow(op);
}

#[cold]
fn yield_point_slow(op: SchedOp) {
    let control = CONTROL.with(|cell| {
        cell.borrow()
            .as_ref()
            .map(|(index, scheduler)| (*index, Arc::clone(scheduler)))
    });
    if let Some((index, scheduler)) = control {
        scheduler.yield_point(index, op);
    }
}

/// Ask the installed scheduler whether the steal `op` the calling thread is
/// about to perform should fail with simulated contention.  Always false in
/// production (no scheduler installed) and for uncontrolled threads.
#[inline]
pub(crate) fn simulate_contention(op: SchedOp) -> bool {
    if !ACTIVE.load(Ordering::Relaxed) {
        return false;
    }
    simulate_contention_slow(op)
}

#[cold]
fn simulate_contention_slow(op: SchedOp) -> bool {
    let control = CONTROL.with(|cell| {
        cell.borrow()
            .as_ref()
            .map(|(index, scheduler)| (*index, Arc::clone(scheduler)))
    });
    match control {
        Some((index, scheduler)) => scheduler.steal_contended(index, op),
        None => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    /// A recorder that never blocks: counts events per phase.
    struct Recorder {
        started: AtomicUsize,
        yields: AtomicUsize,
        finished: AtomicUsize,
    }

    impl Scheduler for Recorder {
        fn thread_started(&self, _index: usize) {
            self.started.fetch_add(1, Ordering::SeqCst);
        }
        fn yield_point(&self, _index: usize, _op: SchedOp) {
            self.yields.fetch_add(1, Ordering::SeqCst);
        }
        fn thread_finished(&self, _index: usize) {
            self.finished.fetch_add(1, Ordering::SeqCst);
        }
    }

    /// Serializes the two tests below: both touch the process-global
    /// installed-scheduler slot.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn uncontrolled_threads_pass_through_without_a_scheduler() {
        let _serial = TEST_LOCK.lock().unwrap();
        // No install: ops run normally and the guard is inert.
        let guard = controlled(0);
        let injector = crate::deque::Injector::new();
        injector.push(1);
        assert_eq!(injector.steal().success(), Some(1));
        drop(guard);
    }

    #[test]
    fn controlled_threads_report_to_the_installed_scheduler() {
        let _serial = TEST_LOCK.lock().unwrap();
        let recorder = Arc::new(Recorder {
            started: AtomicUsize::new(0),
            yields: AtomicUsize::new(0),
            finished: AtomicUsize::new(0),
        });
        install(Arc::clone(&recorder) as Arc<dyn Scheduler>);
        std::thread::scope(|scope| {
            scope.spawn(|| {
                let _guard = controlled(3);
                let worker = crate::deque::Worker::new_fifo();
                worker.push(7);
                assert_eq!(worker.pop(), Some(7));
            });
        });
        uninstall();
        assert_eq!(recorder.started.load(Ordering::SeqCst), 1);
        assert_eq!(recorder.finished.load(Ordering::SeqCst), 1);
        // Two deque ops passed through the hook.
        assert_eq!(recorder.yields.load(Ordering::SeqCst), 2);
        // After uninstall the hook is inert again.
        let _guard = controlled(0);
        let injector = crate::deque::Injector::new();
        injector.push(1);
        assert_eq!(recorder.yields.load(Ordering::SeqCst), 2);
    }

    /// Grants every step; injects contention into the first `budget`
    /// injector steals.
    struct Contender {
        budget: AtomicUsize,
    }

    impl Scheduler for Contender {
        fn thread_started(&self, _index: usize) {}
        fn yield_point(&self, _index: usize, _op: SchedOp) {}
        fn thread_finished(&self, _index: usize) {}
        fn steal_contended(&self, _index: usize, op: SchedOp) -> bool {
            if op != SchedOp::InjectorSteal {
                return false;
            }
            self.budget
                .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |left| {
                    left.checked_sub(1)
                })
                .is_ok()
        }
    }

    #[test]
    fn a_scheduler_can_inject_retry_into_controlled_steals() {
        let _serial = TEST_LOCK.lock().unwrap();
        install(Arc::new(Contender {
            budget: AtomicUsize::new(2),
        }) as Arc<dyn Scheduler>);
        let injector = crate::deque::Injector::new();
        injector.push(9);
        std::thread::scope(|scope| {
            scope.spawn(|| {
                let _guard = controlled(0);
                // The first two steals see simulated contention, the third
                // lands; worker-deque steals are untouched.
                assert!(injector.steal().is_retry());
                assert!(injector.steal().is_retry());
                assert_eq!(injector.steal().success(), Some(9));
            });
        });
        uninstall();
        // Uncontrolled threads never see injected contention.
        injector.push(4);
        assert_eq!(injector.steal().success(), Some(4));
    }
}
