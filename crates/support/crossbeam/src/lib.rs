//! Vendored stand-in for the subset of `crossbeam` this workspace uses:
//! the work-stealing deque trio ([`deque::Injector`], [`deque::Worker`],
//! [`deque::Stealer`]) and an unbounded MPSC [`channel`], instrumented with
//! a pluggable schedule hook ([`sched`]) for systematic interleaving
//! exploration (a no-op unless a test explorer installs a controller).
//!
//! The offline build environment cannot fetch the real `crossbeam`, so this
//! crate provides the same API surface backed by `std::sync` primitives
//! (`Mutex`, `Condvar`, `Arc`) instead of lock-free algorithms.  Semantics
//! match crossbeam where it matters for this workspace: every pushed item is
//! taken exactly once, FIFO order holds per queue, stealers may be cloned
//! and shared across threads, and a channel receiver observes messages in
//! send order per sender and unblocks when every sender is gone.  What this
//! implementation does *not* reproduce is crossbeam's performance profile —
//! operations take a lock, which is fine for the coarse batch-job granularity
//! `sem-serve` schedules (one queue operation per multi-millisecond solve).
//!
//! When a crates.io mirror is available, point `[workspace.dependencies]`
//! at the real `crossbeam` / `crossbeam-deque` / `crossbeam-channel` and
//! delete this crate.

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod channel;
pub mod deque;
pub mod sched;
