//! Work-stealing deques with the `crossbeam-deque` API shape: a global
//! [`Injector`] any thread can push to and steal from, plus per-worker
//! [`Worker`] queues whose [`Stealer`] handles let sibling threads take work
//! from the back while the owner pops from the front.
//!
//! All three types are lock-based (see the crate docs); steals block briefly
//! on the lock instead of spinning, so [`Steal::Retry`] never arises
//! organically.  It *is* produced on demand: an installed schedule
//! controller (see [`crate::sched::Scheduler::steal_contended`]) can make a
//! controlled thread's steal observe simulated contention, which is how the
//! race explorer drives the contended-sweep paths of a work-stealing loop
//! that a mutex-backed deque would otherwise never exercise.

use crate::sched::{self, SchedOp};
use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

/// The outcome of one steal attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Steal<T> {
    /// The queue was empty.
    Empty,
    /// One item was stolen.
    Success(T),
    /// The attempt lost a race and should be retried.  The lock-based
    /// implementation only produces it under an installed schedule
    /// controller injecting contention; in production steals serialize on
    /// the lock instead.
    Retry,
}

impl<T> Steal<T> {
    /// The stolen item, if the attempt succeeded.
    pub fn success(self) -> Option<T> {
        match self {
            Steal::Success(item) => Some(item),
            Steal::Empty | Steal::Retry => None,
        }
    }

    /// Whether the queue was observed empty.
    pub fn is_empty(&self) -> bool {
        matches!(self, Steal::Empty)
    }

    /// Whether the attempt lost a (possibly simulated) race.
    pub fn is_retry(&self) -> bool {
        matches!(self, Steal::Retry)
    }
}

#[derive(Debug)]
struct Shared<T> {
    queue: Mutex<VecDeque<T>>,
}

impl<T> Shared<T> {
    fn new() -> Arc<Self> {
        Arc::new(Self {
            queue: Mutex::new(VecDeque::new()),
        })
    }

    fn push_back(&self, item: T) {
        self.queue.lock().expect("deque poisoned").push_back(item);
    }

    fn pop_front(&self) -> Option<T> {
        self.queue.lock().expect("deque poisoned").pop_front()
    }

    fn pop_back(&self) -> Option<T> {
        self.queue.lock().expect("deque poisoned").pop_back()
    }

    fn len(&self) -> usize {
        self.queue.lock().expect("deque poisoned").len()
    }
}

/// A global FIFO queue every thread may push to and steal from.
#[derive(Debug)]
pub struct Injector<T> {
    shared: Arc<Shared<T>>,
}

impl<T> Default for Injector<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Injector<T> {
    /// An empty injector.
    #[must_use]
    pub fn new() -> Self {
        Self {
            shared: Shared::new(),
        }
    }

    /// Push an item onto the back of the queue.
    pub fn push(&self, item: T) {
        sched::yield_point(SchedOp::InjectorPush);
        self.shared.push_back(item);
    }

    /// Steal the oldest item.
    pub fn steal(&self) -> Steal<T> {
        sched::yield_point(SchedOp::InjectorSteal);
        if sched::simulate_contention(SchedOp::InjectorSteal) {
            return Steal::Retry;
        }
        match self.shared.pop_front() {
            Some(item) => Steal::Success(item),
            None => Steal::Empty,
        }
    }

    /// Number of queued items.
    #[must_use]
    pub fn len(&self) -> usize {
        self.shared.len()
    }

    /// Whether the queue is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A per-thread FIFO work queue.  The owner pushes to the back and pops from
/// the front; [`Stealer`] handles take from the back, so under contention
/// the owner keeps the work it queued first.
#[derive(Debug)]
pub struct Worker<T> {
    shared: Arc<Shared<T>>,
}

impl<T> Worker<T> {
    /// An empty FIFO worker queue.
    #[must_use]
    pub fn new_fifo() -> Self {
        Self {
            shared: Shared::new(),
        }
    }

    /// Push an item onto the back of the queue.
    pub fn push(&self, item: T) {
        sched::yield_point(SchedOp::WorkerPush);
        self.shared.push_back(item);
    }

    /// Pop the oldest item (owner side).
    pub fn pop(&self) -> Option<T> {
        sched::yield_point(SchedOp::WorkerPop);
        self.shared.pop_front()
    }

    /// A handle other threads can steal through.
    #[must_use]
    pub fn stealer(&self) -> Stealer<T> {
        Stealer {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Number of queued items.
    #[must_use]
    pub fn len(&self) -> usize {
        self.shared.len()
    }

    /// Whether the queue is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A shareable handle that steals from the back of a [`Worker`] queue.
#[derive(Debug)]
pub struct Stealer<T> {
    shared: Arc<Shared<T>>,
}

impl<T> Clone for Stealer<T> {
    fn clone(&self) -> Self {
        Self {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Stealer<T> {
    /// Steal the newest item from the worker's queue.
    pub fn steal(&self) -> Steal<T> {
        sched::yield_point(SchedOp::WorkerSteal);
        if sched::simulate_contention(SchedOp::WorkerSteal) {
            return Steal::Retry;
        }
        match self.shared.pop_back() {
            Some(item) => Steal::Success(item),
            None => Steal::Empty,
        }
    }

    /// Number of items currently stealable.
    #[must_use]
    pub fn len(&self) -> usize {
        self.shared.len()
    }

    /// Whether the worker's queue is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn worker_pops_fifo_and_stealer_takes_the_back() {
        let worker = Worker::new_fifo();
        for i in 0..4 {
            worker.push(i);
        }
        assert_eq!(worker.len(), 4);
        let stealer = worker.stealer();
        assert_eq!(worker.pop(), Some(0), "owner takes the oldest");
        assert_eq!(stealer.steal().success(), Some(3), "thief takes the newest");
        assert_eq!(worker.pop(), Some(1));
        assert_eq!(stealer.steal().success(), Some(2));
        assert!(worker.pop().is_none());
        assert!(stealer.steal().is_empty());
    }

    #[test]
    fn injector_is_fifo_from_every_thread() {
        let injector = Injector::new();
        for i in 0..5 {
            injector.push(i);
        }
        let drained: Vec<i32> = std::iter::from_fn(|| injector.steal().success()).collect();
        assert_eq!(drained, vec![0, 1, 2, 3, 4]);
        assert!(injector.is_empty());
    }

    #[test]
    fn concurrent_stealing_conserves_every_item() {
        // A steal storm: four threads drain one worker queue plus the
        // injector through stealer handles; every item must surface exactly
        // once.
        const ITEMS: usize = 2000;
        let worker = Worker::new_fifo();
        let injector = Injector::new();
        for i in 0..ITEMS {
            if i % 3 == 0 {
                injector.push(i);
            } else {
                worker.push(i);
            }
        }
        let stealer = worker.stealer();
        let taken = Mutex::new(Vec::new());
        let active = AtomicUsize::new(4);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    let mut local = Vec::new();
                    while let Some(item) = injector
                        .steal()
                        .success()
                        .or_else(|| stealer.steal().success())
                    {
                        local.push(item);
                    }
                    active.fetch_sub(1, Ordering::SeqCst);
                    taken.lock().unwrap().extend(local);
                });
            }
        });
        let taken = taken.into_inner().unwrap();
        assert_eq!(taken.len(), ITEMS, "no item dropped or duplicated");
        let unique: BTreeSet<usize> = taken.iter().copied().collect();
        assert_eq!(unique.len(), ITEMS);
        assert_eq!(unique.iter().next_back(), Some(&(ITEMS - 1)));
    }

    #[test]
    fn steal_success_and_empty_accessors() {
        assert_eq!(Steal::Success(7).success(), Some(7));
        assert_eq!(Steal::<i32>::Empty.success(), None);
        assert_eq!(Steal::<i32>::Retry.success(), None);
        assert!(Steal::<i32>::Empty.is_empty());
        assert!(!Steal::Success(1).is_empty());
    }
}
