//! Vendored stand-in for the subset of `criterion` this workspace's benches
//! use: benchmark groups, `bench_with_input`/`bench_function`, throughput
//! annotation and the `criterion_group!`/`criterion_main!` macros.
//!
//! The offline build environment cannot fetch the real `criterion`.  This
//! harness performs a short warm-up followed by a fixed number of timed
//! samples per benchmark and prints median/min/max wall-clock times (plus
//! derived element throughput when annotated).  It has no statistical
//! machinery — it exists so `cargo bench` runs and reports something honest,
//! and so the bench sources keep compiling unchanged against the real
//! criterion API.

#![deny(missing_docs)]
#![deny(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\nbench group: {name}");
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size: 10,
            throughput: None,
        }
    }

    /// Benchmark a single function outside any group.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let result = run_samples(10, &mut f);
        report(name, &result, None);
        self
    }
}

/// Work-rate annotation for a benchmark (per iteration).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements (or FLOPs, DOFs, ...) processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifier of one benchmark within a group: `function/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Build an id from a function name and a parameter display.
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        Self {
            id: format!("{function}/{parameter}"),
        }
    }

    /// Build an id from a parameter display only.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

/// A group of related benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Annotate subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Benchmark `f` with the given input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let result = run_samples(self.sample_size, &mut |b| f(b, input));
        report(
            &format!("{}/{}", self.name, id.id),
            &result,
            self.throughput,
        );
        self
    }

    /// Benchmark `f` without an input parameter.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let result = run_samples(self.sample_size, &mut f);
        report(&format!("{}/{id}", self.name), &result, self.throughput);
        self
    }

    /// Finish the group (prints nothing extra; provided for API parity).
    pub fn finish(self) {}
}

/// Passed to every benchmark closure; call [`Bencher::iter`] with the
/// routine to time.
#[derive(Debug, Default)]
pub struct Bencher {
    elapsed: Option<Duration>,
}

impl Bencher {
    /// Time one execution of `routine` (the harness calls the closure once
    /// per sample).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        let out = routine();
        self.elapsed = Some(start.elapsed());
        black_box(out);
    }
}

struct Samples {
    times: Vec<Duration>,
}

fn run_samples<F: FnMut(&mut Bencher)>(sample_size: usize, f: &mut F) -> Samples {
    // Warm-up sample, discarded.
    let mut bencher = Bencher::default();
    f(&mut bencher);
    let mut times = Vec::with_capacity(sample_size);
    for _ in 0..sample_size {
        let mut bencher = Bencher::default();
        f(&mut bencher);
        times.push(bencher.elapsed.unwrap_or_default());
    }
    times.sort();
    Samples { times }
}

fn report(name: &str, samples: &Samples, throughput: Option<Throughput>) {
    let median = samples.times[samples.times.len() / 2];
    let min = samples.times.first().copied().unwrap_or_default();
    let max = samples.times.last().copied().unwrap_or_default();
    let rate = match throughput {
        Some(Throughput::Elements(n)) if median > Duration::ZERO => {
            format!("  ({:.2} Melem/s)", n as f64 / median.as_secs_f64() / 1e6)
        }
        Some(Throughput::Bytes(n)) if median > Duration::ZERO => {
            format!("  ({:.2} MB/s)", n as f64 / median.as_secs_f64() / 1e6)
        }
        _ => String::new(),
    };
    println!("  {name}: median {median:?} (min {min:?}, max {max:?}){rate}");
}

/// Define a function running a list of benchmark functions, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Define `main` running one or more benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_with_input_runs_the_closure() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.sample_size(2).throughput(Throughput::Elements(100));
        let mut runs = 0;
        group.bench_with_input(BenchmarkId::new("noop", 1), &41, |b, &x| {
            runs += 1;
            b.iter(|| x + 1)
        });
        group.finish();
        assert!(runs >= 2, "warm-up plus samples must run");
    }
}
