//! `#[derive(Serialize, Deserialize)]` for the vendored `serde` facade.
//!
//! The offline build environment has neither `syn` nor `quote`, so the
//! derive input is parsed directly from the compiler's `proc_macro` token
//! trees.  The parser supports exactly the shapes this workspace uses:
//! non-generic structs with named fields, and non-generic enums with unit,
//! tuple and struct variants (serialized with serde's externally-tagged
//! representation).  Anything else produces a `compile_error!` naming the
//! unsupported construct.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derive the vendored `serde::Serialize` for a struct or enum.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Serialize)
}

/// Derive the vendored `serde::Deserialize` for a struct or enum.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Deserialize)
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Serialize,
    Deserialize,
}

enum Parsed {
    Struct {
        name: String,
        fields: Vec<String>,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Struct(Vec<String>),
}

fn expand(input: TokenStream, mode: Mode) -> TokenStream {
    let parsed = match parse_input(input) {
        Ok(p) => p,
        Err(message) => {
            return format!("compile_error!({message:?});").parse().unwrap();
        }
    };
    let code = match (&parsed, mode) {
        (Parsed::Struct { name, fields }, Mode::Serialize) => serialize_struct(name, fields),
        (Parsed::Struct { name, fields }, Mode::Deserialize) => deserialize_struct(name, fields),
        (Parsed::Enum { name, variants }, Mode::Serialize) => serialize_enum(name, variants),
        (Parsed::Enum { name, variants }, Mode::Deserialize) => deserialize_enum(name, variants),
    };
    code.parse().unwrap()
}

// ---------------------------------------------------------------------------
// Input parsing
// ---------------------------------------------------------------------------

/// Skip `#[...]` attributes and visibility qualifiers starting at `i`,
/// returning the index of the next meaningful token.
fn skip_attrs_and_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                // `#` followed by a bracketed group is an attribute.
                i += 1;
                if matches!(tokens.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket)
                {
                    i += 1;
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if matches!(tokens.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    i += 1;
                }
            }
            _ => return i,
        }
    }
}

fn parse_input(input: TokenStream) -> Result<Parsed, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_attrs_and_vis(&tokens, 0);

    let keyword = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => return Err("derive input must start with `struct` or `enum`".to_string()),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => return Err(format!("expected a name after `{keyword}`")),
    };
    i += 1;
    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "the vendored serde derive does not support generic type `{name}`"
        ));
    }
    let body = match tokens.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        _ => {
            return Err(format!(
                "the vendored serde derive only supports braced {keyword} bodies (type `{name}`)"
            ))
        }
    };

    match keyword.as_str() {
        "struct" => Ok(Parsed::Struct {
            name,
            fields: parse_field_names(body)?,
        }),
        "enum" => Ok(Parsed::Enum {
            name,
            variants: parse_variants(body)?,
        }),
        other => Err(format!("cannot derive serde traits for `{other}` items")),
    }
}

/// Split a brace/paren group's tokens at top-level commas, tracking angle
/// brackets so `Foo<A, B>` does not split a segment.
fn split_top_level(stream: TokenStream) -> Vec<Vec<TokenTree>> {
    let mut segments = vec![Vec::new()];
    let mut angle_depth = 0usize;
    for token in stream {
        if let TokenTree::Punct(p) = &token {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth = angle_depth.saturating_sub(1),
                ',' if angle_depth == 0 => {
                    segments.push(Vec::new());
                    continue;
                }
                _ => {}
            }
        }
        segments.last_mut().unwrap().push(token);
    }
    segments.retain(|s| !s.is_empty());
    segments
}

fn parse_field_names(body: TokenStream) -> Result<Vec<String>, String> {
    split_top_level(body)
        .into_iter()
        .map(|segment| {
            let i = skip_attrs_and_vis(&segment, 0);
            match segment.get(i) {
                Some(TokenTree::Ident(id)) => Ok(id.to_string()),
                _ => Err("expected a named field".to_string()),
            }
        })
        .collect()
}

fn parse_variants(body: TokenStream) -> Result<Vec<Variant>, String> {
    split_top_level(body)
        .into_iter()
        .map(|segment| {
            let i = skip_attrs_and_vis(&segment, 0);
            let name = match segment.get(i) {
                Some(TokenTree::Ident(id)) => id.to_string(),
                _ => return Err("expected a variant name".to_string()),
            };
            let kind = match segment.get(i + 1) {
                None => VariantKind::Unit,
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    VariantKind::Tuple(split_top_level(g.stream()).len())
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    VariantKind::Struct(parse_field_names(g.stream())?)
                }
                Some(TokenTree::Punct(p)) if p.as_char() == '=' => {
                    return Err(format!(
                        "variant `{name}`: explicit discriminants are not supported"
                    ))
                }
                _ => return Err(format!("variant `{name}` has an unsupported shape")),
            };
            Ok(Variant { name, kind })
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn serialize_struct(name: &str, fields: &[String]) -> String {
    let entries: String = fields
        .iter()
        .map(|f| {
            format!(
                "(::std::string::String::from({f:?}), ::serde::Serialize::to_value(&self.{f})),"
            )
        })
        .collect();
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{\n\
                 ::serde::Value::Object(::std::vec![{entries}])\n\
             }}\n\
         }}"
    )
}

fn deserialize_struct(name: &str, fields: &[String]) -> String {
    let inits: String = fields
        .iter()
        .map(|f| format!("{f}: <_ as ::serde::Deserialize>::from_value(value.field({f:?})?)?,"))
        .collect();
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(value: &::serde::Value) -> ::core::result::Result<Self, ::serde::Error> {{\n\
                 ::core::result::Result::Ok(Self {{ {inits} }})\n\
             }}\n\
         }}"
    )
}

fn serialize_enum(name: &str, variants: &[Variant]) -> String {
    let arms: String = variants
        .iter()
        .map(|v| {
            let vname = &v.name;
            match &v.kind {
                VariantKind::Unit => format!(
                    "{name}::{vname} => ::serde::Value::String(::std::string::String::from({vname:?})),"
                ),
                VariantKind::Tuple(1) => format!(
                    "{name}::{vname}(f0) => ::serde::Value::Object(::std::vec![\
                         (::std::string::String::from({vname:?}), ::serde::Serialize::to_value(f0))]),"
                ),
                VariantKind::Tuple(arity) => {
                    let binders: Vec<String> = (0..*arity).map(|i| format!("f{i}")).collect();
                    let items: String = binders
                        .iter()
                        .map(|b| format!("::serde::Serialize::to_value({b}),"))
                        .collect();
                    format!(
                        "{name}::{vname}({binds}) => ::serde::Value::Object(::std::vec![\
                             (::std::string::String::from({vname:?}), ::serde::Value::Array(::std::vec![{items}]))]),",
                        binds = binders.join(", ")
                    )
                }
                VariantKind::Struct(fields) => {
                    let entries: String = fields
                        .iter()
                        .map(|f| {
                            format!(
                                "(::std::string::String::from({f:?}), ::serde::Serialize::to_value({f})),"
                            )
                        })
                        .collect();
                    format!(
                        "{name}::{vname} {{ {binds} }} => ::serde::Value::Object(::std::vec![\
                             (::std::string::String::from({vname:?}), ::serde::Value::Object(::std::vec![{entries}]))]),",
                        binds = fields.join(", ")
                    )
                }
            }
        })
        .collect();
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{\n\
                 match self {{ {arms} }}\n\
             }}\n\
         }}"
    )
}

fn deserialize_enum(name: &str, variants: &[Variant]) -> String {
    let unit_arms: String = variants
        .iter()
        .filter(|v| matches!(v.kind, VariantKind::Unit))
        .map(|v| {
            let vname = &v.name;
            format!("{vname:?} => ::core::result::Result::Ok({name}::{vname}),")
        })
        .collect();
    let tagged_arms: String = variants
        .iter()
        .filter_map(|v| {
            let vname = &v.name;
            match &v.kind {
                VariantKind::Unit => None,
                VariantKind::Tuple(1) => Some(format!(
                    "{vname:?} => ::core::result::Result::Ok({name}::{vname}(\
                         <_ as ::serde::Deserialize>::from_value(inner)?)),"
                )),
                VariantKind::Tuple(arity) => {
                    let items: String = (0..*arity)
                        .map(|i| {
                            format!("<_ as ::serde::Deserialize>::from_value(&items[{i}])?,")
                        })
                        .collect();
                    Some(format!(
                        "{vname:?} => match inner {{\n\
                             ::serde::Value::Array(items) if items.len() == {arity} =>\n\
                                 ::core::result::Result::Ok({name}::{vname}({items})),\n\
                             other => ::core::result::Result::Err(::serde::Error::new(\n\
                                 format!(\"variant `{vname}` expects {arity} values, found {{}}\", other.kind()))),\n\
                         }},"
                    ))
                }
                VariantKind::Struct(fields) => {
                    let inits: String = fields
                        .iter()
                        .map(|f| {
                            format!(
                                "{f}: <_ as ::serde::Deserialize>::from_value(inner.field({f:?})?)?,"
                            )
                        })
                        .collect();
                    Some(format!(
                        "{vname:?} => ::core::result::Result::Ok({name}::{vname} {{ {inits} }}),"
                    ))
                }
            }
        })
        .collect();
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(value: &::serde::Value) -> ::core::result::Result<Self, ::serde::Error> {{\n\
                 match value {{\n\
                     ::serde::Value::String(tag) => match tag.as_str() {{\n\
                         {unit_arms}\n\
                         other => ::core::result::Result::Err(::serde::Error::new(\n\
                             format!(\"unknown unit variant `{{other}}` of `{name}`\"))),\n\
                     }},\n\
                     ::serde::Value::Object(entries) if entries.len() == 1 => {{\n\
                         let (tag, inner) = &entries[0];\n\
                         let _ = inner;\n\
                         match tag.as_str() {{\n\
                             {tagged_arms}\n\
                             other => ::core::result::Result::Err(::serde::Error::new(\n\
                                 format!(\"unknown variant `{{other}}` of `{name}`\"))),\n\
                         }}\n\
                     }}\n\
                     other => ::core::result::Result::Err(::serde::Error::new(\n\
                         format!(\"expected a `{name}` variant, found {{}}\", other.kind()))),\n\
                 }}\n\
             }}\n\
         }}"
    )
}
