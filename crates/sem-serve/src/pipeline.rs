//! The three-stage offload pipeline: an event-level timeline of one batched
//! session on one device.
//!
//! A solve session on an accelerator moves through three channels:
//!
//! * **H2D** — the shared geometry/derivative upload, then one operand
//!   upload per right-hand side;
//! * **kernel** — the CG solve's operator applications;
//! * **D2H** — per-iteration residual scalars (streamed, so convergence
//!   checks never stall the kernel) and one result download per RHS.
//!
//! With `overlap` enabled the channels run concurrently (the link is
//! full-duplex, the board double-buffers), so the schedule pipelines
//! upload(`i+1`) / solve(`i`) / download(`i-1`) and the makespan follows the
//! classical recurrence; with `overlap` disabled every stage blocks and the
//! makespan degenerates **exactly** to the serial accounting
//! `sem_accel::SolveReport` has always reported
//! (`Σ modeled_seconds()` — see [`PipelineTimeline::makespan_seconds`]).

use perf_model::PipelineCost;
use sem_accel::system::HOST_LINK_GBS;
use sem_accel::{AxBackend, OffloadPlan, SolveReport};
use serde::{Deserialize, Serialize};

/// Bytes of one streamed residual norm (a single double per CG iteration).
pub const RESIDUAL_BYTES_PER_ITERATION: f64 = 8.0;

/// How a session is scheduled: overlapping or serial, over which link.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PipelineConfig {
    /// Overlap the H2D / kernel / D2H channels (double buffering).  When
    /// `false` the timeline reproduces the serial `SolveReport` accounting
    /// bitwise.
    pub overlap: bool,
    /// Host link bandwidth in GB/s (each direction; the link is full-duplex).
    pub link_gbs: f64,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        Self {
            overlap: true,
            link_gbs: HOST_LINK_GBS,
        }
    }
}

impl PipelineConfig {
    /// The serial (no-overlap) configuration over the default link.
    #[must_use]
    pub fn serial() -> Self {
        Self {
            overlap: false,
            ..Self::default()
        }
    }
}

/// Which channel an event occupies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Stage {
    /// The once-per-session upload of geometry and derivative matrices.
    SharedUpload,
    /// One right-hand side's operand upload (H2D channel).
    Upload,
    /// One right-hand side's kernel compute (the whole CG solve).
    Compute,
    /// The per-iteration residual scalars streaming back during compute
    /// (D2H channel; only present on overlapped schedules).
    ResidualStream,
    /// One right-hand side's result download (D2H channel).
    Download,
}

/// One scheduled interval on one channel.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StageEvent {
    /// Index of the request within the batch (`None` for the shared upload).
    pub request: Option<usize>,
    /// The channel/stage.
    pub stage: Stage,
    /// Interval start, seconds from session start.
    pub start_seconds: f64,
    /// Interval end, seconds from session start.
    pub end_seconds: f64,
}

impl StageEvent {
    /// Interval length in seconds.
    #[must_use]
    pub fn duration_seconds(&self) -> f64 {
        self.end_seconds - self.start_seconds
    }
}

/// Per-request stage costs feeding the timeline.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RequestStages {
    /// Operand upload seconds (H2D).
    pub upload_seconds: f64,
    /// Kernel seconds of the whole solve.
    pub compute_seconds: f64,
    /// Result download seconds (D2H).
    pub download_seconds: f64,
    /// Streamed residual traffic (D2H, concurrent with compute).
    pub residual_stream_seconds: f64,
    /// What this request costs under the serial accounting — kernel seconds
    /// plus the per-RHS share of the batched transfer at the *same* link
    /// speed the stage costs use.  At the default link this is exactly
    /// `SolveReport::modeled_seconds()`, bitwise.
    pub serial_seconds: f64,
}

impl RequestStages {
    /// Stage costs of one executed solve: transfers from the offload plan's
    /// byte counts, compute from the report's operator accounting.  Host
    /// backends (no plan) upload and download nothing.
    ///
    /// The report's serial transfer share was charged at [`HOST_LINK_GBS`];
    /// it is rescaled to `link_gbs` so both accountings price bytes over the
    /// same link (the factor is exactly `1.0` at the default link, which
    /// preserves the bitwise serial-degeneration guarantee).
    #[must_use]
    pub fn from_report(report: &SolveReport, plan: Option<&OffloadPlan>, link_gbs: f64) -> Self {
        // Compute = operator plus preconditioner applications (the latter
        // priced by the backend's cycle model when claimed on-device).
        let compute_seconds = report.compute_seconds();
        let serial_seconds = compute_seconds + report.transfer_seconds * (HOST_LINK_GBS / link_gbs);
        match plan {
            Some(plan) => Self {
                upload_seconds: plan.operand_upload_seconds(link_gbs),
                compute_seconds,
                download_seconds: plan.result_download_seconds(link_gbs),
                residual_stream_seconds: RESIDUAL_BYTES_PER_ITERATION * report.iterations() as f64
                    / (link_gbs * 1e9),
                serial_seconds,
            },
            None => Self {
                upload_seconds: 0.0,
                compute_seconds,
                download_seconds: 0.0,
                residual_stream_seconds: 0.0,
                serial_seconds,
            },
        }
    }

    /// *Predicted* stage costs of one not-yet-executed solve on `backend`:
    /// the kernel stage comes from
    /// [`AxBackend::simulated_seconds_per_batch`] over the expected operator
    /// applications (one command-queue submission per solve, launch overhead
    /// amortised) plus one on-device preconditioner application per
    /// operator application (`precond_seconds_per_application`; zero when
    /// the preconditioner is not claimed on-device), the transfers from the
    /// plan's bytes.  Measured backends have no simulator model; callers
    /// substitute a host cost estimate via `fallback_compute_seconds`.
    #[must_use]
    pub fn predict(
        backend: &dyn AxBackend,
        plan: Option<&OffloadPlan>,
        applications: usize,
        precond_seconds_per_application: f64,
        fallback_compute_seconds: f64,
        link_gbs: f64,
    ) -> Self {
        let compute_seconds = backend
            .simulated_seconds_per_batch(applications.max(1))
            .map_or(fallback_compute_seconds, |kernel| {
                kernel + precond_seconds_per_application * applications.max(1) as f64
            });
        let (upload_seconds, download_seconds) = plan.map_or((0.0, 0.0), |plan| {
            (
                plan.operand_upload_seconds(link_gbs),
                plan.result_download_seconds(link_gbs),
            )
        });
        let shared = plan.map_or(0.0, |plan| plan.shared_upload_seconds(link_gbs));
        Self {
            upload_seconds,
            compute_seconds,
            download_seconds,
            residual_stream_seconds: RESIDUAL_BYTES_PER_ITERATION * applications as f64
                / (link_gbs * 1e9),
            // Serial prediction: the per-request share of one session;
            // callers spread `shared` themselves when batching, so charge it
            // here only as documentation of the standalone cost.
            serial_seconds: shared + upload_seconds + compute_seconds + download_seconds,
        }
    }

    /// The uniform [`PipelineCost`] closed-form equivalent of this request
    /// (shared upload supplied by the session).
    #[must_use]
    pub fn as_pipeline_cost(&self, shared_upload_seconds: f64) -> PipelineCost {
        PipelineCost {
            shared_upload_seconds,
            upload_seconds: self.upload_seconds,
            compute_seconds: self.compute_seconds,
            download_seconds: self.download_seconds,
        }
    }
}

/// The scheduled timeline of one batched session on one device.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PipelineTimeline {
    /// Once-per-session shared upload seconds.
    pub shared_upload_seconds: f64,
    /// Per-request stage costs, in submission order.
    pub stages: Vec<RequestStages>,
    /// The schedule: every interval on every channel, in emission order.
    pub events: Vec<StageEvent>,
    /// Session makespan.  With overlap this is the end of the last download;
    /// without overlap it is **defined** as
    /// [`PipelineTimeline::serial_accounting_seconds`], so it matches the
    /// blocking `SolveReport` accounting bitwise (the event list then is a
    /// visualisation whose last end may differ in the last ulp from the sum,
    /// because floating-point addition is reassociated).
    pub makespan_seconds: f64,
    /// Whether the channels overlapped.
    pub overlap: bool,
}

impl PipelineTimeline {
    /// Schedule a session from explicit stage costs.
    #[must_use]
    pub fn build(
        shared_upload_seconds: f64,
        stages: Vec<RequestStages>,
        config: PipelineConfig,
    ) -> Self {
        let events = if config.overlap {
            Self::overlapped_events(shared_upload_seconds, &stages)
        } else {
            Self::serial_events(shared_upload_seconds, &stages)
        };
        let makespan_seconds = if config.overlap {
            events.iter().map(|e| e.end_seconds).fold(0.0_f64, f64::max)
        } else {
            stages.iter().map(|s| s.serial_seconds).sum()
        };
        Self {
            shared_upload_seconds,
            stages,
            events,
            makespan_seconds,
            overlap: config.overlap,
        }
    }

    /// Schedule the session of an executed batch: one [`RequestStages`] per
    /// [`SolveReport`], transfers from `plan`'s bytes.
    #[must_use]
    pub fn from_reports(
        plan: Option<&OffloadPlan>,
        reports: &[SolveReport],
        config: PipelineConfig,
    ) -> Self {
        let shared = plan.map_or(0.0, |plan| plan.shared_upload_seconds(config.link_gbs));
        let stages = reports
            .iter()
            .map(|report| RequestStages::from_report(report, plan, config.link_gbs))
            .collect();
        Self::build(shared, stages, config)
    }

    /// *Predict* the session of a `batch`-request job on `backend` before
    /// running it: every request is priced by [`RequestStages::predict`]
    /// (simulated kernel model where one exists, `fallback_compute_seconds`
    /// otherwise).  This is what the model-optimal scheduling policy costs
    /// candidate devices with.
    #[must_use]
    pub fn predict(
        backend: &dyn AxBackend,
        batch: usize,
        applications: usize,
        precond_seconds_per_application: f64,
        fallback_compute_seconds: f64,
        config: PipelineConfig,
    ) -> Self {
        let plan = backend.offload_plan();
        let shared = plan
            .as_ref()
            .map_or(0.0, |plan| plan.shared_upload_seconds(config.link_gbs));
        let request = RequestStages::predict(
            backend,
            plan.as_ref(),
            applications,
            precond_seconds_per_application,
            fallback_compute_seconds,
            config.link_gbs,
        );
        // The standalone serial prediction charges the shared upload per
        // request; inside a batch it is paid once, so rebuild the serial
        // share the way `SemSystem::solve_many` spreads it.
        let batch_f = batch.max(1) as f64;
        let per_request = RequestStages {
            serial_seconds: shared / batch_f
                + request.upload_seconds
                + request.compute_seconds
                + request.download_seconds,
            ..request
        };
        Self::build(shared, vec![per_request; batch.max(1)], config)
    }

    /// The serial (blocking) accounting of the same session: the sum of the
    /// per-request `serial_seconds`, i.e. exactly what summing
    /// `SolveReport::modeled_seconds()` over the batch yields.
    #[must_use]
    pub fn serial_accounting_seconds(&self) -> f64 {
        self.stages.iter().map(|s| s.serial_seconds).sum()
    }

    /// Total H2D seconds (shared upload plus every operand upload).
    #[must_use]
    pub fn total_upload_seconds(&self) -> f64 {
        self.shared_upload_seconds + self.stages.iter().map(|s| s.upload_seconds).sum::<f64>()
    }

    /// Total kernel seconds.
    #[must_use]
    pub fn total_compute_seconds(&self) -> f64 {
        self.stages.iter().map(|s| s.compute_seconds).sum()
    }

    /// Total D2H seconds (result downloads plus streamed residuals).
    #[must_use]
    pub fn total_download_seconds(&self) -> f64 {
        self.stages
            .iter()
            .map(|s| s.download_seconds + s.residual_stream_seconds)
            .sum()
    }

    /// Transfer seconds the schedule leaves exposed (not hidden behind the
    /// kernel): `makespan − Σ compute`.
    #[must_use]
    pub fn exposed_transfer_seconds(&self) -> f64 {
        (self.makespan_seconds - self.total_compute_seconds()).max(0.0)
    }

    /// Seconds this schedule saves over the serial accounting.
    #[must_use]
    pub fn overlap_win_seconds(&self) -> f64 {
        (self.serial_accounting_seconds() - self.makespan_seconds).max(0.0)
    }

    /// Busy seconds of one stage kind over the whole schedule.
    #[must_use]
    pub fn stage_busy_seconds(&self, stage: Stage) -> f64 {
        self.events
            .iter()
            .filter(|e| e.stage == stage)
            .map(StageEvent::duration_seconds)
            .sum()
    }

    /// Kernel-channel utilisation: compute busy time over the makespan.
    #[must_use]
    pub fn compute_utilisation(&self) -> f64 {
        if self.makespan_seconds <= 0.0 {
            return 0.0;
        }
        self.total_compute_seconds() / self.makespan_seconds
    }

    /// The double-buffered schedule: H2D, kernel and D2H are independent
    /// serial channels; request `i`'s compute waits for its upload and the
    /// previous compute; its download waits for its compute and the D2H
    /// channel (which also carries the streamed residuals).
    fn overlapped_events(shared: f64, stages: &[RequestStages]) -> Vec<StageEvent> {
        let mut events = Vec::with_capacity(1 + stages.len() * 3);
        if shared > 0.0 {
            events.push(StageEvent {
                request: None,
                stage: Stage::SharedUpload,
                start_seconds: 0.0,
                end_seconds: shared,
            });
        }
        let mut upload_free = shared;
        let mut compute_free = 0.0_f64;
        let mut download_free = 0.0_f64;
        for (i, s) in stages.iter().enumerate() {
            let upload_end = upload_free + s.upload_seconds;
            events.push(StageEvent {
                request: Some(i),
                stage: Stage::Upload,
                start_seconds: upload_free,
                end_seconds: upload_end,
            });
            upload_free = upload_end;

            let compute_start = upload_end.max(compute_free);
            let compute_end = compute_start + s.compute_seconds;
            events.push(StageEvent {
                request: Some(i),
                stage: Stage::Compute,
                start_seconds: compute_start,
                end_seconds: compute_end,
            });
            compute_free = compute_end;

            if s.residual_stream_seconds > 0.0 {
                let start = compute_start.max(download_free);
                let end = start + s.residual_stream_seconds;
                events.push(StageEvent {
                    request: Some(i),
                    stage: Stage::ResidualStream,
                    start_seconds: start,
                    end_seconds: end,
                });
                download_free = end;
            }

            let download_start = compute_end.max(download_free);
            let download_end = download_start + s.download_seconds;
            events.push(StageEvent {
                request: Some(i),
                stage: Stage::Download,
                start_seconds: download_start,
                end_seconds: download_end,
            });
            download_free = download_end;
        }
        events
    }

    /// The blocking schedule: every stage of every request runs back to
    /// back on a single timeline (no residual streaming — the host already
    /// blocks on each iteration, so the residual rides the blocking reads).
    fn serial_events(shared: f64, stages: &[RequestStages]) -> Vec<StageEvent> {
        let mut events = Vec::with_capacity(1 + stages.len() * 3);
        let mut cursor = 0.0_f64;
        if shared > 0.0 {
            events.push(StageEvent {
                request: None,
                stage: Stage::SharedUpload,
                start_seconds: 0.0,
                end_seconds: shared,
            });
            cursor = shared;
        }
        for (i, s) in stages.iter().enumerate() {
            for (stage, duration) in [
                (Stage::Upload, s.upload_seconds),
                (Stage::Compute, s.compute_seconds),
                (Stage::Download, s.download_seconds),
            ] {
                events.push(StageEvent {
                    request: Some(i),
                    stage,
                    start_seconds: cursor,
                    end_seconds: cursor + duration,
                });
                cursor += duration;
            }
        }
        events
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stages(n: usize) -> Vec<RequestStages> {
        (0..n)
            .map(|i| RequestStages {
                upload_seconds: 0.1,
                compute_seconds: 1.0 + 0.01 * i as f64,
                download_seconds: 0.2,
                residual_stream_seconds: 1e-4,
                serial_seconds: 0.5 / n as f64 + 0.1 + 1.0 + 0.01 * i as f64 + 0.2,
            })
            .collect()
    }

    #[test]
    fn overlapped_makespan_respects_the_pipeline_bounds() {
        let t = PipelineTimeline::build(0.5, stages(8), PipelineConfig::default());
        let serial = PipelineTimeline::build(0.5, stages(8), PipelineConfig::serial());
        assert!(t.makespan_seconds >= t.total_compute_seconds());
        assert!(t.makespan_seconds >= t.total_upload_seconds());
        assert!(t.makespan_seconds >= t.total_download_seconds());
        assert!(t.makespan_seconds <= serial.makespan_seconds + 1e-12);
        assert!(t.overlap_win_seconds() > 0.0);
        assert!(t.compute_utilisation() > serial.compute_utilisation());
    }

    #[test]
    fn serial_makespan_is_the_sum_of_serial_accounting() {
        let t = PipelineTimeline::build(0.5, stages(4), PipelineConfig::serial());
        assert_eq!(t.makespan_seconds, t.serial_accounting_seconds());
        assert_eq!(t.overlap_win_seconds(), 0.0);
        // Events cover every stage of every request plus the shared upload.
        assert_eq!(t.events.len(), 1 + 4 * 3);
    }

    #[test]
    fn uniform_batches_match_the_closed_form() {
        let uniform: Vec<RequestStages> = (0..16)
            .map(|_| RequestStages {
                upload_seconds: 0.1,
                compute_seconds: 1.0,
                download_seconds: 0.2,
                residual_stream_seconds: 0.0,
                serial_seconds: 0.0,
            })
            .collect();
        let cost = uniform[0].as_pipeline_cost(0.5);
        let t = PipelineTimeline::build(0.5, uniform, PipelineConfig::default());
        let closed = cost.overlapped_session_seconds(16);
        assert!(
            (t.makespan_seconds - closed).abs() < 1e-12 * closed,
            "{} vs {closed}",
            t.makespan_seconds
        );
    }

    #[test]
    fn residual_streaming_rides_the_idle_download_channel() {
        // Streaming residuals during compute must not move the makespan of
        // a compute-dominated batch.
        let with: Vec<RequestStages> = stages(8);
        let without: Vec<RequestStages> = stages(8)
            .into_iter()
            .map(|s| RequestStages {
                residual_stream_seconds: 0.0,
                ..s
            })
            .collect();
        let a = PipelineTimeline::build(0.5, with, PipelineConfig::default());
        let b = PipelineTimeline::build(0.5, without, PipelineConfig::default());
        assert!((a.makespan_seconds - b.makespan_seconds).abs() < 1e-12);
        assert!(a.stage_busy_seconds(Stage::ResidualStream) > 0.0);
        assert_eq!(b.stage_busy_seconds(Stage::ResidualStream), 0.0);
    }

    #[test]
    fn transfer_dominated_pipelines_are_bottlenecked_by_the_link() {
        let heavy: Vec<RequestStages> = (0..8)
            .map(|_| RequestStages {
                upload_seconds: 1.0,
                compute_seconds: 0.1,
                download_seconds: 0.3,
                residual_stream_seconds: 0.0,
                serial_seconds: 1.4,
            })
            .collect();
        let t = PipelineTimeline::build(0.0, heavy, PipelineConfig::default());
        // Uploads serialise on the H2D channel: makespan ~ 8 uploads + tail.
        assert!(t.makespan_seconds >= 8.0);
        assert!(t.exposed_transfer_seconds() > 0.0);
        assert!(t.compute_utilisation() < 0.2);
    }

    #[test]
    fn empty_sessions_are_legal() {
        let t = PipelineTimeline::build(0.0, Vec::new(), PipelineConfig::default());
        assert_eq!(t.makespan_seconds, 0.0);
        assert!(t.events.is_empty());
    }
}
