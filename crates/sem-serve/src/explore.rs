//! Loom-style bounded schedule exploration of the work-stealing host.
//!
//! The vendored crossbeam primitives route every queue operation through
//! [`crossbeam::sched::yield_point`]; this module installs a [`Scheduler`]
//! that *serializes* the worker pool of [`run_stealing`]: every controlled
//! thread parks at each yield point, and a central arbiter picks which
//! thread runs next.  The whole interleaving then becomes a pure function of
//! the arbiter's choice sequence, which makes schedules **replayable** and
//! **enumerable**:
//!
//! * [`Strategy::Exhaustive`] walks the bounded choice tree depth-first —
//!   run a schedule, backtrack the last choice with an unexplored
//!   alternative, replay the prefix, and continue.  Every run is a distinct
//!   interleaving by construction.
//! * [`Strategy::Seeded`] takes pseudo-random walks instead (for cases whose
//!   trees are too large to enumerate) and counts distinct traces.
//!
//! Every explored schedule is checked for the host's contract:
//!
//! 1. **Job conservation** — every submitted job executes exactly once, and
//!    the per-worker ledgers agree with the delivered completions;
//! 2. **Ordering** — each worker's deliveries arrive in its execution
//!    order, jobs a worker takes from its *own* deque execute in hint
//!    (submission) order, and each worker drains injector floaters in FIFO
//!    order;
//! 3. **Deadlock/livelock freedom** — the schedule terminates within a step
//!    budget (a genuinely stuck pool would either hang a grant forever or
//!    exceed the budget, both of which the explorer reports).
//!
//! Cases carrying a fault schedule ([`ExploreCase::fatal_workers`] /
//! [`ExploreCase::retry_once`]) drive the *tolerant* host
//! ([`run_stealing_tolerant`]) instead, and the contract becomes **job
//! conservation under failure**: every job is delivered exactly once or
//! handed back, dying workers drain their deques, retries are counted
//! exactly, and hand-back happens only when the whole pool is dead.
//!
//! Alongside the pass/fail verdict, each [`CaseReport`] carries a coverage
//! map over [`SchedOp`] pair transitions — the distinct ordered pairs of
//! consecutive queue operations any explored schedule realized.  Distinct
//! trace counts grow with budget almost indefinitely; the transition-class
//! count saturates, which is the signal that a seeded walk has stopped
//! finding genuinely new operation orderings.
//!
//! Exploration is process-global (the scheduler hook is), so explorer
//! entry points serialize on an internal lock, and only threads spawned by
//! [`run_stealing`] register for control — concurrent uncontrolled threads
//! are unaffected.  Use the `SEM_SCHED_ITERS` environment variable (read by
//! the `sem-lint` binary and the integration smoke test) to bound the
//! schedule budget in constrained environments.

use crate::steal::{
    run_stealing, run_stealing_tolerant, run_stealing_tolerant_with_feeder,
    run_stealing_with_feeder, JobVerdict, StealRun, TaggedJob, TolerantRun,
};
use crossbeam::sched::{self, SchedOp, Scheduler};
use std::collections::BTreeSet;
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};

/// How the explorer picks the next thread at each scheduling point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// Depth-first enumeration of the bounded choice tree: every run is a
    /// distinct schedule, and small cases are proven exhaustively.
    Exhaustive,
    /// Seeded pseudo-random walks for cases whose trees are too large to
    /// enumerate; distinct schedules are counted by trace.
    Seeded(u64),
}

/// One scenario to explore: a pool size plus the hint of every job
/// (`Some(worker)` seeds the worker's deque, `None` floats via the
/// injector).  Job `i`'s payload is its submission index `i`.
#[derive(Debug, Clone)]
pub struct ExploreCase {
    /// Short stable name for reports.
    pub name: &'static str,
    /// Worker pool size.
    pub workers: usize,
    /// Per-job scheduling hints, in submission order.
    pub hints: Vec<Option<usize>>,
    /// Jobs pushed into the shared injector *while the pool runs*, by an
    /// uncontrolled feeder thread (payloads continue after the seeded
    /// jobs).  Non-zero cases exercise the feeder-done termination
    /// protocol: workers must neither exit before fed jobs land nor hang
    /// after the feeder finishes.  Because the feeder is uncontrolled, its
    /// pushes interleave with granted steps nondeterministically — explore
    /// such cases with [`Strategy::Seeded`], never exhaustively.
    pub feeder_jobs: usize,
    /// Simulated-contention budget: the first this-many controlled
    /// injector steals observe [`crossbeam::deque::Steal::Retry`] instead
    /// of touching the queue, driving the contended-sweep backoff path a
    /// mutex-backed deque never reaches on its own.
    pub contention: usize,
    /// Fault schedule: workers whose device is dead — each returns
    /// [`crate::steal::JobVerdict::Fatal`] on the first job it touches and
    /// retires, draining its deque back to the injector.  Non-empty fault
    /// fields route the case through [`run_stealing_tolerant`] and the
    /// tolerant contract checks (conservation under failure) instead of
    /// the plain host's ordering checks.
    pub fatal_workers: Vec<usize>,
    /// Fault schedule: payloads that fail recoverably
    /// ([`crate::steal::JobVerdict::Retry`]) on their first execution by a
    /// healthy worker and succeed on the second.
    pub retry_once: Vec<usize>,
}

impl ExploreCase {
    fn jobs(&self) -> Vec<TaggedJob<usize>> {
        self.hints
            .iter()
            .enumerate()
            .map(|(payload, &hint)| TaggedJob { payload, hint })
            .collect()
    }

    /// Total jobs the run must conserve: seeded plus fed.
    fn total_jobs(&self) -> usize {
        self.hints.len() + self.feeder_jobs
    }

    /// The hint job `payload` was submitted with (fed jobs always float).
    fn hint_of(&self, payload: usize) -> Option<usize> {
        self.hints.get(payload).copied().flatten()
    }

    /// Whether the case carries a fault schedule and must drive the
    /// tolerant host.
    fn tolerant(&self) -> bool {
        !self.fatal_workers.is_empty() || !self.retry_once.is_empty()
    }
}

/// The outcome of exploring one case.
#[derive(Debug, Clone)]
pub struct CaseReport {
    /// The case's name.
    pub name: &'static str,
    /// Pool size.
    pub workers: usize,
    /// Job count.
    pub jobs: usize,
    /// Distinct schedules explored.
    pub schedules: usize,
    /// Whether the whole bounded choice tree was enumerated (exhaustive
    /// strategy only; seeded walks never claim exhaustion).
    pub exhausted: bool,
    /// Longest schedule trace seen (scheduling decisions per run).
    pub longest_trace: usize,
    /// Coverage map over scheduling-operation pair transitions: every
    /// ordered `(SchedOp, SchedOp)` pair of consecutive operations realized
    /// by any explored schedule (birth grants, which carry no operation,
    /// are skipped).  The class count is the saturation signal for seeded
    /// walks: when more budget stops adding classes, the walk has stopped
    /// discovering new operation orderings even if raw trace counts keep
    /// growing.
    pub transitions: BTreeSet<(SchedOp, SchedOp)>,
    /// Invariant violations, each tagged with the schedule trace that
    /// produced it.  Empty on a passing case.
    pub violations: Vec<String>,
}

impl CaseReport {
    /// Render the transition-coverage map compactly with the trace
    /// mnemonics, one `from>to` entry per observed class: `ip>is wo>ws ...`.
    #[must_use]
    pub fn transition_map(&self) -> String {
        let mut out = String::new();
        for (from, to) in &self.transitions {
            if !out.is_empty() {
                out.push(' ');
            }
            out.push_str(from.mnemonic());
            out.push('>');
            out.push_str(to.mnemonic());
        }
        out
    }

    /// Render the report as machine-readable JSON: the scalar verdict
    /// fields verbatim, the transition coverage as an array of `"from>to"`
    /// mnemonic classes (the same rendering as
    /// [`CaseReport::transition_map`]), and the violations as strings —
    /// so CI and tooling can join race-detector output against the other
    /// exported artifacts instead of parsing the printed table.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\"name\":");
        out.push_str(&json_string(self.name));
        out.push_str(&format!(
            ",\"workers\":{},\"jobs\":{},\"schedules\":{},\"exhausted\":{},\"longest_trace\":{}",
            self.workers, self.jobs, self.schedules, self.exhausted, self.longest_trace
        ));
        out.push_str(",\"transitions\":[");
        for (i, (from, to)) in self.transitions.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&json_string(&format!(
                "{}>{}",
                from.mnemonic(),
                to.mnemonic()
            )));
        }
        out.push_str("],\"violations\":[");
        for (i, violation) in self.violations.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&json_string(violation));
        }
        out.push_str("]}");
        out
    }
}

/// Minimal JSON string escaping (quotes, backslashes, control bytes) for
/// the hand-rolled [`CaseReport::to_json`] export.
fn json_string(value: &str) -> String {
    let mut out = String::with_capacity(value.len() + 2);
    out.push('"');
    for c in value.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Serializes explorer entry points: the schedule hook is process-global.
static EXPLORE_LOCK: Mutex<()> = Mutex::new(());

/// Ceiling on scheduling decisions per run; `run_stealing` on the standard
/// cases needs a few dozen, so hitting this means a livelock.
const MAX_STEPS_PER_RUN: usize = 4096;

/// Per-case liveness budget.  Feeder cases burn steps while workers back
/// off waiting for the uncontrolled feeder thread to be scheduled by the
/// OS, so they get a proportionally larger ceiling — a slow machine must
/// not misreport a livelock.
fn step_budget(case: &ExploreCase) -> usize {
    if case.feeder_jobs > 0 {
        MAX_STEPS_PER_RUN * 8
    } else {
        MAX_STEPS_PER_RUN
    }
}

fn lock_poison_free<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Splitmix64: a tiny deterministic generator for seeded walks.
fn next_rand(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[derive(Debug)]
struct SchedState {
    /// Worker indices parked at a yield point (or at birth), ascending — the
    /// canonical alternative ordering that makes choice indices replayable.
    parked: Vec<usize>,
    /// The operation each parked thread is about to perform (`None`: birth).
    pending: Vec<Option<SchedOp>>,
    /// The one thread currently allowed to run.
    granted: Option<usize>,
    /// Registered minus finished threads.
    alive: usize,
    /// Threads registered so far (the first grant waits for the whole pool).
    registered: usize,
    /// Choice to take at each decision depth (replayed prefix, then
    /// extended by the strategy).
    script: Vec<usize>,
    /// Alternatives observed at each decision depth (for backtracking).
    arity: Vec<usize>,
    depth: usize,
    /// The realized schedule: (worker, pending op) per grant.
    trace: Vec<(usize, Option<SchedOp>)>,
    steps: usize,
    /// Stop controlling: release every thread to run freely (teardown, or
    /// step budget exceeded).
    bailed: bool,
    budget_exceeded: bool,
    /// A replayed choice index exceeded the observed arity — the run was
    /// not deterministic.  Never expected; reported loudly.
    diverged: bool,
    random: bool,
    rng: u64,
    /// Remaining simulated-contention injections (see
    /// [`ExploreCase::contention`]).  Consumed by controlled injector
    /// steals in grant order, so exhaustive replays of a schedule prefix
    /// reproduce the same retries.
    contention_left: usize,
}

/// The serializing arbiter (see module docs).
struct StepScheduler {
    expected: usize,
    max_steps: usize,
    state: Mutex<SchedState>,
    cvar: Condvar,
}

impl StepScheduler {
    fn new(
        expected: usize,
        script: Vec<usize>,
        strategy: Strategy,
        run_seed: u64,
        contention: usize,
        max_steps: usize,
    ) -> Self {
        let (random, rng) = match strategy {
            Strategy::Exhaustive => (false, 0),
            Strategy::Seeded(seed) => (true, seed ^ run_seed.wrapping_mul(0x5851_f42d_4c95_7f2d)),
        };
        Self {
            expected,
            max_steps,
            state: Mutex::new(SchedState {
                parked: Vec::new(),
                pending: vec![None; expected],
                granted: None,
                alive: 0,
                registered: 0,
                script,
                arity: Vec::new(),
                depth: 0,
                trace: Vec::new(),
                steps: 0,
                bailed: false,
                budget_exceeded: false,
                diverged: false,
                random,
                rng,
                contention_left: contention,
            }),
            cvar: Condvar::new(),
        }
    }

    /// Pick the next thread to run, if a grant is due.  Called with the
    /// state lock held, at every point the runnable set changes.
    fn arbitrate(&self, s: &mut SchedState) {
        if s.bailed || s.granted.is_some() || s.registered < self.expected || s.parked.is_empty() {
            return;
        }
        s.steps += 1;
        if s.steps > self.max_steps {
            s.bailed = true;
            s.budget_exceeded = true;
            self.cvar.notify_all();
            return;
        }
        let arity = s.parked.len();
        let choice = if s.depth < s.script.len() {
            let c = s.script[s.depth];
            if c >= arity {
                s.diverged = true;
                s.bailed = true;
                self.cvar.notify_all();
                return;
            }
            c
        } else {
            let c = if s.random {
                (next_rand(&mut s.rng) as usize) % arity
            } else {
                0
            };
            s.script.push(c);
            c
        };
        s.arity.push(arity);
        s.depth += 1;
        let index = s.parked.remove(choice);
        s.trace.push((index, s.pending[index]));
        s.granted = Some(index);
        self.cvar.notify_all();
    }

    /// Park `index` (keeping the set sorted) and block until it is granted
    /// or control is released.
    fn park_and_wait(&self, mut s: MutexGuard<'_, SchedState>, index: usize) {
        let slot = s.parked.partition_point(|&p| p < index);
        s.parked.insert(slot, index);
        self.arbitrate(&mut s);
        loop {
            if s.bailed {
                return;
            }
            if s.granted == Some(index) {
                return;
            }
            s = self.cvar.wait(s).unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Release every parked thread to run freely (teardown path).
    fn release_all(&self) {
        let mut s = lock_poison_free(&self.state);
        s.bailed = true;
        self.cvar.notify_all();
    }
}

impl Scheduler for StepScheduler {
    fn thread_started(&self, index: usize) {
        let mut s = lock_poison_free(&self.state);
        if s.bailed {
            return;
        }
        s.registered += 1;
        s.alive += 1;
        s.pending[index] = None;
        self.park_and_wait(s, index);
    }

    fn yield_point(&self, index: usize, op: SchedOp) {
        let mut s = lock_poison_free(&self.state);
        if s.bailed {
            return;
        }
        if s.granted == Some(index) {
            s.granted = None;
        }
        s.pending[index] = Some(op);
        self.park_and_wait(s, index);
    }

    fn thread_finished(&self, index: usize) {
        let mut s = lock_poison_free(&self.state);
        if s.granted == Some(index) {
            s.granted = None;
        }
        s.alive = s.alive.saturating_sub(1);
        self.arbitrate(&mut s);
    }

    fn steal_contended(&self, _index: usize, op: SchedOp) -> bool {
        if op != SchedOp::InjectorSteal {
            return false;
        }
        let mut s = lock_poison_free(&self.state);
        if s.bailed || s.contention_left == 0 {
            return false;
        }
        // Consumed in grant order: the schedule script fully determines
        // which steals lose their race, so exhaustive replay stays
        // deterministic.
        s.contention_left -= 1;
        true
    }
}

/// Uninstalls the scheduler (releasing any parked thread first) even when a
/// run unwinds, so one failed schedule cannot wedge the process.
struct Installed {
    scheduler: Arc<StepScheduler>,
}

impl Installed {
    fn new(scheduler: Arc<StepScheduler>) -> Self {
        sched::install(Arc::clone(&scheduler) as Arc<dyn Scheduler>);
        Self { scheduler }
    }
}

impl Drop for Installed {
    fn drop(&mut self) {
        self.scheduler.release_all();
        sched::uninstall();
    }
}

/// What one scheduled run realized.
#[derive(Debug)]
struct RunRecord {
    script: Vec<usize>,
    arity: Vec<usize>,
    trace: Vec<(usize, Option<SchedOp>)>,
    budget_exceeded: bool,
    diverged: bool,
}

fn run_one(
    case: &ExploreCase,
    script: Vec<usize>,
    strategy: Strategy,
    run_seed: u64,
) -> (StealRun<Vec<usize>, usize>, RunRecord) {
    let max_steps = step_budget(case);
    let scheduler = Arc::new(StepScheduler::new(
        case.workers,
        script,
        strategy,
        run_seed,
        case.contention,
        max_steps,
    ));
    let installed = Installed::new(Arc::clone(&scheduler));
    let states: Vec<Vec<usize>> = vec![Vec::new(); case.workers];
    let execute = |_: usize, log: &mut Vec<usize>, payload: usize| {
        log.push(payload);
        payload
    };
    let run = if case.feeder_jobs > 0 {
        let base = case.hints.len();
        let fed = case.feeder_jobs;
        run_stealing_with_feeder(
            states,
            case.jobs(),
            |feeder| {
                for payload in base..base + fed {
                    feeder.push(payload);
                    // Let workers drain between arrivals so some pushes
                    // genuinely race live sweeps.
                    std::thread::yield_now();
                }
            },
            execute,
        )
    } else {
        run_stealing(states, case.jobs(), execute)
    };
    drop(installed);
    let s = lock_poison_free(&scheduler.state);
    let record = RunRecord {
        script: s.script.clone(),
        arity: s.arity.clone(),
        trace: s.trace.clone(),
        budget_exceeded: s.budget_exceeded,
        diverged: s.diverged,
    };
    (run, record)
}

/// Like [`run_one`] but through the fault-tolerant host, with the case's
/// fault schedule driving verdicts: scripted dead workers `Fatal` their
/// first job, scripted flaky payloads `Retry` their first healthy
/// execution.  Also returns the per-payload healthy-execution attempt
/// counts (consumed in grant order, so exhaustive replays reproduce them).
fn run_one_tolerant(
    case: &ExploreCase,
    script: Vec<usize>,
    strategy: Strategy,
    run_seed: u64,
) -> (TolerantRun<usize, Vec<usize>, usize>, Vec<usize>, RunRecord) {
    use std::sync::atomic::{AtomicUsize, Ordering};

    let max_steps = step_budget(case);
    let scheduler = Arc::new(StepScheduler::new(
        case.workers,
        script,
        strategy,
        run_seed,
        case.contention,
        max_steps,
    ));
    let installed = Installed::new(Arc::clone(&scheduler));
    let states: Vec<Vec<usize>> = vec![Vec::new(); case.workers];
    let attempts: Vec<AtomicUsize> = (0..case.total_jobs())
        .map(|_| AtomicUsize::new(0))
        .collect();
    let execute = |worker: usize, log: &mut Vec<usize>, payload: usize| {
        if case.fatal_workers.contains(&worker) {
            return JobVerdict::Fatal(payload);
        }
        if case.retry_once.contains(&payload)
            && attempts[payload].fetch_add(1, Ordering::SeqCst) == 0
        {
            return JobVerdict::Retry(payload);
        }
        log.push(payload);
        JobVerdict::Done(payload)
    };
    let run = if case.feeder_jobs > 0 {
        let base = case.hints.len();
        let fed = case.feeder_jobs;
        run_stealing_tolerant_with_feeder(
            states,
            case.jobs(),
            |feeder| {
                for payload in base..base + fed {
                    feeder.push(payload);
                    std::thread::yield_now();
                }
            },
            execute,
        )
    } else {
        run_stealing_tolerant(states, case.jobs(), execute)
    };
    drop(installed);
    let s = lock_poison_free(&scheduler.state);
    let record = RunRecord {
        script: s.script.clone(),
        arity: s.arity.clone(),
        trace: s.trace.clone(),
        budget_exceeded: s.budget_exceeded,
        diverged: s.diverged,
    };
    let attempts = attempts.iter().map(|a| a.load(Ordering::SeqCst)).collect();
    (run, attempts, record)
}

/// Render a trace compactly for violation messages: `w0:wo w1:ws ...`.
fn format_trace(trace: &[(usize, Option<SchedOp>)]) -> String {
    let mut out = String::new();
    for (worker, op) in trace {
        if !out.is_empty() {
            out.push(' ');
        }
        out.push('w');
        out.push_str(&worker.to_string());
        out.push(':');
        out.push_str(op.map_or("go", SchedOp::mnemonic));
    }
    out
}

/// Check the host's contract on one completed run; returns human-readable
/// violations (empty when the schedule upholds every invariant).
fn check_run(case: &ExploreCase, run: &StealRun<Vec<usize>, usize>) -> Vec<String> {
    let n = case.total_jobs();
    let mut violations = Vec::new();

    // 1. Conservation: every job exactly once, globally and per ledger.
    let mut seen: Vec<usize> = run.completed.iter().map(|c| c.result).collect();
    seen.sort_unstable();
    if seen != (0..n).collect::<Vec<_>>() {
        violations.push(format!(
            "conservation: expected every job 0..{n} exactly once, got {seen:?}"
        ));
    }
    let executed: usize = run.workers.iter().map(|w| w.executed_jobs).sum();
    if executed != n {
        violations.push(format!(
            "conservation: ledgers executed {executed} of {n} jobs"
        ));
    }

    for (worker, ledger) in run.workers.iter().enumerate() {
        // 2a. Delivery order: this worker's completions cross the channel in
        // its execution order (the caller's re-sequencing relies on results
        // being attributable, not on channel order — but per-sender FIFO is
        // the channel's contract and the ledger must agree with it).
        let delivered: Vec<usize> = run
            .completed
            .iter()
            .filter(|c| c.worker == worker)
            .map(|c| c.result)
            .collect();
        if delivered != ledger.state {
            violations.push(format!(
                "ordering: worker {worker} delivered {delivered:?} but executed {:?}",
                ledger.state
            ));
        }
        if ledger.executed_jobs != ledger.state.len() {
            violations.push(format!(
                "accounting: worker {worker} ledger claims {} jobs, log has {}",
                ledger.executed_jobs,
                ledger.state.len()
            ));
        }
        // 2b. Own-deque FIFO: jobs hinted here and executed here left the
        // deque front in submission order.
        let own: Vec<usize> = ledger
            .state
            .iter()
            .copied()
            .filter(|&job| case.hint_of(job) == Some(worker))
            .collect();
        if !own.windows(2).all(|pair| pair[0] < pair[1]) {
            violations.push(format!(
                "ordering: worker {worker} ran its own hinted jobs out of order: {own:?}"
            ));
        }
        // 2c. Injector FIFO per consumer: floaters a worker takes arrive in
        // submission order.
        // Fed jobs are pushed behind the seeded floaters in ascending
        // payload order by a single feeder thread, so the global injector
        // FIFO (and hence each consumer's drain order) stays ascending.
        let floats: Vec<usize> = ledger
            .state
            .iter()
            .copied()
            .filter(|&job| case.hint_of(job).is_none())
            .collect();
        if !floats.windows(2).all(|pair| pair[0] < pair[1]) {
            violations.push(format!(
                "ordering: worker {worker} drained floaters out of order: {floats:?}"
            ));
        }
    }

    // 3. Steal accounting matches the per-job flags and recorded hints.
    let stolen_flags = run.completed.iter().filter(|c| c.stolen()).count();
    if run.total_steals() != stolen_flags {
        violations.push(format!(
            "accounting: total_steals {} != stolen completions {stolen_flags}",
            run.total_steals()
        ));
    }
    for completed in &run.completed {
        if completed.hint != case.hint_of(completed.result) {
            violations.push(format!(
                "accounting: job {} completed with hint {:?}, submitted with {:?}",
                completed.result,
                completed.hint,
                case.hint_of(completed.result)
            ));
        }
    }
    violations
}

/// Check the fault-tolerant host's contract on one completed run: **job
/// conservation under failure** replaces the plain host's ordering checks
/// (a retried job re-enters unhinted, so hint-order invariants no longer
/// apply to it).
fn check_tolerant_run(
    case: &ExploreCase,
    run: &TolerantRun<usize, Vec<usize>, usize>,
    attempts: &[usize],
) -> Vec<String> {
    let n = case.total_jobs();
    let mut violations = Vec::new();

    // 1. Conservation under failure: every job is delivered exactly once
    // or handed back in `unfinished`, never both and never neither.
    let mut seen: Vec<usize> = run.completed.iter().map(|c| c.result).collect();
    seen.extend(run.unfinished.iter().copied());
    seen.sort_unstable();
    if seen != (0..n).collect::<Vec<_>>() {
        violations.push(format!(
            "conservation: expected every job 0..{n} exactly once across \
             completions and unfinished, got {seen:?}"
        ));
    }

    // 2. Hand-back is a last resort: with any worker alive, everything
    // completes.
    if run.alive_workers() > 0 && !run.unfinished.is_empty() {
        violations.push(format!(
            "liveness: {} jobs handed back with {} workers alive",
            run.unfinished.len(),
            run.alive_workers()
        ));
    }

    // 3. Deaths are exactly the scripted ones that were reached, and a
    // dead device delivers nothing (it dies on its first job).
    for (worker, &died) in run.died.iter().enumerate() {
        if died && !case.fatal_workers.contains(&worker) {
            violations.push(format!("fault: worker {worker} died unscripted"));
        }
    }
    for completed in &run.completed {
        if run.died[completed.worker] {
            violations.push(format!(
                "fault: job {} delivered by dead worker {}",
                completed.result, completed.worker
            ));
        }
    }

    // 4. Ledger agreement: deliveries match each worker's execution log.
    for (worker, ledger) in run.workers.iter().enumerate() {
        let delivered: Vec<usize> = run
            .completed
            .iter()
            .filter(|c| c.worker == worker)
            .map(|c| c.result)
            .collect();
        if delivered != ledger.state {
            violations.push(format!(
                "ordering: worker {worker} delivered {delivered:?} but executed {:?}",
                ledger.state
            ));
        }
        if ledger.executed_jobs != ledger.state.len() {
            violations.push(format!(
                "accounting: worker {worker} ledger claims {} jobs, log has {}",
                ledger.executed_jobs,
                ledger.state.len()
            ));
        }
    }

    // 5. Retry accounting: exactly one retry per scripted flaky payload a
    // healthy worker actually reached (attempt counts are consumed in
    // grant order, so this is exact per schedule).
    let reached = case
        .retry_once
        .iter()
        .filter(|&&p| p < n && attempts[p] > 0)
        .count();
    if run.retries != reached {
        violations.push(format!(
            "accounting: {} retries recorded, {reached} scripted retry payloads reached",
            run.retries
        ));
    }

    // 6. Every death requeues at least the job the worker died holding.
    let deaths = run.died.iter().filter(|&&d| d).count();
    if run.requeued_on_death < deaths {
        violations.push(format!(
            "fault: {deaths} deaths but only {} jobs requeued on death",
            run.requeued_on_death
        ));
    }
    violations
}

/// Advance a depth-first script: drop trailing maxed-out choices, bump the
/// deepest choice with an unexplored alternative.  `None` when the tree is
/// fully enumerated.
fn next_script(mut script: Vec<usize>, mut arity: Vec<usize>) -> Option<Vec<usize>> {
    debug_assert_eq!(script.len(), arity.len());
    while let (Some(choice), Some(alternatives)) = (script.pop(), arity.pop()) {
        if choice + 1 < alternatives {
            script.push(choice + 1);
            return Some(script);
        }
    }
    None
}

/// Explore one case under `strategy`, running at most `budget` schedules.
///
/// Exhaustive exploration stops early (with `exhausted = true`) once the
/// bounded choice tree is fully enumerated; seeded exploration always runs
/// `budget` walks and reports how many were distinct.
///
/// # Panics
/// Panics if the case has no workers or a hint is out of range (mirroring
/// [`run_stealing`]'s own contract).
#[must_use]
pub fn explore_case(case: &ExploreCase, strategy: Strategy, budget: usize) -> CaseReport {
    let _exclusive = lock_poison_free(&EXPLORE_LOCK);
    let mut report = CaseReport {
        name: case.name,
        workers: case.workers,
        jobs: case.total_jobs(),
        schedules: 0,
        exhausted: false,
        longest_trace: 0,
        transitions: BTreeSet::new(),
        violations: Vec::new(),
    };
    let mut distinct: BTreeSet<Vec<(usize, Option<SchedOp>)>> = BTreeSet::new();
    let mut script = Vec::new();
    for run_seed in 0..budget as u64 {
        let (run_violations, record) = if case.tolerant() {
            let (run, attempts, record) = run_one_tolerant(case, script, strategy, run_seed);
            (check_tolerant_run(case, &run, &attempts), record)
        } else {
            let (run, record) = run_one(case, script, strategy, run_seed);
            (check_run(case, &run), record)
        };
        report.longest_trace = report.longest_trace.max(record.trace.len());
        let ops: Vec<SchedOp> = record.trace.iter().filter_map(|&(_, op)| op).collect();
        for pair in ops.windows(2) {
            report.transitions.insert((pair[0], pair[1]));
        }
        if distinct.insert(record.trace.clone()) {
            report.schedules += 1;
        }
        if record.diverged {
            report.violations.push(format!(
                "determinism: replayed schedule diverged at depth {} [{}]",
                record.arity.len(),
                format_trace(&record.trace)
            ));
        }
        if record.budget_exceeded {
            report.violations.push(format!(
                "liveness: schedule exceeded {} steps (possible livelock) [{}]",
                step_budget(case),
                format_trace(&record.trace)
            ));
        }
        for violation in run_violations {
            report
                .violations
                .push(format!("{violation} [{}]", format_trace(&record.trace)));
        }
        match strategy {
            Strategy::Exhaustive => match next_script(record.script, record.arity) {
                Some(next) => script = next,
                None => {
                    report.exhausted = true;
                    break;
                }
            },
            Strategy::Seeded(_) => script = Vec::new(),
        }
    }
    report
}

/// The standard exploration battery: the hint/float patterns the serving
/// host actually produces, small enough to explore densely.
#[must_use]
pub fn standard_cases() -> Vec<ExploreCase> {
    vec![
        ExploreCase {
            name: "steal-storm",
            workers: 2,
            hints: vec![Some(0), Some(0), Some(0)],
            feeder_jobs: 0,
            contention: 0,
            fatal_workers: Vec::new(),
            retry_once: Vec::new(),
        },
        ExploreCase {
            name: "hinted-plus-floater",
            workers: 2,
            hints: vec![Some(0), Some(1), None],
            feeder_jobs: 0,
            contention: 0,
            fatal_workers: Vec::new(),
            retry_once: Vec::new(),
        },
        ExploreCase {
            name: "floaters-only",
            workers: 2,
            hints: vec![None, None, None],
            feeder_jobs: 0,
            contention: 0,
            fatal_workers: Vec::new(),
            retry_once: Vec::new(),
        },
        ExploreCase {
            name: "three-way-contention",
            workers: 3,
            hints: vec![Some(0), Some(0)],
            feeder_jobs: 0,
            contention: 0,
            fatal_workers: Vec::new(),
            retry_once: Vec::new(),
        },
        ExploreCase {
            name: "idle-pool",
            workers: 3,
            hints: vec![Some(1)],
            feeder_jobs: 0,
            contention: 0,
            fatal_workers: Vec::new(),
            retry_once: Vec::new(),
        },
        // Pins the injector-retry backoff fix: contended sweeps must fall
        // through to sibling steals and the shared backoff path instead of
        // hot-spinning on the injector, with conservation intact.
        ExploreCase {
            name: "contended-injector",
            workers: 2,
            hints: vec![Some(0), Some(1), None],
            feeder_jobs: 0,
            contention: 2,
            fatal_workers: Vec::new(),
            retry_once: Vec::new(),
        },
        // Pins the feeder-done termination protocol: arrivals pushed by an
        // uncontrolled thread mid-run must all execute (no early exit) and
        // the pool must still terminate (no hang after the feeder stops).
        ExploreCase {
            name: "streaming-feeder",
            workers: 2,
            hints: vec![Some(0), None],
            feeder_jobs: 3,
            contention: 0,
            fatal_workers: Vec::new(),
            retry_once: Vec::new(),
        },
        // Fault schedule: a device dies holding hinted work.  The dying
        // worker must drain its deque back to the injector — whatever
        // point of its sweep the death lands on — and the survivor must
        // finish every job.
        ExploreCase {
            name: "dying-worker-drains-deque",
            workers: 2,
            hints: vec![Some(0), Some(0), Some(0)],
            feeder_jobs: 0,
            contention: 0,
            fatal_workers: vec![0],
            retry_once: Vec::new(),
        },
        // Fault schedule: the death lands on a *stolen* job — worker 1
        // owns nothing, so whatever it dies holding was taken from a
        // sibling's deque or the injector mid-steal, and must be handed
        // back rather than lost with the worker.
        ExploreCase {
            name: "death-mid-steal",
            workers: 3,
            hints: vec![Some(0), Some(0)],
            feeder_jobs: 0,
            contention: 0,
            fatal_workers: vec![1],
            retry_once: Vec::new(),
        },
        // Fault schedule: retries race the feeder-done flag.  A fed job's
        // requeue keeps the outstanding count up, so no worker may exit in
        // the window between the feeder finishing and the retried job
        // landing back in the injector.
        ExploreCase {
            name: "retry-races-feeder-done",
            workers: 2,
            hints: vec![Some(0), None],
            feeder_jobs: 2,
            contention: 0,
            fatal_workers: Vec::new(),
            retry_once: vec![1, 2, 3],
        },
    ]
}

/// Run the standard battery, splitting `budget` schedules across the cases
/// (each case also stops early once exhausted).  This is the race-detector
/// engine behind `sem-lint` and the CI smoke step.
///
/// Cases with an uncontrolled feeder are explored with seeded walks — the
/// feeder's pushes interleave nondeterministically, so exhaustive
/// enumeration's replayed prefixes would diverge; everything else is
/// enumerated exhaustively.
#[must_use]
pub fn standard_battery(budget: usize) -> Vec<CaseReport> {
    let cases = standard_cases();
    let per_case = (budget / cases.len()).max(1);
    cases
        .iter()
        .map(|case| {
            let strategy = if case.feeder_jobs > 0 {
                Strategy::Seeded(0x5eed_cafe)
            } else {
                Strategy::Exhaustive
            };
            explore_case(case, strategy, per_case)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn next_script_enumerates_a_small_tree_completely() {
        // Tree: depth 0 has 2 alternatives, depth 1 has 2 — but arity is
        // whatever each run reports, so feed a fixed shape and walk it.
        let mut script = Vec::new();
        let mut visited = Vec::new();
        loop {
            // Pretend every run observes arity [2, 2] (4 leaves).
            let arity = vec![2, 2];
            let full: Vec<usize> = script
                .iter()
                .copied()
                .chain(std::iter::repeat(0))
                .take(2)
                .collect();
            visited.push(full.clone());
            match next_script(full, arity) {
                Some(next) => script = next,
                None => break,
            }
        }
        assert_eq!(
            visited,
            vec![vec![0, 0], vec![0, 1], vec![1, 0], vec![1, 1]],
            "depth-first enumeration of the whole tree, each leaf once"
        );
    }

    #[test]
    fn next_script_on_a_single_alternative_tree_is_done_immediately() {
        assert_eq!(next_script(vec![0, 0], vec![1, 1]), None);
        assert_eq!(next_script(Vec::new(), Vec::new()), None);
    }

    #[test]
    fn splitmix_is_deterministic_and_non_constant() {
        let mut a = 42;
        let mut b = 42;
        let first = next_rand(&mut a);
        assert_eq!(first, next_rand(&mut b));
        assert_ne!(first, next_rand(&mut a));
    }

    #[test]
    fn trace_formatting_is_compact() {
        let trace = vec![(0, None), (1, Some(SchedOp::WorkerPop))];
        assert_eq!(format_trace(&trace), "w0:go w1:wo");
    }

    #[test]
    fn transition_map_renders_classes_in_deterministic_order() {
        let mut transitions = BTreeSet::new();
        transitions.insert((SchedOp::WorkerPop, SchedOp::WorkerSteal));
        transitions.insert((SchedOp::InjectorPush, SchedOp::InjectorSteal));
        let report = CaseReport {
            name: "map",
            workers: 1,
            jobs: 0,
            schedules: 0,
            exhausted: false,
            longest_trace: 0,
            transitions,
            violations: Vec::new(),
        };
        assert_eq!(report.transition_map(), "ip>is wo>ws");
    }

    #[test]
    fn to_json_round_trips_fields_and_escapes_violations() {
        let mut transitions = BTreeSet::new();
        transitions.insert((SchedOp::WorkerPop, SchedOp::WorkerSteal));
        let report = CaseReport {
            name: "json",
            workers: 2,
            jobs: 3,
            schedules: 17,
            exhausted: true,
            longest_trace: 9,
            transitions,
            violations: vec!["lost \"job\"\nafter steal".to_string()],
        };
        let json = report.to_json();
        assert_eq!(
            json,
            "{\"name\":\"json\",\"workers\":2,\"jobs\":3,\"schedules\":17,\
             \"exhausted\":true,\"longest_trace\":9,\
             \"transitions\":[\"wo>ws\"],\
             \"violations\":[\"lost \\\"job\\\"\\nafter steal\"]}"
        );
    }

    #[test]
    fn exploration_accumulates_transition_coverage() {
        let case = ExploreCase {
            name: "coverage-smoke",
            workers: 2,
            hints: vec![Some(0), None],
            feeder_jobs: 0,
            contention: 0,
            fatal_workers: Vec::new(),
            retry_once: Vec::new(),
        };
        let report = explore_case(&case, Strategy::Exhaustive, 64);
        assert!(report.violations.is_empty(), "{:?}", report.violations);
        // Any run of the host performs at least push -> consume -> send
        // sequences, so coverage can never be empty, and the map renders
        // one class per entry.
        assert!(!report.transitions.is_empty());
        assert_eq!(
            report.transition_map().split(' ').count(),
            report.transitions.len()
        );
    }

    #[test]
    fn contended_injector_steal_falls_through_to_siblings_not_back_to_own_pop() {
        // Regression for the injector hot-spin: a `Steal::Retry` from the
        // injector used to `continue` straight back to the top of the
        // sweep (own-deque pop next), skipping the sibling probes and the
        // yield/park backoff that sibling retries got.  Force worker 0's
        // first injector steals to lose their race and assert each one
        // falls through to a sibling steal within the same sweep — the
        // pre-fix loop restarted at `WorkerPop` instead.
        use std::sync::atomic::{AtomicUsize, Ordering};

        let _exclusive = lock_poison_free(&EXPLORE_LOCK);

        struct RetryProbe {
            ops: Mutex<Vec<(usize, SchedOp)>>,
            retries_left: AtomicUsize,
        }

        impl Scheduler for RetryProbe {
            fn thread_started(&self, _index: usize) {}
            fn yield_point(&self, index: usize, op: SchedOp) {
                lock_poison_free(&self.ops).push((index, op));
            }
            fn thread_finished(&self, _index: usize) {}
            fn steal_contended(&self, index: usize, op: SchedOp) -> bool {
                index == 0
                    && op == SchedOp::InjectorSteal
                    && self
                        .retries_left
                        .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |left| {
                            left.checked_sub(1)
                        })
                        .is_ok()
            }
        }

        const FORCED_RETRIES: usize = 2;
        let probe = Arc::new(RetryProbe {
            ops: Mutex::new(Vec::new()),
            retries_left: AtomicUsize::new(FORCED_RETRIES),
        });
        sched::install(Arc::clone(&probe) as Arc<dyn Scheduler>);
        let jobs: Vec<TaggedJob<usize>> = (0..2)
            .map(|payload| TaggedJob {
                payload,
                hint: Some(1),
            })
            .collect();
        let run = run_stealing(
            vec![Vec::new(); 2],
            jobs,
            |_, log: &mut Vec<usize>, payload| {
                log.push(payload);
                payload
            },
        );
        sched::uninstall();
        assert_eq!(run.completed.len(), 2, "conservation under forced retries");

        let ops = lock_poison_free(&probe.ops);
        let w0: Vec<SchedOp> = ops
            .iter()
            .filter(|&&(index, _)| index == 0)
            .map(|&(_, op)| op)
            .collect();
        let retried: Vec<usize> = w0
            .iter()
            .enumerate()
            .filter(|&(_, &op)| op == SchedOp::InjectorSteal)
            .map(|(at, _)| at)
            .take(FORCED_RETRIES)
            .collect();
        assert_eq!(
            retried.len(),
            FORCED_RETRIES,
            "worker 0 must reach enough injector steals to consume the budget"
        );
        for at in retried {
            assert_eq!(
                w0.get(at + 1),
                Some(&SchedOp::WorkerSteal),
                "a contended injector steal must fall through to the sibling \
                 probe, not restart the sweep at its own deque: {w0:?}"
            );
        }
    }

    #[test]
    fn contention_injection_is_explored_without_violations() {
        let case = ExploreCase {
            name: "contention-smoke",
            workers: 2,
            hints: vec![Some(0), None],
            feeder_jobs: 0,
            contention: 2,
            fatal_workers: Vec::new(),
            retry_once: Vec::new(),
        };
        let report = explore_case(&case, Strategy::Exhaustive, 128);
        assert!(report.violations.is_empty(), "{:?}", report.violations);
        assert!(report.schedules > 0);
    }

    #[test]
    fn feeder_case_conserves_and_terminates_under_seeded_walks() {
        let case = ExploreCase {
            name: "feeder-smoke",
            workers: 2,
            hints: vec![Some(0), None],
            feeder_jobs: 3,
            contention: 0,
            fatal_workers: Vec::new(),
            retry_once: Vec::new(),
        };
        let report = explore_case(&case, Strategy::Seeded(7), 16);
        assert!(report.violations.is_empty(), "{:?}", report.violations);
        assert_eq!(report.jobs, 5, "seeded plus fed jobs are all accounted");
        assert!(report.schedules > 0);
    }

    #[test]
    fn a_dying_worker_case_is_explored_without_violations() {
        let case = ExploreCase {
            name: "death-smoke",
            workers: 2,
            hints: vec![Some(0), Some(0), Some(0)],
            feeder_jobs: 0,
            contention: 0,
            fatal_workers: vec![0],
            retry_once: Vec::new(),
        };
        let report = explore_case(&case, Strategy::Exhaustive, 128);
        assert!(report.violations.is_empty(), "{:?}", report.violations);
        assert!(report.schedules > 0);
    }

    #[test]
    fn retries_racing_the_feeder_conserve_jobs_under_seeded_walks() {
        let case = ExploreCase {
            name: "retry-feeder-smoke",
            workers: 2,
            hints: vec![None],
            feeder_jobs: 2,
            contention: 0,
            fatal_workers: Vec::new(),
            retry_once: vec![0, 1, 2],
        };
        let report = explore_case(&case, Strategy::Seeded(11), 16);
        assert!(report.violations.is_empty(), "{:?}", report.violations);
        assert_eq!(report.jobs, 3, "seeded plus fed jobs are all accounted");
        assert!(report.schedules > 0);
    }
}
