//! Pipelined, overlap-aware solve serving over the backend registry.
//!
//! `sem-accel` gave the workspace backends and batched solves; this crate
//! turns them into a *serving system*: many clients submit solve requests
//! (mixed degrees and meshes), a queue packs them into batch jobs, a
//! pluggable scheduling policy places each job on a device of a
//! heterogeneous pool (CPU kernels, simulated FPGA boards, multi-board
//! partitions, and `fpga:projected:*` model-designed future devices side by
//! side), and every session is accounted on a three-stage offload pipeline
//! that overlaps upload(`i+1`) / solve(`i`) / download(`i-1`) the way the
//! paper's host–device flow (and the follow-on Neko/FPGA work) treats the
//! accelerator: as a pipeline stage, not a blocking callee.
//!
//! * [`request`] — [`ServeRequest`]/[`ProblemSpec`]/[`RhsSpec`]: what
//!   clients submit;
//! * [`queue`] — [`SolveQueue`]: groups requests by shape and chunks them
//!   into [`BatchJob`]s without ever reordering answers;
//! * [`pipeline`] — [`PipelineTimeline`]: the event-level schedule of one
//!   session (H2D / kernel / D2H channels, double buffering, per-iteration
//!   residual streaming so convergence checks never stall the kernel),
//!   degenerating bitwise to the serial `SolveReport` accounting when
//!   overlap is disabled;
//! * [`scheduler`] — [`SchedulingPolicy`] with [`RoundRobin`],
//!   [`LeastLoaded`] and [`ModelOptimal`] (earliest predicted completion,
//!   priced by the simulator where one exists and by
//!   `perf_model::HostCostModel` elsewhere);
//! * [`admission`] — [`AdmissionPolicy`]: deadline-aware admission on top
//!   of the model-optimal completion predictions (reject, or down-batch and
//!   re-price, whatever the model prices over the target);
//! * [`steal`] — [`run_stealing`]: the generic work-stealing execution core
//!   (per-worker deques + shared injector from the vendored `crossbeam`),
//!   one thread per device slot, owned-session handoff, steal/concurrency
//!   accounting; [`run_stealing_tolerant`] adds verdict-driven retry and
//!   dying-worker requeue with an outstanding-work termination proof, so
//!   jobs are conserved under any mix of faults;
//! * [`server`] — [`Server::serve`] and [`Server::serve_async`]: execute
//!   everything through `SemSystem::solve_many` (solutions stay bitwise
//!   identical to direct batched solves — and, on homogeneous pools, across
//!   the two hosts), re-sequence answers into request order, and report
//!   per-request latency, per-device utilisation, measured concurrency,
//!   steal counts and aggregate throughput ([`ServeReport`] /
//!   [`ServeSummary`]);
//! * [`stream`] — live traffic: [`ArrivalStream`]s of timestamped requests
//!   (seeded open-loop workloads via `perf_model::workload`), windowed
//!   deadline admission in virtual time with drift-corrected pricing, the
//!   synchronous reference host ([`Server::serve_stream`]) and the
//!   streaming work-stealing host ([`Server::serve_stream_async`]) whose
//!   feeder pushes arrivals into the shared injector while workers drain;
//! * [`autoscaler`] — [`Autoscaler`]: an SLO-holding, cost-minimising
//!   activation mask over an `arch-db` candidate pool (real FPGA boards and
//!   `fpga:projected:*` devices), one flip per observation window, holding
//!   rather than shrinking when a window carries no latency evidence.
//!
//! ```
//! use sem_serve::{
//!     ProblemSpec, RoundRobin, ServeOptions, ServeRequest, Server,
//! };
//!
//! let mut server = Server::from_registry_names(
//!     &["cpu:optimized", "fpga:stratix10-gx2800"],
//!     ServeOptions {
//!         max_batch: 4,
//!         ..ServeOptions::default()
//!     },
//! );
//! let spec = ProblemSpec::cube(3, 2);
//! let requests: Vec<ServeRequest> =
//!     (0..6).map(|i| ServeRequest::seeded(spec, i)).collect();
//! let report = server.serve(&requests, &mut RoundRobin::default());
//! assert_eq!(report.outcomes.len(), 6);
//! assert!(report.throughput_rps() > 0.0);
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod admission;
pub mod autoscaler;
pub mod chaos;
pub mod explore;
pub mod fault;
pub mod pipeline;
pub mod queue;
pub mod request;
pub mod scheduler;
pub mod server;
pub mod steal;
pub mod stream;

pub use admission::{AdmissionPolicy, AdmittedJob, RejectedRequest};
pub use autoscaler::{Autoscaler, AutoscalerPolicy, ScaleDirection, ScaleEvent};
pub use chaos::{ChaosReport, ChaosSummary, FaultEvent};
pub use explore::{
    explore_case, standard_battery, standard_cases, CaseReport, ExploreCase, Strategy,
};
pub use fault::{
    relative_residual, BreakerState, CircuitBreaker, FaultReason, FaultToleranceOptions,
    RetryLedger, RetryRecord,
};
pub use pipeline::{
    PipelineConfig, PipelineTimeline, RequestStages, Stage, StageEvent,
    RESIDUAL_BYTES_PER_ITERATION,
};
pub use queue::{BatchJob, SolveQueue};
pub use request::{ProblemSpec, RhsSpec, ServeRequest};
pub use scheduler::{
    policy_by_name, policy_names, DeviceSlot, DeviceStatus, LeastLoaded, ModelOptimal, Pinned,
    RoundRobin, SchedulingPolicy,
};
pub use server::{
    DeviceUsage, JobTrace, RequestOutcome, ServeOptions, ServeReport, ServeSummary, Server,
};
pub use steal::{
    run_stealing, run_stealing_tolerant, run_stealing_tolerant_with_feeder,
    run_stealing_with_feeder, CompletedJob, FeederHandle, JobVerdict, StealRun, TaggedJob,
    TolerantFeederHandle, TolerantRun, WorkerLedger,
};
pub use stream::{
    ArrivalStream, LiveOptions, LiveOutcome, LiveRejection, LiveReport, TimedRequest, WindowStats,
};
