//! Serving-layer fault tolerance: detection thresholds, retry policy, and
//! per-device circuit breakers.
//!
//! The simulator injects faults ([`fpga_sim::FaultPlan`] behind
//! `sem_accel::FaultyBackend`); this module is the *policy* side the chaos
//! host ([`crate::Server::serve_chaos`]) runs against it:
//!
//! * **Detection** — typed device errors surface from the solver as
//!   `SolveFault`; silent corruption is caught by recomputing the released
//!   answer's relative residual on the trusted host operator
//!   ([`relative_residual`]) against the request tolerance; sticky
//!   slowdowns are caught by a modeled-time timeout budget (`k×` the
//!   drift-corrected admission prediction).  Nothing consults a wall
//!   clock, so every verdict is deterministic.
//! * **Retry** — failed jobs requeue with capped exponential backoff in
//!   modeled seconds, each attempt recorded in a [`RetryLedger`]; past
//!   [`FaultToleranceOptions::max_retries`] the job is pinned to the
//!   fallback device (a clean `cpu:*` slot when one exists) so admitted
//!   work always completes.
//! * **Quarantine** — a per-device [`CircuitBreaker`] walks
//!   healthy → suspect → quarantined on consecutive faults and re-admits
//!   by probing after a modeled cooldown; quarantined devices leave the
//!   placement set (and the autoscaler's activation mask, see
//!   [`crate::Autoscaler::set_quarantined`]).

use sem_accel::SemSystem;
use sem_mesh::ElementField;
use sem_solver::{CgOptions, CgSolver, SolveFault};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Why the serving layer refused a job's answer (or never got one).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultReason {
    /// The device died mid-solve (typed error from the backend).
    DeviceDead,
    /// A kernel hung and the solve was aborted (typed error).
    KernelHung,
    /// The solve "succeeded" but the recomputed residual failed
    /// verification — a transient upset corrupted the answer.
    CorruptResult,
    /// The session's modeled seconds blew the timeout budget — the
    /// signature of a sticky slowdown (degraded link or clock).
    TimeoutExceeded,
}

impl FaultReason {
    /// Stable lowercase label (metric label values, report keys).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Self::DeviceDead => "death",
            Self::KernelHung => "hang",
            Self::CorruptResult => "corrupt",
            Self::TimeoutExceeded => "timeout",
        }
    }

    /// The reason a typed solver fault maps to.
    #[must_use]
    pub fn of_solve_fault(fault: SolveFault) -> Self {
        match fault {
            SolveFault::DeviceDead { .. } => Self::DeviceDead,
            SolveFault::KernelHung { .. } => Self::KernelHung,
        }
    }
}

/// Knobs of the fault-tolerant serving path.  Everything is priced in
/// modeled seconds; defaults are deliberately conservative so a fault-free
/// run is indistinguishable from the plain host.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct FaultToleranceOptions {
    /// Residual verification slack: an answer is accepted when its
    /// recomputed relative residual is `<= verify_slack × cg.tolerance`.
    /// (CG's own stopping test uses the recursively updated residual,
    /// which drifts from the true residual by rounding — the slack absorbs
    /// that, while a bit-flip upset overshoots it by ~150 orders of
    /// magnitude.)
    pub verify_slack: f64,
    /// Timeout budget factor: a session whose modeled seconds exceed
    /// `timeout_factor ×` its drift-corrected admission prediction is
    /// treated as [`FaultReason::TimeoutExceeded`].
    pub timeout_factor: f64,
    /// Attempts before a job stops bouncing between accelerators and is
    /// pinned to the fallback device.
    pub max_retries: usize,
    /// First retry's modeled backoff delay.
    pub backoff_base_seconds: f64,
    /// Backoff ceiling (the exponential doubles up to here).
    pub backoff_cap_seconds: f64,
    /// Modeled seconds a quarantined device sits out before the breaker
    /// offers it a probe job.
    pub probe_cooldown_seconds: f64,
}

impl Default for FaultToleranceOptions {
    fn default() -> Self {
        Self {
            verify_slack: 10.0,
            timeout_factor: 4.0,
            max_retries: 5,
            backoff_base_seconds: 1e-3,
            backoff_cap_seconds: 0.1,
            probe_cooldown_seconds: 1.0,
        }
    }
}

impl FaultToleranceOptions {
    /// Modeled backoff before retry number `attempt` (1-based): capped
    /// exponential, `base × 2^(attempt-1)` up to the cap.
    #[must_use]
    pub fn backoff_seconds(&self, attempt: usize) -> f64 {
        let doublings = attempt.saturating_sub(1).min(52) as i32;
        (self.backoff_base_seconds * f64::from(2.0_f32).powi(doublings))
            .min(self.backoff_cap_seconds)
    }

    /// Whether a recomputed relative residual passes verification.
    /// NaN-safe: a NaN residual never verifies.
    #[must_use]
    pub fn residual_ok(&self, relative_residual: f64, tolerance: f64) -> bool {
        relative_residual <= self.verify_slack * tolerance
    }
}

/// One request's retry history.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct RetryRecord {
    /// Attempts that failed (the successful attempt is not counted).
    pub attempts: usize,
    /// Reason of each failed attempt, in order.
    pub reasons: Vec<FaultReason>,
    /// Total modeled backoff seconds this request waited.
    pub backoff_seconds: f64,
}

/// The retry ledger: per-request failure history of one serve run, plus
/// run-wide totals — the audit trail proving no admitted job was dropped.
#[derive(Debug, Clone, Default)]
pub struct RetryLedger {
    records: BTreeMap<usize, RetryRecord>,
}

impl RetryLedger {
    /// An empty ledger.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one failed attempt for `request`; returns the attempt count
    /// so far (1 after the first failure).
    pub fn charge(&mut self, request: usize, reason: FaultReason, backoff_seconds: f64) -> usize {
        let record = self.records.entry(request).or_default();
        record.attempts += 1;
        record.reasons.push(reason);
        record.backoff_seconds += backoff_seconds;
        record.attempts
    }

    /// Failed attempts recorded for `request`.
    #[must_use]
    pub fn attempts(&self, request: usize) -> usize {
        self.records.get(&request).map_or(0, |r| r.attempts)
    }

    /// Total failed attempts across all requests.
    #[must_use]
    pub fn total_retries(&self) -> usize {
        self.records.values().map(|r| r.attempts).sum()
    }

    /// Requests that failed at least once (and their histories), by
    /// request index.
    #[must_use]
    pub fn records(&self) -> &BTreeMap<usize, RetryRecord> {
        &self.records
    }

    /// Failed attempts per reason label, as `(label, count)` pairs in
    /// stable label order (serde-friendly for bench artifacts).
    #[must_use]
    pub fn by_reason(&self) -> Vec<(String, usize)> {
        let mut out: BTreeMap<&'static str, usize> = BTreeMap::new();
        for record in self.records.values() {
            for reason in &record.reasons {
                *out.entry(reason.label()).or_insert(0) += 1;
            }
        }
        out.into_iter()
            .map(|(label, count)| (label.to_string(), count))
            .collect()
    }
}

/// Circuit-breaker health of one device.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum BreakerState {
    /// Serving normally.
    Healthy,
    /// One strike: still serving, but the next fault quarantines.
    Suspect,
    /// Out of the placement set since the recorded modeled time; eligible
    /// for a probe job after the cooldown.
    Quarantined {
        /// Modeled seconds at which the device was quarantined.
        since_seconds: f64,
    },
}

impl BreakerState {
    /// Stable lowercase label.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Self::Healthy => "healthy",
            Self::Suspect => "suspect",
            Self::Quarantined { .. } => "quarantined",
        }
    }
}

/// Per-device circuit breaker: healthy → suspect on a fault, suspect →
/// quarantined on a second, suspect → healthy on a success, and
/// probe-based re-admission out of quarantine after a modeled cooldown.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CircuitBreaker {
    state: BreakerState,
    /// Faults observed over the breaker's lifetime.
    pub faults: usize,
    /// Times the device entered quarantine.
    pub quarantines: usize,
}

impl Default for CircuitBreaker {
    fn default() -> Self {
        Self::new()
    }
}

impl CircuitBreaker {
    /// A healthy breaker.
    #[must_use]
    pub fn new() -> Self {
        Self {
            state: BreakerState::Healthy,
            faults: 0,
            quarantines: 0,
        }
    }

    /// Current state.
    #[must_use]
    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// Whether the device is out of the normal placement set.
    #[must_use]
    pub fn is_quarantined(&self) -> bool {
        matches!(self.state, BreakerState::Quarantined { .. })
    }

    /// A job completed verified on this device.  A suspect device is
    /// rehabilitated; a quarantined one must go through [`Self::probe_ok`]
    /// instead (success here would mean placement ignored the quarantine).
    pub fn on_success(&mut self) {
        if self.state == BreakerState::Suspect {
            self.state = BreakerState::Healthy;
        }
    }

    /// A job failed on this device at modeled time `now_seconds`.
    /// Returns the state after the strike.
    pub fn on_fault(&mut self, now_seconds: f64) -> BreakerState {
        self.faults += 1;
        self.state = match self.state {
            BreakerState::Healthy => BreakerState::Suspect,
            BreakerState::Suspect | BreakerState::Quarantined { .. } => {
                if !matches!(self.state, BreakerState::Quarantined { .. }) {
                    self.quarantines += 1;
                }
                BreakerState::Quarantined {
                    since_seconds: now_seconds,
                }
            }
        };
        self.state
    }

    /// Whether a quarantined device has sat out its cooldown and may be
    /// offered a probe job.
    ///
    /// Compares `now >= since + cooldown` — the *same* expression the
    /// chaos placer uses to compute its wait-until time.  The subtractive
    /// form `now - since >= cooldown` disagrees with it at the boundary
    /// (for `since ≈ 1.001122…`, `(since + 1.0) - since` rounds below
    /// `1.0`), which let the host wake at exactly the scheduled probe
    /// time, find no probe due, and re-schedule the same wake-up forever.
    #[must_use]
    pub fn probe_due(&self, now_seconds: f64, cooldown_seconds: f64) -> bool {
        match self.state {
            BreakerState::Quarantined { since_seconds } => {
                now_seconds >= since_seconds + cooldown_seconds
            }
            _ => false,
        }
    }

    /// A probe job completed verified: re-admit the device (healthy, not
    /// suspect — the probe *is* the evidence).
    pub fn probe_ok(&mut self) {
        self.state = BreakerState::Healthy;
    }
}

/// Recompute the relative residual `‖b − Ax‖ / ‖b‖` of a released answer
/// on the trusted host operator (the native `PoissonOperator` path — never
/// the backend that produced the answer), in the same masked, weighted
/// norm CG's own stopping test uses.  Returns `0.0` for a zero right-hand
/// side, matching the solver's convention.
#[must_use]
pub fn relative_residual(system: &SemSystem, rhs: &ElementField, solution: &ElementField) -> f64 {
    let verifier = CgSolver::new(
        system.operator(),
        system.gather_scatter(),
        system.mask(),
        CgOptions::default(),
    );
    let mut b = rhs.clone();
    system.mask().apply(&mut b);
    let b_norm = verifier.inner_product(&b, &b).sqrt();
    if b_norm == 0.0 {
        return 0.0;
    }
    let ax = verifier.apply_operator(solution);
    b.axpy(-1.0, &ax);
    verifier.inner_product(&b, &b).sqrt() / b_norm
}

#[cfg(test)]
mod tests {
    use super::*;
    use sem_accel::Backend;

    #[test]
    fn backoff_is_capped_exponential() {
        let opts = FaultToleranceOptions::default();
        assert_eq!(opts.backoff_seconds(1), 1e-3);
        assert_eq!(opts.backoff_seconds(2), 2e-3);
        assert_eq!(opts.backoff_seconds(3), 4e-3);
        assert_eq!(opts.backoff_seconds(30), 0.1, "capped");
        assert_eq!(opts.backoff_seconds(1000), 0.1, "no overflow at depth");
    }

    #[test]
    fn residual_verification_is_nan_safe() {
        let opts = FaultToleranceOptions::default();
        assert!(opts.residual_ok(1e-11, 1e-10));
        assert!(!opts.residual_ok(1e-3, 1e-10));
        assert!(!opts.residual_ok(f64::NAN, 1e-10), "NaN never verifies");
    }

    #[test]
    fn ledger_tracks_attempts_reasons_and_backoff() {
        let mut ledger = RetryLedger::new();
        assert_eq!(ledger.charge(3, FaultReason::DeviceDead, 0.001), 1);
        assert_eq!(ledger.charge(3, FaultReason::CorruptResult, 0.002), 2);
        assert_eq!(ledger.charge(7, FaultReason::TimeoutExceeded, 0.001), 1);
        assert_eq!(ledger.attempts(3), 2);
        assert_eq!(ledger.attempts(0), 0);
        assert_eq!(ledger.total_retries(), 3);
        let by_reason = ledger.by_reason();
        assert!(by_reason.contains(&("death".to_string(), 1)));
        assert!(by_reason.contains(&("corrupt".to_string(), 1)));
        assert!((ledger.records()[&3].backoff_seconds - 0.003).abs() < 1e-15);
    }

    #[test]
    fn breaker_walks_healthy_suspect_quarantined_and_probes_back() {
        let mut breaker = CircuitBreaker::new();
        assert_eq!(breaker.state(), BreakerState::Healthy);
        assert_eq!(breaker.on_fault(1.0), BreakerState::Suspect);
        // A success while suspect rehabilitates.
        breaker.on_success();
        assert_eq!(breaker.state(), BreakerState::Healthy);
        // Two strikes quarantine.
        breaker.on_fault(2.0);
        assert_eq!(
            breaker.on_fault(3.0),
            BreakerState::Quarantined { since_seconds: 3.0 }
        );
        assert!(breaker.is_quarantined());
        // on_success does NOT lift a quarantine.
        breaker.on_success();
        assert!(breaker.is_quarantined());
        // Probe only after the cooldown, measured in modeled time.
        assert!(!breaker.probe_due(3.5, 1.0));
        assert!(breaker.probe_due(4.0, 1.0));
        breaker.probe_ok();
        assert_eq!(breaker.state(), BreakerState::Healthy);
        assert_eq!(breaker.faults, 3);
        assert_eq!(breaker.quarantines, 1);
        // A failed probe re-quarantines at the probe's modeled time.
        breaker.on_fault(5.0);
        assert_eq!(
            breaker.on_fault(5.0),
            BreakerState::Quarantined { since_seconds: 5.0 }
        );
    }

    #[test]
    fn a_probe_is_due_at_exactly_the_scheduled_wake_up_time() {
        // Regression: the chaos placer waits until `since + cooldown`, so
        // `probe_due` must be true at precisely that float.  The old
        // subtractive test (`now - since >= cooldown`) rounds the
        // difference below the cooldown for awkward `since` values — the
        // host then woke at the scheduled time, found no probe due, and
        // re-scheduled the identical wake-up forever (observed live with
        // an all-dead accelerator pool).
        let mut breaker = CircuitBreaker::new();
        let since = 1.001_122_026_227_285_f64;
        breaker.on_fault(since);
        breaker.on_fault(since);
        assert!(breaker.is_quarantined());
        let cooldown = 1.0;
        // The exact modeled instant the placer schedules.
        assert!(
            (since + cooldown) - since < cooldown,
            "the rounding this pins"
        );
        assert!(breaker.probe_due(since + cooldown, cooldown));
        assert!(!breaker.probe_due(since, cooldown));
    }

    #[test]
    fn trusted_residual_accepts_converged_answers_and_rejects_corruption() {
        let system = sem_accel::SemSystem::builder()
            .degree(4)
            .elements([2, 2, 2])
            .backend(Backend::cpu_optimized())
            .build();
        let rhs = system.problem().manufactured_rhs();
        let report = system
            .solve_many(std::slice::from_ref(&rhs), CgOptions::default())
            .pop()
            .unwrap();
        let good = relative_residual(&system, &rhs, &report.solution.solution);
        let opts = FaultToleranceOptions::default();
        let tolerance = report.solution.cg.relative_residual.max(1e-10);
        assert!(
            opts.residual_ok(good, tolerance),
            "converged solve verifies: residual {good} vs tolerance {tolerance}"
        );
        // Flip one bit of the answer the way the injector does (on an
        // interior node carrying a nonzero value — a masked boundary entry
        // is zero and its upset would vanish): detection must catch
        // exactly the corruption the simulator produces.
        let mut corrupted = report.solution.solution.clone();
        let target = corrupted
            .as_slice()
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.abs().total_cmp(&b.1.abs()))
            .map_or(0, |(i, _)| i);
        corrupted.as_mut_slice()[target] =
            fpga_sim::corrupt_value(corrupted.as_mut_slice()[target]);
        let bad = relative_residual(&system, &rhs, &corrupted);
        assert!(
            !opts.residual_ok(bad, tolerance),
            "a single-event upset fails verification: residual {bad}"
        );
    }
}
