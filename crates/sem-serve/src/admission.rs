//! Deadline-aware admission control: decide, *before* anything executes,
//! which packed jobs the pool can serve within a completion-time target.
//!
//! Admission runs on the same model-optimal completion predictions the
//! scheduler's pricing uses: each job is tentatively placed on the device
//! with the earliest predicted completion (modelled backlog plus the job's
//! predicted session seconds), and the prediction is priced against the
//! deadline by [`perf_model::DeadlineModel`].  Because only requests the
//! model prices under the deadline are admitted, the *predicted* p99 (in
//! fact p100) of the admitted set is bounded by the target — the serving
//! guarantee the ROADMAP's admission-control item asks for.
//!
//! Two enforcement modes exist beyond [`AdmissionPolicy::AdmitAll`]:
//!
//! * [`AdmissionPolicy::Reject`] — a job priced over the deadline is
//!   rejected wholesale (its requests get [`RejectedRequest`] entries);
//! * [`AdmissionPolicy::DownBatch`] — an over-deadline job is split in two
//!   and each half is re-priced.  Smaller batches have shorter session
//!   makespans, so leading sub-jobs often fit where the full batch did not;
//!   sub-jobs that still miss the deadline at batch size one are rejected.
//!   Split sub-jobs are marked *floating* ([`AdmittedJob::floating`]): the
//!   model priced them as deadline-marginal, so the async host routes them
//!   through the shared injector where the first free device takes them
//!   instead of binding them to one backlog.
//!
//! Because floating jobs ride the shared injector, their admitted session
//! seconds are charged to a *pool-wide* floating backlog — spread evenly
//! across the devices when pricing later jobs — rather than to the single
//! device that happened to price them cheapest.  Charging them to one
//! device's ledger (the pre-fix behaviour) inflated that device's backlog
//! with work it would never serially carry and made admission reject jobs
//! the pool had capacity for.

use crate::queue::BatchJob;
use perf_model::DeadlineModel;
use sem_obs::{recorder, Scope, SpanEvent, SpanKind};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// How the serve admits requests against a completion-time target.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub enum AdmissionPolicy {
    /// Admit everything (the default — no deadline).
    #[default]
    AdmitAll,
    /// Reject whole jobs the model prices over the deadline.
    Reject {
        /// Completion-time target in modelled seconds from submission.
        deadline_seconds: f64,
    },
    /// Split over-deadline jobs into smaller batches and admit the pieces
    /// that fit; reject only what still misses the deadline at batch one.
    DownBatch {
        /// Completion-time target in modelled seconds from submission.
        deadline_seconds: f64,
    },
}

impl AdmissionPolicy {
    /// The deadline this policy enforces, if any.
    #[must_use]
    pub fn deadline_seconds(&self) -> Option<f64> {
        match self {
            Self::AdmitAll => None,
            Self::Reject { deadline_seconds } | Self::DownBatch { deadline_seconds } => {
                Some(*deadline_seconds)
            }
        }
    }
}

/// One admitted job, with the admission-level routing flag.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AdmittedJob {
    /// The (possibly down-batched) job.
    pub job: BatchJob,
    /// Whether the job came out of a down-batch split.  Floating jobs are
    /// deadline-marginal: the async host feeds them through the shared
    /// injector (first free device wins) instead of a per-device deque.
    pub floating: bool,
}

/// One rejected request, with the prediction that priced it out.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RejectedRequest {
    /// Index of the request in the submitted order.
    pub request: usize,
    /// The model's predicted completion seconds on the best device at the
    /// time the request's job was priced.
    pub predicted_completion_seconds: f64,
    /// The deadline it overshot.
    pub deadline_seconds: f64,
}

/// Price `jobs` against `policy` over a pool of `pool_size` devices.
///
/// `predict_seconds(device, job)` must return the modelled session seconds
/// of `job` on `device` — the same figure the scheduler's model-optimal
/// policy compares (deterministic: simulated kernel seconds where a
/// simulator exists, roofline host pricing elsewhere).
///
/// # Panics
/// Panics if `pool_size` is zero.
#[must_use]
pub fn admit<F>(
    policy: AdmissionPolicy,
    jobs: Vec<BatchJob>,
    pool_size: usize,
    mut predict_seconds: F,
) -> (Vec<AdmittedJob>, Vec<RejectedRequest>)
where
    F: FnMut(usize, &BatchJob) -> f64,
{
    assert!(pool_size > 0, "need at least one device to admit onto");
    let obs = recorder();
    let Some(deadline_seconds) = policy.deadline_seconds() else {
        let admitted: Vec<AdmittedJob> = jobs
            .into_iter()
            .map(|job| AdmittedJob {
                job,
                floating: false,
            })
            .collect();
        if obs.is_enabled() {
            for admitted_job in &admitted {
                record_verdict(SpanKind::AdmissionAdmit, &admitted_job.job, 0.0, 0.0);
            }
        }
        return (admitted, Vec::new());
    };
    let deadline = DeadlineModel::new(deadline_seconds);
    let down_batch = matches!(policy, AdmissionPolicy::DownBatch { .. });

    let mut backlog = vec![0.0_f64; pool_size];
    // Admitted floating work: injector-fed, served by whichever device
    // frees up first, so it burdens the pool as a whole.  Each device's
    // effective backlog carries an even share of it.
    let mut floating_seconds = 0.0_f64;
    let mut admitted = Vec::new();
    let mut rejections = Vec::new();
    // (job, floating): splits re-enter at the front so a job's pieces are
    // priced before unrelated later jobs, keeping admission order stable.
    let mut pending: VecDeque<(BatchJob, bool)> =
        jobs.into_iter().map(|job| (job, false)).collect();
    while let Some((job, floating)) = pending.pop_front() {
        let floating_share = floating_seconds / pool_size as f64;
        let effective = |device: usize| backlog[device] + floating_share;
        let (best, session_seconds) = (0..pool_size)
            .map(|device| (device, predict_seconds(device, &job)))
            .min_by(|a, b| (effective(a.0) + a.1).total_cmp(&(effective(b.0) + b.1)))
            .expect("non-empty pool");
        let completion = effective(best) + session_seconds;
        if deadline.admits(completion) {
            if obs.is_enabled() {
                record_verdict(SpanKind::AdmissionAdmit, &job, effective(best), completion);
            }
            if floating {
                floating_seconds += session_seconds;
            } else {
                backlog[best] += session_seconds;
            }
            admitted.push(AdmittedJob { job, floating });
        } else if down_batch && job.batch_size() > 1 {
            if obs.is_enabled() {
                record_verdict(SpanKind::DownBatchSplit, &job, effective(best), completion);
                obs.counter_add("sem_serve_downbatch_splits_total", &[], 1);
            }
            let (front, back) = job.split();
            pending.push_front((back, true));
            pending.push_front((front, true));
        } else {
            if obs.is_enabled() {
                record_verdict(SpanKind::AdmissionReject, &job, effective(best), completion);
            }
            rejections.extend(job.requests.iter().map(|&request| RejectedRequest {
                request,
                predicted_completion_seconds: completion,
                deadline_seconds,
            }));
        }
    }
    rejections.sort_by_key(|rejection| rejection.request);
    (admitted, rejections)
}

/// Record one admission-verdict span per request of `job` on the modelled
/// completion axis (device backlog → predicted completion).  Admission runs
/// before anything executes and prices in modelled seconds only, so these
/// spans are deterministic on both serving hosts.
fn record_verdict(kind: SpanKind, job: &BatchJob, backlog_seconds: f64, completion_seconds: f64) {
    let obs = recorder();
    let start = obs.stamp(backlog_seconds);
    let end = obs.stamp(completion_seconds);
    for &request in &job.requests {
        obs.record(
            SpanEvent::new(kind, Scope::Deterministic, start, end).with_request(request as u64),
        );
    }
    let metric = match kind {
        SpanKind::AdmissionAdmit => "sem_serve_admitted_requests_total",
        SpanKind::AdmissionReject => "sem_serve_rejected_requests_total",
        _ => return,
    };
    obs.counter_add(metric, &[], job.batch_size() as u64);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::ProblemSpec;

    fn job(requests: Vec<usize>) -> BatchJob {
        BatchJob {
            spec: ProblemSpec::cube(3, 2),
            requests,
        }
    }

    /// One second per request, regardless of device: completion predictions
    /// are exactly the running per-device backlog plus the batch size.
    fn per_request_pricing(_device: usize, job: &BatchJob) -> f64 {
        job.batch_size() as f64
    }

    #[test]
    fn admit_all_never_rejects_and_never_floats() {
        let jobs = vec![job(vec![0, 1]), job(vec![2])];
        let (admitted, rejected) = admit(
            AdmissionPolicy::AdmitAll,
            jobs.clone(),
            1,
            per_request_pricing,
        );
        assert_eq!(rejected, Vec::new());
        assert_eq!(admitted.len(), 2);
        assert!(admitted.iter().all(|a| !a.floating));
        assert_eq!(admitted[0].job, jobs[0]);
    }

    #[test]
    fn an_empty_pool_backlog_admits_everything_under_a_loose_deadline() {
        let jobs = vec![job(vec![0, 1, 2]), job(vec![3, 4])];
        let (admitted, rejected) = admit(
            AdmissionPolicy::Reject {
                deadline_seconds: 100.0,
            },
            jobs,
            2,
            per_request_pricing,
        );
        assert!(rejected.is_empty());
        assert_eq!(admitted.len(), 2);
    }

    #[test]
    fn reject_mode_drops_exactly_the_jobs_priced_over_the_deadline() {
        // One device, deadline 3 s, unit pricing: job A (2 requests,
        // completes at 2 s) fits; job B (2 requests, would complete at 4 s)
        // does not; job C (1 request, completes at 3 s after A) fits again —
        // rejection must not poison the backlog.
        let jobs = vec![job(vec![0, 1]), job(vec![2, 3]), job(vec![4])];
        let (admitted, rejected) = admit(
            AdmissionPolicy::Reject {
                deadline_seconds: 3.0,
            },
            jobs,
            1,
            per_request_pricing,
        );
        let kept: Vec<Vec<usize>> = admitted.iter().map(|a| a.job.requests.clone()).collect();
        assert_eq!(kept, vec![vec![0, 1], vec![4]]);
        assert_eq!(rejected.len(), 2);
        assert_eq!(rejected[0].request, 2);
        assert_eq!(rejected[1].request, 3);
        assert!(rejected
            .iter()
            .all(|r| r.predicted_completion_seconds == 4.0 && r.deadline_seconds == 3.0));
    }

    #[test]
    fn down_batch_splits_until_the_pieces_fit_and_floats_them() {
        // One device, deadline 3 s, unit pricing: a 4-request job completes
        // at 4 s and must split.  Halves of 2 complete at 2 s and 4 s: the
        // first half fits, the second splits again into singles completing
        // at 3 s (fits) and 4 s (rejected).
        let jobs = vec![job(vec![0, 1, 2, 3])];
        let (admitted, rejected) = admit(
            AdmissionPolicy::DownBatch {
                deadline_seconds: 3.0,
            },
            jobs,
            1,
            per_request_pricing,
        );
        let kept: Vec<Vec<usize>> = admitted.iter().map(|a| a.job.requests.clone()).collect();
        assert_eq!(kept, vec![vec![0, 1], vec![2]]);
        assert!(admitted.iter().all(|a| a.floating), "splits float");
        assert_eq!(rejected.len(), 1);
        assert_eq!(rejected[0].request, 3);
        assert_eq!(rejected[0].predicted_completion_seconds, 4.0);
    }

    #[test]
    fn down_batch_degrades_fewer_requests_than_reject() {
        let make = || vec![job(vec![0, 1, 2, 3]), job(vec![4, 5])];
        let deadline = 3.0;
        let (_, rejected_hard) = admit(
            AdmissionPolicy::Reject {
                deadline_seconds: deadline,
            },
            make(),
            1,
            per_request_pricing,
        );
        let (_, rejected_soft) = admit(
            AdmissionPolicy::DownBatch {
                deadline_seconds: deadline,
            },
            make(),
            1,
            per_request_pricing,
        );
        assert!(rejected_soft.len() < rejected_hard.len());
    }

    #[test]
    fn admission_spreads_backlog_across_the_pool() {
        // Two devices, deadline 2 s: four 2-request jobs would saturate one
        // device at 8 s, but alternate placement admits the first two (one
        // per device) and rejects the rest.
        let jobs = (0..4).map(|i| job(vec![2 * i, 2 * i + 1])).collect();
        let (admitted, rejected) = admit(
            AdmissionPolicy::Reject {
                deadline_seconds: 2.0,
            },
            jobs,
            2,
            per_request_pricing,
        );
        assert_eq!(admitted.len(), 2);
        assert_eq!(rejected.len(), 4);
        assert_eq!(
            rejected.iter().map(|r| r.request).collect::<Vec<_>>(),
            vec![4, 5, 6, 7]
        );
    }

    #[test]
    fn floaters_are_priced_against_the_pool_not_one_device() {
        // Regression for the floating-job double-charge: every admitted
        // floater used to be charged to `backlog[best]` even though
        // injector-fed jobs are served by whichever device frees up first.
        //
        // Two devices, the second 3x slower, deadline 4 s.  A 6-request job
        // splits into floaters that all price cheapest on device 0; the
        // pre-fix accounting piled their 5 s of floating work onto device
        // 0's ledger alone, so the final single-request sub-job was priced
        // at 5 + 1 = 6 s and rejected.  Spread pool-wide (5/2 = 2.5 s a
        // device), it prices at 3.5 s and is admitted — the pool has the
        // capacity, only the ledger said otherwise.
        let pricing = |device: usize, job: &BatchJob| {
            job.batch_size() as f64 * if device == 0 { 1.0 } else { 3.0 }
        };
        let (admitted, rejected) = admit(
            AdmissionPolicy::DownBatch {
                deadline_seconds: 4.0,
            },
            vec![job(vec![0, 1, 2, 3, 4, 5])],
            2,
            pricing,
        );
        assert_eq!(rejected, Vec::new(), "the pool has capacity for all six");
        let served: Vec<usize> = admitted
            .iter()
            .flat_map(|a| a.job.requests.iter().copied())
            .collect();
        assert_eq!(served, vec![0, 1, 2, 3, 4, 5]);
        assert!(admitted.iter().all(|a| a.floating), "splits float");
    }

    #[test]
    fn deadline_accessor_reports_the_policy_target() {
        assert_eq!(AdmissionPolicy::AdmitAll.deadline_seconds(), None);
        assert_eq!(
            AdmissionPolicy::Reject {
                deadline_seconds: 1.5
            }
            .deadline_seconds(),
            Some(1.5)
        );
        assert_eq!(
            AdmissionPolicy::default().deadline_seconds(),
            None,
            "default admits everything"
        );
    }
}
