//! The work-stealing execution core of the async serving host: one worker
//! thread per device slot, fed by per-worker deques plus a shared injector.
//!
//! [`run_stealing`] is deliberately generic over the job payload, the
//! per-worker owned state, and the result type, so the exact machinery that
//! runs device sessions in [`crate::Server::serve_async`] can also be
//! stress-tested with thousands of cheap synthetic jobs (see
//! `tests/stress.rs`).
//!
//! ## Seeding and stealing discipline
//!
//! Every job carries an optional *hint* — the worker a scheduling policy
//! picked for it at admission time.  Hinted jobs are seeded onto the hinted
//! worker's deque in submission order; hint-less jobs (e.g. deadline-marginal
//! sub-jobs produced by down-batching admission) go to the shared
//! [`Injector`] where the first free worker takes them.  Each worker then
//! loops:
//!
//! 1. pop its own deque (FIFO — the jobs it was hinted, oldest first);
//! 2. steal from the injector (globally FIFO floating jobs);
//! 3. steal from sibling deques (round-robin starting after itself), taking
//!    the *newest* job — the one that would otherwise wait longest behind a
//!    busy device.
//!
//! ## Termination: the feeder-done protocol
//!
//! Jobs are only removed to be executed and nothing is ever re-queued, so
//! with a fixed job set an empty sweep would prove no pending
//! work remains.  Live serving breaks that proof: a *feeder* (see
//! [`run_stealing_with_feeder`]) keeps pushing arrivals into the shared
//! injector while workers run, and a worker that exited on the first empty
//! sweep would strand every job fed after it.  Workers therefore exit only
//! when a **fully empty, uncontended sweep began after the feeder-done flag
//! was observed set**.  The feeder publishes every push *before* the done
//! flag is stored (both SeqCst), so a sweep that started after observing
//! `done` sees every fed job — empty then really means empty forever.  The
//! batch-only [`run_stealing`] starts with the flag already set, which
//! restores the old "first empty sweep exits" behaviour exactly.
//!
//! Contended sweeps (a [`Steal::Retry`] from the injector *or* a sibling
//! deque) and empty-but-not-done sweeps share one backoff path: park/unpark
//! telemetry around a scheduler yield.  This is also why the run conserves
//! jobs: every seeded or fed job is taken exactly once, by exactly one
//! worker, and its result is delivered over a channel that the caller
//! drains to completion.

use crossbeam::channel;
use crossbeam::deque::{Injector, Steal, Stealer, Worker};
use sem_obs::{recorder, Scope, SpanEvent, SpanKind, WallTimer};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

/// One job plus the scheduling hint it was admitted with.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaggedJob<T> {
    /// The work itself.
    pub payload: T,
    /// The worker a policy hinted this job to at admission time, or `None`
    /// for floating jobs any worker may take from the injector.
    pub hint: Option<usize>,
}

/// One executed job, in completion order.
#[derive(Debug, Clone)]
pub struct CompletedJob<R> {
    /// The worker that actually executed the job.
    pub worker: usize,
    /// The admission-time hint the job carried.
    pub hint: Option<usize>,
    /// What the executor returned.
    pub result: R,
}

impl<R> CompletedJob<R> {
    /// Whether the job ran somewhere other than its hinted worker.
    #[must_use]
    pub fn stolen(&self) -> bool {
        self.hint.is_some_and(|hint| hint != self.worker)
    }
}

/// Per-worker accounting of one run, with the worker's owned state handed
/// back to the caller.
#[derive(Debug)]
pub struct WorkerLedger<S> {
    /// The state the worker owned for the duration of the run.
    pub state: S,
    /// Wall-clock seconds this worker spent executing jobs (excludes idle
    /// spinning and queue operations).
    pub busy_wall_seconds: f64,
    /// Jobs this worker executed.
    pub executed_jobs: usize,
    /// Executed jobs that were hinted to a *different* worker.
    pub steals: usize,
}

/// The outcome of one work-stealing run.
#[derive(Debug)]
pub struct StealRun<S, R> {
    /// Executed jobs in completion order (the order results crossed the
    /// channel, not submission order — the caller re-sequences).
    pub completed: Vec<CompletedJob<R>>,
    /// Per-worker ledgers, indexed like the input states.
    pub workers: Vec<WorkerLedger<S>>,
    /// Wall-clock seconds from first spawn to last join.
    pub wall_seconds: f64,
}

impl<S, R> StealRun<S, R> {
    /// Total wall-clock seconds workers spent executing jobs.
    #[must_use]
    pub fn busy_wall_seconds(&self) -> f64 {
        self.workers.iter().map(|w| w.busy_wall_seconds).sum()
    }

    /// Measured concurrency: busy worker-seconds per wall-clock second.
    /// Approaches the worker count when the pool runs fully parallel and
    /// 1.0 when execution is effectively serial.
    #[must_use]
    pub fn concurrency(&self) -> f64 {
        if self.wall_seconds <= 0.0 {
            return 0.0;
        }
        self.busy_wall_seconds() / self.wall_seconds
    }

    /// Total stolen jobs across the pool.
    #[must_use]
    pub fn total_steals(&self) -> usize {
        self.workers.iter().map(|w| w.steals).sum()
    }
}

/// What one worker sends back per executed job.
struct Delivery<R> {
    worker: usize,
    hint: Option<usize>,
    result: R,
}

/// The live-arrival side of a streaming run: the handle the feeder closure
/// pushes timestamped work through while the worker pool is already
/// draining.  Fed jobs carry no hint — they ride the shared injector to
/// whichever worker frees up first, exactly like down-batched floaters.
#[derive(Debug)]
pub struct FeederHandle<'a, T> {
    injector: &'a Injector<TaggedJob<T>>,
}

impl<T> FeederHandle<'_, T> {
    /// Push one live arrival into the shared injector.
    pub fn push(&self, payload: T) {
        self.injector.push(TaggedJob {
            payload,
            hint: None,
        });
        let obs = recorder();
        if obs.is_enabled() {
            obs.counter_add("sem_serve_live_arrivals_total", &[], 1);
        }
    }
}

/// Run `jobs` across one thread per entry of `states`, work-stealing style.
///
/// `execute` is called as `execute(worker_index, &mut state, payload)` with
/// the worker's owned state — the state never crosses a thread boundary
/// mid-run, so workers can keep non-`Sync` sessions (each `SemSystem` is
/// owned by exactly one worker at a time) and hand them back through the
/// ledger when the run ends.
///
/// # Panics
/// Panics if `states` is empty or any hint is out of range.
pub fn run_stealing<T, S, R, F>(
    states: Vec<S>,
    jobs: Vec<TaggedJob<T>>,
    execute: F,
) -> StealRun<S, R>
where
    T: Send,
    S: Send,
    R: Send,
    F: Fn(usize, &mut S, T) -> R + Sync,
{
    run_stealing_inner(states, jobs, None::<fn(&FeederHandle<'_, T>)>, execute)
}

/// Like [`run_stealing`], but with a live feeder: `feeder` runs on the
/// calling thread *after* the workers are spawned and may push arrivals
/// into the shared injector at any point while the pool drains.  Workers
/// stay alive — backing off through the contended-sweep path — until the
/// feeder returns and every queued job is taken (the feeder-done protocol
/// in the module docs).
///
/// # Panics
/// Panics if `states` is empty or any seeded hint is out of range.
pub fn run_stealing_with_feeder<T, S, R, F, G>(
    states: Vec<S>,
    jobs: Vec<TaggedJob<T>>,
    feeder: G,
    execute: F,
) -> StealRun<S, R>
where
    T: Send,
    S: Send,
    R: Send,
    F: Fn(usize, &mut S, T) -> R + Sync,
    G: FnOnce(&FeederHandle<'_, T>),
{
    run_stealing_inner(states, jobs, Some(feeder), execute)
}

fn run_stealing_inner<T, S, R, F, G>(
    states: Vec<S>,
    jobs: Vec<TaggedJob<T>>,
    feeder: Option<G>,
    execute: F,
) -> StealRun<S, R>
where
    T: Send,
    S: Send,
    R: Send,
    F: Fn(usize, &mut S, T) -> R + Sync,
    G: FnOnce(&FeederHandle<'_, T>),
{
    let pool = states.len();
    assert!(pool > 0, "need at least one worker");
    let queues: Vec<Worker<TaggedJob<T>>> = (0..pool).map(|_| Worker::new_fifo()).collect();
    let stealers: Vec<Stealer<TaggedJob<T>>> = queues.iter().map(Worker::stealer).collect();
    let injector = Injector::new();
    for job in jobs {
        match job.hint {
            Some(hint) => {
                assert!(hint < pool, "hint {hint} outside pool of {pool}");
                queues[hint].push(job);
            }
            None => injector.push(job),
        }
    }

    // With no feeder the flag starts set, so the first fully empty sweep
    // exits — identical to the old batch-only termination rule.
    let feeder_done = AtomicBool::new(feeder.is_none());
    let (tx, rx) = channel::unbounded::<Delivery<R>>();
    let run_timer = WallTimer::start();
    let mut ledgers: Vec<Option<WorkerLedger<S>>> = Vec::with_capacity(pool);
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(pool);
        for (index, (queue, mut state)) in queues.into_iter().zip(states).enumerate() {
            let tx = tx.clone();
            let injector = &injector;
            let stealers = &stealers;
            let execute = &execute;
            let feeder_done = &feeder_done;
            // lint: no-panic (a worker panic strands sibling deques mid-run)
            handles.push(scope.spawn(move || {
                // Registers this thread with a schedule explorer when one is
                // installed (`sem_serve::explore`); inert in production.
                let _control = crossbeam::sched::controlled(index);
                let mut busy_wall_seconds = 0.0;
                let mut executed_jobs = 0;
                let mut steals = 0;
                let obs = recorder();
                while let Some(job) = next_job(index, &queue, injector, stealers, feeder_done) {
                    if job.hint.is_some_and(|hint| hint != index) {
                        steals += 1;
                        if obs.is_enabled() {
                            // Which worker robbed whom is a property of the
                            // schedule, never of the answer: mark the event
                            // so modelled-clock exports drop it.
                            let at = obs.stamp(busy_wall_seconds);
                            obs.record(
                                SpanEvent::new(SpanKind::Steal, Scope::ScheduleDependent, at, at)
                                    .with_index(index as u64),
                            );
                            obs.counter_add("sem_serve_steals_total", &[], 1);
                        }
                    }
                    let hint = job.hint;
                    let begun = WallTimer::start();
                    let result = execute(index, &mut state, job.payload);
                    busy_wall_seconds += begun.elapsed_wall_seconds();
                    executed_jobs += 1;
                    // The receiver outlives the scope by construction, so a
                    // failed send can only mean the channel was torn down
                    // mid-run; stop taking work instead of panicking with
                    // sibling deques still live.
                    let delivery = Delivery {
                        worker: index,
                        hint,
                        result,
                    };
                    if tx.send(delivery).is_err() {
                        break;
                    }
                }
                WorkerLedger {
                    state,
                    busy_wall_seconds,
                    executed_jobs,
                    steals,
                }
            }));
        }
        drop(tx);
        if let Some(feed) = feeder {
            // The feeder runs on the calling thread, uncontrolled by any
            // schedule explorer: live arrivals are outside the pool under
            // test.  Every push lands before the done flag is stored, so a
            // worker that observes `done` and then sweeps empty has seen
            // every fed job.
            let handle = FeederHandle {
                injector: &injector,
            };
            feed(&handle);
            feeder_done.store(true, Ordering::SeqCst);
        }
        for handle in handles {
            ledgers.push(Some(handle.join().expect("worker thread panicked")));
        }
    });
    let wall_seconds = run_timer.elapsed_wall_seconds();

    let completed = rx
        .iter()
        .map(|delivery| CompletedJob {
            worker: delivery.worker,
            hint: delivery.hint,
            result: delivery.result,
        })
        .collect();
    StealRun {
        completed,
        workers: ledgers
            .into_iter()
            .map(|ledger| ledger.expect("every worker joined"))
            .collect(),
        wall_seconds,
    }
}

/// How a fault-tolerant executor resolved one job.
#[derive(Debug)]
pub enum JobVerdict<T, R> {
    /// The job completed (and, if the caller verifies answers, passed):
    /// deliver the result and retire the job.
    Done(R),
    /// The job failed recoverably (device fault, corrupt answer, timeout):
    /// requeue the returned payload — typically the job with its retry
    /// ledger advanced — through the shared injector for another worker.
    /// The worker that reported it stays in the pool.
    Retry(T),
    /// The worker's device is unusable (dead): requeue the returned
    /// payload, drain the worker's own deque back to the injector so
    /// nothing it was hinted is lost, and retire the **worker**.
    Fatal(T),
}

/// The feeder handle of a fault-tolerant run: like [`FeederHandle`], but
/// every push registers the job with the outstanding-work counter *before*
/// it becomes visible, so workers can never observe "all work resolved"
/// while a fed job is still in flight.
#[derive(Debug)]
pub struct TolerantFeederHandle<'a, T> {
    injector: &'a Injector<TaggedJob<T>>,
    outstanding: &'a AtomicUsize,
}

impl<T> TolerantFeederHandle<'_, T> {
    /// Push one live arrival into the shared injector.
    pub fn push(&self, payload: T) {
        self.outstanding.fetch_add(1, Ordering::SeqCst);
        self.injector.push(TaggedJob {
            payload,
            hint: None,
        });
        let obs = recorder();
        if obs.is_enabled() {
            obs.counter_add("sem_serve_live_arrivals_total", &[], 1);
        }
    }
}

/// The outcome of one fault-tolerant work-stealing run.
#[derive(Debug)]
pub struct TolerantRun<T, S, R> {
    /// Jobs resolved [`JobVerdict::Done`], in completion order.
    pub completed: Vec<CompletedJob<R>>,
    /// Per-worker ledgers, indexed like the input states.  Dead workers
    /// still hand their state back — a died device's sessions return to
    /// the caller, they are not leaked with the worker.
    pub workers: Vec<WorkerLedger<S>>,
    /// Which workers retired through [`JobVerdict::Fatal`] (parallel to
    /// `workers`).
    pub died: Vec<bool>,
    /// Jobs still unresolved when the run ended — non-empty only when
    /// *every* worker died with work left.  The caller owns them (e.g. to
    /// degrade onto host backends); they are never silently dropped.
    pub unfinished: Vec<T>,
    /// [`JobVerdict::Retry`] verdicts across the run.
    pub retries: usize,
    /// Jobs drained from dying workers' deques back to the injector.
    pub requeued_on_death: usize,
    /// Wall-clock seconds from first spawn to last join.
    pub wall_seconds: f64,
}

impl<T, S, R> TolerantRun<T, S, R> {
    /// Workers that survived the run.
    #[must_use]
    pub fn alive_workers(&self) -> usize {
        self.died.iter().filter(|&&d| !d).count()
    }
}

/// Fault-tolerant work stealing over a fixed job set: like
/// [`run_stealing`], but the executor returns a [`JobVerdict`] and the run
/// guarantees **job conservation under failure** — every job is either
/// delivered exactly once or handed back in
/// [`TolerantRun::unfinished`], whatever mix of retries and worker deaths
/// the executor reports.
///
/// Termination replaces the empty-sweep proof with an outstanding-work
/// counter: seeded jobs start counted, [`JobVerdict::Done`] retires one,
/// and retry/fatal requeues keep the count — so a worker exits only when
/// the count is zero (observed *before* a fully empty, uncontended sweep,
/// by the same publish-before-flag argument as the feeder-done protocol).
///
/// # Panics
/// Panics if `states` is empty or any hint is out of range.
pub fn run_stealing_tolerant<T, S, R, F>(
    states: Vec<S>,
    jobs: Vec<TaggedJob<T>>,
    execute: F,
) -> TolerantRun<T, S, R>
where
    T: Send,
    S: Send,
    R: Send,
    F: Fn(usize, &mut S, T) -> JobVerdict<T, R> + Sync,
{
    run_tolerant_inner(
        states,
        jobs,
        None::<fn(&TolerantFeederHandle<'_, T>)>,
        execute,
    )
}

/// Like [`run_stealing_tolerant`], but with a live feeder pushing arrivals
/// while the pool drains (the tolerant analogue of
/// [`run_stealing_with_feeder`]).  The feeder's pushes register with the
/// outstanding-work counter before they are published, so a retry racing
/// the feeder-done flag can never convince a worker the run is over.
///
/// # Panics
/// Panics if `states` is empty or any seeded hint is out of range.
pub fn run_stealing_tolerant_with_feeder<T, S, R, F, G>(
    states: Vec<S>,
    jobs: Vec<TaggedJob<T>>,
    feeder: G,
    execute: F,
) -> TolerantRun<T, S, R>
where
    T: Send,
    S: Send,
    R: Send,
    F: Fn(usize, &mut S, T) -> JobVerdict<T, R> + Sync,
    G: FnOnce(&TolerantFeederHandle<'_, T>),
{
    run_tolerant_inner(states, jobs, Some(feeder), execute)
}

fn run_tolerant_inner<T, S, R, F, G>(
    states: Vec<S>,
    jobs: Vec<TaggedJob<T>>,
    feeder: Option<G>,
    execute: F,
) -> TolerantRun<T, S, R>
where
    T: Send,
    S: Send,
    R: Send,
    F: Fn(usize, &mut S, T) -> JobVerdict<T, R> + Sync,
    G: FnOnce(&TolerantFeederHandle<'_, T>),
{
    let pool = states.len();
    assert!(pool > 0, "need at least one worker");
    let queues: Vec<Worker<TaggedJob<T>>> = (0..pool).map(|_| Worker::new_fifo()).collect();
    let stealers: Vec<Stealer<TaggedJob<T>>> = queues.iter().map(Worker::stealer).collect();
    let injector = Injector::new();
    let outstanding = AtomicUsize::new(0);
    for job in jobs {
        outstanding.fetch_add(1, Ordering::SeqCst);
        match job.hint {
            Some(hint) => {
                assert!(hint < pool, "hint {hint} outside pool of {pool}");
                queues[hint].push(job);
            }
            None => injector.push(job),
        }
    }

    let feeder_done = AtomicBool::new(feeder.is_none());
    let retries = AtomicUsize::new(0);
    let requeued_on_death = AtomicUsize::new(0);
    let (tx, rx) = channel::unbounded::<Delivery<R>>();
    let run_timer = WallTimer::start();
    let mut ledgers: Vec<Option<(WorkerLedger<S>, bool)>> = Vec::with_capacity(pool);
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(pool);
        for (index, (queue, mut state)) in queues.into_iter().zip(states).enumerate() {
            let tx = tx.clone();
            let injector = &injector;
            let stealers = &stealers;
            let execute = &execute;
            let feeder_done = &feeder_done;
            let outstanding = &outstanding;
            let retries = &retries;
            let requeued_on_death = &requeued_on_death;
            // lint: no-panic (a worker panic strands sibling deques mid-run)
            handles.push(scope.spawn(move || {
                let _control = crossbeam::sched::controlled(index);
                let mut busy_wall_seconds = 0.0;
                let mut executed_jobs = 0;
                let mut steals = 0;
                let mut died = false;
                let obs = recorder();
                while let Some(job) =
                    next_job_tolerant(index, &queue, injector, stealers, feeder_done, outstanding)
                {
                    if job.hint.is_some_and(|hint| hint != index) {
                        steals += 1;
                        if obs.is_enabled() {
                            let at = obs.stamp(busy_wall_seconds);
                            obs.record(
                                SpanEvent::new(SpanKind::Steal, Scope::ScheduleDependent, at, at)
                                    .with_index(index as u64),
                            );
                            obs.counter_add("sem_serve_steals_total", &[], 1);
                        }
                    }
                    let hint = job.hint;
                    let begun = WallTimer::start();
                    let verdict = execute(index, &mut state, job.payload);
                    busy_wall_seconds += begun.elapsed_wall_seconds();
                    match verdict {
                        JobVerdict::Done(result) => {
                            executed_jobs += 1;
                            let delivery = Delivery {
                                worker: index,
                                hint,
                                result,
                            };
                            let torn = tx.send(delivery).is_err();
                            // Retire the job only after its result is
                            // published: a worker observing zero outstanding
                            // must be able to trust every answer is out.
                            outstanding.fetch_sub(1, Ordering::SeqCst);
                            if torn {
                                break;
                            }
                        }
                        JobVerdict::Retry(payload) => {
                            // Requeue before anything else: the count never
                            // dips, so no sibling can conclude the run is
                            // over while this job floats.
                            injector.push(TaggedJob {
                                payload,
                                hint: None,
                            });
                            retries.fetch_add(1, Ordering::SeqCst);
                            if obs.is_enabled() {
                                obs.counter_add("sem_serve_retries_total", &[], 1);
                            }
                        }
                        JobVerdict::Fatal(payload) => {
                            // The device is gone: hand the in-flight job and
                            // everything still hinted to this worker back to
                            // the pool, then retire the worker.  Sibling
                            // stealers may race this drain — either way each
                            // job ends up held exactly once.
                            injector.push(TaggedJob {
                                payload,
                                hint: None,
                            });
                            let mut drained = 1_usize;
                            while let Some(left) = queue.pop() {
                                injector.push(TaggedJob {
                                    payload: left.payload,
                                    hint: None,
                                });
                                drained += 1;
                            }
                            requeued_on_death.fetch_add(drained, Ordering::SeqCst);
                            if obs.is_enabled() {
                                obs.counter_add("sem_serve_requeues_total", &[], drained as u64);
                            }
                            died = true;
                            break;
                        }
                    }
                }
                (
                    WorkerLedger {
                        state,
                        busy_wall_seconds,
                        executed_jobs,
                        steals,
                    },
                    died,
                )
            }));
        }
        drop(tx);
        if let Some(feed) = feeder {
            let handle = TolerantFeederHandle {
                injector: &injector,
                outstanding: &outstanding,
            };
            feed(&handle);
            feeder_done.store(true, Ordering::SeqCst);
        }
        for handle in handles {
            ledgers.push(Some(handle.join().expect("worker thread panicked")));
        }
    });
    let wall_seconds = run_timer.elapsed_wall_seconds();

    // Only an all-dead pool leaves work behind; hand it back rather than
    // lose it (conservation is the caller's to finish, e.g. on a host
    // backend).
    let mut unfinished = Vec::new();
    loop {
        match injector.steal() {
            Steal::Success(job) => unfinished.push(job.payload),
            Steal::Retry => {}
            Steal::Empty => break,
        }
    }

    let completed = rx
        .iter()
        .map(|delivery| CompletedJob {
            worker: delivery.worker,
            hint: delivery.hint,
            result: delivery.result,
        })
        .collect();
    let (workers, died): (Vec<WorkerLedger<S>>, Vec<bool>) = ledgers
        .into_iter()
        .map(|entry| entry.expect("every worker joined"))
        .unzip();
    TolerantRun {
        completed,
        workers,
        died,
        unfinished,
        retries: retries.load(Ordering::SeqCst),
        requeued_on_death: requeued_on_death.load(Ordering::SeqCst),
        wall_seconds,
    }
}

/// Tolerant-run termination: exit only when the outstanding-work counter
/// was zero **and** the feeder-done flag set, both observed before a fully
/// empty, uncontended sweep.  Retries requeue before any count change and
/// the feeder counts before it publishes, so "zero outstanding" can never
/// be observed while a job is invisible in flight.
fn next_job_tolerant<T>(
    index: usize,
    own: &Worker<TaggedJob<T>>,
    injector: &Injector<TaggedJob<T>>,
    stealers: &[Stealer<TaggedJob<T>>],
    feeder_done: &AtomicBool,
    outstanding: &AtomicUsize,
) -> Option<TaggedJob<T>> {
    loop {
        let done_before_sweep = feeder_done.load(Ordering::SeqCst);
        let outstanding_before_sweep = outstanding.load(Ordering::SeqCst);
        match sweep(index, own, injector, stealers) {
            SweepOutcome::Job(job) => return Some(job),
            SweepOutcome::Empty if done_before_sweep && outstanding_before_sweep == 0 => {
                return None;
            }
            SweepOutcome::Empty | SweepOutcome::Contended => backoff(index),
        }
    }
}

/// What one pass over the three work sources observed.
enum SweepOutcome<T> {
    /// A job was taken.
    Job(TaggedJob<T>),
    /// At least one source reported a lost race ([`Steal::Retry`]); work
    /// may exist, so emptiness proves nothing this pass.
    Contended,
    /// Every source was empty and no steal was contended.
    Empty,
}

/// One sweep: own deque, then the injector, then sibling deques round-robin
/// starting after `index`.  A `Retry` from *any* source — the injector
/// included — marks the sweep contended but still probes the remaining
/// sources first, so one hot queue cannot starve the others of a look.
fn sweep<T>(
    index: usize,
    own: &Worker<TaggedJob<T>>,
    injector: &Injector<TaggedJob<T>>,
    stealers: &[Stealer<TaggedJob<T>>],
) -> SweepOutcome<T> {
    if let Some(job) = own.pop() {
        return SweepOutcome::Job(job);
    }
    let mut contended = false;
    match injector.steal() {
        Steal::Success(job) => return SweepOutcome::Job(job),
        Steal::Retry => contended = true,
        Steal::Empty => {}
    }
    let pool = stealers.len();
    for offset in 1..pool {
        let victim = (index + offset) % pool;
        match stealers[victim].steal() {
            Steal::Success(job) => return SweepOutcome::Job(job),
            Steal::Retry => contended = true,
            Steal::Empty => {}
        }
    }
    if contended {
        SweepOutcome::Contended
    } else {
        SweepOutcome::Empty
    }
}

/// The single backoff path every unproductive sweep funnels through:
/// park/unpark telemetry around a scheduler yield.  Contended sweeps used
/// to split here — an injector `Retry` looped straight back into the sweep,
/// a busy-wait that skipped both the yield and the park telemetry.
fn backoff(index: usize) {
    let obs = recorder();
    if obs.is_enabled() {
        // An unproductive sweep: the worker backs off and retries.  Like
        // steals, parking is schedule-only telemetry.
        let at = obs.stamp(0.0);
        obs.record(
            SpanEvent::new(SpanKind::WorkerPark, Scope::ScheduleDependent, at, at)
                .with_index(index as u64),
        );
    }
    std::thread::yield_now();
    if obs.is_enabled() {
        let at = obs.stamp(0.0);
        obs.record(
            SpanEvent::new(SpanKind::WorkerUnpark, Scope::ScheduleDependent, at, at)
                .with_index(index as u64),
        );
    }
}

/// Take the next job, or decide the run is over.  Exits only on a fully
/// empty, uncontended sweep that *began after* the feeder-done flag was
/// observed set: the feeder publishes every push before storing the flag,
/// so such a sweep has seen every job that will ever exist.
fn next_job<T>(
    index: usize,
    own: &Worker<TaggedJob<T>>,
    injector: &Injector<TaggedJob<T>>,
    stealers: &[Stealer<TaggedJob<T>>],
    feeder_done: &AtomicBool,
) -> Option<TaggedJob<T>> {
    loop {
        // Load the flag before sweeping: a push racing with this sweep may
        // be missed, but then the flag read here was false and the sweep
        // retries.
        let done_before_sweep = feeder_done.load(Ordering::SeqCst);
        match sweep(index, own, injector, stealers) {
            SweepOutcome::Job(job) => return Some(job),
            SweepOutcome::Empty if done_before_sweep => return None,
            SweepOutcome::Empty | SweepOutcome::Contended => backoff(index),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn single_worker_executes_hinted_jobs_in_fifo_order() {
        let jobs: Vec<TaggedJob<usize>> = (0..20)
            .map(|i| TaggedJob {
                payload: i,
                hint: Some(0),
            })
            .collect();
        let run = run_stealing(vec![()], jobs, |_, (), payload| payload);
        let order: Vec<usize> = run.completed.iter().map(|c| c.result).collect();
        assert_eq!(order, (0..20).collect::<Vec<_>>());
        assert_eq!(run.workers[0].executed_jobs, 20);
        assert_eq!(run.total_steals(), 0);
    }

    #[test]
    fn every_job_executes_exactly_once_across_a_stealing_pool() {
        // All jobs hinted to worker 0: the only way the others get work is
        // by stealing, and conservation must still hold.
        let jobs: Vec<TaggedJob<usize>> = (0..200)
            .map(|i| TaggedJob {
                payload: i,
                hint: Some(0),
            })
            .collect();
        let run = run_stealing(vec![(); 4], jobs, |_, (), payload| payload);
        let seen: BTreeSet<usize> = run.completed.iter().map(|c| c.result).collect();
        assert_eq!(seen.len(), 200, "no drop, no duplicate");
        assert_eq!(run.completed.len(), 200);
        let executed: usize = run.workers.iter().map(|w| w.executed_jobs).sum();
        assert_eq!(executed, 200);
        // Steal accounting matches the per-job stolen flags.
        let stolen_flags = run.completed.iter().filter(|c| c.stolen()).count();
        assert_eq!(run.total_steals(), stolen_flags);
    }

    #[test]
    fn floating_jobs_ride_the_injector_and_are_never_counted_as_steals() {
        let jobs: Vec<TaggedJob<usize>> = (0..50)
            .map(|i| TaggedJob {
                payload: i,
                hint: None,
            })
            .collect();
        let run = run_stealing(vec![(); 3], jobs, |_, (), payload| payload);
        assert_eq!(run.completed.len(), 50);
        assert_eq!(run.total_steals(), 0, "floaters have no owner to rob");
        assert!(run.completed.iter().all(|c| !c.stolen()));
    }

    #[test]
    fn worker_state_is_owned_mutable_and_handed_back() {
        let jobs: Vec<TaggedJob<u64>> = (1..=10)
            .map(|i| TaggedJob {
                payload: i,
                hint: Some((i as usize) % 2),
            })
            .collect();
        let run = run_stealing(vec![0u64, 0u64], jobs, |_, sum, payload| {
            *sum += payload;
            payload
        });
        let handed_back: u64 = run.workers.iter().map(|w| w.state).sum();
        assert_eq!(handed_back, 55, "every job mutated exactly one state");
    }

    #[test]
    fn feeder_jobs_arrive_while_workers_run_and_are_conserved() {
        let seeded: Vec<TaggedJob<usize>> = (0..10)
            .map(|i| TaggedJob {
                payload: i,
                hint: Some(i % 3),
            })
            .collect();
        let run = run_stealing_with_feeder(
            vec![(); 3],
            seeded,
            |feeder| {
                for i in 10..40 {
                    feeder.push(i);
                    // Give workers a chance to drain between arrivals so
                    // some pushes genuinely race live sweeps.
                    std::thread::yield_now();
                }
            },
            |_, (), payload| payload,
        );
        let seen: BTreeSet<usize> = run.completed.iter().map(|c| c.result).collect();
        assert_eq!(seen.len(), 40, "every seeded and fed job exactly once");
        let executed: usize = run.workers.iter().map(|w| w.executed_jobs).sum();
        assert_eq!(executed, 40);
        // Fed jobs float: they can never be counted as steals.
        assert!(run
            .completed
            .iter()
            .filter(|c| c.result >= 10)
            .all(|c| c.hint.is_none() && !c.stolen()));
    }

    #[test]
    fn a_feeder_that_pushes_nothing_still_terminates() {
        let run = run_stealing_with_feeder(
            vec![(); 2],
            vec![TaggedJob {
                payload: 1usize,
                hint: Some(0),
            }],
            |_feeder| {},
            |_, (), payload| payload,
        );
        assert_eq!(run.completed.len(), 1);
    }

    #[test]
    fn a_run_fed_entirely_through_the_injector_drains() {
        let run = run_stealing_with_feeder(
            vec![(); 4],
            Vec::new(),
            |feeder| {
                for i in 0..100usize {
                    feeder.push(i);
                }
            },
            |_, (), payload| payload,
        );
        let seen: BTreeSet<usize> = run.completed.iter().map(|c| c.result).collect();
        assert_eq!(seen.len(), 100);
        assert_eq!(run.total_steals(), 0);
    }

    #[test]
    #[should_panic(expected = "hint 2 outside pool")]
    fn out_of_range_hints_are_rejected() {
        let _ = run_stealing(
            vec![(); 2],
            vec![TaggedJob {
                payload: 0usize,
                hint: Some(2),
            }],
            |_, (), payload| payload,
        );
    }

    fn floaters(n: usize) -> Vec<TaggedJob<usize>> {
        (0..n)
            .map(|i| TaggedJob {
                payload: i,
                hint: None,
            })
            .collect()
    }

    #[test]
    fn tolerant_run_with_no_faults_matches_plain_stealing() {
        let run = run_stealing_tolerant(vec![(); 3], floaters(60), |_, (), payload| {
            JobVerdict::<usize, usize>::Done(payload)
        });
        let seen: BTreeSet<usize> = run.completed.iter().map(|c| c.result).collect();
        assert_eq!(seen, (0..60).collect());
        assert_eq!(run.retries, 0);
        assert_eq!(run.requeued_on_death, 0);
        assert!(run.unfinished.is_empty());
        assert_eq!(run.alive_workers(), 3);
    }

    #[test]
    fn retries_conserve_jobs_and_are_counted() {
        // Every job fails once before succeeding; payloads carry a retry
        // budget the executor burns down, like a real retry ledger.
        use std::sync::atomic::AtomicUsize;
        let attempts: Vec<AtomicUsize> = (0..40).map(|_| AtomicUsize::new(0)).collect();
        let run = run_stealing_tolerant(vec![(); 4], floaters(40), |_, (), payload: usize| {
            if attempts[payload].fetch_add(1, Ordering::SeqCst) == 0 {
                JobVerdict::Retry(payload)
            } else {
                JobVerdict::Done(payload)
            }
        });
        let seen: BTreeSet<usize> = run.completed.iter().map(|c| c.result).collect();
        assert_eq!(seen.len(), 40, "no drop, no duplicate");
        assert_eq!(run.retries, 40, "each job retried exactly once");
        assert!(run.unfinished.is_empty());
        assert_eq!(run.alive_workers(), 4);
    }

    #[test]
    fn a_dying_worker_drains_its_deque_and_nothing_is_lost() {
        // Everything is hinted to worker 0, which dies on its first job.
        // Its in-flight job and its whole deque must flow back through the
        // injector to the survivors.
        let jobs: Vec<TaggedJob<usize>> = (0..30)
            .map(|i| TaggedJob {
                payload: i,
                hint: Some(0),
            })
            .collect();
        let run = run_stealing_tolerant(
            vec![0usize, 1, 2],
            jobs,
            |_, me: &mut usize, payload: usize| {
                if *me == 0 {
                    JobVerdict::Fatal(payload)
                } else {
                    JobVerdict::Done(payload)
                }
            },
        );
        let seen: BTreeSet<usize> = run.completed.iter().map(|c| c.result).collect();
        assert_eq!(seen, (0..30).collect(), "every job resolved exactly once");
        assert_eq!(run.died, vec![true, false, false]);
        assert_eq!(run.alive_workers(), 2);
        assert!(run.requeued_on_death >= 1, "at least the in-flight job");
        assert_eq!(run.workers[0].executed_jobs, 0, "a fatal job is not done");
        assert!(run.unfinished.is_empty());
    }

    #[test]
    fn an_all_dead_pool_hands_every_job_back_unfinished() {
        let run = run_stealing_tolerant(vec![(); 3], floaters(25), |_, (), payload: usize| {
            JobVerdict::<usize, usize>::Fatal(payload)
        });
        assert!(run.completed.is_empty());
        assert_eq!(run.alive_workers(), 0);
        let handed_back: BTreeSet<usize> = run.unfinished.iter().copied().collect();
        // Each worker kills itself on its first job; every job ends up
        // either back in the injector or never popped — all 25 conserved.
        assert_eq!(handed_back, (0..25).collect());
    }

    #[test]
    fn tolerant_feeder_pushes_race_no_jobs_into_the_void() {
        let run = run_stealing_tolerant_with_feeder(
            vec![(); 4],
            floaters(10),
            |feeder| {
                for i in 10..110usize {
                    feeder.push(i);
                }
            },
            |_, (), payload: usize| {
                // Odd payloads bounce once through the injector first, so
                // retries race the feeder-done flag.
                if payload % 2 == 1 && payload < 1000 {
                    JobVerdict::Retry(payload + 1000)
                } else {
                    JobVerdict::Done(payload % 1000)
                }
            },
        );
        let seen: BTreeSet<usize> = run.completed.iter().map(|c| c.result).collect();
        assert_eq!(seen, (0..110).collect());
        assert_eq!(run.retries, 55);
        assert!(run.unfinished.is_empty());
    }
}
