//! The work-stealing execution core of the async serving host: one worker
//! thread per device slot, fed by per-worker deques plus a shared injector.
//!
//! [`run_stealing`] is deliberately generic over the job payload, the
//! per-worker owned state, and the result type, so the exact machinery that
//! runs device sessions in [`crate::Server::serve_async`] can also be
//! stress-tested with thousands of cheap synthetic jobs (see
//! `tests/stress.rs`).
//!
//! ## Seeding and stealing discipline
//!
//! Every job carries an optional *hint* — the worker a scheduling policy
//! picked for it at admission time.  Hinted jobs are seeded onto the hinted
//! worker's deque in submission order; hint-less jobs (e.g. deadline-marginal
//! sub-jobs produced by down-batching admission) go to the shared
//! [`Injector`] where the first free worker takes them.  Each worker then
//! loops:
//!
//! 1. pop its own deque (FIFO — the jobs it was hinted, oldest first);
//! 2. steal from the injector (globally FIFO floating jobs);
//! 3. steal from sibling deques (round-robin starting after itself), taking
//!    the *newest* job — the one that would otherwise wait longest behind a
//!    busy device.
//!
//! When all three sources are empty the worker exits: jobs are only removed
//! to be executed and nothing is ever re-queued, so an empty sweep means no
//! pending work remains (jobs still *executing* on other workers need no
//! help).  This is also why the run conserves jobs: every seeded job is
//! taken exactly once, by exactly one worker, and its result is delivered
//! over a channel that the caller drains to completion.

use crossbeam::channel;
use crossbeam::deque::{Injector, Steal, Stealer, Worker};
use sem_obs::{recorder, Scope, SpanEvent, SpanKind, WallTimer};

/// One job plus the scheduling hint it was admitted with.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaggedJob<T> {
    /// The work itself.
    pub payload: T,
    /// The worker a policy hinted this job to at admission time, or `None`
    /// for floating jobs any worker may take from the injector.
    pub hint: Option<usize>,
}

/// One executed job, in completion order.
#[derive(Debug, Clone)]
pub struct CompletedJob<R> {
    /// The worker that actually executed the job.
    pub worker: usize,
    /// The admission-time hint the job carried.
    pub hint: Option<usize>,
    /// What the executor returned.
    pub result: R,
}

impl<R> CompletedJob<R> {
    /// Whether the job ran somewhere other than its hinted worker.
    #[must_use]
    pub fn stolen(&self) -> bool {
        self.hint.is_some_and(|hint| hint != self.worker)
    }
}

/// Per-worker accounting of one run, with the worker's owned state handed
/// back to the caller.
#[derive(Debug)]
pub struct WorkerLedger<S> {
    /// The state the worker owned for the duration of the run.
    pub state: S,
    /// Wall-clock seconds this worker spent executing jobs (excludes idle
    /// spinning and queue operations).
    pub busy_wall_seconds: f64,
    /// Jobs this worker executed.
    pub executed_jobs: usize,
    /// Executed jobs that were hinted to a *different* worker.
    pub steals: usize,
}

/// The outcome of one work-stealing run.
#[derive(Debug)]
pub struct StealRun<S, R> {
    /// Executed jobs in completion order (the order results crossed the
    /// channel, not submission order — the caller re-sequences).
    pub completed: Vec<CompletedJob<R>>,
    /// Per-worker ledgers, indexed like the input states.
    pub workers: Vec<WorkerLedger<S>>,
    /// Wall-clock seconds from first spawn to last join.
    pub wall_seconds: f64,
}

impl<S, R> StealRun<S, R> {
    /// Total wall-clock seconds workers spent executing jobs.
    #[must_use]
    pub fn busy_wall_seconds(&self) -> f64 {
        self.workers.iter().map(|w| w.busy_wall_seconds).sum()
    }

    /// Measured concurrency: busy worker-seconds per wall-clock second.
    /// Approaches the worker count when the pool runs fully parallel and
    /// 1.0 when execution is effectively serial.
    #[must_use]
    pub fn concurrency(&self) -> f64 {
        if self.wall_seconds <= 0.0 {
            return 0.0;
        }
        self.busy_wall_seconds() / self.wall_seconds
    }

    /// Total stolen jobs across the pool.
    #[must_use]
    pub fn total_steals(&self) -> usize {
        self.workers.iter().map(|w| w.steals).sum()
    }
}

/// What one worker sends back per executed job.
struct Delivery<R> {
    worker: usize,
    hint: Option<usize>,
    result: R,
}

/// Run `jobs` across one thread per entry of `states`, work-stealing style.
///
/// `execute` is called as `execute(worker_index, &mut state, payload)` with
/// the worker's owned state — the state never crosses a thread boundary
/// mid-run, so workers can keep non-`Sync` sessions (each `SemSystem` is
/// owned by exactly one worker at a time) and hand them back through the
/// ledger when the run ends.
///
/// # Panics
/// Panics if `states` is empty or any hint is out of range.
pub fn run_stealing<T, S, R, F>(
    states: Vec<S>,
    jobs: Vec<TaggedJob<T>>,
    execute: F,
) -> StealRun<S, R>
where
    T: Send,
    S: Send,
    R: Send,
    F: Fn(usize, &mut S, T) -> R + Sync,
{
    let pool = states.len();
    assert!(pool > 0, "need at least one worker");
    let queues: Vec<Worker<TaggedJob<T>>> = (0..pool).map(|_| Worker::new_fifo()).collect();
    let stealers: Vec<Stealer<TaggedJob<T>>> = queues.iter().map(Worker::stealer).collect();
    let injector = Injector::new();
    for job in jobs {
        match job.hint {
            Some(hint) => {
                assert!(hint < pool, "hint {hint} outside pool of {pool}");
                queues[hint].push(job);
            }
            None => injector.push(job),
        }
    }

    let (tx, rx) = channel::unbounded::<Delivery<R>>();
    let run_timer = WallTimer::start();
    let mut ledgers: Vec<Option<WorkerLedger<S>>> = Vec::with_capacity(pool);
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(pool);
        for (index, (queue, mut state)) in queues.into_iter().zip(states).enumerate() {
            let tx = tx.clone();
            let injector = &injector;
            let stealers = &stealers;
            let execute = &execute;
            // lint: no-panic (a worker panic strands sibling deques mid-run)
            handles.push(scope.spawn(move || {
                // Registers this thread with a schedule explorer when one is
                // installed (`sem_serve::explore`); inert in production.
                let _control = crossbeam::sched::controlled(index);
                let mut busy_wall_seconds = 0.0;
                let mut executed_jobs = 0;
                let mut steals = 0;
                let obs = recorder();
                while let Some(job) = next_job(index, &queue, injector, stealers) {
                    if job.hint.is_some_and(|hint| hint != index) {
                        steals += 1;
                        if obs.is_enabled() {
                            // Which worker robbed whom is a property of the
                            // schedule, never of the answer: mark the event
                            // so modelled-clock exports drop it.
                            let at = obs.stamp(busy_wall_seconds);
                            obs.record(
                                SpanEvent::new(SpanKind::Steal, Scope::ScheduleDependent, at, at)
                                    .with_index(index as u64),
                            );
                            obs.counter_add("sem_serve_steals_total", &[], 1);
                        }
                    }
                    let hint = job.hint;
                    let begun = WallTimer::start();
                    let result = execute(index, &mut state, job.payload);
                    busy_wall_seconds += begun.elapsed_wall_seconds();
                    executed_jobs += 1;
                    // The receiver outlives the scope by construction, so a
                    // failed send can only mean the channel was torn down
                    // mid-run; stop taking work instead of panicking with
                    // sibling deques still live.
                    let delivery = Delivery {
                        worker: index,
                        hint,
                        result,
                    };
                    if tx.send(delivery).is_err() {
                        break;
                    }
                }
                WorkerLedger {
                    state,
                    busy_wall_seconds,
                    executed_jobs,
                    steals,
                }
            }));
        }
        drop(tx);
        for handle in handles {
            ledgers.push(Some(handle.join().expect("worker thread panicked")));
        }
    });
    let wall_seconds = run_timer.elapsed_wall_seconds();

    let completed = rx
        .iter()
        .map(|delivery| CompletedJob {
            worker: delivery.worker,
            hint: delivery.hint,
            result: delivery.result,
        })
        .collect();
    StealRun {
        completed,
        workers: ledgers
            .into_iter()
            .map(|ledger| ledger.expect("every worker joined"))
            .collect(),
        wall_seconds,
    }
}

/// One sweep of the three work sources: own deque, injector, siblings.
fn next_job<T>(
    index: usize,
    own: &Worker<TaggedJob<T>>,
    injector: &Injector<TaggedJob<T>>,
    stealers: &[Stealer<TaggedJob<T>>],
) -> Option<TaggedJob<T>> {
    loop {
        if let Some(job) = own.pop() {
            return Some(job);
        }
        match injector.steal() {
            Steal::Success(job) => return Some(job),
            Steal::Retry => continue,
            Steal::Empty => {}
        }
        let pool = stealers.len();
        let mut retry = false;
        for offset in 1..pool {
            let victim = (index + offset) % pool;
            match stealers[victim].steal() {
                Steal::Success(job) => return Some(job),
                Steal::Retry => retry = true,
                Steal::Empty => {}
            }
        }
        if retry {
            let obs = recorder();
            if obs.is_enabled() {
                // A contended sweep: the worker backs off and retries.  Like
                // steals, parking is schedule-only telemetry.
                let at = obs.stamp(0.0);
                obs.record(
                    SpanEvent::new(SpanKind::WorkerPark, Scope::ScheduleDependent, at, at)
                        .with_index(index as u64),
                );
            }
            std::thread::yield_now();
            if obs.is_enabled() {
                let at = obs.stamp(0.0);
                obs.record(
                    SpanEvent::new(SpanKind::WorkerUnpark, Scope::ScheduleDependent, at, at)
                        .with_index(index as u64),
                );
            }
            continue;
        }
        // Every source is empty and jobs are never re-queued: nothing is
        // pending anywhere, so this worker is done.
        return None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn single_worker_executes_hinted_jobs_in_fifo_order() {
        let jobs: Vec<TaggedJob<usize>> = (0..20)
            .map(|i| TaggedJob {
                payload: i,
                hint: Some(0),
            })
            .collect();
        let run = run_stealing(vec![()], jobs, |_, (), payload| payload);
        let order: Vec<usize> = run.completed.iter().map(|c| c.result).collect();
        assert_eq!(order, (0..20).collect::<Vec<_>>());
        assert_eq!(run.workers[0].executed_jobs, 20);
        assert_eq!(run.total_steals(), 0);
    }

    #[test]
    fn every_job_executes_exactly_once_across_a_stealing_pool() {
        // All jobs hinted to worker 0: the only way the others get work is
        // by stealing, and conservation must still hold.
        let jobs: Vec<TaggedJob<usize>> = (0..200)
            .map(|i| TaggedJob {
                payload: i,
                hint: Some(0),
            })
            .collect();
        let run = run_stealing(vec![(); 4], jobs, |_, (), payload| payload);
        let seen: BTreeSet<usize> = run.completed.iter().map(|c| c.result).collect();
        assert_eq!(seen.len(), 200, "no drop, no duplicate");
        assert_eq!(run.completed.len(), 200);
        let executed: usize = run.workers.iter().map(|w| w.executed_jobs).sum();
        assert_eq!(executed, 200);
        // Steal accounting matches the per-job stolen flags.
        let stolen_flags = run.completed.iter().filter(|c| c.stolen()).count();
        assert_eq!(run.total_steals(), stolen_flags);
    }

    #[test]
    fn floating_jobs_ride_the_injector_and_are_never_counted_as_steals() {
        let jobs: Vec<TaggedJob<usize>> = (0..50)
            .map(|i| TaggedJob {
                payload: i,
                hint: None,
            })
            .collect();
        let run = run_stealing(vec![(); 3], jobs, |_, (), payload| payload);
        assert_eq!(run.completed.len(), 50);
        assert_eq!(run.total_steals(), 0, "floaters have no owner to rob");
        assert!(run.completed.iter().all(|c| !c.stolen()));
    }

    #[test]
    fn worker_state_is_owned_mutable_and_handed_back() {
        let jobs: Vec<TaggedJob<u64>> = (1..=10)
            .map(|i| TaggedJob {
                payload: i,
                hint: Some((i as usize) % 2),
            })
            .collect();
        let run = run_stealing(vec![0u64, 0u64], jobs, |_, sum, payload| {
            *sum += payload;
            payload
        });
        let handed_back: u64 = run.workers.iter().map(|w| w.state).sum();
        assert_eq!(handed_back, 55, "every job mutated exactly one state");
    }

    #[test]
    #[should_panic(expected = "hint 2 outside pool")]
    fn out_of_range_hints_are_rejected() {
        let _ = run_stealing(
            vec![(); 2],
            vec![TaggedJob {
                payload: 0usize,
                hint: Some(2),
            }],
            |_, (), payload| payload,
        );
    }
}
