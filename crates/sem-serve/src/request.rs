//! Solve requests: what a client submits to the serving layer.

use sem_accel::SemSystem;
use sem_mesh::ElementField;
use serde::{Deserialize, Serialize};

/// The problem shape a request solves on: enough to mesh the domain and
/// instantiate a backend for it.  Requests with equal specs can share a
/// device session (one shared upload, one batched submission).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ProblemSpec {
    /// Polynomial degree `N`.
    pub degree: usize,
    /// Elements per direction.
    pub elements: [usize; 3],
}

impl ProblemSpec {
    /// A cube of `per_side`³ elements at polynomial degree `degree`.
    #[must_use]
    pub fn cube(degree: usize, per_side: usize) -> Self {
        Self {
            degree,
            elements: [per_side; 3],
        }
    }

    /// Total element count.
    #[must_use]
    pub fn num_elements(&self) -> usize {
        self.elements[0] * self.elements[1] * self.elements[2]
    }

    /// Total degrees of freedom (element-local storage).
    #[must_use]
    pub fn num_dofs(&self) -> usize {
        (self.degree + 1).pow(3) * self.num_elements()
    }
}

/// Where a request's right-hand side comes from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RhsSpec {
    /// The manufactured-solution RHS of the spec's Poisson problem (so the
    /// outcome carries real error metrics).
    Manufactured,
    /// A deterministic polynomial forcing derived from the seed — distinct
    /// seeds give distinct (but reproducible) right-hand sides.
    Seeded(u64),
}

/// One solve request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ServeRequest {
    /// Problem shape.
    pub spec: ProblemSpec,
    /// Right-hand side.
    pub rhs: RhsSpec,
}

impl ServeRequest {
    /// A manufactured-solution request.
    #[must_use]
    pub fn manufactured(spec: ProblemSpec) -> Self {
        Self {
            spec,
            rhs: RhsSpec::Manufactured,
        }
    }

    /// A seeded-forcing request.
    #[must_use]
    pub fn seeded(spec: ProblemSpec, seed: u64) -> Self {
        Self {
            spec,
            rhs: RhsSpec::Seeded(seed),
        }
    }

    /// Assemble this request's right-hand side on `system` (whose mesh must
    /// match the spec).
    ///
    /// # Panics
    /// Panics if the system's mesh does not match the request's spec.
    #[must_use]
    pub fn assemble_rhs(&self, system: &SemSystem) -> ElementField {
        assert_eq!(system.mesh().degree(), self.spec.degree, "degree mismatch");
        assert_eq!(
            system.mesh().num_elements(),
            self.spec.num_elements(),
            "element count mismatch"
        );
        match self.rhs {
            RhsSpec::Manufactured => system.problem().manufactured_rhs(),
            RhsSpec::Seeded(seed) => {
                // A smooth forcing whose coefficients vary with the seed;
                // deterministic so batched and standalone solves agree
                // bitwise.  The SplitMix64 finaliser is a bijection on u64
                // and the two coefficients take its disjoint 32-bit halves,
                // so distinct seeds always yield distinct (a, b) pairs.
                let mixed = splitmix64(seed);
                let a = 1.0 + (mixed >> 32) as f64 / 2f64.powi(32);
                let b = 0.5 + (mixed & 0xFFFF_FFFF) as f64 / 2f64.powi(33);
                system
                    .problem()
                    .right_hand_side(move |x, y, z| a * x * y * z + b * x - 0.5 * y + z)
            }
        }
    }
}

/// The SplitMix64 output finaliser: a u64 bijection with good avalanche.
fn splitmix64(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sem_accel::Backend;

    #[test]
    fn spec_arithmetic() {
        let spec = ProblemSpec::cube(7, 4);
        assert_eq!(spec.num_elements(), 64);
        assert_eq!(spec.num_dofs(), 512 * 64);
    }

    #[test]
    fn seeded_rhs_is_deterministic_and_seed_dependent() {
        let spec = ProblemSpec::cube(3, 2);
        let system = SemSystem::builder()
            .degree(spec.degree)
            .elements(spec.elements)
            .backend(Backend::cpu_optimized())
            .build();
        let a = ServeRequest::seeded(spec, 1).assemble_rhs(&system);
        let b = ServeRequest::seeded(spec, 1).assemble_rhs(&system);
        let c = ServeRequest::seeded(spec, 2).assemble_rhs(&system);
        assert_eq!(a.as_slice(), b.as_slice());
        assert_ne!(a.as_slice(), c.as_slice());
        // No small period: seeds that collided under a modulo scheme differ.
        for (x, y) in [(0_u64, 85), (5, 90), (17, 34)] {
            let fx = ServeRequest::seeded(spec, x).assemble_rhs(&system);
            let fy = ServeRequest::seeded(spec, y).assemble_rhs(&system);
            assert_ne!(fx.as_slice(), fy.as_slice(), "seeds {x} and {y}");
        }
        let m = ServeRequest::manufactured(spec).assemble_rhs(&system);
        assert_eq!(m.len(), a.len());
    }
}
