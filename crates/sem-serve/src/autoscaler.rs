//! Drift-corrected SLO autoscaling over a heterogeneous device pool.
//!
//! An [`Autoscaler`] owns an activation mask over a fixed candidate pool of
//! [`DeviceSlot`]s (typically the `arch-db` FPGA catalogue, real boards and
//! `fpga:projected:*` model-designed devices side by side) and flips at most
//! one device per observation window: *up* — cheapest inactive candidate by
//! TDP — when the window rejected work or its p99 latency ran hot against
//! the deadline; *down* — most expensive active device — only when the
//! window produced *positive evidence* of slack (a measured p99 well under
//! the deadline and zero rejections).
//!
//! The evidence rule is deliberate: a window that admitted nothing has no
//! latency percentile ([`WindowStats::p99_latency_seconds`] is `None`), and
//! the scaler **holds** rather than treating the absence of a tail as a
//! zero-latency tail.  The former `nearest_rank_percentile(&[], p) == 0.0`
//! behaviour turned exactly this situation — an overload window in which
//! every request was rejected — into a fabricated scale-*down* signal, the
//! opposite of what the pool needed.
//!
//! Cost is modelled, not measured: every candidate carries a provisioning
//! cost in watts (TDP from `arch_db::fpga_device`), the scaler activates
//! cheapest-first and retires most-expensive-first, and the serve loop
//! charges `active watts × window seconds` to the run so a bench can compare
//! cost-per-solve against a statically provisioned pool.

use crate::scheduler::DeviceSlot;
use crate::stream::WindowStats;
use sem_obs::recorder;
use serde::{Deserialize, Serialize};

/// When to grow and when to shrink, expressed against the serving deadline.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct AutoscalerPolicy {
    /// The arrival-relative latency target the pool must hold (same figure
    /// as [`crate::stream::LiveOptions::deadline_seconds`]).
    pub deadline_seconds: f64,
    /// Scale up when a window's p99 exceeds this fraction of the deadline
    /// (or when the window rejected any request).
    pub scale_up_fraction: f64,
    /// Scale down only when a window's measured p99 sits below this
    /// fraction of the deadline with zero rejections.
    pub scale_down_fraction: f64,
    /// Never deactivate below this many devices.
    pub min_devices: usize,
}

impl AutoscalerPolicy {
    /// The default thresholds (up above 90% of deadline, down below 40%,
    /// at least one device) around an explicit deadline.
    #[must_use]
    pub fn with_deadline(deadline_seconds: f64) -> Self {
        Self {
            deadline_seconds,
            scale_up_fraction: 0.9,
            scale_down_fraction: 0.4,
            min_devices: 1,
        }
    }
}

/// Which way a scale event moved the pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ScaleDirection {
    /// A device was activated.
    Up,
    /// A device was deactivated.
    Down,
}

/// One pool-size change, attributed to the window whose stats triggered it.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScaleEvent {
    /// Index of the observation window that produced the signal.
    pub window: usize,
    /// Grow or shrink.
    pub direction: ScaleDirection,
    /// Pool index of the device that was (de)activated.
    pub device: usize,
    /// Display label of that device.
    pub label: String,
    /// Active devices after the flip.
    pub active_after: usize,
}

/// A deadline-holding, cost-minimising activation mask over a fixed
/// candidate pool.  Construct it over the same slots the [`crate::Server`]
/// was built with and pass it to [`crate::Server::serve_stream`]; the serve
/// loop feeds it one [`WindowStats`] per window and prices admission only
/// against the devices the mask holds active.
#[derive(Debug)]
pub struct Autoscaler {
    policy: AutoscalerPolicy,
    watts: Vec<f64>,
    labels: Vec<String>,
    active: Vec<bool>,
    /// Circuit-breaker overlay: a quarantined device stays *provisioned*
    /// (it still burns watts until the scaler retires it) but leaves the
    /// serving mask immediately and cannot be (re)activated while dark.
    quarantined: Vec<bool>,
    /// `active & !quarantined` — the mask placement actually serves from.
    effective: Vec<bool>,
    events: Vec<ScaleEvent>,
}

impl Autoscaler {
    /// An autoscaler over `slots`, each priced at the matching entry of
    /// `watts`, starting with the `min_devices` cheapest candidates active.
    ///
    /// # Panics
    /// Panics if `watts` and `slots` disagree in length, a watt figure is
    /// non-finite or non-positive, or `min_devices` is zero or larger than
    /// the pool.
    #[must_use]
    pub fn new(policy: AutoscalerPolicy, slots: &[DeviceSlot], watts: Vec<f64>) -> Self {
        assert_eq!(watts.len(), slots.len(), "one watt figure per slot");
        assert!(
            watts.iter().all(|w| w.is_finite() && *w > 0.0),
            "provisioning costs must be positive"
        );
        assert!(
            policy.min_devices >= 1 && policy.min_devices <= slots.len(),
            "min_devices must be in 1..={}",
            slots.len()
        );
        let mut active = vec![false; slots.len()];
        let mut order: Vec<usize> = (0..slots.len()).collect();
        order.sort_by(|&a, &b| watts[a].total_cmp(&watts[b]).then(a.cmp(&b)));
        for &device in order.iter().take(policy.min_devices) {
            active[device] = true;
        }
        Self {
            policy,
            watts,
            labels: slots.iter().map(|slot| slot.label.clone()).collect(),
            effective: active.clone(),
            quarantined: vec![false; active.len()],
            active,
            events: Vec::new(),
        }
    }

    /// The full FPGA candidate pool from the `arch-db` catalogue — every
    /// real evaluated board plus the Section V-D `fpga:projected:*`
    /// model-designed devices — with each slot's TDP watts as its
    /// provisioning cost.
    ///
    /// # Panics
    /// Panics if a catalogue slug fails to resolve to a backend (a workspace
    /// invariant: `arch-db` and `sem-accel` agree on the registry names).
    #[must_use]
    pub fn fpga_candidates() -> (Vec<DeviceSlot>, Vec<f64>) {
        let mut slots = Vec::new();
        let mut watts = Vec::new();
        let slugs: Vec<&str> = arch_db::fpga_device_slugs()
            .into_iter()
            .chain(arch_db::projected_fpga_slugs())
            .collect();
        for slug in slugs {
            let name = format!("fpga:{slug}");
            let slot = DeviceSlot::from_registry_name(&name)
                .unwrap_or_else(|| panic!("catalogue slug `{name}` missing from the registry"));
            let device = arch_db::fpga_device(slug)
                .unwrap_or_else(|| panic!("no device description for `{slug}`"));
            slots.push(slot);
            watts.push(device.tdp_watts);
        }
        (slots, watts)
    }

    /// The mask placement serves from: active devices that are not
    /// quarantined.  Identical to the provisioning mask until
    /// [`Autoscaler::set_quarantined`] is used.
    #[must_use]
    pub fn active_mask(&self) -> &[bool] {
        &self.effective
    }

    /// Number of provisioned (active) devices, quarantined or not.
    #[must_use]
    pub fn active_count(&self) -> usize {
        self.active.iter().filter(|a| **a).count()
    }

    /// Number of active devices actually able to serve (not quarantined).
    #[must_use]
    pub fn healthy_active_count(&self) -> usize {
        self.effective.iter().filter(|a| **a).count()
    }

    /// Which devices are currently quarantined.
    #[must_use]
    pub fn quarantined_mask(&self) -> &[bool] {
        &self.quarantined
    }

    /// Feed the circuit breaker's verdict for `device` into the mask
    /// (attributed to observation window `window` in the event log).
    ///
    /// Quarantining a serving device removes it from the serving mask at
    /// once and grows a replacement (cheapest healthy inactive candidate),
    /// so capacity recovers without waiting for the next hot window; the
    /// dark device stays provisioned — and billed — until the scaler
    /// retires it.  Lifting a quarantine returns the device to the masks
    /// it was in.
    pub fn set_quarantined(&mut self, window: usize, device: usize, quarantined: bool) {
        if self.quarantined[device] == quarantined {
            return;
        }
        self.quarantined[device] = quarantined;
        self.effective[device] = self.active[device] && !quarantined;
        let obs = recorder();
        if obs.is_enabled() {
            obs.gauge_set(
                "sem_serve_quarantined_devices_count",
                &[],
                self.quarantined.iter().filter(|q| **q).count() as f64,
            );
        }
        if quarantined && self.active[device] {
            self.flip(window, ScaleDirection::Up);
        }
    }

    /// Per-slot provisioning costs in watts.
    #[must_use]
    pub fn watts(&self) -> &[f64] {
        &self.watts
    }

    /// Every scale event so far, in window order.
    #[must_use]
    pub fn events(&self) -> &[ScaleEvent] {
        &self.events
    }

    /// Digest one closed window and flip at most one device.
    ///
    /// Up on rejections or a hot measured p99; down only on a cool measured
    /// p99 with zero rejections; hold when the window carries no latency
    /// evidence (`p99_latency_seconds == None`) and nothing was rejected.
    pub fn observe(&mut self, stats: &WindowStats) {
        let deadline = self.policy.deadline_seconds;
        let p99 = stats.p99_latency_seconds;
        let hot = p99.is_some_and(|p| p > self.policy.scale_up_fraction * deadline);
        let cool = p99.is_some_and(|p| p < self.policy.scale_down_fraction * deadline);
        if stats.rejected > 0 || hot {
            self.flip(stats.window, ScaleDirection::Up);
        } else if cool && stats.rejected == 0 {
            // `flip` enforces the floor: it retires dark (quarantined)
            // devices freely but never deactivates a healthy device unless
            // more than `min_devices` healthy devices remain.
            self.flip(stats.window, ScaleDirection::Down);
        }
        // Neither branch: hold.  In particular a window with no admitted
        // requests and no rejections is *absence of evidence*, not evidence
        // of slack.
    }

    fn flip(&mut self, window: usize, direction: ScaleDirection) {
        let candidate = match direction {
            // Cheapest healthy inactive candidate first; a quarantined
            // device cannot be activated while dark.
            ScaleDirection::Up => (0..self.active.len())
                .filter(|&d| !self.active[d] && !self.quarantined[d])
                .min_by(|&a, &b| self.watts[a].total_cmp(&self.watts[b]).then(a.cmp(&b))),
            // Retire a dark (quarantined) active device first: it serves
            // nothing, so dropping it frees watts without losing capacity.
            // Only then consider healthy devices, most expensive first, and
            // never take the pool below `min_devices` *healthy* actives —
            // `active_count` alone would let a cool window retire the last
            // serving device when quarantine has darkened the rest.
            ScaleDirection::Down => (0..self.active.len())
                .filter(|&d| self.active[d] && self.quarantined[d])
                .max_by(|&a, &b| self.watts[a].total_cmp(&self.watts[b]).then(b.cmp(&a)))
                .or_else(|| {
                    if self.healthy_active_count() <= self.policy.min_devices {
                        return None;
                    }
                    (0..self.active.len())
                        .filter(|&d| self.active[d] && !self.quarantined[d])
                        .max_by(|&a, &b| self.watts[a].total_cmp(&self.watts[b]).then(b.cmp(&a)))
                }),
        };
        let Some(device) = candidate else {
            return; // Saturated in that direction: every candidate already flipped.
        };
        self.active[device] = direction == ScaleDirection::Up;
        self.effective[device] = self.active[device] && !self.quarantined[device];
        let obs = recorder();
        if obs.is_enabled() {
            let metric = match direction {
                ScaleDirection::Up => "sem_serve_scale_ups_total",
                ScaleDirection::Down => "sem_serve_scale_downs_total",
            };
            obs.counter_add(metric, &[], 1);
        }
        self.events.push(ScaleEvent {
            window,
            direction,
            device,
            label: self.labels[device].clone(),
            active_after: self.active_count(),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(window: usize, admitted: usize, rejected: usize, p99: Option<f64>) -> WindowStats {
        WindowStats {
            window,
            start_seconds: window as f64 * 10.0,
            admitted,
            rejected,
            p99_latency_seconds: p99,
            active_devices: 0,
        }
    }

    fn pool(n: usize) -> (Vec<DeviceSlot>, Vec<f64>) {
        let slots: Vec<DeviceSlot> = (0..n)
            .map(|_| DeviceSlot::from_registry_name("cpu:optimized").unwrap())
            .collect();
        let watts = (0..n).map(|i| 100.0 + i as f64 * 50.0).collect();
        (slots, watts)
    }

    #[test]
    fn grows_cheapest_first_and_shrinks_most_expensive_first() {
        let (slots, watts) = pool(3);
        let mut scaler = Autoscaler::new(AutoscalerPolicy::with_deadline(10.0), &slots, watts);
        assert_eq!(scaler.active_mask(), &[true, false, false]);
        scaler.observe(&stats(0, 4, 2, Some(9.8)));
        assert_eq!(scaler.active_mask(), &[true, true, false], "cheapest next");
        scaler.observe(&stats(1, 4, 1, None));
        assert_eq!(scaler.active_mask(), &[true, true, true]);
        scaler.observe(&stats(2, 4, 0, Some(1.0)));
        assert_eq!(
            scaler.active_mask(),
            &[true, true, false],
            "most expensive retires first"
        );
        assert_eq!(scaler.events().len(), 3);
        assert_eq!(scaler.events()[2].direction, ScaleDirection::Down);
    }

    #[test]
    fn a_window_with_no_latency_evidence_holds_the_pool() {
        // The regression the Option-returning percentile exists for: an
        // all-rejected window used to read as p99 == 0.0 and shrink the
        // pool mid-overload; an *idle* window must not shrink it either.
        let (slots, watts) = pool(2);
        let mut scaler = Autoscaler::new(AutoscalerPolicy::with_deadline(10.0), &slots, watts);
        scaler.observe(&stats(0, 8, 1, None));
        assert_eq!(scaler.active_count(), 2, "rejections still scale up");
        scaler.observe(&stats(1, 0, 0, None));
        assert_eq!(scaler.active_count(), 2, "no evidence, no shrink");
        assert_eq!(scaler.events().len(), 1);
    }

    #[test]
    fn never_shrinks_below_min_devices_and_never_grows_past_the_pool() {
        let (slots, watts) = pool(2);
        let mut scaler = Autoscaler::new(AutoscalerPolicy::with_deadline(10.0), &slots, watts);
        scaler.observe(&stats(0, 4, 0, Some(0.5)));
        assert_eq!(scaler.active_count(), 1, "already at min_devices");
        scaler.observe(&stats(1, 0, 9, None));
        scaler.observe(&stats(2, 0, 9, None));
        scaler.observe(&stats(3, 0, 9, None));
        assert_eq!(scaler.active_count(), 2, "saturated at the pool size");
        assert_eq!(scaler.events().len(), 1, "saturated flips are not events");
    }

    #[test]
    fn a_quarantined_device_leaves_the_serving_mask_and_a_replacement_grows() {
        let (slots, watts) = pool(3);
        let mut scaler = Autoscaler::new(AutoscalerPolicy::with_deadline(10.0), &slots, watts);
        assert_eq!(scaler.active_mask(), &[true, false, false]);
        scaler.set_quarantined(0, 0, true);
        assert_eq!(
            scaler.active_mask(),
            &[false, true, false],
            "dark device out of the serving mask, cheapest healthy spare in"
        );
        assert_eq!(scaler.active_count(), 2, "the dark device is still billed");
        assert_eq!(scaler.healthy_active_count(), 1);
        assert_eq!(scaler.events().len(), 1);
        assert_eq!(scaler.events()[0].direction, ScaleDirection::Up);
        assert_eq!(scaler.events()[0].device, 1);
    }

    #[test]
    fn shrink_never_deactivates_the_last_healthy_device() {
        // The regression this satellite exists for: quarantine darkens one
        // of two active devices, then a cool window arrives.  Guarding on
        // `active_count > min_devices` alone would retire the *healthy*
        // device (it is the most expensive active one) and leave the pool
        // serving from nothing.
        let (slots, watts) = pool(2);
        let mut scaler = Autoscaler::new(AutoscalerPolicy::with_deadline(10.0), &slots, watts);
        scaler.observe(&stats(0, 4, 2, None));
        assert_eq!(scaler.active_mask(), &[true, true]);
        scaler.set_quarantined(1, 0, true); // replacement grow saturates: 1 is already active
        assert_eq!(scaler.active_mask(), &[false, true]);
        scaler.observe(&stats(2, 4, 0, Some(0.5)));
        assert_eq!(
            scaler.active_mask(),
            &[false, true],
            "the cool window retires the dark device, not the healthy one"
        );
        assert_eq!(scaler.active_count(), 1, "device 0 deprovisioned");
        scaler.observe(&stats(3, 4, 0, Some(0.5)));
        assert_eq!(
            scaler.healthy_active_count(),
            1,
            "the last healthy device can never be retired"
        );
        assert_eq!(scaler.active_mask(), &[false, true]);
    }

    #[test]
    fn growth_skips_quarantined_devices_until_the_quarantine_lifts() {
        let (slots, watts) = pool(3);
        let mut scaler = Autoscaler::new(AutoscalerPolicy::with_deadline(10.0), &slots, watts);
        scaler.set_quarantined(0, 1, true); // dark while inactive: no flip
        assert_eq!(scaler.events().len(), 0);
        scaler.observe(&stats(1, 4, 2, None));
        assert_eq!(
            scaler.active_mask(),
            &[true, false, true],
            "growth passes over the cheaper quarantined candidate"
        );
        scaler.set_quarantined(2, 1, false);
        scaler.observe(&stats(3, 4, 2, None));
        assert_eq!(
            scaler.active_mask(),
            &[true, true, true],
            "a probed-healthy device rejoins the candidate pool"
        );
    }

    #[test]
    fn fpga_candidates_cover_the_catalogue_with_positive_watts() {
        let (slots, watts) = Autoscaler::fpga_candidates();
        assert_eq!(
            slots.len(),
            arch_db::fpga_device_slugs().len() + arch_db::projected_fpga_slugs().len()
        );
        assert!(watts.iter().all(|w| *w > 0.0));
        assert!(slots.iter().any(|s| s.label.contains("projected")));
    }
}
