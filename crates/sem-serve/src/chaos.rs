//! The fault-tolerant serving host: [`Server::serve_chaos`].
//!
//! A deterministic, synchronous host that serves a request set against
//! devices armed with [`Server::inject_faults`] plans, running the full
//! recovery loop in *modeled time*:
//!
//! 1. **Detect** — typed solver faults (death, hang) abort a job; released
//!    answers are re-verified by recomputing `‖b − Ax‖` on the trusted host
//!    operator against the request tolerance; sessions whose modeled
//!    seconds blow `timeout_factor ×` the drift-corrected admission
//!    prediction are treated as timed out (the sticky-slowdown signature).
//! 2. **Retry** — failed jobs requeue with capped exponential backoff
//!    (modeled seconds) and a per-request [`RetryLedger`]; past
//!    [`FaultToleranceOptions::max_retries`] a job is pinned to the
//!    fallback device — the first clean `cpu:*` slot — so admitted work
//!    completes even when every accelerator is dark.
//! 3. **Quarantine** — each device's [`CircuitBreaker`] walks
//!    healthy → suspect → quarantined and re-admits by probe after a
//!    modeled cooldown; quarantined devices leave the placement set.
//!
//! Placement is earliest-corrected-completion over the non-quarantined
//! accelerators (`cpu:*` slots in a mixed pool are held in reserve as the
//! degradation target, keeping the committed chaos artifacts free of
//! measured wall-clock), ties broken by pool index.  Nothing consults a
//! wall clock, so a given pool + fault plan + request set replays bitwise.
//!
//! Because the injected fault wrapper is transparent when not faulting,
//! any request that ultimately succeeds on a backend equivalent to its
//! fault-free placement returns the bitwise-identical solution vector.

use crate::fault::{
    relative_residual, CircuitBreaker, FaultReason, FaultToleranceOptions, RetryLedger,
};
use crate::queue::{BatchJob, SolveQueue};
use crate::request::ServeRequest;
use crate::server::{RequestOutcome, Server};
use perf_model::StageDriftCorrector;
use sem_obs::{recorder, WallTimer};
use serde::{Deserialize, Serialize};

/// One detected fault, on the modeled clock.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FaultEvent {
    /// Modeled seconds at which the fault was detected (the failed
    /// session's end).
    pub at_seconds: f64,
    /// Device the job was running on.
    pub device: usize,
    /// That device's display label.
    pub device_label: String,
    /// What detection concluded.
    pub reason: FaultReason,
    /// Requests riding the failed job.
    pub requests: Vec<usize>,
    /// The job's failed-attempt count after this fault.
    pub attempt: usize,
}

/// The result of one chaos serve.
#[derive(Debug, Clone)]
pub struct ChaosReport {
    /// One verified outcome per served request, sorted by request index.
    pub outcomes: Vec<RequestOutcome>,
    /// Requests that could not be completed — non-empty only when every
    /// device in the pool is dead.  Never silently dropped.
    pub unserved: Vec<usize>,
    /// Per-request retry history.
    pub ledger: RetryLedger,
    /// Final per-device breaker states.
    pub breakers: Vec<CircuitBreaker>,
    /// Every detected fault, in detection order.
    pub fault_events: Vec<FaultEvent>,
    /// Jobs that exhausted their retries and ran on the fallback device.
    pub fallback_jobs: usize,
    /// Probe jobs offered to quarantined devices.
    pub probes: usize,
    /// Requests that completed after at least one failed attempt.
    pub recovered_requests: usize,
    /// Modeled end-to-end seconds (slowest device, including backoff
    /// waits).
    pub makespan_seconds: f64,
    /// Measured wall-clock seconds of the whole call on this host.
    pub wall_seconds: f64,
}

impl ChaosReport {
    /// Latency at percentile `p` over the served requests' completion
    /// times (arrival is time zero), `None` when nothing completed.
    #[must_use]
    pub fn latency_percentile_seconds(&self, p: f64) -> Option<f64> {
        let latencies: Vec<f64> = self
            .outcomes
            .iter()
            .map(RequestOutcome::latency_seconds)
            .collect();
        perf_model::nearest_rank_percentile(&latencies, p)
    }

    /// Devices quarantined when the run ended.
    #[must_use]
    pub fn quarantined_at_end(&self) -> usize {
        self.breakers.iter().filter(|b| b.is_quarantined()).count()
    }

    /// The serde-friendly aggregate (what the chaos bench persists).
    #[must_use]
    pub fn summary(&self) -> ChaosSummary {
        ChaosSummary {
            requests: self.outcomes.len() + self.unserved.len(),
            completed: self.outcomes.len(),
            unserved: self.unserved.len(),
            retries_total: self.ledger.total_retries(),
            faults_by_reason: self.ledger.by_reason(),
            fallback_jobs: self.fallback_jobs,
            probes: self.probes,
            recovered_requests: self.recovered_requests,
            quarantines_total: self.breakers.iter().map(|b| b.quarantines).sum(),
            quarantined_at_end: self.quarantined_at_end(),
            device_faults: self.breakers.iter().map(|b| b.faults).collect(),
            makespan_seconds: self.makespan_seconds,
            p50_latency_seconds: self.latency_percentile_seconds(50.0),
            p99_latency_seconds: self.latency_percentile_seconds(99.0),
        }
    }
}

/// Serializable aggregate of a chaos serve (modeled figures only — the
/// committed chaos artifact must replay bitwise).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ChaosSummary {
    /// Requests submitted.
    pub requests: usize,
    /// Requests completed verified.
    pub completed: usize,
    /// Requests that could not be completed (0 unless the whole pool
    /// died).
    pub unserved: usize,
    /// Failed attempts across all requests.
    pub retries_total: usize,
    /// Failed attempts per detection reason, `(label, count)` in stable
    /// label order.
    pub faults_by_reason: Vec<(String, usize)>,
    /// Jobs that ran on the fallback device after exhausting retries.
    pub fallback_jobs: usize,
    /// Probe jobs offered to quarantined devices.
    pub probes: usize,
    /// Requests that completed after at least one failed attempt.
    pub recovered_requests: usize,
    /// Quarantine entries across all devices.
    pub quarantines_total: usize,
    /// Devices still quarantined at the end of the run.
    pub quarantined_at_end: usize,
    /// Lifetime fault count per device, by pool index.
    pub device_faults: Vec<usize>,
    /// Modeled end-to-end seconds.
    pub makespan_seconds: f64,
    /// Median latency over served requests.
    pub p50_latency_seconds: Option<f64>,
    /// 99th-percentile latency over served requests.
    pub p99_latency_seconds: Option<f64>,
}

/// A job waiting its turn (or its backoff) in the chaos loop.
struct PendingJob {
    job: BatchJob,
    attempts: usize,
    not_before_seconds: f64,
    seq: usize,
}

impl Server {
    /// Serve `requests` on the fault-tolerant host.  See the
    /// [module docs](self) for the recovery loop; with no injected fault
    /// plans this degenerates to a plain earliest-completion synchronous
    /// serve (the baseline the chaos bench compares against).
    ///
    /// # Panics
    /// Panics if a request's problem spec cannot be built on a pool device.
    pub fn serve_chaos(
        &mut self,
        requests: &[ServeRequest],
        chaos: FaultToleranceOptions,
    ) -> ChaosReport {
        let started = WallTimer::start();
        let pool = self.slots.len();
        let obs = recorder();

        // cpu:* slots in a mixed pool are the degradation reserve, not part
        // of normal placement: their sessions are host-measured, and the
        // committed chaos artifacts must stay on the modeled clock.
        let accel: Vec<usize> = (0..pool)
            .filter(|&d| !self.slots[d].label.starts_with("cpu"))
            .collect();
        let normal_set: Vec<usize> = if accel.is_empty() {
            (0..pool).collect()
        } else {
            accel
        };

        let mut pending: Vec<PendingJob> = SolveQueue::from_requests(requests)
            .pack(self.options.max_batch)
            .into_iter()
            .enumerate()
            .map(|(seq, job)| PendingJob {
                job,
                attempts: 0,
                not_before_seconds: 0.0,
                seq,
            })
            .collect();
        let mut seq = pending.len();

        let mut busy = vec![0.0_f64; pool];
        let mut breakers = vec![CircuitBreaker::new(); pool];
        let mut ledger = RetryLedger::new();
        let mut corrector = StageDriftCorrector::new();
        let mut fault_events = Vec::new();
        let mut outcomes: Vec<Option<RequestOutcome>> = (0..requests.len()).map(|_| None).collect();
        let mut unserved = Vec::new();
        let mut fallback_jobs = 0_usize;
        let mut probes = 0_usize;
        let mut recovered_requests = 0_usize;
        // Backstop far beyond any plan the retry/fallback ladder can hit:
        // only an all-dead pool reaches it, and those jobs land in
        // `unserved` rather than looping forever.
        let attempt_ceiling = chaos.max_retries + pool + 2;

        while let Some(slot) = next_pending(&pending) {
            let PendingJob {
                job,
                attempts,
                not_before_seconds,
                ..
            } = pending.swap_remove(slot);

            let device = if attempts > chaos.max_retries {
                match self.fallback_device(attempts, attempt_ceiling) {
                    Some(device) => device,
                    None => {
                        unserved.extend(job.requests.iter().copied());
                        continue;
                    }
                }
            } else {
                match self.place_chaos(
                    &job,
                    &normal_set,
                    &breakers,
                    &corrector,
                    &busy,
                    not_before_seconds,
                    chaos.probe_cooldown_seconds,
                ) {
                    Placement::Device(device) => device,
                    Placement::WaitUntil(when) => {
                        pending.push(PendingJob {
                            job,
                            attempts,
                            not_before_seconds: when,
                            seq,
                        });
                        seq += 1;
                        continue;
                    }
                }
            };

            let probe = breakers[device].is_quarantined();
            if probe {
                probes += 1;
            }
            self.ensure_system(device, job.spec);
            let raw_predicted = self.predict_job_seconds(device, &job);
            let budget = chaos.timeout_factor * corrector.corrected("session", raw_predicted);
            let start = busy[device].max(not_before_seconds);
            let system = self.system(device, job.spec);
            let (timeline, mut job_outcomes, modeled) =
                self.execute_job_on(system, device, &job, requests);
            let makespan = timeline.makespan_seconds;
            let end = start + makespan;
            busy[device] = end;

            let verdict = job_outcomes
                .iter()
                .find_map(|o| o.fault.map(FaultReason::of_solve_fault))
                .or_else(|| {
                    let corrupt = job_outcomes.iter().zip(&job.requests).any(|(o, &i)| {
                        if !o.converged {
                            return true;
                        }
                        let rhs = requests[i].assemble_rhs(system);
                        let residual = relative_residual(system, &rhs, &o.solution);
                        !chaos.residual_ok(residual, self.options.cg.tolerance)
                    });
                    corrupt.then_some(FaultReason::CorruptResult)
                })
                .or_else(|| (modeled && makespan > budget).then_some(FaultReason::TimeoutExceeded));

            match verdict {
                None => {
                    if probe {
                        breakers[device].probe_ok();
                    } else {
                        breakers[device].on_success();
                    }
                    if attempts > 0 {
                        recovered_requests += job.requests.len();
                        if obs.is_enabled() {
                            obs.counter_add(
                                "sem_serve_fault_recoveries_total",
                                &[],
                                job.requests.len() as u64,
                            );
                        }
                    }
                    if attempts > chaos.max_retries {
                        fallback_jobs += 1;
                    }
                    if modeled {
                        corrector.record("session", raw_predicted, makespan);
                    }
                    for mut outcome in job_outcomes.drain(..) {
                        outcome.started_seconds = start;
                        outcome.completed_seconds = end;
                        let request = outcome.request;
                        assert!(
                            outcomes[request].replace(outcome).is_none(),
                            "request {request} answered twice"
                        );
                    }
                }
                Some(reason) => {
                    breakers[device].on_fault(end);
                    let attempts = attempts + 1;
                    let backoff = chaos.backoff_seconds(attempts);
                    for &request in &job.requests {
                        ledger.charge(request, reason, backoff);
                    }
                    if obs.is_enabled() {
                        obs.counter_add(
                            "sem_serve_fault_detections_total",
                            &[("kind", reason.label())],
                            1,
                        );
                        obs.counter_add("sem_serve_retries_total", &[], 1);
                        obs.gauge_set(
                            "sem_serve_quarantined_devices_count",
                            &[],
                            breakers.iter().filter(|b| b.is_quarantined()).count() as f64,
                        );
                    }
                    fault_events.push(FaultEvent {
                        at_seconds: end,
                        device,
                        device_label: self.slots[device].label.clone(),
                        reason,
                        requests: job.requests.clone(),
                        attempt: attempts,
                    });
                    if attempts >= attempt_ceiling {
                        unserved.extend(job.requests.iter().copied());
                    } else {
                        pending.push(PendingJob {
                            job,
                            attempts,
                            not_before_seconds: end + backoff,
                            seq,
                        });
                        seq += 1;
                    }
                }
            }
        }

        let makespan_seconds = busy.iter().copied().fold(0.0_f64, f64::max);
        let outcomes: Vec<RequestOutcome> = outcomes.into_iter().flatten().collect();
        unserved.sort_unstable();
        assert_eq!(
            outcomes.len() + unserved.len(),
            requests.len(),
            "every request is served or reported unserved exactly once"
        );
        ChaosReport {
            outcomes,
            unserved,
            ledger,
            breakers,
            fault_events,
            fallback_jobs,
            probes,
            recovered_requests,
            makespan_seconds,
            wall_seconds: started.elapsed_wall_seconds(),
        }
    }

    /// The device a retry-exhausted job is pinned to: the lowest-index
    /// clean (no fault plan) `cpu:*` slot, then any clean slot, then any
    /// slot whose device is not dead.  `None` only when every device in
    /// the pool is dead (or the termination backstop tripped).
    fn fallback_device(&self, attempts: usize, attempt_ceiling: usize) -> Option<usize> {
        if attempts >= attempt_ceiling {
            return None;
        }
        let usable = |d: &usize| {
            self.fault_states[*d]
                .as_ref()
                .is_none_or(|state| !state.is_dead())
        };
        (0..self.slots.len()).filter(usable).min_by_key(|&d| {
            (
                self.fault_states[d].is_some(),
                !self.slots[d].label.starts_with("cpu"),
                d,
            )
        })
    }

    /// Earliest-corrected-completion placement over the normal set, honouring
    /// quarantine: a quarantined device is a candidate only as a probe
    /// (cooldown elapsed by the time it could start).  Returns the modeled
    /// time to wait until when nothing is placeable yet.
    #[allow(clippy::too_many_arguments)]
    fn place_chaos(
        &mut self,
        job: &BatchJob,
        normal_set: &[usize],
        breakers: &[CircuitBreaker],
        corrector: &StageDriftCorrector,
        busy: &[f64],
        not_before_seconds: f64,
        probe_cooldown_seconds: f64,
    ) -> Placement {
        let mut best: Option<(f64, usize)> = None;
        for &d in normal_set {
            let start = busy[d].max(not_before_seconds);
            if breakers[d].is_quarantined() && !breakers[d].probe_due(start, probe_cooldown_seconds)
            {
                continue;
            }
            self.ensure_system(d, job.spec);
            let predicted = corrector.corrected("session", self.predict_job_seconds(d, job));
            let completion = start + predicted;
            let better = match best {
                None => true,
                Some((incumbent, _)) => completion < incumbent,
            };
            if better {
                best = Some((completion, d));
            }
        }
        if let Some((_, device)) = best {
            return Placement::Device(device);
        }
        // Everything quarantined with no probe due yet: wait for the
        // earliest probe eligibility.  (Non-empty: a fully non-quarantined
        // set always yields a candidate above.)
        let earliest = normal_set
            .iter()
            .filter_map(|&d| match breakers[d].state() {
                crate::fault::BreakerState::Quarantined { since_seconds } => {
                    Some(busy[d].max(since_seconds + probe_cooldown_seconds))
                }
                _ => None,
            })
            .fold(f64::INFINITY, f64::min);
        Placement::WaitUntil(earliest.max(not_before_seconds))
    }
}

/// What [`Server::place_chaos`] decided.
enum Placement {
    Device(usize),
    WaitUntil(f64),
}

/// Index of the next pending job: earliest `not_before`, ties by sequence
/// number — a deterministic total order however retries interleave.
fn next_pending(pending: &[PendingJob]) -> Option<usize> {
    pending
        .iter()
        .enumerate()
        .min_by(|(_, a), (_, b)| {
            a.not_before_seconds
                .total_cmp(&b.not_before_seconds)
                .then(a.seq.cmp(&b.seq))
        })
        .map(|(i, _)| i)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::BreakerState;
    use crate::request::ProblemSpec;
    use crate::server::ServeOptions;
    use fpga_sim::{FaultKind, FaultPlan, ScheduledFault};

    const FPGA: &str = "fpga:stratix10-gx2800";

    fn requests(n: usize) -> Vec<ServeRequest> {
        let spec = ProblemSpec::cube(3, 2);
        (0..n)
            .map(|i| ServeRequest::seeded(spec, i as u64))
            .collect()
    }

    fn server(names: &[&str]) -> Server {
        Server::from_registry_names(
            names,
            ServeOptions {
                max_batch: 2,
                ..ServeOptions::default()
            },
        )
    }

    #[test]
    fn a_fault_free_chaos_serve_degenerates_to_a_plain_serve() {
        let mut server = server(&[FPGA, FPGA, "cpu:optimized"]);
        let report = server.serve_chaos(&requests(6), FaultToleranceOptions::default());
        assert_eq!(report.outcomes.len(), 6);
        assert!(report.unserved.is_empty());
        assert_eq!(report.ledger.total_retries(), 0);
        assert!(report.fault_events.is_empty());
        assert_eq!(report.fallback_jobs, 0);
        assert!(report
            .breakers
            .iter()
            .all(|b| b.state() == BreakerState::Healthy));
        // cpu reserve never drafted into normal placement.
        assert!(report.outcomes.iter().all(|o| o.device != 2));
        // Outcomes are in request order.
        let order: Vec<usize> = report.outcomes.iter().map(|o| o.request).collect();
        assert_eq!(order, (0..6).collect::<Vec<_>>());
    }

    #[test]
    fn a_transient_corruption_is_detected_retried_and_recovered() {
        let mut server = server(&[FPGA, "cpu:optimized"]);
        server.inject_faults(
            0,
            FaultPlan::new(vec![ScheduledFault {
                at_op: 2,
                kind: FaultKind::Transient,
            }]),
        );
        let report = server.serve_chaos(&requests(2), FaultToleranceOptions::default());
        assert_eq!(report.outcomes.len(), 2);
        assert!(report.unserved.is_empty());
        assert!(report.ledger.total_retries() >= 1);
        assert!(report
            .fault_events
            .iter()
            .any(|e| e.reason == FaultReason::CorruptResult));
        assert!(report.recovered_requests >= 1);
        // One strike leaves the device suspect or rehabilitated, never
        // quarantined.
        assert_eq!(report.quarantined_at_end(), 0);
        // Every released answer re-verifies on the trusted operator.
        for outcome in &report.outcomes {
            assert!(outcome.converged);
            assert!(outcome.fault.is_none());
        }
    }

    #[test]
    fn retried_answers_are_bitwise_identical_to_the_fault_free_run() {
        // Same single-device pool with and without a transient: the
        // faulted run's released answers must match the clean run bit for
        // bit (the retry re-ran past the scheduled upset on an equivalent
        // backend).
        let reqs = requests(2);
        let mut clean = server(&[FPGA]);
        let clean_report = clean.serve_chaos(&reqs, FaultToleranceOptions::default());
        let mut faulty = server(&[FPGA]);
        faulty.inject_faults(
            0,
            FaultPlan::new(vec![ScheduledFault {
                at_op: 1,
                kind: FaultKind::Transient,
            }]),
        );
        let faulty_report = faulty.serve_chaos(&reqs, FaultToleranceOptions::default());
        assert!(faulty_report.ledger.total_retries() >= 1, "fault observed");
        assert_eq!(clean_report.outcomes.len(), faulty_report.outcomes.len());
        for (a, b) in clean_report.outcomes.iter().zip(&faulty_report.outcomes) {
            assert_eq!(a.request, b.request);
            assert_eq!(
                a.solution.as_slice(),
                b.solution.as_slice(),
                "request {} answer drifted across the fault",
                a.request
            );
        }
    }

    #[test]
    fn a_dead_device_is_quarantined_and_its_work_completes_elsewhere() {
        let mut server = server(&[FPGA, FPGA, "cpu:optimized"]);
        server.inject_faults(
            0,
            FaultPlan::new(vec![ScheduledFault {
                at_op: 0,
                kind: FaultKind::Death,
            }]),
        );
        let report = server.serve_chaos(&requests(6), FaultToleranceOptions::default());
        assert_eq!(report.outcomes.len(), 6, "no request lost to the death");
        assert!(report.unserved.is_empty());
        assert!(report
            .fault_events
            .iter()
            .any(|e| e.reason == FaultReason::DeviceDead && e.device == 0));
        // The dead device ends quarantined (probes keep failing), and all
        // answers came from the healthy accelerator.
        assert!(report.breakers[0].is_quarantined() || report.breakers[0].faults >= 2);
        assert!(report.outcomes.iter().all(|o| o.device == 1));
    }

    #[test]
    fn a_hang_is_detected_as_a_typed_fault() {
        let mut server = server(&[FPGA, "cpu:optimized"]);
        server.inject_faults(
            0,
            FaultPlan::new(vec![ScheduledFault {
                at_op: 1,
                kind: FaultKind::Hang,
            }]),
        );
        let report = server.serve_chaos(&requests(2), FaultToleranceOptions::default());
        assert_eq!(report.outcomes.len(), 2);
        assert!(report
            .fault_events
            .iter()
            .any(|e| e.reason == FaultReason::KernelHung));
    }

    #[test]
    fn a_sticky_slowdown_blows_the_timeout_budget() {
        let mut server = server(&[FPGA, FPGA, "cpu:optimized"]);
        server.inject_faults(
            0,
            FaultPlan::new(vec![ScheduledFault {
                at_op: 0,
                kind: FaultKind::Slowdown { factor: 64.0 },
            }]),
        );
        let chaos = FaultToleranceOptions {
            timeout_factor: 2.0,
            ..FaultToleranceOptions::default()
        };
        let report = server.serve_chaos(&requests(4), chaos);
        assert_eq!(report.outcomes.len(), 4);
        assert!(
            report
                .fault_events
                .iter()
                .any(|e| e.reason == FaultReason::TimeoutExceeded && e.device == 0),
            "slowdown fault events: {:?}",
            report.fault_events
        );
    }

    #[test]
    fn an_all_dark_pool_degrades_to_the_cpu_reserve() {
        let mut server = server(&[FPGA, FPGA, "cpu:optimized"]);
        for device in 0..2 {
            server.inject_faults(
                device,
                FaultPlan::new(vec![ScheduledFault {
                    at_op: 0,
                    kind: FaultKind::Death,
                }]),
            );
        }
        let chaos = FaultToleranceOptions {
            max_retries: 1,
            ..FaultToleranceOptions::default()
        };
        let report = server.serve_chaos(&requests(4), chaos);
        assert_eq!(report.outcomes.len(), 4, "cpu reserve served everything");
        assert!(report.unserved.is_empty());
        assert!(report.fallback_jobs >= 1);
        assert!(report.outcomes.iter().all(|o| o.device == 2));
    }

    #[test]
    fn a_fully_dead_pool_reports_unserved_rather_than_losing_jobs() {
        let mut server = server(&[FPGA]);
        server.inject_faults(
            0,
            FaultPlan::new(vec![ScheduledFault {
                at_op: 0,
                kind: FaultKind::Death,
            }]),
        );
        let chaos = FaultToleranceOptions {
            max_retries: 1,
            ..FaultToleranceOptions::default()
        };
        let report = server.serve_chaos(&requests(2), chaos);
        assert!(report.outcomes.is_empty());
        assert_eq!(report.unserved, vec![0, 1], "conserved, not dropped");
    }

    #[test]
    fn chaos_serves_replay_bitwise() {
        let run = || {
            let mut server = server(&[FPGA, FPGA, "cpu:optimized"]);
            server.inject_faults(
                0,
                FaultPlan::new(vec![
                    ScheduledFault {
                        at_op: 3,
                        kind: FaultKind::Transient,
                    },
                    ScheduledFault {
                        at_op: 40,
                        kind: FaultKind::Death,
                    },
                ]),
            );
            server.inject_faults(1, FaultPlan::seeded(7, 2, 300));
            let report = server.serve_chaos(&requests(6), FaultToleranceOptions::default());
            serde::json::to_string(&report.summary())
        };
        assert_eq!(run(), run());
    }
}
