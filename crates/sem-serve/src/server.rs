//! The serve loop: pack requests, place jobs via a scheduling policy,
//! execute each job through its device's `SemSystem`, and account the
//! session on the overlap-aware pipeline timeline.
//!
//! Every solve still runs through `SemSystem::solve_many`, so solution
//! vectors are bitwise identical to a direct batched solve — the serving
//! layer changes *when* things happen (the modelled schedule), never *what*
//! is computed.

use crate::pipeline::{PipelineConfig, PipelineTimeline};
use crate::queue::{BatchJob, SolveQueue};
use crate::request::{ProblemSpec, RhsSpec, ServeRequest};
use crate::scheduler::{DeviceSlot, DeviceStatus, SchedulingPolicy};
use sem_accel::SemSystem;
use sem_mesh::ElementField;
use sem_solver::CgOptions;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Serving knobs.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ServeOptions {
    /// CG stopping criteria for every solve.
    pub cg: CgOptions,
    /// Whether solves use the Jacobi preconditioner.
    pub use_jacobi: bool,
    /// Maximum right-hand sides per batch job.
    pub max_batch: usize,
    /// How sessions are scheduled (overlap + link speed).
    pub pipeline: PipelineConfig,
    /// Operator applications one solve is expected to need — the costing
    /// hint model-based policies price jobs with (the prediction only has
    /// to rank devices, so a rough figure is fine).
    pub applications_hint: usize,
}

impl Default for ServeOptions {
    fn default() -> Self {
        Self {
            cg: CgOptions {
                max_iterations: 2000,
                tolerance: 1e-10,
                record_history: false,
            },
            use_jacobi: true,
            max_batch: 16,
            pipeline: PipelineConfig::default(),
            applications_hint: 60,
        }
    }
}

/// The answer to one request.
#[derive(Debug, Clone)]
pub struct RequestOutcome {
    /// Index of the request in the submitted order (answers are returned in
    /// this order: outcome `i` answers request `i`).
    pub request: usize,
    /// Pool index of the device that served it.
    pub device: usize,
    /// Display label of that device.
    pub device_label: String,
    /// Size of the batch job the request rode in.
    pub batch: usize,
    /// Modelled session start of its job (seconds from submission).
    pub started_seconds: f64,
    /// Modelled completion time — the request's latency, since all requests
    /// arrive at time zero.
    pub completed_seconds: f64,
    /// CG iterations of the solve.
    pub iterations: usize,
    /// Whether CG converged.
    pub converged: bool,
    /// Max-norm error against the manufactured solution (`NaN` for seeded
    /// right-hand sides, which have no exact solution).
    pub max_error: f64,
    /// Per-RHS modelled seconds under the serial (blocking) accounting,
    /// priced at the serve's configured link
    /// ([`crate::PipelineConfig::link_gbs`]) like every other figure in the
    /// report; equals `SolveReport::modeled_seconds()` bitwise at the
    /// default link.
    pub serial_modeled_seconds: f64,
    /// Per-RHS modelled seconds under the job's actual schedule: kernel
    /// seconds plus this request's share of the transfer time the session's
    /// timeline left exposed.  Equals the serial figure when overlap is
    /// disabled.
    pub pipelined_modeled_seconds: f64,
    /// The solution field — bitwise identical to
    /// `SemSystem::solve_many` on the same backend.
    pub solution: ElementField,
}

impl RequestOutcome {
    /// Request latency (arrival is time zero for every request).
    #[must_use]
    pub fn latency_seconds(&self) -> f64 {
        self.completed_seconds
    }
}

/// One executed batch job, for tracing/visualisation.
#[derive(Debug, Clone)]
pub struct JobTrace {
    /// The job's shape.
    pub spec: ProblemSpec,
    /// Device it ran on.
    pub device: usize,
    /// Request indices served.
    pub requests: Vec<usize>,
    /// The session's scheduled timeline.
    pub timeline: PipelineTimeline,
}

/// Per-device aggregate of one serve run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DeviceUsage {
    /// Pool index.
    pub device: usize,
    /// Display label.
    pub label: String,
    /// Modelled busy seconds (overlap-aware session makespans).
    pub busy_seconds: f64,
    /// What the same sessions would cost under serial accounting.
    pub serial_busy_seconds: f64,
    /// Jobs executed.
    pub jobs: usize,
    /// Requests served.
    pub requests: usize,
    /// Busy fraction of the run's makespan.
    pub utilisation: f64,
}

/// The result of serving one request set.
#[derive(Debug, Clone)]
pub struct ServeReport {
    /// Name of the scheduling policy that placed the jobs.
    pub policy: String,
    /// Whether sessions overlapped transfer and compute.
    pub overlap: bool,
    /// One outcome per request, in submission order.
    pub outcomes: Vec<RequestOutcome>,
    /// One trace per executed job, in execution order.
    pub jobs: Vec<JobTrace>,
    /// Per-device aggregates.
    pub devices: Vec<DeviceUsage>,
    /// Modelled end-to-end seconds of the run (slowest device).
    pub makespan_seconds: f64,
    /// What the run would cost with serial (blocking) sessions.
    pub serial_makespan_seconds: f64,
}

impl ServeReport {
    /// Aggregate throughput in requests per modelled second.
    #[must_use]
    pub fn throughput_rps(&self) -> f64 {
        if self.makespan_seconds <= 0.0 {
            return 0.0;
        }
        self.outcomes.len() as f64 / self.makespan_seconds
    }

    /// Latency at percentile `p` (0–100, nearest-rank over completion
    /// times).  Zero for an empty run.
    #[must_use]
    pub fn latency_percentile_seconds(&self, p: f64) -> f64 {
        if self.outcomes.is_empty() {
            return 0.0;
        }
        let mut latencies: Vec<f64> = self
            .outcomes
            .iter()
            .map(RequestOutcome::latency_seconds)
            .collect();
        latencies.sort_by(f64::total_cmp);
        let rank = ((p / 100.0) * latencies.len() as f64).ceil() as usize;
        latencies[rank.clamp(1, latencies.len()) - 1]
    }

    /// Seconds the pipelined schedule saved over serial sessions.
    #[must_use]
    pub fn overlap_win_seconds(&self) -> f64 {
        (self.serial_makespan_seconds - self.makespan_seconds).max(0.0)
    }

    /// The serde-friendly aggregate (drops solutions and schedules).
    #[must_use]
    pub fn summary(&self) -> ServeSummary {
        ServeSummary {
            policy: self.policy.clone(),
            overlap: self.overlap,
            requests: self.outcomes.len(),
            jobs: self.jobs.len(),
            makespan_seconds: self.makespan_seconds,
            serial_makespan_seconds: self.serial_makespan_seconds,
            throughput_rps: self.throughput_rps(),
            p50_latency_seconds: self.latency_percentile_seconds(50.0),
            p99_latency_seconds: self.latency_percentile_seconds(99.0),
            devices: self.devices.clone(),
        }
    }
}

/// Serializable aggregate of a serve run (what benches persist).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ServeSummary {
    /// Scheduling policy.
    pub policy: String,
    /// Whether transfer/compute overlapped.
    pub overlap: bool,
    /// Requests served.
    pub requests: usize,
    /// Jobs executed.
    pub jobs: usize,
    /// Modelled end-to-end seconds.
    pub makespan_seconds: f64,
    /// Serial-accounting end-to-end seconds.
    pub serial_makespan_seconds: f64,
    /// Requests per modelled second.
    pub throughput_rps: f64,
    /// Median latency.
    pub p50_latency_seconds: f64,
    /// 99th-percentile latency.
    pub p99_latency_seconds: f64,
    /// Per-device aggregates.
    pub devices: Vec<DeviceUsage>,
}

/// A serving instance: a device pool plus options, with one lazily built
/// `SemSystem` per (device, problem shape).
pub struct Server {
    slots: Vec<DeviceSlot>,
    systems: Vec<HashMap<ProblemSpec, SemSystem>>,
    options: ServeOptions,
}

impl Server {
    /// A server over an explicit device pool.
    ///
    /// # Panics
    /// Panics if the pool is empty.
    #[must_use]
    pub fn new(slots: Vec<DeviceSlot>, options: ServeOptions) -> Self {
        assert!(!slots.is_empty(), "need at least one device in the pool");
        let systems = slots.iter().map(|_| HashMap::new()).collect();
        Self {
            slots,
            systems,
            options,
        }
    }

    /// A server over backend registry names (heterogeneous pools welcome:
    /// CPU, FPGA, multi-board and `fpga:projected:*` entries mix freely).
    ///
    /// # Panics
    /// Panics if a name is not in the registry or the list is empty.
    #[must_use]
    pub fn from_registry_names(names: &[&str], options: ServeOptions) -> Self {
        let slots = names
            .iter()
            .map(|name| {
                DeviceSlot::from_registry_name(name)
                    .unwrap_or_else(|| panic!("unknown backend name `{name}`"))
            })
            .collect();
        Self::new(slots, options)
    }

    /// The pool.
    #[must_use]
    pub fn slots(&self) -> &[DeviceSlot] {
        &self.slots
    }

    /// The serving options.
    #[must_use]
    pub fn options(&self) -> &ServeOptions {
        &self.options
    }

    /// Serve `requests` with `policy`.  Outcome `i` answers request `i`
    /// regardless of how jobs were packed, placed, or interleaved.
    ///
    /// # Panics
    /// Panics if a policy returns an out-of-range device index.
    pub fn serve(
        &mut self,
        requests: &[ServeRequest],
        policy: &mut dyn SchedulingPolicy,
    ) -> ServeReport {
        let jobs = SolveQueue::from_requests(requests).pack(self.options.max_batch);
        let pool_size = self.slots.len();
        let mut busy = vec![0.0_f64; pool_size];
        let mut serial_busy = vec![0.0_f64; pool_size];
        let mut jobs_per_device = vec![0_usize; pool_size];
        let mut requests_per_device = vec![0_usize; pool_size];
        let mut outcomes: Vec<Option<RequestOutcome>> = requests.iter().map(|_| None).collect();
        let mut traces = Vec::with_capacity(jobs.len());

        let needs_cost_model = policy.needs_cost_model();
        for job in jobs {
            // Pricing a job instantiates a backend per candidate device, so
            // only cost-aware policies pay for it; cost-blind policies see
            // zeros and only the assigned device gets a system.
            if needs_cost_model {
                for device in 0..pool_size {
                    self.ensure_system(device, job.spec);
                }
            }
            let statuses: Vec<DeviceStatus> = (0..pool_size)
                .map(|device| DeviceStatus {
                    index: device,
                    label: self.slots[device].label.clone(),
                    busy_seconds: busy[device],
                    assigned_requests: requests_per_device[device],
                    predicted_job_seconds: if needs_cost_model {
                        self.predict_job_seconds(device, &job)
                    } else {
                        0.0
                    },
                })
                .collect();
            let device = policy.assign(&job, &statuses);
            assert!(device < pool_size, "policy chose device {device}");
            self.ensure_system(device, job.spec);

            let (timeline, outcome_rows) = self.execute_job(device, &job, requests);
            let started = busy[device];
            busy[device] += timeline.makespan_seconds;
            serial_busy[device] += timeline.serial_accounting_seconds();
            jobs_per_device[device] += 1;
            requests_per_device[device] += job.batch_size();
            let completed = busy[device];
            for (slot, mut outcome) in outcome_rows.into_iter().enumerate() {
                outcome.started_seconds = started;
                outcome.completed_seconds = completed;
                let request = job.requests[slot];
                outcome.request = request;
                outcomes[request] = Some(outcome);
            }
            traces.push(JobTrace {
                spec: job.spec,
                device,
                requests: job.requests.clone(),
                timeline,
            });
        }

        let makespan_seconds = busy.iter().copied().fold(0.0_f64, f64::max);
        let serial_makespan_seconds = serial_busy.iter().copied().fold(0.0_f64, f64::max);
        let devices = (0..pool_size)
            .map(|device| DeviceUsage {
                device,
                label: self.slots[device].label.clone(),
                busy_seconds: busy[device],
                serial_busy_seconds: serial_busy[device],
                jobs: jobs_per_device[device],
                requests: requests_per_device[device],
                utilisation: if makespan_seconds > 0.0 {
                    busy[device] / makespan_seconds
                } else {
                    0.0
                },
            })
            .collect();
        ServeReport {
            policy: policy.name().to_string(),
            overlap: self.options.pipeline.overlap,
            outcomes: outcomes
                .into_iter()
                .map(|outcome| outcome.expect("every request answered"))
                .collect(),
            jobs: traces,
            devices,
            makespan_seconds,
            serial_makespan_seconds,
        }
    }

    /// Run one job on one device: assemble the right-hand sides, solve the
    /// batch through the backend, and schedule the session on the pipeline
    /// timeline.
    fn execute_job(
        &self,
        device: usize,
        job: &BatchJob,
        requests: &[ServeRequest],
    ) -> (PipelineTimeline, Vec<RequestOutcome>) {
        let system = self.system(device, job.spec);
        let rhss: Vec<ElementField> = job
            .requests
            .iter()
            .map(|&i| requests[i].assemble_rhs(system))
            .collect();
        let reports = system.solve_many(&rhss, self.options.cg, self.options.use_jacobi);
        let timeline = PipelineTimeline::from_reports(
            system.offload_plan().as_ref(),
            &reports,
            self.options.pipeline,
        );
        // Manufactured requests get real error metrics (solve_many itself
        // cannot know the exact solution of an arbitrary RHS).
        let exact = job
            .requests
            .iter()
            .any(|&i| requests[i].rhs == RhsSpec::Manufactured)
            .then(|| system.problem().manufactured_exact());
        // Per-request accounting at the *configured* link, consistent with
        // the timeline the report's makespans come from: the serial figure
        // is the timeline's per-request serial cost, the pipelined figure
        // spreads the schedule's exposed transfer over the batch.
        let exposed_share = timeline.exposed_transfer_seconds() / job.batch_size() as f64;
        // Consume the reports: the solution fields move straight into the
        // outcomes instead of being copied on the serving hot path.
        let outcomes = job
            .requests
            .iter()
            .zip(reports)
            .zip(&timeline.stages)
            .map(|((&i, report), stages)| {
                let max_error = match (&exact, requests[i].rhs) {
                    (Some(exact), RhsSpec::Manufactured) => {
                        system
                            .problem()
                            .error_against(&report.solution.solution, exact)
                            .0
                    }
                    _ => f64::NAN,
                };
                RequestOutcome {
                    request: i,
                    device,
                    device_label: self.slots[device].label.clone(),
                    batch: job.batch_size(),
                    started_seconds: 0.0,
                    completed_seconds: 0.0,
                    iterations: report.iterations(),
                    converged: report.converged(),
                    max_error,
                    serial_modeled_seconds: stages.serial_seconds,
                    pipelined_modeled_seconds: report.operator.seconds + exposed_share,
                    solution: report.solution.solution,
                }
            })
            .collect();
        (timeline, outcomes)
    }

    /// Predicted session seconds of `job` on `device` — the number
    /// model-based policies compare.  Requires the system to exist.
    fn predict_job_seconds(&self, device: usize, job: &BatchJob) -> f64 {
        let system = self.system(device, job.spec);
        let applications = self.options.applications_hint.max(1);
        let fallback = self.slots[device]
            .host_model
            .seconds_per_application(job.spec.degree, job.spec.num_elements())
            * applications as f64;
        PipelineTimeline::predict(
            system.execution(),
            job.batch_size(),
            applications,
            fallback,
            self.options.pipeline,
        )
        .makespan_seconds
    }

    fn ensure_system(&mut self, device: usize, spec: ProblemSpec) {
        if !self.systems[device].contains_key(&spec) {
            let system = SemSystem::builder()
                .degree(spec.degree)
                .elements(spec.elements)
                .backend(self.slots[device].config.clone())
                .build();
            self.systems[device].insert(spec, system);
        }
    }

    fn system(&self, device: usize, spec: ProblemSpec) -> &SemSystem {
        self.systems[device]
            .get(&spec)
            .expect("system instantiated before use")
    }
}
