//! The serve loop: pack requests, admit them against the deadline model,
//! place jobs via a scheduling policy, execute each job through its device's
//! `SemSystem` — synchronously on the caller's thread ([`Server::serve`]) or
//! concurrently on one worker thread per device slot with work stealing
//! ([`Server::serve_async`]) — and account every session on the
//! overlap-aware pipeline timeline.
//!
//! Every solve still runs through `SemSystem::solve_many`, so solution
//! vectors are bitwise identical to a direct batched solve — the serving
//! layer changes *when and where* things happen (the schedule, the executing
//! thread), never *what* is computed.  On a homogeneous pool the async host
//! therefore answers bitwise identically to the synchronous path, in the
//! same request order, no matter which worker stole which job.

use crate::admission::{admit, AdmissionPolicy, AdmittedJob, RejectedRequest};
use crate::pipeline::{PipelineConfig, PipelineTimeline, RequestStages, Stage};
use crate::queue::{BatchJob, SolveQueue};
use crate::request::{ProblemSpec, RhsSpec, ServeRequest};
use crate::scheduler::{DeviceSlot, DeviceStatus, SchedulingPolicy};
use crate::steal::{run_stealing, TaggedJob};
use sem_accel::{Backend, PerfSource, SemSystem};
use sem_mesh::ElementField;
use sem_obs::{recorder, DriftSample, Scope, SpanEvent, SpanKind, WallTimer};
use sem_solver::{CgOptions, PrecondSpec};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Serving knobs.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ServeOptions {
    /// CG stopping criteria for every solve.
    pub cg: CgOptions,
    /// Preconditioner override: `Some` runs every solve with that
    /// preconditioner regardless of slot configuration; `None` (the
    /// default) honours each slot's own `Backend.precond` — so a registry
    /// name like `fpga:stratix10-gx2800+fdm` means what it says and mixed
    /// pools are possible.
    pub precond: Option<PrecondSpec>,
    /// Maximum right-hand sides per batch job.
    pub max_batch: usize,
    /// How sessions are scheduled (overlap + link speed).
    pub pipeline: PipelineConfig,
    /// Operator applications one solve is expected to need — the costing
    /// hint model-based policies price jobs with (the prediction only has
    /// to rank devices, so a rough figure is fine).
    pub applications_hint: usize,
    /// Deadline-aware admission control (default: admit everything).
    pub admission: AdmissionPolicy,
}

impl Default for ServeOptions {
    fn default() -> Self {
        Self {
            cg: CgOptions {
                max_iterations: 2000,
                tolerance: 1e-10,
                record_history: false,
            },
            precond: None,
            max_batch: 16,
            pipeline: PipelineConfig::default(),
            applications_hint: 60,
            admission: AdmissionPolicy::AdmitAll,
        }
    }
}

impl ServeOptions {
    /// The options with a pool-wide preconditioner override *and* a
    /// matching operator-applications hint, so model-based placement and
    /// deadline admission price solves at the iteration count the
    /// preconditioner actually needs (measured on the standard degree-7
    /// serving problems: identity ≈ 110, Jacobi ≈ 60, FDM ≈ 25).
    #[must_use]
    pub fn with_precond(mut self, precond: PrecondSpec) -> Self {
        self.precond = Some(precond);
        self.applications_hint = Self::applications_hint_for(precond);
        self
    }

    /// The default costing hint for a preconditioner.
    #[must_use]
    pub fn applications_hint_for(precond: PrecondSpec) -> usize {
        match precond {
            PrecondSpec::Identity => 110,
            PrecondSpec::Jacobi => 60,
            PrecondSpec::Fdm => 25,
        }
    }
}

/// The answer to one request.
#[derive(Debug, Clone)]
pub struct RequestOutcome {
    /// Index of the request in the submitted order (outcomes are returned
    /// sorted by this index: with admission off, outcome `i` answers request
    /// `i`; with admission on, rejected indices are absent and reported in
    /// [`ServeReport::rejections`] instead).
    pub request: usize,
    /// Pool index of the device that served it.
    pub device: usize,
    /// Display label of that device.
    pub device_label: String,
    /// Size of the batch job the request rode in.
    pub batch: usize,
    /// Modelled session start of its job (seconds from submission).
    pub started_seconds: f64,
    /// Modelled completion time — the request's latency, since all requests
    /// arrive at time zero.
    pub completed_seconds: f64,
    /// CG iterations of the solve.
    pub iterations: usize,
    /// Seconds the solve spent in preconditioner applications (the
    /// backend's cycle model when the pass ran on-device, measured
    /// wall-clock otherwise).
    pub precond_seconds: f64,
    /// Whether CG converged.
    pub converged: bool,
    /// The device fault that aborted the solve, if any (`None` on the
    /// plain hosts unless faults were injected with
    /// [`Server::inject_faults`]; the chaos host retries such outcomes
    /// instead of releasing them).
    pub fault: Option<sem_solver::SolveFault>,
    /// Max-norm error against the manufactured solution (`NaN` for seeded
    /// right-hand sides, which have no exact solution).
    pub max_error: f64,
    /// Per-RHS modelled seconds under the serial (blocking) accounting,
    /// priced at the serve's configured link
    /// ([`crate::PipelineConfig::link_gbs`]) like every other figure in the
    /// report; equals `SolveReport::modeled_seconds()` bitwise at the
    /// default link.
    pub serial_modeled_seconds: f64,
    /// Per-RHS modelled seconds under the job's actual schedule: kernel
    /// seconds plus this request's share of the transfer time the session's
    /// timeline left exposed.  Equals the serial figure when overlap is
    /// disabled.
    pub pipelined_modeled_seconds: f64,
    /// The solution field — bitwise identical to
    /// `SemSystem::solve_many` on the same backend.
    pub solution: ElementField,
}

impl RequestOutcome {
    /// Request latency (arrival is time zero for every request).
    #[must_use]
    pub fn latency_seconds(&self) -> f64 {
        self.completed_seconds
    }
}

/// One executed batch job, for tracing/visualisation.
#[derive(Debug, Clone)]
pub struct JobTrace {
    /// Ordinal of this job in the report's `jobs` list — the stable id the
    /// exported Chrome trace carries in every span's `args.job`, so trace
    /// rows join back to this trace, and through [`JobTrace::requests`] to
    /// `ServeReport::outcomes` (whose `request` index matches the spans'
    /// `args.request`).
    pub job_id: usize,
    /// The job's shape.
    pub spec: ProblemSpec,
    /// Device it actually ran on.
    pub device: usize,
    /// Device the scheduling policy hinted it to at admission time (`None`
    /// for floating down-batched jobs that entered through the injector).
    pub hinted_device: Option<usize>,
    /// Request indices served.
    pub requests: Vec<usize>,
    /// The session's scheduled timeline.
    pub timeline: PipelineTimeline,
}

impl JobTrace {
    /// Whether the job ran somewhere other than its hinted device.
    #[must_use]
    pub fn stolen(&self) -> bool {
        self.hinted_device
            .is_some_and(|hinted| hinted != self.device)
    }
}

/// Per-device aggregate of one serve run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DeviceUsage {
    /// Pool index.
    pub device: usize,
    /// Display label.
    pub label: String,
    /// Modelled busy seconds (overlap-aware session makespans).
    pub busy_seconds: f64,
    /// What the same sessions would cost under serial accounting.
    pub serial_busy_seconds: f64,
    /// Measured wall-clock seconds this slot's thread spent executing jobs
    /// (host time — simulator time for simulated boards, kernel time for CPU
    /// slots; the concurrency evidence, not a model figure).
    pub busy_wall_seconds: f64,
    /// Jobs executed.
    pub jobs: usize,
    /// Requests served.
    pub requests: usize,
    /// Jobs this slot executed that were hinted to a different slot.
    pub steals: usize,
    /// Busy fraction of the run's makespan.
    pub utilisation: f64,
}

/// The result of serving one request set.
#[derive(Debug, Clone)]
pub struct ServeReport {
    /// Name of the scheduling policy that placed the jobs.
    pub policy: String,
    /// Label of the preconditioner every solve ran.
    pub precond: String,
    /// Whether sessions overlapped transfer and compute.
    pub overlap: bool,
    /// Whether jobs ran on worker threads with work stealing
    /// ([`Server::serve_async`]) or synchronously on the caller's thread.
    pub asynchronous: bool,
    /// One outcome per admitted request, sorted by request index.
    pub outcomes: Vec<RequestOutcome>,
    /// Requests the admission model priced over the deadline (empty under
    /// [`AdmissionPolicy::AdmitAll`]), sorted by request index.
    pub rejections: Vec<RejectedRequest>,
    /// One trace per executed job, in execution-completion order.
    pub jobs: Vec<JobTrace>,
    /// Per-device aggregates.
    pub devices: Vec<DeviceUsage>,
    /// Modelled end-to-end seconds of the run (slowest device).
    pub makespan_seconds: f64,
    /// What the run would cost with serial (blocking) sessions.
    pub serial_makespan_seconds: f64,
    /// Measured wall-clock seconds of the whole serve call on this host.
    pub wall_seconds: f64,
}

impl ServeReport {
    /// Aggregate throughput in requests per modelled second.
    #[must_use]
    pub fn throughput_rps(&self) -> f64 {
        if self.makespan_seconds <= 0.0 {
            return 0.0;
        }
        self.outcomes.len() as f64 / self.makespan_seconds
    }

    /// Latency at percentile `p` (0–100, nearest-rank over completion
    /// times).  `None` for a run with no admitted requests — no latency
    /// evidence exists, and a fabricated 0 would read as a perfect tail.
    #[must_use]
    pub fn latency_percentile_seconds(&self, p: f64) -> Option<f64> {
        let latencies: Vec<f64> = self
            .outcomes
            .iter()
            .map(RequestOutcome::latency_seconds)
            .collect();
        perf_model::nearest_rank_percentile(&latencies, p)
    }

    /// Seconds the pipelined schedule saved over serial sessions.
    #[must_use]
    pub fn overlap_win_seconds(&self) -> f64 {
        (self.serial_makespan_seconds - self.makespan_seconds).max(0.0)
    }

    /// Total measured wall-clock seconds slots spent executing jobs.
    #[must_use]
    pub fn busy_wall_seconds(&self) -> f64 {
        self.devices.iter().map(|d| d.busy_wall_seconds).sum()
    }

    /// Measured concurrency: busy worker-seconds per wall-clock second of
    /// the run.  ~1.0 for the synchronous path; approaches the pool size
    /// when the async host keeps every slot busy.
    #[must_use]
    pub fn measured_concurrency(&self) -> f64 {
        if self.wall_seconds <= 0.0 {
            return 0.0;
        }
        self.busy_wall_seconds() / self.wall_seconds
    }

    /// Jobs that ran on a different slot than their admission-time hint.
    #[must_use]
    pub fn total_steals(&self) -> usize {
        self.devices.iter().map(|d| d.steals).sum()
    }

    /// Total CG iterations across the admitted requests.
    #[must_use]
    pub fn total_iterations(&self) -> u64 {
        self.outcomes.iter().map(|o| o.iterations as u64).sum()
    }

    /// Total seconds spent in preconditioner applications across the
    /// admitted requests.
    #[must_use]
    pub fn precond_apply_seconds(&self) -> f64 {
        self.outcomes.iter().map(|o| o.precond_seconds).sum()
    }

    /// The serde-friendly aggregate (drops solutions and schedules).
    #[must_use]
    pub fn summary(&self) -> ServeSummary {
        ServeSummary {
            policy: self.policy.clone(),
            precond: self.precond.clone(),
            total_iterations: self.total_iterations(),
            precond_apply_seconds: self.precond_apply_seconds(),
            overlap: self.overlap,
            asynchronous: self.asynchronous,
            requests: self.outcomes.len() + self.rejections.len(),
            admitted: self.outcomes.len(),
            rejected: self.rejections.len(),
            jobs: self.jobs.len(),
            makespan_seconds: self.makespan_seconds,
            serial_makespan_seconds: self.serial_makespan_seconds,
            wall_seconds: self.wall_seconds,
            busy_wall_seconds: self.busy_wall_seconds(),
            measured_concurrency: self.measured_concurrency(),
            steals: self.total_steals(),
            throughput_rps: self.throughput_rps(),
            p50_latency_seconds: self.latency_percentile_seconds(50.0),
            p99_latency_seconds: self.latency_percentile_seconds(99.0),
            devices: self.devices.clone(),
        }
    }
}

/// Serializable aggregate of a serve run (what benches persist).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ServeSummary {
    /// Scheduling policy.
    pub policy: String,
    /// Preconditioner every solve ran.
    pub precond: String,
    /// Total CG iterations across admitted requests — with the FDM
    /// preconditioner this is what collapses, which is the end-to-end
    /// serving win.
    pub total_iterations: u64,
    /// Total preconditioner-apply seconds across admitted requests.
    pub precond_apply_seconds: f64,
    /// Whether transfer/compute overlapped.
    pub overlap: bool,
    /// Whether the run used the async work-stealing host.
    pub asynchronous: bool,
    /// Requests submitted.
    pub requests: usize,
    /// Requests admitted (== `requests` without admission control).
    pub admitted: usize,
    /// Requests the admission model rejected.
    pub rejected: usize,
    /// Jobs executed.
    pub jobs: usize,
    /// Modelled end-to-end seconds.
    pub makespan_seconds: f64,
    /// Serial-accounting end-to-end seconds.
    pub serial_makespan_seconds: f64,
    /// Measured wall-clock seconds of the serve call.
    pub wall_seconds: f64,
    /// Measured wall-clock seconds slots spent executing jobs, summed.
    pub busy_wall_seconds: f64,
    /// Busy worker-seconds per wall-clock second (the measured-concurrency
    /// figure the async host exists to raise).
    pub measured_concurrency: f64,
    /// Jobs executed away from their hinted slot.
    pub steals: usize,
    /// Requests per modelled second.
    pub throughput_rps: f64,
    /// Median latency (`None` when nothing was admitted).
    pub p50_latency_seconds: Option<f64>,
    /// 99th-percentile latency (`None` when nothing was admitted).
    pub p99_latency_seconds: Option<f64>,
    /// Per-device aggregates.
    pub devices: Vec<DeviceUsage>,
}

/// One executed job on its way into a report: what both execution hosts
/// (sequential and work-stealing) produce per job.
struct ExecutedJob {
    job: BatchJob,
    device: usize,
    hinted_device: Option<usize>,
    timeline: PipelineTimeline,
    outcomes: Vec<RequestOutcome>,
    /// Whether the job's stage costs come from a cycle model (simulated
    /// backend) rather than host measurement — which decides whether its
    /// spans survive a modelled-clock trace export.
    modeled: bool,
}

/// A serving instance: a device pool plus options, with one lazily built
/// `SemSystem` per (device, problem shape).
pub struct Server {
    pub(crate) slots: Vec<DeviceSlot>,
    pub(crate) systems: Vec<HashMap<ProblemSpec, SemSystem>>,
    pub(crate) options: ServeOptions,
    /// Per-device deterministic fault injection (`None` = perfect device).
    /// Shared `Arc`s so worker threads and the server observe one health
    /// state per device.
    pub(crate) fault_states: Vec<Option<std::sync::Arc<fpga_sim::FaultState>>>,
}

impl Server {
    /// A server over an explicit device pool.
    ///
    /// # Panics
    /// Panics if the pool is empty.
    #[must_use]
    pub fn new(slots: Vec<DeviceSlot>, options: ServeOptions) -> Self {
        assert!(!slots.is_empty(), "need at least one device in the pool");
        let systems = slots.iter().map(|_| HashMap::new()).collect();
        let fault_states = slots.iter().map(|_| None).collect();
        Self {
            slots,
            systems,
            options,
            fault_states,
        }
    }

    /// Arm device `device` with a deterministic fault plan.  Every system
    /// the device serves from here on runs behind a
    /// [`sem_accel::FaultyBackend`] sharing one health state; cached
    /// sessions for the device are dropped so the wrap takes effect
    /// immediately.
    ///
    /// # Panics
    /// Panics if `device` is out of range.
    pub fn inject_faults(&mut self, device: usize, plan: fpga_sim::FaultPlan) {
        self.fault_states[device] = Some(std::sync::Arc::new(fpga_sim::FaultState::new(plan)));
        self.systems[device].clear();
    }

    /// The device's shared fault state, if faults were injected.
    #[must_use]
    pub fn fault_state(&self, device: usize) -> Option<&std::sync::Arc<fpga_sim::FaultState>> {
        self.fault_states[device].as_ref()
    }

    /// A server over backend registry names (heterogeneous pools welcome:
    /// CPU, FPGA, multi-board and `fpga:projected:*` entries mix freely).
    ///
    /// # Panics
    /// Panics if a name is not in the registry or the list is empty.
    #[must_use]
    pub fn from_registry_names(names: &[&str], options: ServeOptions) -> Self {
        let slots = names
            .iter()
            .map(|name| {
                DeviceSlot::from_registry_name(name)
                    .unwrap_or_else(|| panic!("unknown backend name `{name}`"))
            })
            .collect();
        Self::new(slots, options)
    }

    /// The pool.
    #[must_use]
    pub fn slots(&self) -> &[DeviceSlot] {
        &self.slots
    }

    /// The serving options.
    #[must_use]
    pub fn options(&self) -> &ServeOptions {
        &self.options
    }

    /// Serve `requests` with `policy`, executing every job synchronously on
    /// the caller's thread, exactly where it was hinted.  Outcomes are
    /// sorted by request index regardless of how jobs were packed, placed,
    /// or interleaved.
    ///
    /// # Panics
    /// Panics if a policy returns an out-of-range device index.
    pub fn serve(
        &mut self,
        requests: &[ServeRequest],
        policy: &mut dyn SchedulingPolicy,
    ) -> ServeReport {
        let started = WallTimer::start();
        let (placed, rejections) = self.prepare(requests, policy);
        let mut wall_stats = vec![(0.0_f64, 0_usize); self.slots.len()];
        let executed: Vec<ExecutedJob> = placed
            .into_iter()
            .map(|(job, device, _)| {
                let begun = WallTimer::start();
                let (timeline, outcomes, modeled) =
                    self.execute_job_on(self.system(device, job.spec), device, &job, requests);
                wall_stats[device].0 += begun.elapsed_wall_seconds();
                ExecutedJob {
                    job,
                    device,
                    hinted_device: Some(device),
                    timeline,
                    outcomes,
                    modeled,
                }
            })
            .collect();
        self.assemble(
            policy.name(),
            false,
            requests.len(),
            executed,
            rejections,
            wall_stats,
            started.elapsed_wall_seconds(),
        )
    }

    /// Serve `requests` with `policy` on the async host: one worker thread
    /// per device slot (each owning its `SemSystem` sessions), fed by
    /// per-worker deques seeded from the policy's admission-time hints plus
    /// a shared injector for floating jobs, with idle slots stealing work
    /// queued behind busy ones.  Answers are re-sequenced, so outcomes are
    /// sorted by request index and — on a homogeneous pool — bitwise
    /// identical to [`Server::serve`]; on heterogeneous pools a stolen job's
    /// bits follow the device that actually ran it, exactly as a different
    /// placement would under the synchronous path.
    ///
    /// # Panics
    /// Panics if a policy returns an out-of-range device index.
    pub fn serve_async(
        &mut self,
        requests: &[ServeRequest],
        policy: &mut dyn SchedulingPolicy,
    ) -> ServeReport {
        let started = WallTimer::start();
        let (placed, rejections) = self.prepare(requests, policy);
        let tagged: Vec<TaggedJob<BatchJob>> = placed
            .into_iter()
            .map(|(job, device, floating)| TaggedJob {
                payload: job,
                hint: (!floating).then_some(device),
            })
            .collect();
        // Each worker owns its slot's sessions for the duration of the run
        // (`SemSystem` is `Send`, so the handoff is a move, not a copy) and
        // hands them back through the ledger for reuse by the next serve.
        let states: Vec<HashMap<ProblemSpec, SemSystem>> =
            self.systems.iter_mut().map(std::mem::take).collect();
        // lint: no-panic (this closure runs on worker threads; a panic would
        // strand sibling deques mid-run)
        let run = run_stealing(states, tagged, |worker, systems, job| {
            let system = systems.entry(job.spec).or_insert_with(|| {
                Self::build_system(
                    &self.slots[worker].config,
                    job.spec,
                    self.options.precond,
                    self.fault_states[worker].clone(),
                )
            });
            let (timeline, outcomes, modeled) = self.execute_job_on(system, worker, &job, requests);
            (job, timeline, outcomes, modeled)
        });
        let mut wall_stats = Vec::with_capacity(self.slots.len());
        for (slot, ledger) in self.systems.iter_mut().zip(run.workers) {
            wall_stats.push((ledger.busy_wall_seconds, ledger.steals));
            *slot = ledger.state;
        }
        let executed: Vec<ExecutedJob> = run
            .completed
            .into_iter()
            .map(|completed| {
                let (job, timeline, outcomes, modeled) = completed.result;
                ExecutedJob {
                    job,
                    device: completed.worker,
                    hinted_device: completed.hint,
                    timeline,
                    outcomes,
                    modeled,
                }
            })
            .collect();
        self.assemble(
            policy.name(),
            true,
            requests.len(),
            executed,
            rejections,
            wall_stats,
            started.elapsed_wall_seconds(),
        )
    }

    /// The shared front half of both hosts: pack the requests, admit jobs
    /// against the deadline model, and turn the policy's choices into
    /// per-job hints — all priced in modelled seconds, so the outcome is
    /// deterministic however loaded the machine is.  Returns
    /// `(job, device, floating)` triples in admission order plus the
    /// rejections.
    fn prepare(
        &mut self,
        requests: &[ServeRequest],
        policy: &mut dyn SchedulingPolicy,
    ) -> (Vec<(BatchJob, usize, bool)>, Vec<RejectedRequest>) {
        let jobs = SolveQueue::from_requests(requests).pack(self.options.max_batch);
        let pool_size = self.slots.len();

        let (admitted, rejections) = if self.options.admission.deadline_seconds().is_some() {
            // Admission prices every job on every device, which needs the
            // systems to exist up front.
            for job in &jobs {
                for device in 0..pool_size {
                    self.ensure_system(device, job.spec);
                }
            }
            admit(self.options.admission, jobs, pool_size, |device, job| {
                self.predict_job_seconds(device, job)
            })
        } else {
            admit(self.options.admission, jobs, pool_size, |_, _| 0.0)
        };

        let needs_cost_model = policy.needs_cost_model();
        let mut hinted_busy = vec![0.0_f64; pool_size];
        let mut hinted_requests = vec![0_usize; pool_size];
        let mut placed = Vec::with_capacity(admitted.len());
        for AdmittedJob { job, floating } in admitted {
            // Pricing a job for the policy instantiates a backend per
            // candidate device, so only cost-aware policies pay for the
            // whole pool; cost-blind policies see zeros in
            // `predicted_job_seconds` and price just the device they end up
            // hinting (the modelled hint ledger below needs that one figure
            // either way).
            if needs_cost_model {
                for device in 0..pool_size {
                    self.ensure_system(device, job.spec);
                }
            }
            let statuses: Vec<DeviceStatus> = (0..pool_size)
                .map(|device| DeviceStatus {
                    index: device,
                    label: self.slots[device].label.clone(),
                    busy_seconds: hinted_busy[device],
                    assigned_requests: hinted_requests[device],
                    predicted_job_seconds: if needs_cost_model {
                        self.predict_job_seconds(device, &job)
                    } else {
                        0.0
                    },
                })
                .collect();
            let device = policy.assign(&job, &statuses);
            assert!(device < pool_size, "policy chose device {device}");
            self.ensure_system(device, job.spec);
            hinted_busy[device] += if needs_cost_model {
                statuses[device].predicted_job_seconds
            } else {
                self.predict_job_seconds(device, &job)
            };
            hinted_requests[device] += job.batch_size();
            placed.push((job, device, floating));
        }
        (placed, rejections)
    }

    /// The shared back half of both hosts: walk the executed jobs in
    /// completion order, accumulate each device's modelled schedule, and
    /// re-sequence the answers by request index.
    #[allow(clippy::too_many_arguments)]
    fn assemble(
        &self,
        policy: &str,
        asynchronous: bool,
        num_requests: usize,
        executed: Vec<ExecutedJob>,
        rejections: Vec<RejectedRequest>,
        wall_stats: Vec<(f64, usize)>,
        wall_seconds: f64,
    ) -> ServeReport {
        let pool_size = self.slots.len();
        let mut busy = vec![0.0_f64; pool_size];
        let mut serial_busy = vec![0.0_f64; pool_size];
        let mut jobs_per_device = vec![0_usize; pool_size];
        let mut requests_per_device = vec![0_usize; pool_size];
        let mut outcomes: Vec<Option<RequestOutcome>> = (0..num_requests).map(|_| None).collect();
        let mut traces = Vec::with_capacity(executed.len());

        let obs = recorder();
        for job in executed {
            let device = job.device;
            let started = busy[device];
            busy[device] += job.timeline.makespan_seconds;
            serial_busy[device] += job.timeline.serial_accounting_seconds();
            jobs_per_device[device] += 1;
            requests_per_device[device] += job.job.batch_size();
            let completed = busy[device];
            let job_id = traces.len();
            if obs.is_enabled() {
                self.record_job_spans(&job, job_id, started, completed, asynchronous);
            }
            for mut outcome in job.outcomes {
                outcome.started_seconds = started;
                outcome.completed_seconds = completed;
                let request = outcome.request;
                assert!(
                    outcomes[request].replace(outcome).is_none(),
                    "request {request} answered twice"
                );
            }
            traces.push(JobTrace {
                job_id,
                spec: job.job.spec,
                device,
                hinted_device: job.hinted_device,
                requests: job.job.requests,
                timeline: job.timeline,
            });
        }

        let makespan_seconds = busy.iter().copied().fold(0.0_f64, f64::max);
        let serial_makespan_seconds = serial_busy.iter().copied().fold(0.0_f64, f64::max);
        let devices = (0..pool_size)
            .map(|device| DeviceUsage {
                device,
                label: self.slots[device].label.clone(),
                busy_seconds: busy[device],
                serial_busy_seconds: serial_busy[device],
                busy_wall_seconds: wall_stats[device].0,
                jobs: jobs_per_device[device],
                requests: requests_per_device[device],
                steals: wall_stats[device].1,
                utilisation: if makespan_seconds > 0.0 {
                    busy[device] / makespan_seconds
                } else {
                    0.0
                },
            })
            .collect();
        let outcomes: Vec<RequestOutcome> = outcomes.into_iter().flatten().collect();
        assert_eq!(
            outcomes.len() + rejections.len(),
            num_requests,
            "every request is answered or rejected exactly once"
        );
        if obs.is_enabled() {
            obs.counter_add("sem_serve_requests_total", &[], outcomes.len() as u64);
            obs.counter_add("sem_serve_jobs_total", &[], traces.len() as u64);
            obs.gauge_set("sem_serve_makespan_seconds", &[], makespan_seconds);
            for outcome in &outcomes {
                obs.observe(
                    "sem_serve_request_latency_seconds",
                    &[("device", outcome.device_label.as_str())],
                    outcome.latency_seconds(),
                );
            }
        }
        ServeReport {
            policy: policy.to_string(),
            precond: self.precond_label(),
            overlap: self.options.pipeline.overlap,
            asynchronous,
            outcomes,
            rejections,
            jobs: traces,
            devices,
            makespan_seconds,
            serial_makespan_seconds,
            wall_seconds,
        }
    }

    /// Record one job's pipeline spans on the report's modelled time axis:
    /// every timeline stage interval (shared upload, operand uploads,
    /// kernel computes, residual streams, result downloads) re-anchored at
    /// the device's running busy offset, plus one [`SpanKind::PipelineSlot`]
    /// span per request covering its whole session slot.
    ///
    /// Spans are deterministic only when the stage costs come from a cycle
    /// model *and* the jobs arrived in the deterministic (synchronous)
    /// completion order — the async host's completion order is a property of
    /// the schedule, so its spans are excluded from modelled-clock exports.
    fn record_job_spans(
        &self,
        job: &ExecutedJob,
        job_id: usize,
        started: f64,
        completed: f64,
        asynchronous: bool,
    ) {
        let obs = recorder();
        let scope = if job.modeled && !asynchronous {
            Scope::Deterministic
        } else {
            Scope::ScheduleDependent
        };
        let label = obs.intern(&self.slots[job.device].label);
        for event in &job.timeline.events {
            let kind = match event.stage {
                Stage::SharedUpload => SpanKind::SharedUpload,
                Stage::Upload => SpanKind::Upload,
                Stage::Compute => SpanKind::Compute,
                Stage::ResidualStream => SpanKind::ResidualStream,
                Stage::Download => SpanKind::Download,
            };
            let mut span = SpanEvent::new(
                kind,
                scope,
                obs.stamp(started + event.start_seconds),
                obs.stamp(started + event.end_seconds),
            )
            .with_job(job_id as u64)
            .with_label(label);
            if let Some(i) = event.request {
                span = span.with_request(job.job.requests[i] as u64);
            }
            obs.record(span);
        }
        for &request in &job.job.requests {
            obs.record(
                SpanEvent::new(
                    SpanKind::PipelineSlot,
                    scope,
                    obs.stamp(started),
                    obs.stamp(completed),
                )
                .with_request(request as u64)
                .with_job(job_id as u64)
                .with_label(label),
            );
        }
    }

    /// The report-level preconditioner label: the explicit override, the
    /// pool consensus, or `"per-slot"` for genuinely mixed pools.
    fn precond_label(&self) -> String {
        if let Some(precond) = self.options.precond {
            return precond.label().to_string();
        }
        let first = self.slots[0].config.precond;
        if self.slots.iter().all(|slot| slot.config.precond == first) {
            first.label().to_string()
        } else {
            "per-slot".to_string()
        }
    }

    /// Run one job on one device's system: assemble the right-hand sides,
    /// solve the batch through the backend, and schedule the session on the
    /// pipeline timeline.
    pub(crate) fn execute_job_on(
        &self,
        system: &SemSystem,
        device: usize,
        job: &BatchJob,
        requests: &[ServeRequest],
    ) -> (PipelineTimeline, Vec<RequestOutcome>, bool) {
        let rhss: Vec<ElementField> = job
            .requests
            .iter()
            .map(|&i| requests[i].assemble_rhs(system))
            .collect();
        let reports = system.solve_many(&rhss, self.options.cg);
        let timeline = PipelineTimeline::from_reports(
            system.offload_plan().as_ref(),
            &reports,
            self.options.pipeline,
        );
        let modeled = system.execution().perf_source() == PerfSource::Simulated;
        self.record_drift(system, device, job, &timeline);
        // Manufactured requests get real error metrics (solve_many itself
        // cannot know the exact solution of an arbitrary RHS).
        let exact = job
            .requests
            .iter()
            .any(|&i| requests[i].rhs == RhsSpec::Manufactured)
            .then(|| system.problem().manufactured_exact());
        // Per-request accounting at the *configured* link, consistent with
        // the timeline the report's makespans come from: the serial figure
        // is the timeline's per-request serial cost, the pipelined figure
        // spreads the schedule's exposed transfer over the batch.
        let exposed_share = timeline.exposed_transfer_seconds() / job.batch_size() as f64;
        // Consume the reports: the solution fields move straight into the
        // outcomes instead of being copied on the serving hot path.
        let outcomes = job
            .requests
            .iter()
            .zip(reports)
            .zip(&timeline.stages)
            .map(|((&i, report), stages)| {
                let max_error = match (&exact, requests[i].rhs) {
                    (Some(exact), RhsSpec::Manufactured) => {
                        system
                            .problem()
                            .error_against(&report.solution.solution, exact)
                            .0
                    }
                    _ => f64::NAN,
                };
                let fault = report.solution.cg.fault;
                RequestOutcome {
                    request: i,
                    device,
                    device_label: self.slots[device].label.clone(),
                    batch: job.batch_size(),
                    started_seconds: 0.0,
                    completed_seconds: 0.0,
                    iterations: report.iterations(),
                    precond_seconds: report.precond_seconds,
                    converged: report.converged(),
                    fault,
                    max_error,
                    serial_modeled_seconds: stages.serial_seconds,
                    pipelined_modeled_seconds: report.operator.seconds + exposed_share,
                    solution: report.solution.solution,
                }
            })
            .collect();
        (timeline, outcomes, modeled)
    }

    /// Record the model-drift samples of one executed job: for every
    /// admitted request, the per-stage seconds the deadline/placement model
    /// predicted at admission time against what the executed timeline
    /// actually charged — the raw material of the calibration report that
    /// identifies which `perf_model` terms are lying.
    fn record_drift(
        &self,
        system: &SemSystem,
        device: usize,
        job: &BatchJob,
        timeline: &PipelineTimeline,
    ) {
        let obs = recorder();
        if !obs.is_enabled() {
            return;
        }
        let applications = self.options.applications_hint.max(1);
        let precond = self.slot_precond(device);
        let precond_per_application = system
            .execution()
            .simulated_seconds_per_precond(precond)
            .unwrap_or(0.0);
        let plan = system.offload_plan();
        let predicted = RequestStages::predict(
            system.execution(),
            plan.as_ref(),
            applications,
            precond_per_application,
            self.host_fallback_seconds(device, job.spec, applications),
            self.options.pipeline.link_gbs,
        );
        let predicted_session = PipelineTimeline::predict(
            system.execution(),
            job.batch_size(),
            applications,
            precond_per_application,
            self.host_fallback_seconds(device, job.spec, applications),
            self.options.pipeline,
        )
        .makespan_seconds;
        let backend = &self.slots[device].label;
        for (&request, actual) in job.requests.iter().zip(&timeline.stages) {
            let stages = [
                ("upload", predicted.upload_seconds, actual.upload_seconds),
                ("compute", predicted.compute_seconds, actual.compute_seconds),
                (
                    "download",
                    predicted.download_seconds,
                    actual.download_seconds,
                ),
                (
                    "residual_stream",
                    predicted.residual_stream_seconds,
                    actual.residual_stream_seconds,
                ),
                ("session", predicted_session, timeline.makespan_seconds),
            ];
            for (stage, predicted_seconds, actual_seconds) in stages {
                obs.record_drift(DriftSample {
                    request: request as u64,
                    stage,
                    backend: backend.clone(),
                    predicted_seconds,
                    actual_seconds,
                });
            }
        }
    }

    /// Roofline host pricing of one solve on `device` — the prediction
    /// fallback for backends without a cycle model, scaled by the
    /// preconditioner's Ax-equivalent work (FDM is six contractions ≈ one
    /// Ax per application, Jacobi a pointwise sweep) so CPU predictions do
    /// not flatter the stronger preconditioners.
    fn host_fallback_seconds(&self, device: usize, spec: ProblemSpec, applications: usize) -> f64 {
        let host_precond_factor = match self.slot_precond(device) {
            PrecondSpec::Identity => 0.0,
            PrecondSpec::Jacobi => 0.05,
            PrecondSpec::Fdm => 1.0,
        };
        self.slots[device]
            .host_model
            .seconds_per_application(spec.degree, spec.num_elements())
            * applications as f64
            * (1.0 + host_precond_factor)
    }

    /// Predicted session seconds of `job` on `device` — the number
    /// model-based policies and the admission model compare.  The kernel
    /// applications come from the options' hint (which
    /// [`ServeOptions::with_precond`] scales to the preconditioner's
    /// iteration count) and the on-device preconditioner pass is priced per
    /// application, so a stronger preconditioner shows up as a genuinely
    /// cheaper predicted completion.  Requires the system to exist.
    pub(crate) fn predict_job_seconds(&self, device: usize, job: &BatchJob) -> f64 {
        let system = self.system(device, job.spec);
        let applications = self.options.applications_hint.max(1);
        let precond = self.slot_precond(device);
        let precond_per_application = system
            .execution()
            .simulated_seconds_per_precond(precond)
            .unwrap_or(0.0);
        let fallback = self.host_fallback_seconds(device, job.spec, applications);
        PipelineTimeline::predict(
            system.execution(),
            job.batch_size(),
            applications,
            precond_per_application,
            fallback,
            self.options.pipeline,
        )
        .makespan_seconds
    }

    /// Build the session one device uses for one problem shape (an explicit
    /// serve-options preconditioner overrides the slot's config; otherwise
    /// the slot's own `+suffix` stands).  A fault state wraps the
    /// execution backend in a [`sem_accel::FaultyBackend`] sharing it.
    pub(crate) fn build_system(
        config: &Backend,
        spec: ProblemSpec,
        precond: Option<PrecondSpec>,
        fault: Option<std::sync::Arc<fpga_sim::FaultState>>,
    ) -> SemSystem {
        let backend = match precond {
            Some(precond) => config.clone().with_precond(precond),
            None => config.clone(),
        };
        SemSystem::builder()
            .degree(spec.degree)
            .elements(spec.elements)
            .backend(backend)
            .fault_state(fault)
            .build()
    }

    /// The preconditioner slot `device` actually solves with (the options
    /// override, or the slot's own configuration).
    fn slot_precond(&self, device: usize) -> PrecondSpec {
        self.options
            .precond
            .unwrap_or(self.slots[device].config.precond)
    }

    pub(crate) fn ensure_system(&mut self, device: usize, spec: ProblemSpec) {
        if !self.systems[device].contains_key(&spec) {
            let system = Self::build_system(
                &self.slots[device].config,
                spec,
                self.options.precond,
                self.fault_states[device].clone(),
            );
            self.systems[device].insert(spec, system);
        }
    }

    pub(crate) fn system(&self, device: usize, spec: ProblemSpec) -> &SemSystem {
        self.systems[device]
            .get(&spec)
            .expect("system instantiated before use")
    }
}
