//! Scheduling policies: which device of a heterogeneous pool gets the next
//! batch job.
//!
//! Policies are pluggable ([`SchedulingPolicy`] is object-safe) and see a
//! uniform [`DeviceStatus`] snapshot per candidate device: the modelled
//! backlog committed so far and what the candidate would charge for the job
//! at hand (priced by the offload-pipeline model — simulated kernel seconds
//! where a simulator exists, a `perf-model` roofline estimate for measured
//! hosts).  Four policies ship: round-robin, least-loaded, model-optimal
//! (earliest predicted completion) and pinned (everything to one slot).
//!
//! A policy's choice is an **admission-time hint**, not a fixed placement:
//! the synchronous `Server::serve` executes each job exactly where it was
//! hinted, while the async host (`Server::serve_async`) seeds the hinted
//! worker's deque and lets idle devices steal jobs queued behind busy ones.
//! Because every figure a policy sees is *modelled* (never a measured wall
//! clock), placement decisions are deterministic under any CI load.

use crate::queue::BatchJob;
use perf_model::HostCostModel;
use sem_accel::Backend;
use serde::{Deserialize, Serialize};

/// One device of the serving pool: a backend configuration plus the host
/// cost model used to price it when it has no simulator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceSlot {
    /// Display label (the registry name, for registry-built slots).
    pub label: String,
    /// The backend this slot instantiates per problem shape.
    pub config: Backend,
    /// Roofline cost model for measured (host) execution, used by
    /// model-based policies when the backend reports no simulated seconds.
    pub host_model: HostCostModel,
}

impl DeviceSlot {
    /// A slot from a backend registry name (`cpu:parallel`,
    /// `fpga:stratix10-gx2800`, `fpga:projected:a100-class`, ...).
    #[must_use]
    pub fn from_registry_name(name: &str) -> Option<Self> {
        let config = Backend::from_name(name)?;
        Some(Self {
            label: name.to_string(),
            config,
            host_model: HostCostModel::generic_server(),
        })
    }
}

/// What a policy sees about one candidate device when placing a job.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceStatus {
    /// Index of the device in the pool.
    pub index: usize,
    /// Display label.
    pub label: String,
    /// Modelled seconds of work already *hinted* to this device (the sum of
    /// its assigned jobs' predicted session seconds).  Deliberately a model
    /// figure, not a measured wall clock, so placements are deterministic
    /// under CI load.
    pub busy_seconds: f64,
    /// Requests already assigned.
    pub assigned_requests: usize,
    /// Predicted session seconds of the job being placed, were it assigned
    /// here (offload-pipeline model, overlap-aware).  Only populated when
    /// the policy opts into costing via
    /// [`SchedulingPolicy::needs_cost_model`]; zero otherwise — pricing a
    /// job instantiates a backend per candidate device, which cost-blind
    /// policies should not pay for.
    pub predicted_job_seconds: f64,
}

/// A pluggable placement policy.
pub trait SchedulingPolicy: Send {
    /// Short policy name (used in reports and benches).
    fn name(&self) -> &'static str;

    /// Whether [`DeviceStatus::predicted_job_seconds`] must be populated
    /// before [`SchedulingPolicy::assign`] is called.  Defaults to `false`;
    /// policies that read the prediction must override this, or they will
    /// see zeros.
    fn needs_cost_model(&self) -> bool {
        false
    }

    /// Choose the device index for `job` given the pool snapshot.
    /// `devices` is never empty.
    fn assign(&mut self, job: &BatchJob, devices: &[DeviceStatus]) -> usize;
}

/// Cycle through the pool in order, ignoring load and cost.
#[derive(Debug, Clone, Copy, Default)]
pub struct RoundRobin {
    next: usize,
}

impl SchedulingPolicy for RoundRobin {
    fn name(&self) -> &'static str {
        "round-robin"
    }

    fn assign(&mut self, _job: &BatchJob, devices: &[DeviceStatus]) -> usize {
        let index = self.next % devices.len();
        self.next = self.next.wrapping_add(1);
        devices[index].index
    }
}

/// Place every job on the device with the least committed work.
#[derive(Debug, Clone, Copy, Default)]
pub struct LeastLoaded;

impl SchedulingPolicy for LeastLoaded {
    fn name(&self) -> &'static str {
        "least-loaded"
    }

    fn assign(&mut self, _job: &BatchJob, devices: &[DeviceStatus]) -> usize {
        devices
            .iter()
            .min_by(|a, b| a.busy_seconds.total_cmp(&b.busy_seconds))
            .expect("non-empty pool")
            .index
    }
}

/// Place every job where the *predicted completion time* (committed backlog
/// plus the job's modelled session seconds) is earliest — the policy that
/// actually looks at the performance model, so a slow host in a
/// heterogeneous pool only gets work when the accelerators are saturated.
#[derive(Debug, Clone, Copy, Default)]
pub struct ModelOptimal;

impl SchedulingPolicy for ModelOptimal {
    fn name(&self) -> &'static str {
        "model-optimal"
    }

    fn needs_cost_model(&self) -> bool {
        true
    }

    fn assign(&mut self, _job: &BatchJob, devices: &[DeviceStatus]) -> usize {
        devices
            .iter()
            .min_by(|a, b| {
                (a.busy_seconds + a.predicted_job_seconds)
                    .total_cmp(&(b.busy_seconds + b.predicted_job_seconds))
            })
            .expect("non-empty pool")
            .index
    }
}

/// Hint every job to one fixed slot.  Useless on its own, and exactly what
/// the work-stealing host needs to demonstrate (and stress-test) stealing:
/// all jobs queue behind one device and idle slots drain them.
#[derive(Debug, Clone, Copy)]
pub struct Pinned(
    /// The pool index every job is hinted to.
    pub usize,
);

impl SchedulingPolicy for Pinned {
    fn name(&self) -> &'static str {
        "pinned"
    }

    fn assign(&mut self, _job: &BatchJob, devices: &[DeviceStatus]) -> usize {
        devices[self.0 % devices.len()].index
    }
}

/// Resolve a policy by name (`round-robin`, `least-loaded`,
/// `model-optimal`).
#[must_use]
pub fn policy_by_name(name: &str) -> Option<Box<dyn SchedulingPolicy>> {
    match name {
        "round-robin" => Some(Box::new(RoundRobin::default())),
        "least-loaded" => Some(Box::new(LeastLoaded)),
        "model-optimal" => Some(Box::new(ModelOptimal)),
        _ => None,
    }
}

/// The names [`policy_by_name`] resolves, in presentation order.
#[must_use]
pub fn policy_names() -> Vec<&'static str> {
    vec!["round-robin", "least-loaded", "model-optimal"]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::ProblemSpec;

    fn job() -> BatchJob {
        BatchJob {
            spec: ProblemSpec::cube(3, 2),
            requests: vec![0, 1],
        }
    }

    fn pool() -> Vec<DeviceStatus> {
        vec![
            DeviceStatus {
                index: 0,
                label: "slow-but-idle".into(),
                busy_seconds: 0.0,
                assigned_requests: 0,
                predicted_job_seconds: 10.0,
            },
            DeviceStatus {
                index: 1,
                label: "fast-but-busy".into(),
                busy_seconds: 3.0,
                assigned_requests: 4,
                predicted_job_seconds: 1.0,
            },
        ]
    }

    #[test]
    fn round_robin_cycles() {
        let mut rr = RoundRobin::default();
        let picks: Vec<usize> = (0..4).map(|_| rr.assign(&job(), &pool())).collect();
        assert_eq!(picks, vec![0, 1, 0, 1]);
    }

    #[test]
    fn least_loaded_ignores_cost_and_model_optimal_uses_it() {
        assert_eq!(LeastLoaded.assign(&job(), &pool()), 0, "idle wins on load");
        // 0 + 10 vs 3 + 1: the model sees through the idleness.
        assert_eq!(ModelOptimal.assign(&job(), &pool()), 1);
    }

    #[test]
    fn policies_resolve_by_name() {
        for name in policy_names() {
            assert_eq!(policy_by_name(name).unwrap().name(), name);
        }
        assert!(policy_by_name("random").is_none());
    }

    #[test]
    fn registry_slots_resolve() {
        let slot = DeviceSlot::from_registry_name("fpga:stratix10-gx2800").unwrap();
        assert!(slot.config.is_simulated());
        assert!(DeviceSlot::from_registry_name("tpu:v4").is_none());
    }
}
