//! Live-traffic serving: timestamped arrival streams, windowed admission in
//! virtual time, and the streaming execution host.
//!
//! The batch API ([`crate::Server::serve`]) answers a request set that all
//! arrives at time zero.  This module serves an *open-loop* workload: an
//! [`ArrivalStream`] of requests stamped with modelled arrival seconds
//! (typically drawn from `perf_model::workload` — Poisson, bursty or
//! diurnal, deterministic under a seed), coalesced into batch jobs by a
//! short batching window, priced against a per-device backlog and an
//! arrival-relative deadline, and executed as they are admitted.
//!
//! Two hosts share one admission loop:
//!
//! * [`Server::serve_stream`] — the synchronous reference host.  Each
//!   admitted job executes inline on the device it was priced for, the
//!   device's backlog advances by the job's *actual* modelled makespan (the
//!   same figure the worker ledger would charge), and every
//!   prediction/actual pair feeds the whole-session slot of a
//!   [`StageDriftCorrector`] so later admissions are re-priced by measured
//!   drift (per-stage slots carry upload/compute/download drift for the
//!   fault-tolerant hosts' timeout budgets).  Fully deterministic.
//! * [`Server::serve_stream_async`] — the streaming work-stealing host.
//!   Admission runs first in virtual time against *drift-corrected
//!   predicted* backlog (all a causal host can know at admission time),
//!   then every admitted job is fed through the shared injector of
//!   [`crate::steal::run_stealing_with_feeder`] *while the worker pool is
//!   already draining* — the live-arrival path of the feeder-done
//!   termination protocol.  Answers are re-sequenced by request index; on a
//!   homogeneous pool the solution bits are identical to the closed-batch
//!   path on the same admitted set, whichever worker took each job.
//!
//! Windowed statistics drive elasticity: the stream is cut into fixed
//! observation windows, each closed with admitted/rejected counts and a
//! nearest-rank p99 over the window's latencies — `None`, not a fabricated
//! `0.0`, when the window admitted nothing — and an optional
//! [`Autoscaler`] digests each closed window to grow or shrink the active
//! device mask before the next window's admissions are priced.
//!
//! Every second in this module is *modelled* time (arrival stamps, backlog,
//! deadlines, window boundaries); wall clocks never influence admission, so
//! a run is reproducible on any host however loaded.

use crate::autoscaler::{Autoscaler, ScaleEvent};
use crate::queue::BatchJob;
use crate::request::{ProblemSpec, ServeRequest};
use crate::server::Server;
use crate::steal::run_stealing_with_feeder;
use perf_model::{arrival_times, StageDriftCorrector, WorkloadKind};
use sem_accel::SemSystem;
use sem_mesh::ElementField;
use sem_obs::recorder;
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, VecDeque};

/// One timestamped request of an open-loop workload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimedRequest {
    /// Modelled arrival time in seconds from the start of the trace.
    pub arrival_seconds: f64,
    /// What arrives.
    pub request: ServeRequest,
}

/// A trace of timestamped requests, sorted by arrival time.  The index of a
/// request in the sorted trace is its *request id*: the id outcomes and
/// rejections carry, and the seed offset [`ArrivalStream::from_workload`]
/// derives each right-hand side from.
#[derive(Debug, Clone)]
pub struct ArrivalStream {
    arrivals: Vec<TimedRequest>,
}

impl ArrivalStream {
    /// A stream over explicit arrivals (sorted by arrival time; ties keep
    /// their submission order).
    ///
    /// # Panics
    /// Panics if an arrival stamp is negative or non-finite.
    #[must_use]
    pub fn new(mut arrivals: Vec<TimedRequest>) -> Self {
        assert!(
            arrivals
                .iter()
                .all(|t| t.arrival_seconds.is_finite() && t.arrival_seconds >= 0.0),
            "arrival stamps must be finite and non-negative"
        );
        arrivals.sort_by(|a, b| a.arrival_seconds.total_cmp(&b.arrival_seconds));
        Self { arrivals }
    }

    /// A seeded open-loop trace: arrival times from
    /// `perf_model::workload::arrival_times` (deterministic under the
    /// seed), each carrying a [`ServeRequest::seeded`] right-hand side of
    /// shape `spec` whose seed is the request id — so two runs of the same
    /// `(kind, seed, horizon, spec)` solve bitwise-identical problems.
    #[must_use]
    pub fn from_workload(
        kind: WorkloadKind,
        seed: u64,
        horizon_seconds: f64,
        spec: ProblemSpec,
    ) -> Self {
        let arrivals = arrival_times(kind, seed, horizon_seconds)
            .into_iter()
            .enumerate()
            .map(|(id, arrival_seconds)| TimedRequest {
                arrival_seconds,
                request: ServeRequest::seeded(spec, id as u64),
            })
            .collect();
        Self::new(arrivals)
    }

    /// The sorted arrivals.
    #[must_use]
    pub fn arrivals(&self) -> &[TimedRequest] {
        &self.arrivals
    }

    /// Number of requests in the trace.
    #[must_use]
    pub fn len(&self) -> usize {
        self.arrivals.len()
    }

    /// Whether the trace is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.arrivals.is_empty()
    }
}

/// Knobs of the live serving loop.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct LiveOptions {
    /// Arrival-relative latency target: a job is admitted only if its
    /// predicted completion sits within this many modelled seconds of its
    /// arrival.
    pub deadline_seconds: f64,
    /// Same-shape arrivals within this window of the batch's first member
    /// coalesce into one job (up to the server's `max_batch`).  Zero
    /// batches nothing.
    pub batch_window_seconds: f64,
    /// Width of one observation window: statistics, pool-size traces and
    /// autoscaler decisions are per window.
    pub window_seconds: f64,
    /// Whether an over-deadline job is split and its halves re-priced
    /// (mirrors [`crate::AdmissionPolicy::DownBatch`]) instead of rejected
    /// whole.
    pub down_batch: bool,
}

impl Default for LiveOptions {
    fn default() -> Self {
        Self {
            deadline_seconds: 5.0,
            batch_window_seconds: 0.05,
            window_seconds: 10.0,
            down_batch: true,
        }
    }
}

/// The answer to one live request.
#[derive(Debug, Clone)]
pub struct LiveOutcome {
    /// Request id (index into the sorted [`ArrivalStream`]).
    pub request: usize,
    /// When the request arrived (modelled seconds).
    pub arrival_seconds: f64,
    /// Pool index of the device the job was priced for (synchronous host)
    /// or of the worker that actually solved it (streaming host).
    pub device: usize,
    /// Display label of that device.
    pub device_label: String,
    /// Size of the batch job the request rode in.
    pub batch: usize,
    /// Modelled start of its job's session.
    pub started_seconds: f64,
    /// Modelled completion of its job's session.
    pub completed_seconds: f64,
    /// CG iterations of the solve.
    pub iterations: usize,
    /// Whether CG converged.
    pub converged: bool,
    /// The solution field — bitwise identical to a direct batched solve on
    /// the same backend.
    pub solution: ElementField,
}

impl LiveOutcome {
    /// Arrival-relative latency in modelled seconds.
    #[must_use]
    pub fn latency_seconds(&self) -> f64 {
        self.completed_seconds - self.arrival_seconds
    }
}

/// One request the live admission model turned away.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LiveRejection {
    /// Request id (index into the sorted [`ArrivalStream`]).
    pub request: usize,
    /// When it arrived.
    pub arrival_seconds: f64,
    /// The arrival-relative latency the model predicted on the best active
    /// device at pricing time.
    pub predicted_latency_seconds: f64,
    /// The deadline it overshot.
    pub deadline_seconds: f64,
}

/// Aggregates of one closed observation window — what the autoscaler sees.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WindowStats {
    /// Window index (window `w` covers `[w·W, (w+1)·W)` modelled seconds).
    pub window: usize,
    /// Start of the window in modelled seconds.
    pub start_seconds: f64,
    /// Requests admitted in the window.
    pub admitted: usize,
    /// Requests rejected in the window.
    pub rejected: usize,
    /// Nearest-rank p99 over the window's arrival-relative latencies —
    /// `None` when the window admitted nothing, so the absence of a tail is
    /// never mistaken for a zero-latency tail.
    pub p99_latency_seconds: Option<f64>,
    /// Devices active while the window's admissions were priced.
    pub active_devices: usize,
}

/// The result of serving one arrival stream.
#[derive(Debug)]
pub struct LiveReport {
    /// One outcome per admitted request, sorted by request id.
    pub outcomes: Vec<LiveOutcome>,
    /// Requests priced over the deadline, sorted by request id.
    pub rejections: Vec<LiveRejection>,
    /// One entry per closed observation window, in order.
    pub windows: Vec<WindowStats>,
    /// Pool indices of the devices active during each window (parallel to
    /// `windows`) — the provisioning trace cost accounting integrates.
    pub active_trace: Vec<Vec<usize>>,
    /// Every autoscaler flip, in window order (empty for a static pool).
    pub scale_events: Vec<ScaleEvent>,
    /// Width of one observation window.
    pub window_seconds: f64,
    /// The drift corrector's final multiplicative correction (1.0 means the
    /// perf model priced sessions exactly; the streaming host reports its
    /// admission-time factor).
    pub drift_correction: f64,
    /// Whether the run used the streaming work-stealing host.
    pub asynchronous: bool,
}

impl LiveReport {
    /// Requests admitted.
    #[must_use]
    pub fn admitted(&self) -> usize {
        self.outcomes.len()
    }

    /// Requests rejected.
    #[must_use]
    pub fn rejected(&self) -> usize {
        self.rejections.len()
    }

    /// Arrival-relative latency at percentile `p` over every admitted
    /// request (`None` when nothing was admitted).
    #[must_use]
    pub fn latency_percentile_seconds(&self, p: f64) -> Option<f64> {
        let latencies: Vec<f64> = self
            .outcomes
            .iter()
            .map(LiveOutcome::latency_seconds)
            .collect();
        perf_model::nearest_rank_percentile(&latencies, p)
    }

    /// Watt-seconds of provisioned capacity across the run: each window
    /// charges the TDP of every device active during it, whether or not it
    /// solved anything — idle capacity is what elasticity saves.
    ///
    /// # Panics
    /// Panics if `watts` is shorter than a traced device index.
    #[must_use]
    pub fn provisioned_watt_seconds(&self, watts: &[f64]) -> f64 {
        self.active_trace
            .iter()
            .flatten()
            .map(|&device| watts[device] * self.window_seconds)
            .sum()
    }

    /// Provisioned watt-seconds per admitted request (`None` when nothing
    /// was admitted).
    #[must_use]
    pub fn cost_per_solve_watt_seconds(&self, watts: &[f64]) -> Option<f64> {
        if self.outcomes.is_empty() {
            return None;
        }
        Some(self.provisioned_watt_seconds(watts) / self.outcomes.len() as f64)
    }

    /// Mean active devices per window (0 for a windowless run).
    #[must_use]
    pub fn mean_active_devices(&self) -> f64 {
        if self.active_trace.is_empty() {
            return 0.0;
        }
        self.active_trace.iter().map(Vec::len).sum::<usize>() as f64
            / self.active_trace.len() as f64
    }

    /// Largest per-window active-device count.
    #[must_use]
    pub fn max_active_devices(&self) -> usize {
        self.active_trace.iter().map(Vec::len).max().unwrap_or(0)
    }
}

/// One batch job of the live trace, stamped with the arrival of its last
/// member (a job cannot dispatch before it is complete).
struct LiveJob {
    job: BatchJob,
    arrival_seconds: f64,
}

/// One admitted job of the streaming host's virtual-time plan.
struct PlannedJob {
    job: BatchJob,
    started_seconds: f64,
    completed_seconds: f64,
}

/// Window bookkeeping of the live loop: accumulates one window's counts and
/// latencies, closes windows as virtual time passes their right edge, and
/// lets the autoscaler flip the active mask between windows.
struct WindowTracker {
    window_seconds: f64,
    window: usize,
    admitted: usize,
    rejected: usize,
    latencies: Vec<f64>,
    windows: Vec<WindowStats>,
    active_trace: Vec<Vec<usize>>,
}

impl WindowTracker {
    fn new(window_seconds: f64) -> Self {
        Self {
            window_seconds,
            window: 0,
            admitted: 0,
            rejected: 0,
            latencies: Vec::new(),
            windows: Vec::new(),
            active_trace: Vec::new(),
        }
    }

    /// Close every window that ended at or before `arrival`.
    fn advance_to(
        &mut self,
        arrival: f64,
        active: &mut [bool],
        scaler: &mut Option<&mut Autoscaler>,
    ) {
        while arrival >= (self.window as f64 + 1.0) * self.window_seconds {
            self.close(active, scaler);
        }
    }

    fn close(&mut self, active: &mut [bool], scaler: &mut Option<&mut Autoscaler>) {
        let active_devices: Vec<usize> = (0..active.len()).filter(|&d| active[d]).collect();
        let stats = WindowStats {
            window: self.window,
            start_seconds: self.window as f64 * self.window_seconds,
            admitted: self.admitted,
            rejected: self.rejected,
            p99_latency_seconds: perf_model::nearest_rank_percentile(&self.latencies, 99.0),
            active_devices: active_devices.len(),
        };
        let obs = recorder();
        if obs.is_enabled() {
            obs.gauge_set(
                "sem_serve_pool_devices_count",
                &[],
                active_devices.len() as f64,
            );
        }
        if let Some(scaler) = scaler.as_mut() {
            scaler.observe(&stats);
            active.copy_from_slice(scaler.active_mask());
        }
        self.active_trace.push(active_devices);
        self.windows.push(stats);
        self.window += 1;
        self.admitted = 0;
        self.rejected = 0;
        self.latencies.clear();
    }
}

/// Coalesce sorted arrivals into batch jobs: same-shape arrivals within
/// `batch_window` seconds of the open batch's first member join it (up to
/// `max_batch`); a shape change, a full batch or a stale window flushes.
/// Jobs emerge stamped with their last member's arrival, nondecreasing.
fn coalesce(stream: &ArrivalStream, max_batch: usize, batch_window: f64) -> VecDeque<LiveJob> {
    let mut jobs = VecDeque::new();
    let mut open: Option<(BatchJob, f64, f64)> = None; // (job, first_arrival, last_arrival)
    for (id, timed) in stream.arrivals().iter().enumerate() {
        if let Some((job, first, last)) = &mut open {
            if job.spec == timed.request.spec
                && timed.arrival_seconds - *first <= batch_window
                && job.batch_size() < max_batch
            {
                job.requests.push(id);
                *last = timed.arrival_seconds;
                continue;
            }
            let flushed = LiveJob {
                job: job.clone(),
                arrival_seconds: *last,
            };
            jobs.push_back(flushed);
        }
        open = Some((
            BatchJob {
                spec: timed.request.spec,
                requests: vec![id],
            },
            timed.arrival_seconds,
            timed.arrival_seconds,
        ));
    }
    if let Some((job, _, last)) = open {
        jobs.push_back(LiveJob {
            job,
            arrival_seconds: last,
        });
    }
    jobs
}

impl Server {
    /// Serve an arrival stream on the synchronous reference host: admitted
    /// jobs execute inline on the device they were priced for, backlog
    /// advances by actual modelled makespans, and the drift corrector
    /// re-prices every later admission by measured prediction drift.
    ///
    /// With a `scaler`, the active device mask is re-evaluated at every
    /// window boundary; without one the whole pool stays active.
    ///
    /// # Panics
    /// Panics if an option is non-positive (`batch_window_seconds` may be
    /// zero) or a scaler's candidate pool disagrees with the server's.
    pub fn serve_stream(
        &mut self,
        stream: &ArrivalStream,
        live: &LiveOptions,
        scaler: Option<&mut Autoscaler>,
    ) -> LiveReport {
        self.serve_stream_host(stream, live, scaler, false)
    }

    /// Serve an arrival stream on the streaming work-stealing host:
    /// admission runs in virtual time against drift-corrected *predicted*
    /// backlog (what a causal host knows at admission time), then every
    /// admitted job is pushed through the shared injector by a live feeder
    /// while the worker pool drains — no job carries a placement hint, so
    /// whichever worker frees up first takes it.
    ///
    /// Outcomes carry the plan's virtual times and the executing worker's
    /// identity; on a homogeneous pool the solution bits are identical to
    /// [`Server::serve`] on the same admitted set.
    ///
    /// # Panics
    /// Panics if an option is non-positive (`batch_window_seconds` may be
    /// zero) or a scaler's candidate pool disagrees with the server's.
    pub fn serve_stream_async(
        &mut self,
        stream: &ArrivalStream,
        live: &LiveOptions,
        scaler: Option<&mut Autoscaler>,
    ) -> LiveReport {
        self.serve_stream_host(stream, live, scaler, true)
    }

    fn serve_stream_host(
        &mut self,
        stream: &ArrivalStream,
        live: &LiveOptions,
        mut scaler: Option<&mut Autoscaler>,
        asynchronous: bool,
    ) -> LiveReport {
        assert!(live.deadline_seconds > 0.0, "deadline must be positive");
        assert!(live.window_seconds > 0.0, "window must be positive");
        assert!(
            live.batch_window_seconds >= 0.0,
            "batch window must be non-negative"
        );
        let pool = self.slots.len();
        if let Some(scaler) = &scaler {
            assert_eq!(
                scaler.active_mask().len(),
                pool,
                "scaler candidates must match the server pool"
            );
        }

        let requests: Vec<ServeRequest> = stream.arrivals().iter().map(|t| t.request).collect();
        let mut queue = coalesce(stream, self.options.max_batch, live.batch_window_seconds);
        let mut active: Vec<bool> = scaler
            .as_ref()
            .map_or_else(|| vec![true; pool], |s| s.active_mask().to_vec());
        let mut free_at = vec![0.0_f64; pool];
        let mut corrector = StageDriftCorrector::new();
        let mut tracker = WindowTracker::new(live.window_seconds);
        let mut outcomes: Vec<LiveOutcome> = Vec::new();
        let mut rejections: Vec<LiveRejection> = Vec::new();
        let mut planned: Vec<PlannedJob> = Vec::new();
        let mut served_any = false;

        while let Some(LiveJob {
            job,
            arrival_seconds,
        }) = queue.pop_front()
        {
            served_any = true;
            tracker.advance_to(arrival_seconds, &mut active, &mut scaler);
            // Price the job on every *active* device: earliest corrected
            // completion wins (min_devices >= 1 keeps the mask non-empty).
            let active_devices: Vec<usize> = (0..pool).filter(|&d| active[d]).collect();
            for &device in &active_devices {
                self.ensure_system(device, job.spec);
            }
            let (best, raw_predicted) = active_devices
                .iter()
                .map(|&device| (device, self.predict_job_seconds(device, &job)))
                .min_by(|a, b| {
                    let ca =
                        free_at[a.0].max(arrival_seconds) + corrector.corrected("session", a.1);
                    let cb =
                        free_at[b.0].max(arrival_seconds) + corrector.corrected("session", b.1);
                    ca.total_cmp(&cb).then(a.0.cmp(&b.0))
                })
                .expect("active pool is never empty");
            let started = free_at[best].max(arrival_seconds);
            let predicted_completion = started + corrector.corrected("session", raw_predicted);
            let predicted_latency = predicted_completion - arrival_seconds;

            if predicted_latency <= live.deadline_seconds {
                tracker.admitted += job.batch_size();
                if asynchronous {
                    // Causal host: backlog advances by the corrected
                    // prediction; execution happens later on the pool.
                    free_at[best] = predicted_completion;
                    for &request in &job.requests {
                        tracker.latencies.push(
                            predicted_completion - stream.arrivals()[request].arrival_seconds,
                        );
                    }
                    planned.push(PlannedJob {
                        job,
                        started_seconds: started,
                        completed_seconds: predicted_completion,
                    });
                } else {
                    // Reference host: execute now, charge the backlog what
                    // the session actually cost, teach the corrector.
                    let (timeline, outs, _modeled) =
                        self.execute_job_on(self.system(best, job.spec), best, &job, &requests);
                    let actual = timeline.makespan_seconds;
                    corrector.record("session", raw_predicted, actual);
                    let completed = started + actual;
                    free_at[best] = completed;
                    for outcome in outs {
                        let arrival = stream.arrivals()[outcome.request].arrival_seconds;
                        tracker.latencies.push(completed - arrival);
                        outcomes.push(LiveOutcome {
                            request: outcome.request,
                            arrival_seconds: arrival,
                            device: best,
                            device_label: outcome.device_label,
                            batch: outcome.batch,
                            started_seconds: started,
                            completed_seconds: completed,
                            iterations: outcome.iterations,
                            converged: outcome.converged,
                            solution: outcome.solution,
                        });
                    }
                }
            } else if live.down_batch && job.batch_size() >= 2 {
                // Down-batch: halve and re-price both pieces before later
                // arrivals (they keep the whole job's arrival stamp — the
                // split decision is made at that point in virtual time).
                let (front, back) = job.split();
                queue.push_front(LiveJob {
                    job: back,
                    arrival_seconds,
                });
                queue.push_front(LiveJob {
                    job: front,
                    arrival_seconds,
                });
            } else {
                tracker.rejected += job.batch_size();
                for &request in &job.requests {
                    rejections.push(LiveRejection {
                        request,
                        arrival_seconds: stream.arrivals()[request].arrival_seconds,
                        predicted_latency_seconds: predicted_latency,
                        deadline_seconds: live.deadline_seconds,
                    });
                }
            }
        }
        if served_any {
            tracker.close(&mut active, &mut scaler);
        }

        if asynchronous && !planned.is_empty() {
            self.execute_plan(&planned, stream, &requests, &mut outcomes);
        }

        outcomes.sort_by_key(|o| o.request);
        rejections.sort_by_key(|r| r.request);
        let obs = recorder();
        if obs.is_enabled() {
            obs.counter_add("sem_serve_live_admitted_total", &[], outcomes.len() as u64);
            obs.counter_add(
                "sem_serve_live_rejected_total",
                &[],
                rejections.len() as u64,
            );
        }
        LiveReport {
            outcomes,
            rejections,
            windows: tracker.windows,
            active_trace: tracker.active_trace,
            scale_events: scaler.map(|s| s.events().to_vec()).unwrap_or_default(),
            window_seconds: live.window_seconds,
            drift_correction: corrector.correction("session"),
            asynchronous,
        }
    }

    /// Execute the streaming host's admitted plan: a live feeder pushes
    /// every planned job (unhinted) into the shared injector while the
    /// worker pool — one thread per device slot, each owning its sessions —
    /// is already draining, then answers are spliced back onto the plan's
    /// virtual times.
    fn execute_plan(
        &mut self,
        planned: &[PlannedJob],
        stream: &ArrivalStream,
        requests: &[ServeRequest],
        outcomes: &mut Vec<LiveOutcome>,
    ) {
        let states: Vec<HashMap<ProblemSpec, SemSystem>> =
            self.systems.iter_mut().map(std::mem::take).collect();
        let fed: Vec<(usize, BatchJob)> = planned
            .iter()
            .enumerate()
            .map(|(plan_index, plan)| (plan_index, plan.job.clone()))
            .collect();
        // lint: no-panic (the execute closure runs on worker threads; a
        // panic would strand sibling deques mid-run)
        let run = run_stealing_with_feeder(
            states,
            Vec::new(),
            move |feeder| {
                for job in fed {
                    feeder.push(job);
                    std::thread::yield_now();
                }
            },
            |worker, systems, (plan_index, job): (usize, BatchJob)| {
                let system = systems.entry(job.spec).or_insert_with(|| {
                    Self::build_system(
                        &self.slots[worker].config,
                        job.spec,
                        self.options.precond,
                        self.fault_states[worker].clone(),
                    )
                });
                let (_timeline, outs, _modeled) =
                    self.execute_job_on(system, worker, &job, requests);
                (plan_index, outs)
            },
        );
        for (slot, ledger) in self.systems.iter_mut().zip(run.workers) {
            *slot = ledger.state;
        }
        for completed in run.completed {
            let (plan_index, outs) = completed.result;
            let plan = &planned[plan_index];
            for outcome in outs {
                outcomes.push(LiveOutcome {
                    request: outcome.request,
                    arrival_seconds: stream.arrivals()[outcome.request].arrival_seconds,
                    device: completed.worker,
                    device_label: outcome.device_label,
                    batch: outcome.batch,
                    started_seconds: plan.started_seconds,
                    completed_seconds: plan.completed_seconds,
                    iterations: outcome.iterations,
                    converged: outcome.converged,
                    solution: outcome.solution,
                });
            }
        }
    }
}
