//! The solve queue: accepted requests, packed into batch jobs.
//!
//! Requests arrive in submission order and may mix problem shapes.  The
//! queue groups them by [`ProblemSpec`] (requests of one shape can share a
//! device session — one shared upload, one batched submission) and chunks
//! each group at the configured maximum batch size.  Packing never reorders
//! *results*: each job remembers the original request indices, and the
//! server writes every answer back to its request's slot.

use crate::request::{ProblemSpec, ServeRequest};
use serde::{Deserialize, Serialize};

/// A packed batch: requests of one shape scheduled as one device session.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BatchJob {
    /// The shape every request in the job shares.
    pub spec: ProblemSpec,
    /// Indices of the packed requests in the original submission order.
    pub requests: Vec<usize>,
}

impl BatchJob {
    /// Number of right-hand sides in the job.
    #[must_use]
    pub fn batch_size(&self) -> usize {
        self.requests.len()
    }

    /// Split the job into front and back halves (the front half takes the
    /// extra request on odd sizes), preserving request order — the
    /// down-batching move of deadline admission.
    ///
    /// # Panics
    /// Panics if the job holds fewer than two requests.
    #[must_use]
    pub fn split(&self) -> (BatchJob, BatchJob) {
        assert!(self.batch_size() >= 2, "nothing to split");
        let mid = self.batch_size().div_ceil(2);
        (
            BatchJob {
                spec: self.spec,
                requests: self.requests[..mid].to_vec(),
            },
            BatchJob {
                spec: self.spec,
                requests: self.requests[mid..].to_vec(),
            },
        )
    }
}

/// An accumulating queue of solve requests.
#[derive(Debug, Clone, Default)]
pub struct SolveQueue {
    requests: Vec<ServeRequest>,
}

impl SolveQueue {
    /// An empty queue.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// A queue holding `requests` in submission order.
    #[must_use]
    pub fn from_requests(requests: &[ServeRequest]) -> Self {
        Self {
            requests: requests.to_vec(),
        }
    }

    /// Accept a request; returns its id (the index its answer will occupy).
    pub fn push(&mut self, request: ServeRequest) -> usize {
        self.requests.push(request);
        self.requests.len() - 1
    }

    /// Number of queued requests.
    #[must_use]
    pub fn len(&self) -> usize {
        self.requests.len()
    }

    /// Whether the queue is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.requests.is_empty()
    }

    /// The queued requests.
    #[must_use]
    pub fn requests(&self) -> &[ServeRequest] {
        &self.requests
    }

    /// Pack the queue into batch jobs of at most `max_batch` requests each:
    /// group by spec (first-seen order), preserve submission order within a
    /// group, chunk at `max_batch`.
    ///
    /// # Panics
    /// Panics if `max_batch` is zero.
    #[must_use]
    pub fn pack(&self, max_batch: usize) -> Vec<BatchJob> {
        assert!(max_batch > 0, "need room for at least one request per job");
        // First-seen group order keeps packing deterministic without
        // requiring ProblemSpec: Ord.
        let mut groups: Vec<(ProblemSpec, Vec<usize>)> = Vec::new();
        for (i, request) in self.requests.iter().enumerate() {
            match groups.iter_mut().find(|(spec, _)| *spec == request.spec) {
                Some((_, indices)) => indices.push(i),
                None => groups.push((request.spec, vec![i])),
            }
        }
        groups
            .into_iter()
            .flat_map(|(spec, indices)| {
                indices
                    .chunks(max_batch)
                    .map(|chunk| BatchJob {
                        spec,
                        requests: chunk.to_vec(),
                    })
                    .collect::<Vec<_>>()
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packing_groups_by_spec_and_chunks_at_max_batch() {
        let small = ProblemSpec::cube(3, 2);
        let large = ProblemSpec::cube(5, 2);
        let mut queue = SolveQueue::new();
        for i in 0..5 {
            queue.push(ServeRequest::seeded(small, i));
            queue.push(ServeRequest::seeded(large, i));
        }
        assert_eq!(queue.len(), 10);
        let jobs = queue.pack(4);
        // 5 + 5 requests at max_batch 4 -> 2 jobs per spec.
        assert_eq!(jobs.len(), 4);
        assert_eq!(jobs[0].spec, small);
        assert_eq!(jobs[0].requests, vec![0, 2, 4, 6]);
        assert_eq!(jobs[1].requests, vec![8]);
        assert_eq!(jobs[2].spec, large);
        assert_eq!(jobs[2].requests, vec![1, 3, 5, 7]);
        assert_eq!(jobs[3].requests, vec![9]);
        // Every request is packed exactly once.
        let mut seen: Vec<usize> = jobs.iter().flat_map(|j| j.requests.clone()).collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn empty_queue_packs_to_no_jobs() {
        assert!(SolveQueue::new().pack(8).is_empty());
    }

    #[test]
    fn split_halves_preserve_order_and_conserve_requests() {
        let job = BatchJob {
            spec: ProblemSpec::cube(3, 2),
            requests: vec![4, 7, 9, 11, 12],
        };
        let (front, back) = job.split();
        assert_eq!(front.requests, vec![4, 7, 9], "front takes the extra");
        assert_eq!(back.requests, vec![11, 12]);
        assert_eq!(front.spec, job.spec);
        let (a, b) = back.split();
        assert_eq!((a.requests, b.requests), (vec![11], vec![12]));
    }
}
