//! Live-traffic serving invariants: answer identity between the streaming
//! hosts and the closed-batch path, seed determinism of open-loop runs,
//! the no-fabricated-percentile rule under total overload, and the
//! autoscaler's grow-under-load / shrink-when-it-fades / hold-without-
//! evidence behaviour.
//!
//! Timing-discipline note: every comparative assertion is on *modelled*
//! seconds (arrival stamps, predicted and simulated session times); the
//! suite is deterministic under any CI load.

use perf_model::WorkloadKind;
use sem_serve::autoscaler::{Autoscaler, AutoscalerPolicy, ScaleDirection};
use sem_serve::{
    ArrivalStream, LiveOptions, ProblemSpec, RoundRobin, ServeOptions, ServeRequest, Server,
    TimedRequest,
};
use sem_solver::CgOptions;

fn options(max_batch: usize) -> ServeOptions {
    ServeOptions {
        cg: CgOptions {
            max_iterations: 1000,
            tolerance: 1e-10,
            record_history: false,
        },
        max_batch,
        ..ServeOptions::default()
    }
}

/// An explicit trace: `n` seeded requests of one shape, `gap` seconds apart.
fn paced_stream(spec: ProblemSpec, n: usize, gap: f64) -> ArrivalStream {
    ArrivalStream::new(
        (0..n)
            .map(|i| TimedRequest {
                arrival_seconds: i as f64 * gap,
                request: ServeRequest::seeded(spec, i as u64),
            })
            .collect(),
    )
}

fn generous() -> LiveOptions {
    LiveOptions {
        deadline_seconds: 1e6,
        batch_window_seconds: 0.5,
        window_seconds: 2.0,
        down_batch: true,
    }
}

#[test]
fn streaming_arrivals_answer_identical_to_the_closed_batch_path() {
    // The tentpole contract: on a homogeneous pool, the same admitted set
    // produces bitwise-identical solution vectors whether requests arrive
    // all at once (closed batch), stream through the synchronous reference
    // host, or ride the live feeder into the work-stealing pool.
    let spec = ProblemSpec::cube(3, 2);
    let names = ["cpu:optimized", "cpu:optimized"];
    let stream = paced_stream(spec, 8, 0.3);
    let requests: Vec<ServeRequest> = stream.arrivals().iter().map(|t| t.request).collect();

    let closed = Server::from_registry_names(&names, options(4))
        .serve(&requests, &mut RoundRobin::default());
    let sync =
        Server::from_registry_names(&names, options(4)).serve_stream(&stream, &generous(), None);
    let streamed = Server::from_registry_names(&names, options(4)).serve_stream_async(
        &stream,
        &generous(),
        None,
    );

    assert_eq!(closed.outcomes.len(), 8);
    assert_eq!(sync.admitted(), 8);
    assert_eq!(streamed.admitted(), 8);
    assert!(sync.rejections.is_empty() && streamed.rejections.is_empty());
    for ((batch, live_sync), live_async) in closed
        .outcomes
        .iter()
        .zip(&sync.outcomes)
        .zip(&streamed.outcomes)
    {
        assert_eq!(batch.request, live_sync.request);
        assert_eq!(batch.request, live_async.request);
        assert_eq!(
            batch.solution.as_slice(),
            live_sync.solution.as_slice(),
            "request {} diverged on the reference host",
            batch.request
        );
        assert_eq!(
            batch.solution.as_slice(),
            live_async.solution.as_slice(),
            "request {} diverged on the streaming host",
            batch.request
        );
        assert_eq!(batch.iterations, live_async.iterations);
    }
    // Latency accounting stays arrival-relative and ordered.
    for outcome in &sync.outcomes {
        assert!(outcome.latency_seconds() >= 0.0);
        assert!(outcome.completed_seconds >= outcome.started_seconds);
        assert!(outcome.started_seconds >= outcome.arrival_seconds - 1e-12);
    }
}

#[test]
fn seeded_open_loop_runs_are_deterministic() {
    let spec = ProblemSpec::cube(3, 2);
    let kind = WorkloadKind::Poisson { rate_rps: 2.0 };
    let stream_a = ArrivalStream::from_workload(kind, 0x00C0_FFEE, 6.0, spec);
    let stream_b = ArrivalStream::from_workload(kind, 0x00C0_FFEE, 6.0, spec);
    assert_eq!(stream_a.len(), stream_b.len());
    for (a, b) in stream_a.arrivals().iter().zip(stream_b.arrivals()) {
        assert_eq!(a.arrival_seconds.to_bits(), b.arrival_seconds.to_bits());
        assert_eq!(a.request, b.request);
    }

    // Bitwise determinism needs an all-simulated pool: CPU backends re-time
    // every run, the cycle model prices every run identically.
    let live = LiveOptions {
        deadline_seconds: 3.0,
        ..generous()
    };
    let run = |stream: &ArrivalStream| {
        Server::from_registry_names(&["fpga:stratix10-gx2800"], options(4))
            .serve_stream(stream, &live, None)
    };
    let first = run(&stream_a);
    let second = run(&stream_b);
    assert_eq!(first.admitted(), second.admitted());
    assert_eq!(first.rejected(), second.rejected());
    assert_eq!(first.windows.len(), second.windows.len());
    assert_eq!(
        first.drift_correction.to_bits(),
        second.drift_correction.to_bits()
    );
    for (a, b) in first.outcomes.iter().zip(&second.outcomes) {
        assert_eq!(a.request, b.request);
        assert_eq!(a.device, b.device);
        assert_eq!(a.completed_seconds.to_bits(), b.completed_seconds.to_bits());
        assert_eq!(a.solution.as_slice(), b.solution.as_slice());
    }
}

#[test]
fn total_overload_rejects_everything_without_fabricating_a_tail() {
    // An impossible deadline: every request is rejected, so no latency
    // evidence exists anywhere — the report and every window must say
    // `None`, never a fabricated 0.0 (the old percentile bug read exactly
    // this situation as a perfect tail and a scale-down signal).
    let spec = ProblemSpec::cube(3, 2);
    let stream = paced_stream(spec, 6, 0.2);
    let live = LiveOptions {
        deadline_seconds: 1e-12,
        ..generous()
    };
    let mut server = Server::from_registry_names(&["cpu:optimized"], options(4));
    let report = server.serve_stream(&stream, &live, None);
    assert_eq!(report.admitted(), 0);
    assert_eq!(report.rejected(), 6);
    assert_eq!(report.latency_percentile_seconds(99.0), None);
    assert!(!report.windows.is_empty());
    for window in &report.windows {
        assert_eq!(window.p99_latency_seconds, None);
    }
    for rejection in &report.rejections {
        assert!(rejection.predicted_latency_seconds > rejection.deadline_seconds);
    }
}

#[test]
fn the_autoscaler_grows_under_load_shrinks_after_it_and_holds_when_idle() {
    // Self-calibrating: probe the modelled latency of one single-request
    // job on the (simulated, hence deterministic) device, then shape a
    // burst that overloads one device and a sparse tail that does not.
    let spec = ProblemSpec::cube(3, 2);
    let names = [
        "fpga:stratix10-gx2800",
        "fpga:stratix10-gx2800",
        "fpga:stratix10-gx2800",
    ];
    let probe = Server::from_registry_names(&names[..1], options(1)).serve_stream(
        &paced_stream(spec, 1, 1.0),
        &generous(),
        None,
    );
    let l = probe.outcomes[0].latency_seconds();
    assert!(l > 0.0);

    // Burst: arrivals 4x faster than one device can serve; tail: one
    // request every ~8 windows' worth of slack, keeping virtual time
    // moving so the post-burst windows close.
    let mut arrivals: Vec<TimedRequest> = (0..24)
        .map(|i| TimedRequest {
            arrival_seconds: i as f64 * 0.25 * l,
            request: ServeRequest::seeded(spec, i as u64),
        })
        .collect();
    arrivals.extend((0..6).map(|i| TimedRequest {
        arrival_seconds: (12.0 + i as f64 * 8.0) * l,
        request: ServeRequest::seeded(spec, 100 + i as u64),
    }));
    let stream = ArrivalStream::new(arrivals);

    let mut server = Server::from_registry_names(&names, options(2));
    let watts = vec![100.0, 150.0, 200.0];
    let deadline = 4.0 * l;
    let mut scaler = Autoscaler::new(
        AutoscalerPolicy::with_deadline(deadline),
        server.slots(),
        watts.clone(),
    );
    let live = LiveOptions {
        deadline_seconds: deadline,
        batch_window_seconds: 0.01 * l,
        window_seconds: 6.0 * l,
        down_batch: true,
    };
    let report = server.serve_stream(&stream, &live, Some(&mut scaler));

    assert_eq!(report.windows.len(), report.active_trace.len());
    let ups = report
        .scale_events
        .iter()
        .filter(|e| e.direction == ScaleDirection::Up)
        .count();
    let downs = report
        .scale_events
        .iter()
        .filter(|e| e.direction == ScaleDirection::Down)
        .count();
    assert!(
        ups > 0,
        "the burst must grow the pool: {:?}",
        report.scale_events
    );
    assert!(
        downs > 0,
        "the idle tail must shrink it: {:?}",
        report.scale_events
    );
    assert!(report.max_active_devices() > 1);
    assert_eq!(
        report.active_trace.last().map(Vec::len),
        Some(1),
        "the tail settles back to min_devices"
    );
    // Elasticity is the point: the traced provisioning must cost less than
    // keeping the largest pool up for the whole run.
    let elastic = report.provisioned_watt_seconds(&watts);
    let static_full =
        watts.iter().sum::<f64>() * report.window_seconds * report.windows.len() as f64;
    assert!(elastic < static_full, "{elastic} vs {static_full}");
}

#[test]
fn an_fpga_catalogue_pool_serves_a_live_trace_end_to_end() {
    // The heterogeneous story: the full arch-db candidate pool (real
    // boards plus projected devices) behind the live host, scaled by TDP.
    let (slots, watts) = Autoscaler::fpga_candidates();
    let spec = ProblemSpec::cube(7, 2);
    let mut server = Server::new(slots, options(4));
    let mut scaler = Autoscaler::new(
        AutoscalerPolicy::with_deadline(0.5),
        server.slots(),
        watts.clone(),
    );
    let stream =
        ArrivalStream::from_workload(WorkloadKind::Poisson { rate_rps: 4.0 }, 7, 4.0, spec);
    let live = LiveOptions {
        deadline_seconds: 0.5,
        batch_window_seconds: 0.1,
        window_seconds: 1.0,
        down_batch: true,
    };
    let report = server.serve_stream(&stream, &live, Some(&mut scaler));
    assert_eq!(report.admitted() + report.rejected(), stream.len());
    assert!(
        report.admitted() > 0,
        "a catalogue pool must admit something"
    );
    if let Some(p99) = report.latency_percentile_seconds(99.0) {
        assert!(p99 > 0.0);
    }
    assert!(report.cost_per_solve_watt_seconds(&watts).is_some());
}
