//! Chaos conservation battery: seeded fault mixes through the tolerant
//! work-stealing host and the end-to-end chaos server, proving **no job is
//! ever lost** — every run delivers results that are exactly `0..n`, or
//! hands the remainder back explicitly when the whole pool dies.
//!
//! Lives in its own integration-test binary (like `tests/explore.rs`) so
//! the threaded runs here never share a process with the schedule
//! explorer's process-global hook.

use std::sync::atomic::{AtomicUsize, Ordering};

use fpga_sim::{FaultKind, FaultPlan, ScheduledFault};
use sem_serve::{
    run_stealing_tolerant, run_stealing_tolerant_with_feeder, FaultToleranceOptions, JobVerdict,
    ProblemSpec, ServeOptions, ServeRequest, Server, TaggedJob, TolerantRun,
};

/// splitmix64: the deterministic seed expander used across the repo's
/// seeded tests.
fn splitmix64(state: &mut u64) {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    *state = z ^ (z >> 31);
}

/// Draw a value in `0..bound` from the seeded stream.
fn draw(state: &mut u64, bound: u64) -> u64 {
    splitmix64(state);
    *state % bound
}

/// `n` jobs, a seeded mix of hinted and floating, payload == index.
fn seeded_jobs(n: usize, workers: usize, seed: u64) -> Vec<TaggedJob<usize>> {
    let mut state = seed;
    (0..n)
        .map(|payload| {
            let hint = if draw(&mut state, 2) == 0 {
                Some(draw(&mut state, workers as u64) as usize)
            } else {
                None
            };
            TaggedJob { payload, hint }
        })
        .collect()
}

/// Sorted payloads delivered by the run (payload-returning executors).
fn delivered(run: &TolerantRun<usize, usize, usize>) -> Vec<usize> {
    let mut out: Vec<usize> = run.completed.iter().map(|c| c.result).collect();
    out.sort_unstable();
    out
}

/// Assert the conservation contract: completed plus unfinished is exactly
/// `0..n`, with nothing duplicated and nothing dropped.
fn assert_conserved(run: &TolerantRun<usize, usize, usize>, n: usize) {
    let mut all = delivered(run);
    all.extend(run.unfinished.iter().copied());
    all.sort_unstable();
    assert_eq!(
        all,
        (0..n).collect::<Vec<usize>>(),
        "jobs were lost or duplicated"
    );
    if run.alive_workers() > 0 {
        assert!(
            run.unfinished.is_empty(),
            "jobs were abandoned with live workers in the pool"
        );
    }
}

#[test]
fn seeded_retry_mixes_deliver_exactly_zero_to_n() {
    // Across several seeds: a seeded subset of payloads fails once with a
    // recoverable verdict, everything is retried through the injector, and
    // the delivered results are exactly 0..n every time.
    for seed in [1_u64, 7, 42, 0xC0FFEE] {
        let n = 24;
        let workers = 3;
        let mut state = seed;
        let retry_once: Vec<bool> = (0..n).map(|_| draw(&mut state, 3) == 0).collect();
        let attempts: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();

        let run: TolerantRun<usize, usize, usize> = run_stealing_tolerant(
            vec![0usize; workers],
            seeded_jobs(n, workers, seed ^ 0xA5A5),
            |_worker, _state, payload: usize| {
                if retry_once[payload] && attempts[payload].fetch_add(1, Ordering::SeqCst) == 0 {
                    return JobVerdict::Retry(payload);
                }
                JobVerdict::Done(payload)
            },
        );

        assert_eq!(delivered(&run), (0..n).collect::<Vec<usize>>());
        assert!(run.unfinished.is_empty());
        let expected_retries = retry_once.iter().filter(|r| **r).count();
        assert_eq!(run.retries, expected_retries, "seed {seed}");
        assert_eq!(run.died, vec![false; workers]);
    }
}

#[test]
fn a_dying_worker_requeues_its_deque_and_loses_nothing() {
    // Every job is hinted to worker 0, which dies on the first job it
    // touches: the survivors must still deliver exactly 0..n, and the
    // drained deque shows up in the requeue counter.  Survivors gate on
    // the death so the deque is provably nonempty when it drains —
    // without the gate a pathological schedule could let the thieves
    // empty it first and the test would not pin the drain path.
    let n = 16;
    let workers = 3;
    let jobs: Vec<TaggedJob<usize>> = (0..n)
        .map(|payload| TaggedJob {
            payload,
            hint: Some(0),
        })
        .collect();
    let death_seen = AtomicUsize::new(0);

    let run: TolerantRun<usize, usize, usize> =
        run_stealing_tolerant(vec![0usize; workers], jobs, |worker, _state, payload| {
            if worker == 0 {
                death_seen.store(1, Ordering::SeqCst);
                return JobVerdict::Fatal(payload);
            }
            while death_seen.load(Ordering::SeqCst) == 0 {
                std::thread::yield_now();
            }
            JobVerdict::Done(payload)
        });

    assert_eq!(delivered(&run), (0..n).collect::<Vec<usize>>());
    assert!(run.unfinished.is_empty());
    assert!(run.died[0], "worker 0 must retire through Fatal");
    assert_eq!(run.alive_workers(), workers - 1);
    // The fatal verdict requeues its in-flight payload, so the counter is
    // at least 1 even when the survivors had already emptied the deque.
    assert!(run.requeued_on_death >= 1);
    assert_eq!(
        run.workers[0].executed_jobs, 0,
        "a dead worker must not deliver results"
    );
}

#[test]
fn retries_racing_a_live_feeder_still_conserve_jobs() {
    // Half the jobs arrive through the feeder while seeded retry verdicts
    // bounce payloads back through the injector: the done-flag race must
    // not let a requeued job slip past termination.
    for seed in [3_u64, 99, 0xFEED] {
        let preloaded = 10;
        let fed = 10;
        let n = preloaded + fed;
        let workers = 3;
        let mut state = seed;
        let retry_once: Vec<bool> = (0..n).map(|_| draw(&mut state, 2) == 0).collect();
        let attempts: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();

        let run: TolerantRun<usize, usize, usize> = run_stealing_tolerant_with_feeder(
            vec![0usize; workers],
            seeded_jobs(preloaded, workers, seed ^ 0x5A5A),
            |handle| {
                for payload in preloaded..n {
                    handle.push(payload);
                }
            },
            |_worker, _state, payload: usize| {
                if retry_once[payload] && attempts[payload].fetch_add(1, Ordering::SeqCst) == 0 {
                    return JobVerdict::Retry(payload);
                }
                JobVerdict::Done(payload)
            },
        );

        assert_eq!(
            delivered(&run),
            (0..n).collect::<Vec<usize>>(),
            "seed {seed}"
        );
        assert!(run.unfinished.is_empty());
        assert_eq!(
            run.retries,
            retry_once.iter().filter(|r| **r).count(),
            "seed {seed}"
        );
    }
}

#[test]
fn a_fully_dead_pool_hands_every_job_back() {
    // When every worker dies, nothing can complete — but nothing may be
    // dropped either: completed + unfinished must still be exactly 0..n so
    // the caller can degrade the remainder onto host backends.
    let n = 12;
    let workers = 2;
    let run: TolerantRun<usize, usize, usize> = run_stealing_tolerant(
        vec![0usize; workers],
        seeded_jobs(n, workers, 0xDEAD),
        |_worker, _state, payload: usize| JobVerdict::Fatal(payload),
    );

    assert_eq!(run.alive_workers(), 0);
    assert!(run.completed.is_empty());
    assert_conserved(&run, n);
}

#[test]
fn seeded_death_and_retry_storms_conserve_jobs() {
    // The combined storm: a seeded fatal worker plus seeded retry payloads,
    // across several seeds — the union contract must hold in every mix.
    for seed in [11_u64, 1234, 0xBEEF, 987_654_321] {
        let n = 20;
        let workers = 4;
        let mut state = seed;
        let fatal_worker = draw(&mut state, workers as u64) as usize;
        let retry_once: Vec<bool> = (0..n).map(|_| draw(&mut state, 4) == 0).collect();
        let attempts: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();

        let run: TolerantRun<usize, usize, usize> = run_stealing_tolerant(
            vec![0usize; workers],
            seeded_jobs(n, workers, seed ^ 0x1111),
            |worker, _state, payload: usize| {
                if worker == fatal_worker {
                    return JobVerdict::Fatal(payload);
                }
                if retry_once[payload] && attempts[payload].fetch_add(1, Ordering::SeqCst) == 0 {
                    return JobVerdict::Retry(payload);
                }
                JobVerdict::Done(payload)
            },
        );

        assert_conserved(&run, n);
        // Whether the scripted worker actually dies is schedule-dependent
        // (on a loaded host its siblings can drain the queue before it ever
        // claims a job) — but death is the *only* way out of the pool, and
        // the delivered set must be exactly 0..n either way.
        for (worker, died) in run.died.iter().enumerate() {
            assert!(
                !died || worker == fatal_worker,
                "seed {seed}: only the scripted worker may die"
            );
        }
        if run.died[fatal_worker] {
            assert_eq!(run.alive_workers(), workers - 1, "seed {seed}");
            assert_eq!(run.workers[fatal_worker].executed_jobs, 0, "seed {seed}");
        }
        assert_eq!(
            delivered(&run),
            (0..n).collect::<Vec<usize>>(),
            "seed {seed}"
        );
    }
}

/// The accelerator the end-to-end battery serves on.
const FPGA: &str = "fpga:stratix10-gx2800";

/// Seeded requests on a small cube, shared by the end-to-end tests.
fn seeded_requests(n: usize, seed: u64) -> Vec<ServeRequest> {
    let spec = ProblemSpec::cube(3, 2);
    (0..n)
        .map(|i| ServeRequest::seeded(spec, seed.wrapping_add(i as u64)))
        .collect()
}

fn small_pool() -> Server {
    Server::from_registry_names(
        &[FPGA, FPGA, "cpu:optimized"],
        ServeOptions {
            max_batch: 2,
            ..ServeOptions::default()
        },
    )
}

#[test]
fn chaos_serve_completes_every_request_verified_under_a_mixed_fault_plan() {
    // Transients + a hang on device 0, a hard death on device 1: every
    // request must still complete verified, the outcome set must cover the
    // request indices exactly, and recovery must be visible in the ledger.
    let requests = seeded_requests(10, 42);
    let mut server = small_pool();
    server.inject_faults(
        0,
        FaultPlan::new(vec![
            ScheduledFault {
                at_op: 2,
                kind: FaultKind::Transient,
            },
            ScheduledFault {
                at_op: 40,
                kind: FaultKind::Hang,
            },
        ]),
    );
    server.inject_faults(
        1,
        FaultPlan::new(vec![ScheduledFault {
            at_op: 10,
            kind: FaultKind::Death,
        }]),
    );

    let report = server.serve_chaos(&requests, FaultToleranceOptions::default());

    assert!(
        report.unserved.is_empty(),
        "no admitted request may be lost"
    );
    let mut served: Vec<usize> = report.outcomes.iter().map(|o| o.request).collect();
    served.sort_unstable();
    assert_eq!(
        served,
        (0..requests.len()).collect::<Vec<usize>>(),
        "outcomes must cover the request indices exactly"
    );
    for outcome in &report.outcomes {
        assert!(
            outcome.converged,
            "request {} released unverified",
            outcome.request
        );
        assert!(outcome.fault.is_none(), "a poisoned solve was released");
    }
    assert!(
        report.ledger.total_retries() >= 1,
        "faults must be detected"
    );
    assert!(report.recovered_requests >= 1);
    assert!(
        report.fault_events.iter().any(|e| e.device == 1),
        "the death on device 1 must be observed"
    );
}

#[test]
fn chaos_serve_matches_the_fault_free_bits_when_retries_stay_on_peers() {
    // Two identical boards: a death on one forces every retry onto the
    // equivalent peer, so released solutions must match the fault-free run
    // bit for bit.
    let requests = seeded_requests(8, 7);
    let chaos = FaultToleranceOptions::default();

    let baseline = small_pool().serve_chaos(&requests, chaos);
    assert!(baseline.unserved.is_empty());

    let mut server = small_pool();
    server.inject_faults(
        0,
        FaultPlan::new(vec![ScheduledFault {
            at_op: 5,
            kind: FaultKind::Death,
        }]),
    );
    let faulted = server.serve_chaos(&requests, chaos);

    assert!(faulted.unserved.is_empty());
    assert_eq!(baseline.outcomes.len(), faulted.outcomes.len());
    for (a, b) in baseline.outcomes.iter().zip(&faulted.outcomes) {
        assert_eq!(a.request, b.request);
        assert_eq!(
            a.solution.as_slice(),
            b.solution.as_slice(),
            "request {} drifted from the fault-free bits",
            a.request
        );
    }
    assert_eq!(faulted.fallback_jobs, 0, "the cpu reserve was not needed");
}

#[test]
fn chaos_serve_degrades_to_the_cpu_reserve_when_every_accelerator_dies() {
    // Both boards die almost immediately: the host must degrade onto the
    // cpu reserve and still complete every request rather than dropping
    // any.
    let requests = seeded_requests(6, 11);
    let mut server = small_pool();
    for device in 0..2 {
        server.inject_faults(
            device,
            FaultPlan::new(vec![ScheduledFault {
                at_op: 1,
                kind: FaultKind::Death,
            }]),
        );
    }

    let report = server.serve_chaos(&requests, FaultToleranceOptions::default());

    assert!(report.unserved.is_empty(), "degradation must not lose jobs");
    let mut served: Vec<usize> = report.outcomes.iter().map(|o| o.request).collect();
    served.sort_unstable();
    assert_eq!(served, (0..requests.len()).collect::<Vec<usize>>());
    assert!(report.outcomes.iter().all(|o| o.converged));
    assert!(
        report.fallback_jobs >= 1,
        "with every accelerator dark, work must land on the reserve"
    );
}
